// E2 — Table 1: timings of the two query templates (with / without explicit
// group by) for one- and two-element grouping keys, written to
// BENCH_table1.json with the per-query QueryStats counters.
//
// Usage: bench_table1 [--quick] [--smoke]   (--smoke: CI-sized quick run)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "workload/orders.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;
using xqa::bench::JsonValue;
using xqa::bench::MeasureEntry;
using xqa::bench::MeasureSeconds;

struct NamedQuery {
  const char* name;
  const char* text;
};

constexpr NamedQuery kQueries[] = {
    {"table1a_with_groupby",
     "for $litem in //order/lineitem "
     "group by $litem/shipmode into $a "
     "nest $litem into $items "
     "return <r>{$a, count($items)}</r>"},
    {"table1a_without_groupby",
     "for $a in distinct-values(//order/lineitem/shipmode) "
     "let $items := for $i in //order/lineitem "
     "              where $i/shipmode = $a "
     "              return $i "
     "return <r>{$a, count($items)}</r>"},
    {"table1b_with_groupby",
     "for $litem in //order/lineitem "
     "group by $litem/shipinstruct into $a, $litem/shipmode into $b "
     "nest $litem into $items "
     "return <r>{$a, $b, count($items)}</r>"},
    {"table1b_without_groupby",
     "for $a in distinct-values(//order/lineitem/shipinstruct), "
     "    $b in distinct-values(//order/lineitem/shipmode) "
     "let $items := for $i in //order/lineitem "
     "              where $i/shipinstruct = $a and $i/shipmode = $b "
     "              return $i "
     "where exists($items) "
     "return <r>{$a, $b, count($items)}</r>"},
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--smoke") == 0) quick = true;  // CI alias
  }
  int repetitions = quick ? 1 : 5;

  xqa::workload::OrderConfig config;
  config.num_orders = 500;
  DocumentPtr doc = xqa::workload::GenerateOrdersDocument(config);
  Engine engine;

  std::printf("E2: Table 1 query templates (500 orders)\n");
  std::printf("%-28s %12s\n", "query", "best ms");
  JsonValue results = JsonValue::Array();
  for (const NamedQuery& q : kQueries) {
    PreparedQuery query = engine.Compile(q.text);
    double seconds = MeasureSeconds(query, doc, repetitions);
    std::printf("%-28s %12.2f\n", q.name, seconds * 1e3);
    JsonValue entry = MeasureEntry(query, doc, seconds);
    entry.Set("name", JsonValue::Str(q.name));
    results.Append(std::move(entry));
  }

  // --- Batched-vs-scalar ablation (docs/VECTORIZATION.md) -------------------
  // The same four templates with the batched engine switched off. Byte
  // identity is asserted before timing, so the recorded speedup is for an
  // invisible optimization, not a semantic shortcut.
  std::printf("\nbatched-engine ablation\n");
  std::printf("%-28s %12s %12s %9s\n", "query", "batched ms", "scalar ms",
              "speedup");
  xqa::ExecutionOptions batched_opts;
  batched_opts.use_batched_execution = true;
  xqa::ExecutionOptions scalar_opts;
  scalar_opts.use_batched_execution = false;
  JsonValue ablation = JsonValue::Array();
  for (const NamedQuery& q : kQueries) {
    PreparedQuery query = engine.Compile(q.text);
    if (query.ExecuteToString(doc, batched_opts) !=
        query.ExecuteToString(doc, scalar_opts)) {
      std::fprintf(stderr, "FATAL: %s batched result differs from scalar\n",
                   q.name);
      return 1;
    }
    double t_batched = MeasureSeconds(query, doc, batched_opts, repetitions);
    double t_scalar = MeasureSeconds(query, doc, scalar_opts, repetitions);
    std::printf("%-28s %12.2f %12.2f %9.2f\n", q.name, t_batched * 1e3,
                t_scalar * 1e3, t_scalar / t_batched);
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::Str(q.name));
    entry.Set("batched_seconds", JsonValue::Number(t_batched));
    entry.Set("scalar_seconds", JsonValue::Number(t_scalar));
    entry.Set("batched_speedup", JsonValue::Number(t_scalar / t_batched));
    ablation.Append(std::move(entry));
  }

  JsonValue root = JsonValue::Object();
  root.Set("bench", JsonValue::Str("table1"));
  root.Set("experiment",
           JsonValue::Str("E2: Table 1 one-/two-key grouping templates"));
  JsonValue params = JsonValue::Object();
  params.Set("quick", JsonValue::Bool(quick));
  params.Set("orders", JsonValue::Int(config.num_orders));
  params.Set("repetitions", JsonValue::Int(repetitions));
  root.Set("parameters", std::move(params));
  root.Set("results", std::move(results));
  root.Set("batched_ablation", std::move(ablation));
  xqa::bench::WriteBenchJson("table1", root);
  return 0;
}

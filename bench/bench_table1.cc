// E2 — Table 1: google-benchmark timings of the two query templates (with /
// without explicit group by) for one- and two-element grouping keys.

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "workload/orders.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;

const DocumentPtr& SharedOrders() {
  static const DocumentPtr& doc = *new DocumentPtr([] {
    xqa::workload::OrderConfig config;
    config.num_orders = 500;
    return xqa::workload::GenerateOrdersDocument(config);
  }());
  return doc;
}

void BM_Table1a_WithGroupBy(benchmark::State& state) {
  Engine engine;
  PreparedQuery query = engine.Compile(
      "for $litem in //order/lineitem "
      "group by $litem/shipmode into $a "
      "nest $litem into $items "
      "return <r>{$a, count($items)}</r>");
  const DocumentPtr& doc = SharedOrders();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}
BENCHMARK(BM_Table1a_WithGroupBy);

void BM_Table1a_WithoutGroupBy(benchmark::State& state) {
  Engine engine;
  PreparedQuery query = engine.Compile(
      "for $a in distinct-values(//order/lineitem/shipmode) "
      "let $items := for $i in //order/lineitem "
      "              where $i/shipmode = $a "
      "              return $i "
      "return <r>{$a, count($items)}</r>");
  const DocumentPtr& doc = SharedOrders();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}
BENCHMARK(BM_Table1a_WithoutGroupBy);

void BM_Table1b_WithGroupBy(benchmark::State& state) {
  Engine engine;
  PreparedQuery query = engine.Compile(
      "for $litem in //order/lineitem "
      "group by $litem/shipinstruct into $a, $litem/shipmode into $b "
      "nest $litem into $items "
      "return <r>{$a, $b, count($items)}</r>");
  const DocumentPtr& doc = SharedOrders();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}
BENCHMARK(BM_Table1b_WithGroupBy);

void BM_Table1b_WithoutGroupBy(benchmark::State& state) {
  Engine engine;
  PreparedQuery query = engine.Compile(
      "for $a in distinct-values(//order/lineitem/shipinstruct), "
      "    $b in distinct-values(//order/lineitem/shipmode) "
      "let $items := for $i in //order/lineitem "
      "              where $i/shipinstruct = $a and $i/shipmode = $b "
      "              return $i "
      "where exists($items) "
      "return <r>{$a, $b, count($items)}</r>");
  const DocumentPtr& doc = SharedOrders();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}
BENCHMARK(BM_Table1b_WithoutGroupBy);

}  // namespace

BENCHMARK_MAIN();

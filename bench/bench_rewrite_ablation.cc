// A1 — rewrite ablation: the naive Table 1 query executed (a) as written
// (the paper's "no rewrites" configuration) and (b) with the optimizer's
// group-by pattern detection enabled, which rewrites it into an explicit
// group by at compile time. Shows what the paper's optimizer-detection
// argument is about: when the template matches, the rewrite recovers the
// explicit plan's performance; the hard part (Section 7) is that only
// stylized forms match.

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "workload/orders.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;

constexpr char kNaiveQuery[] =
    "for $a in distinct-values(//order/lineitem/quantity) "
    "let $items := for $i in //order/lineitem "
    "              where $i/quantity = $a "
    "              return $i "
    "return <r>{$a, count($items)}</r>";

const DocumentPtr& SharedOrders() {
  static const DocumentPtr& doc = *new DocumentPtr([] {
    xqa::workload::OrderConfig config;
    config.num_orders = 500;
    return xqa::workload::GenerateOrdersDocument(config);
  }());
  return doc;
}

void BM_NaiveAsWritten(benchmark::State& state) {
  Engine engine;  // rewrites off: the paper's experimental configuration
  PreparedQuery query = engine.Compile(kNaiveQuery);
  const DocumentPtr& doc = SharedOrders();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}
BENCHMARK(BM_NaiveAsWritten);

void BM_NaiveWithRewriteDetection(benchmark::State& state) {
  Engine::Options options;
  options.enable_groupby_rewrite = true;
  Engine engine(options);
  PreparedQuery query = engine.Compile(kNaiveQuery);
  if (query.rewrites_applied() != 1) {
    state.SkipWithError("rewrite did not fire");
    return;
  }
  const DocumentPtr& doc = SharedOrders();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}
BENCHMARK(BM_NaiveWithRewriteDetection);

void BM_ExplicitGroupByReference(benchmark::State& state) {
  Engine engine;
  PreparedQuery query = engine.Compile(
      "for $i in //order/lineitem "
      "group by data($i/quantity) into $a nest $i into $items "
      "where exists($a) "
      "return <r>{$a, count($items)}</r>");
  const DocumentPtr& doc = SharedOrders();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}
BENCHMARK(BM_ExplicitGroupByReference);

// A variant the detector cannot match (the key equality sits under a deeper
// path), demonstrating the fragility the paper describes: it stays slow even
// with detection enabled.
void BM_NonMatchingVariantWithDetection(benchmark::State& state) {
  Engine::Options options;
  options.enable_groupby_rewrite = true;
  Engine engine(options);
  PreparedQuery query = engine.Compile(
      "for $a in distinct-values(//order/lineitem/quantity) "
      "let $items := for $i in //order "
      "              where $i/lineitem/quantity = $a "
      "              return $i "
      "return <r>{$a, count($items)}</r>");
  if (query.rewrites_applied() != 0) {
    state.SkipWithError("unexpected rewrite");
    return;
  }
  const DocumentPtr& doc = SharedOrders();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}
BENCHMARK(BM_NonMatchingVariantWithDetection);

}  // namespace

BENCHMARK_MAIN();

// A1 — rewrite ablation: the naive Table 1 query executed (a) as written
// (the paper's "no rewrites" configuration) and (b) through the default-on
// logical rewrite layer, which extracts an explicit group by at compile
// time. Shows what the paper's optimizer-detection argument is about: when
// the template matches, the rewrite recovers the explicit plan's
// performance; the hard part (Section 7) is that only stylized forms match
// — the non-matching variant stays slow even with rewrites on.
//
// A second experiment measures order-by elimination: a positional sort the
// property layer proves redundant, timed with the sort kept vs elided.
//
// Both experiments assert byte-identical results between the baseline and
// rewritten plans across the {scalar, batched} x {1, 2, 4, hw} execution
// grid and exit non-zero on any mismatch. Results (wall time + QueryStats)
// go to BENCH_rewrite_ablation.json under the "rewrite_ablation" section.
//
// Usage: bench_rewrite_ablation [--quick] [--smoke]   (--smoke: CI-sized quick run)

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_json.h"
#include "workload/orders.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::ExecutionOptions;
using xqa::PreparedQuery;
using xqa::bench::JsonValue;
using xqa::bench::MeasureEntry;
using xqa::bench::MeasureSeconds;

constexpr char kNaiveQuery[] =
    "for $a in distinct-values(//order/lineitem/quantity) "
    "let $items := for $i in //order/lineitem "
    "              where $i/quantity = $a "
    "              return $i "
    "return <r>{$a, count($items)}</r>";

// A variant the rewriter cannot match (the key equality sits under a deeper
// path), demonstrating the fragility the paper describes: it stays slow even
// with the rewrite layer on.
constexpr char kNonMatchingQuery[] =
    "for $a in distinct-values(//order/lineitem/quantity) "
    "let $items := for $i in //order "
    "              where $i/lineitem/quantity = $a "
    "              return $i "
    "return <r>{$a, count($items)}</r>";

constexpr char kExplicitQuery[] =
    "for $i in //order/lineitem "
    "group by data($i/quantity) into $a nest $i into $items "
    "where exists($a) "
    "return <r>{$a, count($items)}</r>";

// Positional sort over the document-order stream: the order by restates the
// input order, so the property layer removes it.
constexpr char kOrderByQuery[] =
    "for $l at $p in //order/lineitem order by $p return $l/quantity";

Engine::Options NoRewrites() {
  Engine::Options options;
  options.optimizer.detect_groupby_patterns = false;
  options.optimizer.push_predicates = false;
  options.optimizer.eliminate_order_by = false;
  options.optimizer.fold_constants = false;
  return options;
}

/// Serialized results of `a` and `b` compared across the execution grid;
/// prints and returns false on the first divergence.
bool IdenticalAcrossGrid(const char* label, const PreparedQuery& a,
                         const PreparedQuery& b, const DocumentPtr& doc) {
  for (bool batched : {false, true}) {
    for (int threads : {1, 2, 4, 0}) {  // 0 = one per hardware thread
      ExecutionOptions exec;
      exec.use_batched_execution = batched;
      exec.num_threads = threads;
      if (a.ExecuteToString(doc, exec) != b.ExecuteToString(doc, exec)) {
        std::printf("IDENTITY FAILURE: %s (batched=%d threads=%d)\n", label,
                    batched ? 1 : 0, threads);
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--smoke") == 0) quick = true;  // CI alias
  }
  int repetitions = quick ? 1 : 5;

  xqa::workload::OrderConfig config;
  config.num_orders = quick ? 200 : 500;
  DocumentPtr doc = xqa::workload::GenerateOrdersDocument(config);

  Engine plain(NoRewrites());
  Engine optimizing;  // the cost-gated rewrite rules are on by default

  struct Variant {
    const char* name;
    PreparedQuery query;
    int expected_rewrites;
  };
  Variant variants[] = {
      {"naive_as_written", plain.Compile(kNaiveQuery), 0},
      {"naive_with_rewrite", optimizing.Compile(kNaiveQuery), 1},
      {"explicit_groupby_reference", plain.Compile(kExplicitQuery), 0},
      {"non_matching_with_rewrite", optimizing.Compile(kNonMatchingQuery), 0},
      {"orderby_sorted", plain.Compile(kOrderByQuery), 0},
      {"orderby_elided", optimizing.Compile(kOrderByQuery), 1},
  };

  // The rewrite is only worth benchmarking if it is invisible in the output.
  if (!IdenticalAcrossGrid("groupby", variants[0].query, variants[1].query,
                           doc) ||
      !IdenticalAcrossGrid("non_matching", plain.Compile(kNonMatchingQuery),
                           variants[3].query, doc) ||
      !IdenticalAcrossGrid("orderby", variants[4].query, variants[5].query,
                           doc)) {
    return 1;
  }

  std::printf("A1: rewrite ablation (%d orders)\n", config.num_orders);
  std::printf("%-32s %9s %12s\n", "variant", "rewrites", "best ms");
  JsonValue results = JsonValue::Array();
  double times[6] = {0};
  int measured = 0;
  for (size_t i = 0; i < 6; ++i) {
    Variant& v = variants[i];
    if (v.query.rewrites_applied() != v.expected_rewrites) {
      std::printf("%-32s SKIPPED: expected %d rewrites, got %d\n", v.name,
                  v.expected_rewrites, v.query.rewrites_applied());
      continue;
    }
    double seconds = MeasureSeconds(v.query, doc, repetitions);
    times[i] = seconds;
    ++measured;
    std::printf("%-32s %9d %12.2f\n", v.name, v.query.rewrites_applied(),
                seconds * 1e3);
    JsonValue entry = MeasureEntry(v.query, doc, seconds);
    entry.Set("name", JsonValue::Str(v.name));
    entry.Set("rewrites_applied", JsonValue::Int(v.query.rewrites_applied()));
    results.Append(std::move(entry));
  }
  if (measured != 6) {
    std::printf("FAILURE: a variant compiled with unexpected rewrite count\n");
    return 1;
  }

  double groupby_speedup = times[1] > 0 ? times[0] / times[1] : 0;
  double orderby_speedup = times[5] > 0 ? times[4] / times[5] : 0;
  std::printf("groupby: naive/rewritten = %.2fx   orderby: sorted/elided = %.2fx\n",
              groupby_speedup, orderby_speedup);

  JsonValue ablation = JsonValue::Object();
  JsonValue groupby = JsonValue::Object();
  groupby.Set("naive_ms", JsonValue::Number(times[0] * 1e3));
  groupby.Set("rewritten_ms", JsonValue::Number(times[1] * 1e3));
  groupby.Set("explicit_ms", JsonValue::Number(times[2] * 1e3));
  groupby.Set("non_matching_ms", JsonValue::Number(times[3] * 1e3));
  groupby.Set("speedup", JsonValue::Number(groupby_speedup));
  groupby.Set("identical", JsonValue::Bool(true));
  ablation.Set("groupby", std::move(groupby));
  JsonValue orderby = JsonValue::Object();
  orderby.Set("sorted_ms", JsonValue::Number(times[4] * 1e3));
  orderby.Set("elided_ms", JsonValue::Number(times[5] * 1e3));
  orderby.Set("speedup", JsonValue::Number(orderby_speedup));
  orderby.Set("identical", JsonValue::Bool(true));
  ablation.Set("orderby", std::move(orderby));

  JsonValue root = JsonValue::Object();
  root.Set("bench", JsonValue::Str("rewrite_ablation"));
  root.Set("experiment",
           JsonValue::Str("A1: logical rewrite layer ablation "
                          "(group-by extraction + order-by elimination)"));
  JsonValue params = JsonValue::Object();
  params.Set("quick", JsonValue::Bool(quick));
  params.Set("orders", JsonValue::Int(config.num_orders));
  params.Set("repetitions", JsonValue::Int(repetitions));
  root.Set("parameters", std::move(params));
  root.Set("results", std::move(results));
  root.Set("rewrite_ablation", std::move(ablation));
  xqa::bench::WriteBenchJson("rewrite_ablation", root);
  return 0;
}

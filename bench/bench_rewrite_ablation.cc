// A1 — rewrite ablation: the naive Table 1 query executed (a) as written
// (the paper's "no rewrites" configuration) and (b) with the optimizer's
// group-by pattern detection enabled, which rewrites it into an explicit
// group by at compile time. Shows what the paper's optimizer-detection
// argument is about: when the template matches, the rewrite recovers the
// explicit plan's performance; the hard part (Section 7) is that only
// stylized forms match.
//
// Results (wall time + QueryStats, whose counters show the plan shape — the
// rewritten query forms groups; the non-matching one keeps the quadratic
// where clause) go to BENCH_rewrite_ablation.json.
//
// Usage: bench_rewrite_ablation [--quick] [--smoke]   (--smoke: CI-sized quick run)

#include <cstdio>
#include <cstring>

#include "bench_json.h"
#include "workload/orders.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;
using xqa::bench::JsonValue;
using xqa::bench::MeasureEntry;
using xqa::bench::MeasureSeconds;

constexpr char kNaiveQuery[] =
    "for $a in distinct-values(//order/lineitem/quantity) "
    "let $items := for $i in //order/lineitem "
    "              where $i/quantity = $a "
    "              return $i "
    "return <r>{$a, count($items)}</r>";

// A variant the detector cannot match (the key equality sits under a deeper
// path), demonstrating the fragility the paper describes: it stays slow even
// with detection enabled.
constexpr char kNonMatchingQuery[] =
    "for $a in distinct-values(//order/lineitem/quantity) "
    "let $items := for $i in //order "
    "              where $i/lineitem/quantity = $a "
    "              return $i "
    "return <r>{$a, count($items)}</r>";

constexpr char kExplicitQuery[] =
    "for $i in //order/lineitem "
    "group by data($i/quantity) into $a nest $i into $items "
    "where exists($a) "
    "return <r>{$a, count($items)}</r>";

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--smoke") == 0) quick = true;  // CI alias
  }
  int repetitions = quick ? 1 : 5;

  xqa::workload::OrderConfig config;
  config.num_orders = 500;
  DocumentPtr doc = xqa::workload::GenerateOrdersDocument(config);

  Engine plain;
  Engine::Options detect_options;
  detect_options.enable_groupby_rewrite = true;
  Engine detecting(detect_options);

  struct Variant {
    const char* name;
    PreparedQuery query;
    int expected_rewrites;
  };
  Variant variants[] = {
      {"naive_as_written", plain.Compile(kNaiveQuery), 0},
      {"naive_with_rewrite_detection", detecting.Compile(kNaiveQuery), 1},
      {"explicit_groupby_reference", plain.Compile(kExplicitQuery), 0},
      {"non_matching_with_detection", detecting.Compile(kNonMatchingQuery), 0},
  };

  std::printf("A1: rewrite ablation (500 orders)\n");
  std::printf("%-32s %9s %12s\n", "variant", "rewrites", "best ms");
  JsonValue results = JsonValue::Array();
  for (Variant& v : variants) {
    if (v.query.rewrites_applied() != v.expected_rewrites) {
      std::printf("%-32s SKIPPED: expected %d rewrites, got %d\n", v.name,
                  v.expected_rewrites, v.query.rewrites_applied());
      continue;
    }
    double seconds = MeasureSeconds(v.query, doc, repetitions);
    std::printf("%-32s %9d %12.2f\n", v.name, v.query.rewrites_applied(),
                seconds * 1e3);
    JsonValue entry = MeasureEntry(v.query, doc, seconds);
    entry.Set("name", JsonValue::Str(v.name));
    entry.Set("rewrites_applied", JsonValue::Int(v.query.rewrites_applied()));
    results.Append(std::move(entry));
  }

  JsonValue root = JsonValue::Object();
  root.Set("bench", JsonValue::Str("rewrite_ablation"));
  root.Set("experiment",
           JsonValue::Str("A1: optimizer group-by detection ablation"));
  JsonValue params = JsonValue::Object();
  params.Set("quick", JsonValue::Bool(quick));
  params.Set("orders", JsonValue::Int(config.num_orders));
  params.Set("repetitions", JsonValue::Int(repetitions));
  root.Set("parameters", std::move(params));
  root.Set("results", std::move(results));
  xqa::bench::WriteBenchJson("rewrite_ablation", root);
  return 0;
}

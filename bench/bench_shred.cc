// Shredded-scan ablation (docs/SHREDDING.md): the paper's Q1 (books) and Q3
// (sales) rephrased over collections, each measured in three configurations —
// scalar DOM, batched DOM (use_shredded_scan=false), and batched shredded —
// across thread counts {1, 2, 4, hw}, every result byte-compared against the
// serial scalar baseline (the determinism acceptance check runs inside the
// benchmark and any divergence is a non-zero exit). The artifact records the
// per-configuration times, the shredded-vs-DOM-batched speedups, the one-time
// table build cost, and the snapshot's shred gauges.
//
// Usage: bench_shred [--quick] [--smoke]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench_json.h"
#include "service/collection_store.h"
#include "workload/books.h"
#include "workload/sales.h"

namespace {

using xqa::Engine;
using xqa::ExecutionOptions;
using xqa::PreparedQuery;
using xqa::ProfiledResult;
using xqa::bench::JsonValue;
using xqa::service::CollectionSnapshot;
using xqa::service::CollectionStore;

// Q1: average net price per (publisher, year) — both group keys are shredded
// columns, so the batched group-by probes dictionary codes instead of walking
// child steps. The corpus uses max_authors=1: the default bibliography's
// repeated <author> children make schema inference refuse (measured as the
// fallback corpus in the shred tests, not here).
constexpr const char* kQ1 = R"(
  for $b in collection('books')//book
  group by $b/publisher into $p, $b/year into $y
  nest $b/price - $b/discount into $netprices
  return
    <group>
      {$p, $y}
      <avg-net-price>{avg($netprices)}</avg-net-price>
    </group>
)";

// Q3: region/state yearly sales rollup. The outer scan and the $s/region key
// shred; the year-from-dateTime key and the nested re-grouping run generic,
// so this measures the scan + first-key saving inside a realistic pipeline.
constexpr const char* kQ3 = R"(
  for $s in collection('sales')//sale
  group by $s/region into $region,
           year-from-dateTime($s/timestamp) into $year
  nest $s into $region-sales
  let $region-sum := round-half-to-even(sum( $region-sales/(quantity * price) ), 2)
  order by $year, $region
  return
    for $s in $region-sales
    group by $s/state into $state
    nest $s into $state-sales
    let $state-sum := round-half-to-even(sum( $state-sales/(quantity * price) ), 2)
    order by $state
    return
      <summary>
        <year>{$year}</year>{$region, $state}
        <state-sales>{ $state-sum }</state-sales>
        <region-sales>{ $region-sum }</region-sales>
        <state-percentage>
          { round-half-to-even($state-sum * 100 div $region-sum, 1) }
        </state-percentage>
      </summary>
)";

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double Measure(const PreparedQuery& query, const CollectionSnapshot* corpus,
               const ExecutionOptions& exec, int reps, std::string* result) {
  *result = query.ExecuteToString(nullptr, nullptr, corpus, exec);  // warm-up
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    std::string got = query.ExecuteToString(nullptr, nullptr, corpus, exec);
    double seconds = SecondsSince(start);
    if (seconds < best) best = seconds;
    *result = std::move(got);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = quick = true;
  }

  const int num_docs = smoke ? 40 : quick ? 150 : 400;
  const int records_per_doc = smoke ? 25 : 50;
  const int reps = smoke ? 2 : quick ? 3 : 5;

  // One generated document per bulk-load entry, distinct seeds, so the
  // corpora have cross-document key collisions (real groups) and per-shard
  // spread.
  CollectionStore store(CollectionStore::Options{16});
  {
    std::vector<CollectionStore::BulkDocument> books;
    books.reserve(static_cast<size_t>(num_docs));
    for (int d = 0; d < num_docs; ++d) {
      xqa::workload::BooksConfig config;
      config.num_books = records_per_doc;
      config.max_authors = 1;
      config.seed = 1000 + static_cast<uint64_t>(d);
      char uri[32];
      std::snprintf(uri, sizeof(uri), "books-%05d.xml", d);
      books.push_back({uri, xqa::workload::GenerateBooksXml(config)});
    }
    store.BulkLoad("books", books, /*num_threads=*/0);

    std::vector<CollectionStore::BulkDocument> sales;
    sales.reserve(static_cast<size_t>(num_docs));
    for (int d = 0; d < num_docs; ++d) {
      xqa::workload::SalesConfig config;
      config.num_sales = records_per_doc;
      config.seed = 2000 + static_cast<uint64_t>(d);
      char uri[32];
      std::snprintf(uri, sizeof(uri), "sales-%05d.xml", d);
      sales.push_back({uri, xqa::workload::GenerateSalesXml(config)});
    }
    store.BulkLoad("sales", sales, /*num_threads=*/0);
  }
  auto corpus = store.Snapshot();
  Engine engine;
  const int total_records = num_docs * records_per_doc;

  // One-time table build cost, measured as the first shredded execution's
  // overhead against the snapshot catalog (cold), reported separately so the
  // steady-state scan numbers below are all warm-cache.
  double build_seconds = 0.0;
  {
    auto start = std::chrono::steady_clock::now();
    ExecutionOptions warm;
    engine.Compile("count(collection('books')//book)")
        .ExecuteToString(nullptr, nullptr, corpus.get(), warm);
    engine.Compile("count(collection('sales')//sale)")
        .ExecuteToString(nullptr, nullptr, corpus.get(), warm);
    build_seconds = SecondsSince(start);
  }

  std::printf("shredded-scan ablation: %d docs x %d records per corpus\n",
              num_docs, records_per_doc);
  std::printf("%-6s %8s %14s %14s %14s %10s %10s\n", "query", "threads",
              "scalar ms", "dom-batch ms", "shredded ms", "speedup",
              "identical");

  JsonValue queries = JsonValue::Array();
  int mismatches = 0;
  bool shred_beats_dom_batched = true;
  for (const char* query_text : {kQ1, kQ3}) {
    const char* label = query_text == kQ1 ? "Q1" : "Q3";
    PreparedQuery prepared = engine.Compile(query_text);

    ExecutionOptions baseline_exec;
    baseline_exec.num_threads = 1;
    baseline_exec.use_batched_execution = false;
    std::string baseline;
    double baseline_seconds =
        Measure(prepared, corpus.get(), baseline_exec, reps, &baseline);

    for (int threads : {1, 2, 4, 0}) {
      // scalar DOM / batched DOM / batched shredded, same thread count.
      double seconds[3] = {0.0, 0.0, 0.0};
      bool identical = true;
      for (int mode = 0; mode < 3; ++mode) {
        ExecutionOptions exec;
        exec.num_threads = threads;
        exec.use_batched_execution = mode != 0;
        exec.use_shredded_scan = mode == 2;
        std::string result;
        seconds[mode] = Measure(prepared, corpus.get(), exec, reps, &result);
        if (result != baseline) {
          identical = false;
          ++mismatches;
        }
      }
      double speedup = seconds[1] / seconds[2];  // shredded vs DOM-batched
      if (speedup < 1.0) shred_beats_dom_batched = false;
      std::printf("%-6s %8d %14.3f %14.3f %14.3f %9.2fx %10s\n", label,
                  threads, seconds[0] * 1e3, seconds[1] * 1e3,
                  seconds[2] * 1e3, speedup, identical ? "yes" : "NO");

      JsonValue entry = JsonValue::Object();
      entry.Set("query", JsonValue::Str(label));
      entry.Set("threads", JsonValue::Int(threads));
      entry.Set("scalar_dom_seconds", JsonValue::Number(seconds[0]));
      entry.Set("batched_dom_seconds", JsonValue::Number(seconds[1]));
      entry.Set("batched_shredded_seconds", JsonValue::Number(seconds[2]));
      entry.Set("baseline_seconds", JsonValue::Number(baseline_seconds));
      entry.Set("shredded_vs_dom_batched", JsonValue::Number(speedup));
      entry.Set("shredded_vs_scalar",
                JsonValue::Number(seconds[0] / seconds[2]));
      entry.Set("identical_to_serial_scalar", JsonValue::Bool(identical));
      queries.Append(std::move(entry));
    }

    // Counter sanity on the shredded configuration: the marked domain must
    // actually have run off the column table.
    ExecutionOptions profiled_exec;
    profiled_exec.use_batched_execution = true;
    profiled_exec.use_shredded_scan = true;
    ProfiledResult profiled =
        prepared.ExecuteProfiled(nullptr, nullptr, corpus.get(), profiled_exec);
    if (profiled.stats.shredded_scans < 1 ||
        profiled.stats.shredded_rows != total_records) {
      std::fprintf(stderr,
                   "FATAL: %s shredded configuration did not run off the "
                   "column table (scans=%lld rows=%lld, expected %d rows)\n",
                   label,
                   static_cast<long long>(profiled.stats.shredded_scans),
                   static_cast<long long>(profiled.stats.shredded_rows),
                   total_records);
      return 1;
    }
  }

  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FATAL: %d configurations diverged from the serial scalar "
                 "baseline\n",
                 mismatches);
    return 1;
  }

  JsonValue root = JsonValue::Object();
  root.Set("bench", JsonValue::Str("shred"));
  root.Set("experiment",
           JsonValue::Str("shredded column-table scan vs DOM over the "
                          "paper's Q1/Q3 on collections: engine x threads x "
                          "shredding with byte-identity against the serial "
                          "scalar baseline (docs/SHREDDING.md)"));
  JsonValue params = JsonValue::Object();
  params.Set("quick", JsonValue::Bool(quick));
  params.Set("smoke", JsonValue::Bool(smoke));
  params.Set("documents_per_corpus", JsonValue::Int(num_docs));
  params.Set("records_per_document", JsonValue::Int(records_per_doc));
  params.Set("records_per_corpus", JsonValue::Int(total_records));
  params.Set("repetitions", JsonValue::Int(reps));
  params.Set("hardware_threads",
             JsonValue::Int(std::thread::hardware_concurrency()));
  root.Set("parameters", std::move(params));
  root.Set("cold_first_run_seconds", JsonValue::Number(build_seconds));
  root.Set("queries", std::move(queries));
  root.Set("shredded_beats_dom_batched",
           JsonValue::Bool(shred_beats_dom_batched));
  root.Set("shred_metrics", JsonValue::Raw(corpus->ShredStatsJson()));
  xqa::bench::WriteBenchJson("shred", root);
  return 0;
}

// Sharded collection store and partitioned fn:collection scan
// (docs/SERVICE.md): three sections over a synthetic corpus of small
// documents. (1) Ingest: BulkLoad wall time serial vs. one lane per
// hardware thread — the parse+seal fan-out speedup. (2) Scan: a
// count and a grouping query over collection("corpus"), swept across
// thread counts {1, 2, 4, hw} under both FLWOR engines, every
// configuration byte-compared against the serial scalar baseline (the
// determinism acceptance check, run as part of the benchmark). (3) A
// service scrape: the same corpus behind QueryService, one
// provide_collections request, and the "collections" metrics section
// with its per-shard gauges embedded in the artifact.
//
// Usage: bench_collection [--quick] [--smoke]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench_json.h"
#include "service/collection_store.h"
#include "service/query_service.h"

namespace {

using xqa::DocumentRegistry;
using xqa::Engine;
using xqa::ExecutionOptions;
using xqa::PreparedQuery;
using xqa::ProfiledResult;
using xqa::bench::JsonValue;
using xqa::service::CollectionStore;
using xqa::service::CollectionSnapshot;
using xqa::service::QueryService;
using xqa::service::Request;
using xqa::service::Response;
using xqa::service::ServiceOptions;

// Both scan queries impose a total output order, so any byte difference
// across thread counts or engines is a determinism bug, not a formatting
// artifact.
// The count form routes through the partitioned scan (a FLWOR for clause
// over fn:collection) with a trivial body, so the scan itself dominates;
// the group form adds a grouping pipeline downstream of the scan.
constexpr const char* kCountQuery =
    "count(for $d in collection('corpus') return $d)";
constexpr const char* kGroupQuery = R"(
  for $d in collection('corpus')
  group by $d/doc/cat into $c
  nest $d/doc/v into $vs
  order by string($c)
  return <g>{$c}<n>{count($vs)}</n><s>{sum($vs)}</s></g>
)";

std::vector<CollectionStore::BulkDocument> MakeCorpus(int num_docs) {
  std::vector<CollectionStore::BulkDocument> batch;
  batch.reserve(static_cast<size_t>(num_docs));
  for (int i = 0; i < num_docs; ++i) {
    char uri[40];
    std::snprintf(uri, sizeof(uri), "doc-%07d.xml", i);
    batch.push_back({uri, "<doc><id>" + std::to_string(i) + "</id><cat>c" +
                              std::to_string(i % 8) + "</cat><v>" +
                              std::to_string(i % 97) + "</v></doc>"});
  }
  return batch;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-`reps` wall time of one scan configuration; the serialized bytes
/// of the last run come back through `result` for the identity check.
double MeasureScan(const PreparedQuery& query,
                   const CollectionSnapshot* corpus,
                   const ExecutionOptions& exec, int reps,
                   std::string* result) {
  *result = query.ExecuteToString(nullptr, nullptr, corpus, exec);  // warm-up
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    std::string got = query.ExecuteToString(nullptr, nullptr, corpus, exec);
    double seconds = SecondsSince(start);
    if (seconds < best) best = seconds;
    *result = std::move(got);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = quick = true;
  }

  const int num_docs = smoke ? 2000 : quick ? 20000 : 100000;
  const int reps = smoke ? 2 : quick ? 3 : 5;
  const int shards = 16;
  std::vector<CollectionStore::BulkDocument> batch = MakeCorpus(num_docs);

  // --- Section 1: bulk ingest, serial vs. parallel parse+seal ---------------
  double serial_ingest = 0.0;
  double parallel_ingest = 0.0;
  {
    CollectionStore store(CollectionStore::Options{shards});
    auto start = std::chrono::steady_clock::now();
    store.BulkLoad("corpus", batch, /*num_threads=*/1);
    serial_ingest = SecondsSince(start);
  }
  CollectionStore store(CollectionStore::Options{shards});
  {
    auto start = std::chrono::steady_clock::now();
    store.BulkLoad("corpus", batch, /*num_threads=*/0);  // one lane per core
    parallel_ingest = SecondsSince(start);
  }
  std::printf("bulk ingest of %d docs: serial %.3fs, parallel %.3fs (%.2fx)\n",
              num_docs, serial_ingest, parallel_ingest,
              serial_ingest / parallel_ingest);

  JsonValue ingest = JsonValue::Object();
  ingest.Set("documents", JsonValue::Int(num_docs));
  ingest.Set("serial_seconds", JsonValue::Number(serial_ingest));
  ingest.Set("parallel_seconds", JsonValue::Number(parallel_ingest));
  ingest.Set("speedup", JsonValue::Number(serial_ingest / parallel_ingest));
  ingest.Set("docs_per_second_parallel",
             JsonValue::Number(static_cast<double>(num_docs) /
                               parallel_ingest));

  // --- Section 2: partitioned scan sweep ------------------------------------
  auto corpus = store.Snapshot();
  Engine engine;
  const std::vector<int> thread_counts = {1, 2, 4, 0};  // 0 = hardware

  std::printf("partitioned scan over %d docs in %d shards\n", num_docs,
              shards);
  std::printf("%-8s %8s %12s %12s %10s\n", "query", "threads", "scalar ms",
              "batched ms", "identical");

  JsonValue scans = JsonValue::Array();
  int mismatches = 0;
  for (const char* query_text : {kCountQuery, kGroupQuery}) {
    PreparedQuery prepared = engine.Compile(query_text);
    const char* label = query_text == kCountQuery ? "count" : "group";

    // Baseline: serial scalar — the identity reference for every config.
    ExecutionOptions baseline_exec;
    baseline_exec.num_threads = 1;
    baseline_exec.use_batched_execution = false;
    std::string baseline;
    double baseline_seconds =
        MeasureScan(prepared, corpus.get(), baseline_exec, reps, &baseline);

    for (int threads : thread_counts) {
      double seconds[2] = {0.0, 0.0};
      bool identical = true;
      for (bool batched : {false, true}) {
        ExecutionOptions exec;
        exec.num_threads = threads;
        exec.use_batched_execution = batched;
        std::string result;
        seconds[batched ? 1 : 0] =
            MeasureScan(prepared, corpus.get(), exec, reps, &result);
        if (result != baseline) {
          identical = false;
          ++mismatches;
        }
      }
      std::printf("%-8s %8d %12.3f %12.3f %10s\n", label, threads,
                  seconds[0] * 1e3, seconds[1] * 1e3,
                  identical ? "yes" : "NO");

      JsonValue entry = JsonValue::Object();
      entry.Set("query", JsonValue::Str(label));
      entry.Set("threads", JsonValue::Int(threads));
      entry.Set("scalar_seconds", JsonValue::Number(seconds[0]));
      entry.Set("batched_seconds", JsonValue::Number(seconds[1]));
      entry.Set("baseline_seconds", JsonValue::Number(baseline_seconds));
      entry.Set("speedup_scalar",
                JsonValue::Number(baseline_seconds / seconds[0]));
      entry.Set("speedup_batched",
                JsonValue::Number(baseline_seconds / seconds[1]));
      entry.Set("identical_to_serial_scalar", JsonValue::Bool(identical));
      scans.Append(std::move(entry));
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FATAL: %d scan configurations diverged from the serial "
                 "scalar baseline\n",
                 mismatches);
    return 1;
  }

  // Scan counters from one profiled run: partitions must equal the shard
  // count and docs the corpus size, independent of lanes.
  ExecutionOptions profiled_exec;
  profiled_exec.num_threads = 4;
  ProfiledResult profiled = engine.Compile(kGroupQuery).ExecuteProfiled(
      nullptr, nullptr, corpus.get(), profiled_exec);
  JsonValue counters = JsonValue::Object();
  counters.Set("collection_scans",
               JsonValue::Int(profiled.stats.collection_scans));
  counters.Set("collection_partitions",
               JsonValue::Int(profiled.stats.collection_partitions));
  counters.Set("collection_docs",
               JsonValue::Int(profiled.stats.collection_docs));

  // --- Section 3: per-shard gauges through the service scrape ---------------
  ServiceOptions service_options;
  service_options.worker_threads = 2;
  service_options.collection_shards = shards;
  QueryService service(service_options);
  service.collections().BulkLoad("corpus", batch);
  Request request;
  request.query = kCountQuery;
  request.provide_collections = true;
  Response response = service.Execute(request);
  if (!response.status.ok() ||
      response.result != std::to_string(num_docs)) {
    std::fprintf(stderr, "FATAL: service scan failed: %s\n",
                 response.status.ToString().c_str());
    return 1;
  }

  JsonValue root = JsonValue::Object();
  root.Set("bench", JsonValue::Str("collection"));
  root.Set("experiment",
           JsonValue::Str("sharded corpus ingest and partitioned "
                          "fn:collection scan: thread sweep x engine with "
                          "byte-identity against the serial scalar baseline "
                          "(docs/SERVICE.md)"));
  JsonValue params = JsonValue::Object();
  params.Set("quick", JsonValue::Bool(quick));
  params.Set("smoke", JsonValue::Bool(smoke));
  params.Set("documents", JsonValue::Int(num_docs));
  params.Set("shards", JsonValue::Int(shards));
  params.Set("repetitions", JsonValue::Int(reps));
  params.Set("hardware_threads",
             JsonValue::Int(std::thread::hardware_concurrency()));
  root.Set("parameters", std::move(params));
  root.Set("ingest", std::move(ingest));
  root.Set("scans", std::move(scans));
  root.Set("scan_counters", std::move(counters));
  root.Set("collections_metrics",
           JsonValue::Raw(service.collections().StatsJson()));
  xqa::bench::WriteBenchJson("collection", root);
  return 0;
}

// A2 — grouping-equality ablation (Section 3.3): default deep-equal keys use
// hash aggregation (O(N)); a custom `using` function forces a linear group
// table with per-comparison function calls (O(N x G)), and a user-defined
// XQuery set-equal costs more per call than the built-in.
//
// BENCH_equality.json records the QueryStats that separate the regimes: the
// hash variants report hash_probes, the `using` variants report
// linear_scan_compares (and zero probes).
//
// Usage: bench_equality [--quick] [--smoke]   (--smoke: CI-sized quick run)

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_json.h"
#include "workload/books.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;
using xqa::bench::JsonValue;
using xqa::bench::MeasureEntry;
using xqa::bench::MeasureSeconds;

struct NamedQuery {
  const char* name;
  const char* text;
};

constexpr NamedQuery kQueries[] = {
    // Q2a with the default deep-equal comparison: hash grouping.
    {"authors_deep_equal_hash",
     "for $b in //book "
     "group by $b/author into $a "
     "nest $b/price into $prices "
     "return <g>{count($prices)}</g>"},
    {"authors_builtin_set_equal",
     "for $b in //book "
     "group by $b/author into $a using xqa:set-equal "
     "nest $b/price into $prices "
     "return <g>{count($prices)}</g>"},
    // The paper's user-defined local:set-equal ("this query would execute
    // more efficiently if the set-equal function were built-in").
    // Parenthesized to pin the intended conjunction of the two coverage
    // tests — unparenthesized, the second `every` binds inside the first
    // `satisfies`, which changes the result for empty author sequences.
    {"authors_user_set_equal",
     "declare function local:set-equal "
     "    ($arg1 as item()*, $arg2 as item()*) as xs:boolean "
     "{ (every $i1 in $arg1 satisfies "
     "     some $i2 in $arg2 satisfies $i1 eq $i2) "
     "  and (every $i2 in $arg2 satisfies "
     "     some $i1 in $arg1 satisfies $i1 eq $i2) "
     "}; "
     "for $b in //book "
     "group by $b/author into $a using local:set-equal "
     "nest $b/price into $prices "
     "return <g>{count($prices)}</g>"},
    // Baseline: scalar single-element keys, hash path.
    {"publisher_scalar_hash",
     "for $b in //book "
     "group by $b/publisher into $p "
     "nest $b/price into $prices "
     "return <g>{count($prices)}</g>"},
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--smoke") == 0) quick = true;  // CI alias
  }
  int repetitions = quick ? 1 : 3;

  xqa::workload::BooksConfig config;
  config.num_books = quick ? 500 : 2000;
  config.max_authors = 3;
  DocumentPtr doc = xqa::workload::GenerateBooksDocument(config);
  Engine engine;

  std::printf("A2: grouping-equality ablation (%d books)\n", config.num_books);
  std::printf("%-28s %12s\n", "variant", "best ms");
  JsonValue results = JsonValue::Array();
  for (const NamedQuery& q : kQueries) {
    PreparedQuery query = engine.Compile(q.text);
    double seconds = MeasureSeconds(query, doc, repetitions);
    std::printf("%-28s %12.2f\n", q.name, seconds * 1e3);
    JsonValue entry = MeasureEntry(query, doc, seconds);
    entry.Set("name", JsonValue::Str(q.name));
    results.Append(std::move(entry));
  }

  JsonValue root = JsonValue::Object();
  root.Set("bench", JsonValue::Str("equality"));
  root.Set("experiment",
           JsonValue::Str("A2: deep-equal hash vs `using` linear group "
                          "table (Section 3.3)"));
  JsonValue params = JsonValue::Object();
  params.Set("quick", JsonValue::Bool(quick));
  params.Set("books", JsonValue::Int(config.num_books));
  params.Set("max_authors", JsonValue::Int(config.max_authors));
  params.Set("repetitions", JsonValue::Int(repetitions));
  root.Set("parameters", std::move(params));
  root.Set("results", std::move(results));
  xqa::bench::WriteBenchJson("equality", root);
  return 0;
}

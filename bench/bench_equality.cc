// A2 — grouping-equality ablation (Section 3.3): default deep-equal keys use
// hash aggregation (O(N)); a custom `using` function forces a linear group
// table with per-comparison function calls (O(N x G)), and a user-defined
// XQuery set-equal costs more per call than the built-in.

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "workload/books.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;

const DocumentPtr& SharedBooks() {
  static const DocumentPtr& doc = *new DocumentPtr([] {
    xqa::workload::BooksConfig config;
    config.num_books = 2000;
    config.max_authors = 3;
    return xqa::workload::GenerateBooksDocument(config);
  }());
  return doc;
}

void RunQuery(benchmark::State& state, const std::string& query_text) {
  Engine engine;
  PreparedQuery query = engine.Compile(query_text);
  const DocumentPtr& doc = SharedBooks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}

void BM_GroupAuthorsDeepEqualHash(benchmark::State& state) {
  // Q2a with the default deep-equal comparison: hash grouping.
  RunQuery(state,
           "for $b in //book "
           "group by $b/author into $a "
           "nest $b/price into $prices "
           "return <g>{count($prices)}</g>");
}
BENCHMARK(BM_GroupAuthorsDeepEqualHash);

void BM_GroupAuthorsBuiltinSetEqual(benchmark::State& state) {
  RunQuery(state,
           "for $b in //book "
           "group by $b/author into $a using xqa:set-equal "
           "nest $b/price into $prices "
           "return <g>{count($prices)}</g>");
}
BENCHMARK(BM_GroupAuthorsBuiltinSetEqual);

void BM_GroupAuthorsUserSetEqual(benchmark::State& state) {
  // The paper's user-defined local:set-equal ("this query would execute more
  // efficiently if the set-equal function were built-in"). Parenthesized to
  // pin the intended conjunction of the two coverage tests — unparenthesized,
  // the second `every` binds inside the first `satisfies`, which changes the
  // result for empty author sequences.
  RunQuery(state,
           "declare function local:set-equal "
           "    ($arg1 as item()*, $arg2 as item()*) as xs:boolean "
           "{ (every $i1 in $arg1 satisfies "
           "     some $i2 in $arg2 satisfies $i1 eq $i2) "
           "  and (every $i2 in $arg2 satisfies "
           "     some $i1 in $arg1 satisfies $i1 eq $i2) "
           "}; "
           "for $b in //book "
           "group by $b/author into $a using local:set-equal "
           "nest $b/price into $prices "
           "return <g>{count($prices)}</g>");
}
BENCHMARK(BM_GroupAuthorsUserSetEqual);

void BM_GroupPublisherScalarHash(benchmark::State& state) {
  // Baseline: scalar single-element keys, hash path.
  RunQuery(state,
           "for $b in //book "
           "group by $b/publisher into $p "
           "nest $b/price into $prices "
           "return <g>{count($prices)}</g>");
}
BENCHMARK(BM_GroupPublisherScalarHash);

}  // namespace

BENCHMARK_MAIN();

// Service layer — closed-loop multi-client benchmark over QueryService
// (docs/SERVICE.md): N client threads each issue a fixed number of
// synchronous requests against one shared service while the document store
// serves a sealed orders document. The sweep crosses client count with the
// plan-cache ablation (enable_plan_cache on/off); with the cache on, every
// request after the first per (query, options) key reuses the compiled plan,
// so the on/off delta isolates the compilation cost the cache amortizes.
// A deadline section submits requests with a nanosecond-scale deadline and
// records that every one resolves with the dedicated timeout code and an
// empty result (the no-partial-results guarantee). An overload section
// saturates a small service (tiny queue, per-query budget, memory pressure
// gate) and records shed/retryable rates and that every failure classifies
// correctly (docs/ROBUSTNESS.md).
//
// Usage: bench_service [--quick] [--smoke]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "service/query_service.h"
#include "workload/orders.h"

namespace {

using xqa::ErrorCode;
using xqa::bench::JsonValue;
using xqa::service::PlanCache;
using xqa::service::QueryService;
using xqa::service::Request;
using xqa::service::Response;
using xqa::service::ServiceOptions;

// The request mix: three grouping queries of different cost, all with a
// total order on the output so any byte mismatch across clients is a bug.
constexpr const char* kQueries[] = {
    R"(for $l in //order/lineitem
       group by $l/shipmode into $m
       nest $l/quantity into $qs
       order by string($m)
       return <r>{$m}<n>{count($qs)}</n><s>{sum($qs)}</s></r>)",
    R"(for $l in //lineitem
       group by $l/shipmode into $m, $l/returnflag into $f
       nest $l/extendedprice into $prices
       order by string($m), string($f)
       return <r>{$m, $f}<n>{count($prices)}</n></r>)",
    R"(for $o in //order
       group by $o/customer/address/city into $c
       nest $o into $orders
       order by string($c)
       return <city>{$c}<orders>{count($orders)}</orders></city>)",
};
constexpr int kNumQueries = 3;

struct RunResult {
  double wall_seconds = 0.0;
  double throughput_qps = 0.0;
  int errors = 0;
  PlanCache::Counters cache;
  std::string metrics_json;
  double mean_latency = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Compilations performed during a run: with the cache on, only misses
/// compile (the query-mix size, once warm); with it off, every request
/// recompiles — the cost the ablation isolates.
int64_t CompileCount(const RunResult& run, int total_requests,
                     bool cache_enabled) {
  return cache_enabled ? static_cast<int64_t>(run.cache.misses)
                       : total_requests;
}

/// One closed-loop run: `clients` threads, `requests_per_client` requests
/// each, round-robin over the query mix.
RunResult RunClosedLoop(const xqa::DocumentPtr& orders, int clients,
                        int requests_per_client, bool cache_enabled) {
  ServiceOptions options;
  options.worker_threads = clients;
  options.max_pending_requests = static_cast<size_t>(clients) * 4 + 16;
  options.enable_plan_cache = cache_enabled;
  QueryService service(options);
  service.documents().Put("orders", orders);

  std::atomic<int> errors{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < requests_per_client; ++i) {
        Request request;
        request.query = kQueries[(c + i) % kNumQueries];
        request.document = "orders";
        request.collect_stats = false;
        Response response = service.Execute(request);
        if (!response.status.ok() || response.result.empty()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  auto stop = std::chrono::steady_clock::now();

  RunResult run;
  run.wall_seconds = std::chrono::duration<double>(stop - start).count();
  int total = clients * requests_per_client;
  run.throughput_qps = static_cast<double>(total) / run.wall_seconds;
  run.errors = errors.load();
  run.cache = service.plan_cache_counters();
  run.mean_latency = service.metrics().latency.mean_seconds();
  run.p50 = service.metrics().latency.PercentileSeconds(0.50);
  run.p95 = service.metrics().latency.PercentileSeconds(0.95);
  run.metrics_json = service.MetricsJson();
  return run;
}

JsonValue RunEntry(const RunResult& run, int clients, int requests_per_client,
                   bool cache_enabled) {
  JsonValue entry = JsonValue::Object();
  entry.Set("clients", JsonValue::Int(clients));
  entry.Set("requests_per_client", JsonValue::Int(requests_per_client));
  entry.Set("plan_cache", JsonValue::Bool(cache_enabled));
  entry.Set("wall_seconds", JsonValue::Number(run.wall_seconds));
  entry.Set("throughput_qps", JsonValue::Number(run.throughput_qps));
  entry.Set("mean_latency_seconds", JsonValue::Number(run.mean_latency));
  entry.Set("p50_latency_seconds", JsonValue::Number(run.p50));
  entry.Set("p95_latency_seconds", JsonValue::Number(run.p95));
  entry.Set("errors", JsonValue::Int(run.errors));
  entry.Set("cache_hits", JsonValue::Int(static_cast<int64_t>(run.cache.hits)));
  entry.Set("cache_misses",
            JsonValue::Int(static_cast<int64_t>(run.cache.misses)));
  entry.Set("compiles",
            JsonValue::Int(CompileCount(run, clients * requests_per_client,
                                        cache_enabled)));
  entry.Set("service_metrics", JsonValue::Raw(run.metrics_json));
  return entry;
}

/// Deadline section: every request carries an unmeetable deadline and must
/// resolve with XQSV0001 and an empty result.
JsonValue RunDeadlineSection(const xqa::DocumentPtr& orders, int requests) {
  ServiceOptions options;
  options.worker_threads = 2;
  QueryService service(options);
  service.documents().Put("orders", orders);

  int timed_out = 0;
  int partial_results = 0;
  for (int i = 0; i < requests; ++i) {
    Request request;
    request.query = kQueries[i % kNumQueries];
    request.document = "orders";
    request.deadline_seconds = 1e-7;
    Response response = service.Execute(request);
    if (response.status.code() == ErrorCode::kXQSV0001) ++timed_out;
    if (!response.result.empty()) ++partial_results;
  }

  JsonValue entry = JsonValue::Object();
  entry.Set("requests", JsonValue::Int(requests));
  entry.Set("deadline_seconds", JsonValue::Number(1e-7));
  entry.Set("timed_out", JsonValue::Int(timed_out));
  entry.Set("partial_results", JsonValue::Int(partial_results));
  return entry;
}

/// Overload section (docs/ROBUSTNESS.md): more clients than workers against
/// a tiny queue, a small per-query budget, and a total-memory pressure gate,
/// so every degradation path fires — queue-full and pressure sheds at
/// Submit, per-query XQSV0004 during execution — while some requests still
/// complete. Records how the failures classify: every shed must be
/// retryable, every budget failure must not be, and nothing may carry a
/// partial result.
JsonValue RunOverloadSection(const xqa::DocumentPtr& orders, int clients,
                             int requests_per_client) {
  ServiceOptions options;
  options.worker_threads = 2;
  options.max_concurrent_queries = 2;
  options.max_pending_requests = 4;  // far below the offered load
  options.per_query_memory_bytes = 1 << 20;
  options.total_memory_bytes = 4 << 20;  // pressure gate bites under load
  QueryService service(options);
  service.documents().Put("orders", orders);

  std::atomic<int> completed{0};
  std::atomic<int> shed{0};
  std::atomic<int> budget_failed{0};
  std::atomic<int> retryable{0};
  std::atomic<int> misclassified{0};
  std::atomic<int> partial_results{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < requests_per_client; ++i) {
        Request request;
        request.query = kQueries[(c + i) % kNumQueries];
        request.document = "orders";
        request.collect_stats = false;
        Response response = service.Execute(request);
        if (response.status.ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!response.result.empty()) {
          partial_results.fetch_add(1, std::memory_order_relaxed);
        }
        if (response.retryable) retryable.fetch_add(1, std::memory_order_relaxed);
        switch (response.status.code()) {
          case ErrorCode::kXQSV0003:
            shed.fetch_add(1, std::memory_order_relaxed);
            // Queue-full and pressure sheds are transient by definition.
            if (!response.retryable) {
              misclassified.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          case ErrorCode::kXQSV0004:
            budget_failed.fetch_add(1, std::memory_order_relaxed);
            // A budget failure repeats on retry; it must not be retryable.
            if (response.retryable) {
              misclassified.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          default:
            misclassified.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  int total = clients * requests_per_client;
  JsonValue entry = JsonValue::Object();
  entry.Set("clients", JsonValue::Int(clients));
  entry.Set("requests", JsonValue::Int(total));
  entry.Set("wall_seconds", JsonValue::Number(wall));
  entry.Set("completed", JsonValue::Int(completed.load()));
  entry.Set("shed", JsonValue::Int(shed.load()));
  entry.Set("budget_exceeded", JsonValue::Int(budget_failed.load()));
  entry.Set("shed_rate",
            JsonValue::Number(static_cast<double>(shed.load()) / total));
  entry.Set("retryable_rate",
            JsonValue::Number(static_cast<double>(retryable.load()) / total));
  entry.Set("misclassified", JsonValue::Int(misclassified.load()));
  entry.Set("partial_results", JsonValue::Int(partial_results.load()));
  entry.Set("idle_memory_used_bytes",
            JsonValue::Int(service.root_memory().used()));
  entry.Set("service_metrics", JsonValue::Raw(service.MetricsJson()));
  return entry;
}

/// Cold-start section (docs/STORAGE.md): the same corpus brought up two
/// ways — bulk re-parse from XML into a fresh in-memory service versus
/// recovery from a checkpoint generation (binary doc codec, checksummed
/// segments). The ratio is what a restart actually buys: recovery decodes
/// preorder records instead of re-running the XML parser.
JsonValue RunColdStartSection(int docs) {
  std::vector<xqa::service::CollectionStore::BulkDocument> batch;
  batch.reserve(static_cast<size_t>(docs));
  for (int i = 0; i < docs; ++i) {
    std::string xml = "<book id=\"" + std::to_string(i) + "\"><t>title " +
                      std::to_string(i) + "</t>";
    for (int j = 0; j < 8; ++j) {
      xml += "<f n=\"" + std::to_string(j) + "\">value " +
             std::to_string(i * 8 + j) + "</f>";
    }
    xml += "<price>" + std::to_string(10 + i % 90) + ".99</price></book>";
    batch.push_back({"b" + std::to_string(i) + ".xml", std::move(xml)});
  }

  ServiceOptions memory_options;
  memory_options.worker_threads = 2;
  double parse_seconds = 0.0;
  {
    QueryService service(memory_options);
    auto start = std::chrono::steady_clock::now();
    service.collections().BulkLoad("books", batch, 0);
    parse_seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  }

  std::string dir = (std::filesystem::temp_directory_path() /
                     "xqa_bench_cold_start")
                        .string();
  std::filesystem::remove_all(dir);
  ServiceOptions durable_options = memory_options;
  durable_options.data_dir = dir;
  durable_options.storage_fsync = xqa::FsyncPolicy::kNever;
  {
    QueryService service(durable_options);
    service.collections().BulkLoad("books", batch, 0);
    service.CheckpointStorage();
  }

  auto start = std::chrono::steady_clock::now();
  QueryService recovered(durable_options);
  double recover_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  size_t recovered_docs = recovered.collections().size();
  std::filesystem::remove_all(dir);

  std::printf(
      "cold start: %d docs  re-parse %.3f ms  recover %.3f ms  (%.2fx)\n",
      docs, parse_seconds * 1e3, recover_seconds * 1e3,
      recover_seconds > 0 ? parse_seconds / recover_seconds : 0.0);

  JsonValue entry = JsonValue::Object();
  entry.Set("documents", JsonValue::Int(docs));
  entry.Set("reparse_seconds", JsonValue::Number(parse_seconds));
  entry.Set("recover_seconds", JsonValue::Number(recover_seconds));
  entry.Set("speedup",
            JsonValue::Number(recover_seconds > 0
                                  ? parse_seconds / recover_seconds
                                  : 0.0));
  entry.Set("recovered_documents",
            JsonValue::Int(static_cast<int64_t>(recovered_docs)));
  entry.Set("recovery_consistent",
            JsonValue::Bool(recovered_docs == static_cast<size_t>(docs)));
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = quick = true;
  }

  xqa::workload::OrderConfig config;
  config.num_orders = smoke ? 200 : quick ? 1000 : 4000;
  int requests_per_client = smoke ? 8 : quick ? 25 : 100;
  std::vector<int> client_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  xqa::DocumentPtr orders = xqa::workload::GenerateOrdersDocument(config);

  std::printf("query service: closed-loop clients, plan-cache ablation\n");
  std::printf("%8s %8s %12s %14s %14s %8s %8s\n", "clients", "cache",
              "qps", "p50 ms", "p95 ms", "hits", "misses");

  JsonValue results = JsonValue::Array();
  for (int clients : client_counts) {
    for (bool cache_enabled : {true, false}) {
      RunResult run = RunClosedLoop(orders, clients, requests_per_client,
                                    cache_enabled);
      std::printf("%8d %8s %12.1f %14.3f %14.3f %8lld %8lld\n", clients,
                  cache_enabled ? "on" : "off", run.throughput_qps,
                  run.p50 * 1e3, run.p95 * 1e3,
                  static_cast<long long>(run.cache.hits),
                  static_cast<long long>(run.cache.misses));
      if (run.errors > 0) {
        std::fprintf(stderr, "FATAL: %d requests failed\n", run.errors);
        return 1;
      }
      results.Append(
          RunEntry(run, clients, requests_per_client, cache_enabled));
    }
  }

  JsonValue deadline = RunDeadlineSection(orders, smoke ? 4 : 16);
  JsonValue overload = RunOverloadSection(orders, smoke ? 6 : 8,
                                          requests_per_client);
  JsonValue cold_start =
      RunColdStartSection(smoke ? 200 : quick ? 1000 : 5000);

  JsonValue root = JsonValue::Object();
  root.Set("bench", JsonValue::Str("service"));
  root.Set("experiment",
           JsonValue::Str("closed-loop multi-client serving with plan-cache "
                          "ablation and deadline enforcement "
                          "(docs/SERVICE.md)"));
  JsonValue params = JsonValue::Object();
  params.Set("quick", JsonValue::Bool(quick));
  params.Set("smoke", JsonValue::Bool(smoke));
  params.Set("num_orders", JsonValue::Int(config.num_orders));
  params.Set("requests_per_client", JsonValue::Int(requests_per_client));
  params.Set("query_mix", JsonValue::Int(kNumQueries));
  root.Set("parameters", std::move(params));
  root.Set("results", std::move(results));
  root.Set("deadline", std::move(deadline));
  root.Set("overload", std::move(overload));
  root.Set("cold_start", std::move(cold_start));
  xqa::bench::WriteBenchJson("service", root);
  return 0;
}

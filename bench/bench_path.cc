// E-path — structural-index ablation for descendant path steps: the same
// "//name" queries with the element-name index on (default) and off
// (ExecutionOptions::use_structural_index = false), over a wide sectioned
// document (selective and non-selective name tests) and a pathologically
// deep element chain. Results are asserted byte-identical across the
// ablation; the JSON records wall times plus the nodes-visited counters
// (index_scan_nodes vs fallback_walk_nodes) that quantify the saving.
//
// Usage: bench_path [--quick] [--smoke]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_json.h"
#include "xml/node.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::ExecutionOptions;
using xqa::MakeDocument;
using xqa::Node;
using xqa::PreparedQuery;
using xqa::ProfiledResult;
using xqa::bench::JsonValue;
using xqa::bench::MeasureEntry;
using xqa::bench::MeasureSeconds;

/// A wide document: `sections` section elements of `items_per_section` item
/// children each, with one rare needle element every `needle_stride`
/// sections. "//item" is non-selective (most elements match); "//needle" is
/// highly selective.
DocumentPtr BuildSectionedDocument(int sections, int items_per_section,
                                   int needle_stride) {
  std::string xml;
  xml.reserve(static_cast<size_t>(sections) *
              (static_cast<size_t>(items_per_section) * 18 + 32));
  xml += "<doc>";
  for (int s = 0; s < sections; ++s) {
    xml += "<section>";
    for (int i = 0; i < items_per_section; ++i) {
      xml += "<item>v";
      xml += std::to_string(i);
      xml += "</item>";
    }
    if (s % needle_stride == 0) xml += "<needle>hit</needle>";
    xml += "</section>";
  }
  xml += "</doc>";
  return Engine::ParseDocument(xml);
}

/// A single chain of `depth` nested elements with one leaf at the bottom,
/// built through the Document API (the parser caps nesting depth; the
/// evaluator must not, which is what this document exercises).
DocumentPtr BuildDeepChainDocument(int depth) {
  DocumentPtr doc = MakeDocument();
  Node* current = doc->CreateElement("d");
  doc->AppendChild(doc->root(), current);
  for (int i = 1; i < depth; ++i) {
    Node* next = doc->CreateElement("d");
    doc->AppendChild(current, next);
    current = next;
  }
  Node* leaf = doc->CreateElement("leaf");
  doc->AppendChild(current, leaf);
  doc->AppendChild(leaf, doc->CreateText("bottom"));
  doc->SealOrder();
  return doc;
}

/// Runs `query_text` against `doc` indexed and unindexed, verifies the
/// serialized results are byte-identical, and returns the JSON entry for
/// this case. Aborts the benchmark on any ablation mismatch.
JsonValue MeasureCase(const Engine& engine, const char* name,
                      const std::string& query_text, const DocumentPtr& doc,
                      int repetitions) {
  PreparedQuery indexed = engine.Compile(query_text);
  PreparedQuery fallback = engine.Compile(query_text);
  ExecutionOptions no_index;
  no_index.use_structural_index = false;
  fallback.set_execution_options(no_index);

  const std::string indexed_result = indexed.ExecuteToString(doc);
  const std::string fallback_result = fallback.ExecuteToString(doc);
  if (indexed_result != fallback_result) {
    std::fprintf(stderr,
                 "FATAL: %s: indexed and fallback results differ "
                 "(%zu vs %zu bytes)\n",
                 name, indexed_result.size(), fallback_result.size());
    std::exit(1);
  }

  double t_indexed = MeasureSeconds(indexed, doc, repetitions);
  double t_fallback = MeasureSeconds(fallback, doc, repetitions);
  ProfiledResult p_indexed = indexed.ExecuteProfiled(doc);
  ProfiledResult p_fallback = fallback.ExecuteProfiled(doc);
  // Indexed runs may still walk (wildcards, tiny docs); count both sides.
  int64_t visited_indexed =
      p_indexed.stats.index_scan_nodes + p_indexed.stats.fallback_walk_nodes;
  int64_t visited_fallback = p_fallback.stats.index_scan_nodes +
                             p_fallback.stats.fallback_walk_nodes;
  double nodes_ratio =
      visited_indexed > 0
          ? static_cast<double>(visited_fallback) /
                static_cast<double>(visited_indexed)
          : 0.0;
  std::printf("%-28s %10zu %12.3f %12.3f %8.2fx %10lld %12lld\n", name,
              p_indexed.sequence.size(), t_indexed * 1e3, t_fallback * 1e3,
              t_fallback / t_indexed,
              static_cast<long long>(visited_indexed),
              static_cast<long long>(visited_fallback));

  JsonValue entry = JsonValue::Object();
  entry.Set("name", JsonValue::Str(name));
  entry.Set("query", JsonValue::Str(query_text));
  entry.Set("indexed", MeasureEntry(indexed, doc, t_indexed));
  entry.Set("fallback", MeasureEntry(fallback, doc, t_fallback));
  entry.Set("speedup", JsonValue::Number(t_fallback / t_indexed));
  entry.Set("nodes_visited_indexed", JsonValue::Int(visited_indexed));
  entry.Set("nodes_visited_fallback", JsonValue::Int(visited_fallback));
  entry.Set("nodes_visited_ratio", JsonValue::Number(nodes_ratio));
  entry.Set("ablation_identical", JsonValue::Bool(true));
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = quick = true;
  }

  int sections = smoke ? 100 : quick ? 500 : 2000;
  int items_per_section = smoke ? 10 : 50;
  int needle_stride = smoke ? 10 : 100;
  int deep_depth = smoke ? 2000 : quick ? 20000 : 100000;
  int repetitions = smoke ? 2 : quick ? 3 : 7;

  Engine engine;
  DocumentPtr wide =
      BuildSectionedDocument(sections, items_per_section, needle_stride);
  DocumentPtr deep = BuildDeepChainDocument(deep_depth);

  std::printf("path-step ablation: element-name index vs subtree walk\n");
  std::printf("%-28s %10s %12s %12s %8s %10s %12s\n", "case", "results",
              "t(idx) ms", "t(walk) ms", "speedup", "n(idx)", "n(walk)");

  JsonValue results = JsonValue::Array();
  results.Append(MeasureCase(engine, "selective-shallow", "//needle", wide,
                             repetitions));
  results.Append(MeasureCase(engine, "nonselective-shallow", "//item", wide,
                             repetitions));
  results.Append(
      MeasureCase(engine, "selective-deep", "//leaf", deep, repetitions));
  results.Append(MeasureCase(engine, "child-after-descendant",
                             "//section/item", wide, repetitions));

  JsonValue root = JsonValue::Object();
  root.Set("bench", JsonValue::Str("path"));
  root.Set("experiment",
           JsonValue::Str("structural-index ablation for descendant steps "
                          "(docs/INDEXES.md)"));
  JsonValue params = JsonValue::Object();
  params.Set("quick", JsonValue::Bool(quick));
  params.Set("smoke", JsonValue::Bool(smoke));
  params.Set("sections", JsonValue::Int(sections));
  params.Set("items_per_section", JsonValue::Int(items_per_section));
  params.Set("needle_stride", JsonValue::Int(needle_stride));
  params.Set("deep_depth", JsonValue::Int(deep_depth));
  root.Set("parameters", std::move(params));
  root.Set("results", std::move(results));
  xqa::bench::WriteBenchJson("path", root);
  return 0;
}

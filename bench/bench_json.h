// Shared JSON emission for the bench harnesses: each binary builds one
// JsonValue tree (parameters, wall times, QueryStats counters) and writes it
// to BENCH_<name>.json in the working directory. The schema is documented in
// docs/OBSERVABILITY.md.
#ifndef XQA_BENCH_BENCH_JSON_H_
#define XQA_BENCH_BENCH_JSON_H_

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"

namespace xqa::bench {

/// A minimal ordered JSON document builder — enough for the bench artifacts,
/// not a general library. Raw() splices pre-rendered JSON (QueryStats::ToJson)
/// without re-parsing.
class JsonValue {
 public:
  static JsonValue Object() { return JsonValue(Kind::kObject); }
  static JsonValue Array() { return JsonValue(Kind::kArray); }
  static JsonValue Str(const std::string& value) {
    JsonValue v(Kind::kScalar);
    // Built by append (a char* + string&& chain trips GCC 12's -Wrestrict
    // false positive; cf. Decimal::ToString).
    v.scalar_.reserve(value.size() + 2);
    v.scalar_.push_back('"');
    v.scalar_ += Escape(value);
    v.scalar_.push_back('"');
    return v;
  }
  static JsonValue Int(int64_t value) {
    JsonValue v(Kind::kScalar);
    v.scalar_ = std::to_string(value);
    return v;
  }
  static JsonValue Number(double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    JsonValue v(Kind::kScalar);
    v.scalar_ = buf;
    return v;
  }
  static JsonValue Bool(bool value) {
    JsonValue v(Kind::kScalar);
    v.scalar_ = value ? "true" : "false";
    return v;
  }
  /// Splices `json` verbatim; the caller guarantees it is valid JSON.
  static JsonValue Raw(std::string json) {
    JsonValue v(Kind::kScalar);
    v.scalar_ = std::move(json);
    return v;
  }

  JsonValue& Set(const std::string& key, JsonValue value) {
    members_.emplace_back(key, std::move(value));
    return *this;
  }
  JsonValue& Append(JsonValue value) {
    members_.emplace_back("", std::move(value));
    return *this;
  }

  std::string Dump(int indent = 0) const {
    std::string out;
    DumpTo(&out, indent);
    return out;
  }

 private:
  enum class Kind { kScalar, kObject, kArray };
  explicit JsonValue(Kind kind) : kind_(kind) {}

  static std::string Escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  void DumpTo(std::string* out, int indent) const {
    if (kind_ == Kind::kScalar) {
      *out += scalar_;
      return;
    }
    std::string pad(static_cast<size_t>(indent) + 2, ' ');
    std::string close_pad(static_cast<size_t>(indent), ' ');
    *out += kind_ == Kind::kObject ? '{' : '[';
    for (size_t i = 0; i < members_.size(); ++i) {
      *out += i == 0 ? "\n" : ",\n";
      *out += pad;
      if (kind_ == Kind::kObject) {
        out->push_back('"');
        *out += Escape(members_[i].first);
        *out += "\": ";
      }
      members_[i].second.DumpTo(out, indent + 2);
    }
    if (!members_.empty()) {
      *out += '\n';
      *out += close_pad;
    }
    *out += kind_ == Kind::kObject ? '}' : ']';
  }

  Kind kind_;
  std::string scalar_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Best-of-`repetitions` wall time of the unprofiled Execute path, after one
/// warm-up run.
inline double MeasureSeconds(const PreparedQuery& query, const DocumentPtr& doc,
                             int repetitions) {
  (void)query.Execute(doc);
  double best = 1e300;
  for (int i = 0; i < repetitions; ++i) {
    auto start = std::chrono::steady_clock::now();
    (void)query.Execute(doc);
    auto stop = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(stop - start).count();
    if (seconds < best) best = seconds;
  }
  return best;
}

/// Per-call-options variant, for ablation sections that flip ExecutionOptions
/// (engine choice, thread count) on one compiled query.
inline double MeasureSeconds(const PreparedQuery& query, const DocumentPtr& doc,
                             const ExecutionOptions& options,
                             int repetitions) {
  (void)query.Execute(doc, options);
  double best = 1e300;
  for (int i = 0; i < repetitions; ++i) {
    auto start = std::chrono::steady_clock::now();
    (void)query.Execute(doc, options);
    auto stop = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(stop - start).count();
    if (seconds < best) best = seconds;
  }
  return best;
}

/// One measured query: the caller's unprofiled wall time plus result size
/// and counters from one extra profiled run, as a JSON object fragment.
inline JsonValue MeasureEntry(const PreparedQuery& query,
                              const DocumentPtr& doc, double seconds) {
  ProfiledResult profiled = query.ExecuteProfiled(doc);
  JsonValue entry = JsonValue::Object();
  entry.Set("seconds", JsonValue::Number(seconds));
  entry.Set("result_size",
            JsonValue::Int(static_cast<int64_t>(profiled.sequence.size())));
  entry.Set("stats", JsonValue::Raw(profiled.stats.ToJson()));
  return entry;
}

/// Writes BENCH_<name>.json next to the binary's working directory and
/// reports the path on stdout.
inline void WriteBenchJson(const std::string& name, const JsonValue& root) {
  std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  out << root.Dump() << "\n";
  out.close();
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace xqa::bench

#endif  // XQA_BENCH_BENCH_JSON_H_

// Engine micro-benchmarks: XML parsing, query compilation, path navigation,
// ordering, windowing, and construction throughput. Not tied to a specific
// paper artifact; used to understand where time goes in E1-E3.

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "workload/orders.h"
#include "workload/sales.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;

const std::string& OrdersXml() {
  static const std::string& xml = *new std::string([] {
    xqa::workload::OrderConfig config;
    config.num_orders = 500;
    return xqa::workload::GenerateOrdersXml(config);
  }());
  return xml;
}

const DocumentPtr& OrdersDoc() {
  static const DocumentPtr& doc =
      *new DocumentPtr(Engine::ParseDocument(OrdersXml()));
  return doc;
}

const DocumentPtr& SalesDoc() {
  static const DocumentPtr& doc = *new DocumentPtr([] {
    xqa::workload::SalesConfig config;
    config.num_sales = 2000;
    return xqa::workload::GenerateSalesDocument(config);
  }());
  return doc;
}

void BM_XmlParse(benchmark::State& state) {
  const std::string& xml = OrdersXml();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Engine::ParseDocument(xml));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_XmlParse);

void BM_CompileSimpleQuery(benchmark::State& state) {
  Engine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Compile("count(//order/lineitem)"));
  }
}
BENCHMARK(BM_CompileSimpleQuery);

void BM_CompileGroupByQuery(benchmark::State& state) {
  Engine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Compile(
        "for $l in //order/lineitem "
        "group by $l/shipmode into $m nest $l into $ls "
        "let $n := count($ls) where $n > 1 order by $n "
        "return <r>{$m, $n}</r>"));
  }
}
BENCHMARK(BM_CompileGroupByQuery);

void RunQuery(benchmark::State& state, const DocumentPtr& doc,
              const std::string& query_text) {
  Engine engine;
  PreparedQuery query = engine.Compile(query_text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}

void BM_PathDescendantScan(benchmark::State& state) {
  RunQuery(state, OrdersDoc(), "count(//lineitem)");
}
BENCHMARK(BM_PathDescendantScan);

void BM_PathWithPredicate(benchmark::State& state) {
  RunQuery(state, OrdersDoc(),
           "count(//lineitem[quantity > 25][shipmode = \"MODE-3\"])");
}
BENCHMARK(BM_PathWithPredicate);

void BM_OrderByPrice(benchmark::State& state) {
  RunQuery(state, OrdersDoc(),
           "for $l in //lineitem order by number($l/extendedprice) "
           "return $l/linenumber");
}
BENCHMARK(BM_OrderByPrice);

void BM_GroupBySingleKey(benchmark::State& state) {
  RunQuery(state, OrdersDoc(),
           "for $l in //lineitem group by $l/shipmode into $m "
           "nest $l into $ls return count($ls)");
}
BENCHMARK(BM_GroupBySingleKey);

void BM_ConstructResultElements(benchmark::State& state) {
  RunQuery(state, OrdersDoc(),
           "for $l in //lineitem "
           "return <li mode=\"{$l/shipmode}\">{$l/quantity}</li>");
}
BENCHMARK(BM_ConstructResultElements);

void BM_MovingWindowQ8(benchmark::State& state) {
  RunQuery(state, SalesDoc(), R"(
    for $s in //sale
    group by $s/region into $region
    nest $s order by $s/timestamp into $rs
    return
      <region>{
        for $s1 at $i in $rs
        return sum(for $s2 at $j in $rs
                   where $j >= $i - 10 and $j < $i
                   return $s2/quantity * $s2/price)
      }</region>
  )");
}
BENCHMARK(BM_MovingWindowQ8);

void BM_TwoLevelGroupingQ3(benchmark::State& state) {
  RunQuery(state, SalesDoc(), R"(
    for $s in //sale
    group by $s/region into $region,
             year-from-dateTime($s/timestamp) into $year
    nest $s into $region-sales
    let $region-sum := sum( $region-sales/(quantity * price) )
    return
      for $s in $region-sales
      group by $s/state into $state
      nest $s into $state-sales
      return sum($state-sales/(quantity * price)) div $region-sum
  )");
}
BENCHMARK(BM_TwoLevelGroupingQ3);

void BM_RankingQ10(benchmark::State& state) {
  RunQuery(state, SalesDoc(), R"(
    for $s in //sale
    group by year-from-dateTime($s/timestamp) into $year,
             month-from-dateTime($s/timestamp) into $month
    nest $s into $ms
    order by $year, $month
    return
      <m>{for $x in $ms
          group by $x/region into $region
          nest $x/quantity * $x/price into $amounts
          let $sum := sum($amounts)
          order by $sum descending
          return at $rank <r>{$rank, $sum}</r>}</m>
  )");
}
BENCHMARK(BM_RankingQ10);

}  // namespace

BENCHMARK_MAIN();

// E1 — reproduces the Section 6 chart: execution-time ratio t(Q)/t(Qgb) of
// the query without explicit group by over the query with explicit group by,
// as a function of the number of groups in the result.
//
// Six query pairs are generated from the Table 1 templates, grouping by
// shipinstruct (Q1), shipmode (Q2), tax (Q3), quantity (Q6), and the pairs
// (shipinstruct, shipmode) (Q4) and (shipinstruct, tax) (Q5), matching the
// paper's setup. A second sweep raises the distinct-value counts of the
// grouping children to extend the group-count axis, showing the ratio's
// growth trend (the paper's chart rises with the number of groups).
//
// Each (sweep, query pair) measurement is also appended to
// BENCH_groupby_ratio.json with the per-run QueryStats counters, which make
// the chart's shape mechanically checkable: the naive plan's where-clause
// tuples_in grows as lineitems x groups while the explicit plan's group-by
// hash probes stay linear in lineitems.
//
// Usage: bench_groupby_ratio [--quick] [--smoke]   (--smoke: CI-sized quick run)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "workload/orders.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;
using xqa::bench::JsonValue;
using xqa::bench::MeasureEntry;
using xqa::bench::MeasureSeconds;

std::string OneKeyWithGroupBy(const std::string& a) {
  return "for $litem in //order/lineitem "
         "group by $litem/" + a + " into $a "
         "nest $litem into $items "
         "return <r>{$a, count($items)}</r>";
}

std::string OneKeyWithoutGroupBy(const std::string& a) {
  return "for $a in distinct-values(//order/lineitem/" + a + ") "
         "let $items := for $i in //order/lineitem "
         "              where $i/" + a + " = $a "
         "              return $i "
         "return <r>{$a, count($items)}</r>";
}

std::string TwoKeyWithGroupBy(const std::string& a, const std::string& b) {
  return "for $litem in //order/lineitem "
         "group by $litem/" + a + " into $a, $litem/" + b + " into $b "
         "nest $litem into $items "
         "return <r>{$a, $b, count($items)}</r>";
}

std::string TwoKeyWithoutGroupBy(const std::string& a, const std::string& b) {
  return "for $a in distinct-values(//order/lineitem/" + a + "), "
         "    $b in distinct-values(//order/lineitem/" + b + ") "
         "let $items := for $i in //order/lineitem "
         "              where $i/" + a + " = $a and $i/" + b + " = $b "
         "              return $i "
         "where exists($items) "
         "return <r>{$a, $b, count($items)}</r>";
}

struct QueryPair {
  const char* label;
  std::string with_groupby;
  std::string without_groupby;
};

void RunSweep(const char* title, const xqa::workload::OrderConfig& config,
              int repetitions, bool include_two_key, JsonValue* results) {
  Engine engine;
  DocumentPtr doc = xqa::workload::GenerateOrdersDocument(config);
  int lineitems = xqa::workload::CountLineitems(config);

  std::vector<QueryPair> pairs = {
      {"Q1 shipinstruct", OneKeyWithGroupBy("shipinstruct"),
       OneKeyWithoutGroupBy("shipinstruct")},
      {"Q2 shipmode", OneKeyWithGroupBy("shipmode"),
       OneKeyWithoutGroupBy("shipmode")},
      {"Q3 tax", OneKeyWithGroupBy("tax"), OneKeyWithoutGroupBy("tax")},
      {"Q6 quantity", OneKeyWithGroupBy("quantity"),
       OneKeyWithoutGroupBy("quantity")},
  };
  if (include_two_key) {
    pairs.push_back({"Q4 (shipinstruct, shipmode)",
                     TwoKeyWithGroupBy("shipinstruct", "shipmode"),
                     TwoKeyWithoutGroupBy("shipinstruct", "shipmode")});
    pairs.push_back({"Q5 (shipinstruct, tax)",
                     TwoKeyWithGroupBy("shipinstruct", "tax"),
                     TwoKeyWithoutGroupBy("shipinstruct", "tax")});
  }

  std::printf("\n%s  (%d orders, %d lineitems)\n", title, config.num_orders,
              lineitems);
  std::printf("%-30s %8s %12s %12s %9s\n", "query", "groups", "t(Q) ms",
              "t(Qgb) ms", "ratio");
  for (const QueryPair& pair : pairs) {
    PreparedQuery with_groupby = engine.Compile(pair.with_groupby);
    PreparedQuery without_groupby = engine.Compile(pair.without_groupby);
    size_t groups = with_groupby.Execute(doc).size();
    double t_qgb = MeasureSeconds(with_groupby, doc, repetitions);
    double t_q = MeasureSeconds(without_groupby, doc, repetitions);
    std::printf("%-30s %8zu %12.2f %12.2f %9.1f\n", pair.label, groups,
                t_q * 1e3, t_qgb * 1e3, t_q / t_qgb);

    JsonValue entry = JsonValue::Object();
    entry.Set("sweep", JsonValue::Str(title));
    entry.Set("query", JsonValue::Str(pair.label));
    entry.Set("orders", JsonValue::Int(config.num_orders));
    entry.Set("lineitems", JsonValue::Int(lineitems));
    entry.Set("groups", JsonValue::Int(static_cast<int64_t>(groups)));
    entry.Set("ratio", JsonValue::Number(t_q / t_qgb));
    entry.Set("with_groupby", MeasureEntry(with_groupby, doc, t_qgb));
    entry.Set("without_groupby", MeasureEntry(without_groupby, doc, t_q));
    results->Append(std::move(entry));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--smoke") == 0) quick = true;  // CI alias
  }

  std::printf("E1: Section 6 chart — t(Q)/t(Qgb) vs number of groups\n");
  std::printf("t(Q): query without explicit group by (distinct-values + "
              "self-join)\n");
  std::printf("t(Qgb): query with explicit group by (hash aggregation)\n");

  JsonValue results = JsonValue::Array();

  // Sweep 1: the paper's six queries at their natural cardinalities,
  // 8K-lineitem collection (the paper's lower bound).
  xqa::workload::OrderConfig natural;
  natural.num_orders = quick ? 500 : 2000;  // ~4 lineitems per order -> ~8K
  RunSweep("Sweep 1: natural cardinalities", natural, quick ? 1 : 3,
           /*include_two_key=*/true, &results);

  // Sweep 2: the group-count axis extended by raising the distinct-value
  // counts of the single-element keys. (The two-element templates at high
  // cardinality enumerate the full cross product of distinct values — the
  // quadratic blowup the paper describes — and are omitted here; Sweep 1
  // covers them at their natural sizes.)
  for (int cardinality : {16, 64, 256, 1024}) {
    xqa::workload::OrderConfig config;
    config.num_orders = quick ? 250 : 1000;
    config.shipinstruct_cardinality = cardinality;
    config.quantity_cardinality = cardinality;
    std::string title =
        "Sweep 2: raised cardinalities (" + std::to_string(cardinality) + ")";
    RunSweep(title.c_str(), config, 1, /*include_two_key=*/false, &results);
  }

  JsonValue root = JsonValue::Object();
  root.Set("bench", JsonValue::Str("groupby_ratio"));
  root.Set("experiment",
           JsonValue::Str("E1: t(Q)/t(Qgb) vs number of groups (Section 6)"));
  JsonValue params = JsonValue::Object();
  params.Set("quick", JsonValue::Bool(quick));
  params.Set("sweep1_orders", JsonValue::Int(quick ? 500 : 2000));
  params.Set("sweep2_orders", JsonValue::Int(quick ? 250 : 1000));
  root.Set("parameters", std::move(params));
  root.Set("results", std::move(results));
  xqa::bench::WriteBenchJson("groupby_ratio", root);
  return 0;
}

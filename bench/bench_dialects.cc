// A4 — grouping-dialect ablation: the paper's explicit nest (Section 3)
// versus the XQuery 3.0 style with implicit rebinding (the Section 3.2
// "alternative design"). Implicit rebinding materializes EVERY pre-group
// variable per group whether the query uses it or not; the paper's nest
// materializes only what the query names. The gap grows with the number of
// bound variables.

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "workload/orders.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;

const DocumentPtr& SharedOrders() {
  static const DocumentPtr& doc = *new DocumentPtr([] {
    xqa::workload::OrderConfig config;
    config.num_orders = 500;
    return xqa::workload::GenerateOrdersDocument(config);
  }());
  return doc;
}

void RunQuery(benchmark::State& state, const std::string& query_text) {
  Engine engine;
  PreparedQuery query = engine.Compile(query_text);
  const DocumentPtr& doc = SharedOrders();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}

// One aggregated value needed; no extra bound variables.
void BM_PaperNest_Lean(benchmark::State& state) {
  RunQuery(state,
           "for $l in //lineitem "
           "group by $l/shipmode into $m nest $l/quantity into $qs "
           "return sum(for $q in $qs return number($q))");
}
BENCHMARK(BM_PaperNest_Lean);

void BM_XQuery3_Lean(benchmark::State& state) {
  RunQuery(state,
           "for $l in //lineitem "
           "group by $m := string($l/shipmode) "
           "return sum(for $q in $l/quantity return number($q))");
}
BENCHMARK(BM_XQuery3_Lean);

// Many pre-group lets bound but unused after grouping: the paper dialect
// drops them at the group boundary; 3.0 must materialize all of them.
constexpr char kManyLets[] =
    "let $a := $l/partkey let $b := $l/suppkey let $c := $l/extendedprice "
    "let $d := $l/discount let $e := $l/tax let $f := $l/comment "
    "let $g := $l/shipdate let $h := $l/receiptdate ";

void BM_PaperNest_ManyBoundVars(benchmark::State& state) {
  RunQuery(state,
           std::string("for $l in //lineitem ") + kManyLets +
               "group by $l/shipmode into $m nest $l/quantity into $qs "
               "return sum(for $q in $qs return number($q))");
}
BENCHMARK(BM_PaperNest_ManyBoundVars);

void BM_XQuery3_ManyBoundVars(benchmark::State& state) {
  RunQuery(state,
           std::string("for $l in //lineitem ") + kManyLets +
               "group by $m := string($l/shipmode) "
               "return sum(for $q in $l/quantity return number($q))");
}
BENCHMARK(BM_XQuery3_ManyBoundVars);

}  // namespace

BENCHMARK_MAIN();

// A3 — membership-function ablation (Section 5): rollup via the
// user-defined recursive local:paths versus the built-in xqa:paths, and the
// datacube's cost as the dimension count grows (2^n group memberships per
// item — the "substantially increases storage and time" remark).

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "workload/books.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;

const DocumentPtr& SharedCategorizedBooks() {
  static const DocumentPtr& doc = *new DocumentPtr([] {
    xqa::workload::BooksConfig config;
    config.num_books = 1000;
    config.with_categories = true;
    return xqa::workload::GenerateBooksDocument(config);
  }());
  return doc;
}

void RunQuery(benchmark::State& state, const std::string& query_text) {
  Engine engine;
  PreparedQuery query = engine.Compile(query_text);
  const DocumentPtr& doc = SharedCategorizedBooks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Execute(doc));
  }
}

void BM_RollupUserPaths(benchmark::State& state) {
  RunQuery(state, R"(
    declare function local:paths($es as element()*) as xs:string* {
      for $e in $es
      let $name := string(node-name($e))
      return ($name,
              for $p in local:paths($e/*) return concat($name, "/", $p))
    };
    for $b in //book
    for $c in local:paths($b/categories/*)
    group by $c into $category
    nest $b/price into $prices
    return <result>{$category, avg($prices)}</result>
  )");
}
BENCHMARK(BM_RollupUserPaths);

void BM_RollupBuiltinPaths(benchmark::State& state) {
  RunQuery(state, R"(
    for $b in //book
    for $c in xqa:paths($b/categories/*)
    group by $c into $category
    nest $b/price into $prices
    return <result>{$category, avg($prices)}</result>
  )");
}
BENCHMARK(BM_RollupBuiltinPaths);

void BM_CubeByDimensions(benchmark::State& state) {
  // Dimensions: publisher, year, and optionally a derived decade / price
  // band — 2^n memberships per book.
  int dims = static_cast<int>(state.range(0));
  std::string dim_list = "$b/publisher";
  if (dims >= 2) dim_list += ", $b/year";
  if (dims >= 3) dim_list += ", <decade>{$b/year idiv 10}</decade>";
  if (dims >= 4) dim_list += ", <band>{$b/price idiv 50}</band>";
  RunQuery(state,
           "for $b in //book "
           "for $d in xqa:cube((" + dim_list + ")) "
           "group by $d into $key "
           "nest $b/price into $prices "
           "return <result>{count($prices)}</result>");
}
BENCHMARK(BM_CubeByDimensions)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_RollupFunctionOnly(benchmark::State& state) {
  // The membership function itself, without grouping.
  RunQuery(state, "count(for $b in //book return xqa:paths($b/categories/*))");
}
BENCHMARK(BM_RollupFunctionOnly);

}  // namespace

BENCHMARK_MAIN();

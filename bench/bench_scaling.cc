// E3 — Section 6 scaling: the number of aggregated lineitems ranges from 8K
// to 32K (the paper's input sizes). The explicit group by scales linearly in
// the input; the naive form scales as input x groups.
//
// Each point is appended to BENCH_scaling.json with QueryStats counters: the
// naive plan's inner where-clause tuples_in is lineitems x groups while the
// explicit plan's hash probes stay proportional to lineitems alone.
//
// Usage: bench_scaling [--quick] [--smoke]   (--smoke: CI-sized quick run)

#include <cstdio>
#include <cstring>

#include "bench_json.h"
#include "workload/orders.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;
using xqa::bench::JsonValue;
using xqa::bench::MeasureEntry;
using xqa::bench::MeasureSeconds;

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--smoke") == 0) quick = true;  // CI alias
  }

  Engine engine;
  PreparedQuery with_groupby = engine.Compile(
      "for $litem in //order/lineitem "
      "group by $litem/quantity into $a "
      "nest $litem into $items "
      "return <r>{$a, count($items)}</r>");
  PreparedQuery without_groupby = engine.Compile(
      "for $a in distinct-values(//order/lineitem/quantity) "
      "let $items := for $i in //order/lineitem "
      "              where $i/quantity = $a "
      "              return $i "
      "return <r>{$a, count($items)}</r>");

  std::printf("E3: scaling with input size (grouping by quantity, 50 groups)\n");
  std::printf("%10s %10s %12s %12s %9s\n", "orders", "lineitems", "t(Q) ms",
              "t(Qgb) ms", "ratio");
  JsonValue results = JsonValue::Array();
  // ~4 lineitems per order: 2000..8000 orders give the paper's 8K..32K range.
  for (int orders : {2000, 4000, 6000, 8000}) {
    xqa::workload::OrderConfig config;
    config.num_orders = quick ? orders / 4 : orders;
    DocumentPtr doc = xqa::workload::GenerateOrdersDocument(config);
    int lineitems = xqa::workload::CountLineitems(config);
    double t_qgb = MeasureSeconds(with_groupby, doc, 1);
    double t_q = MeasureSeconds(without_groupby, doc, 1);
    std::printf("%10d %10d %12.2f %12.2f %9.1f\n", config.num_orders,
                lineitems, t_q * 1e3, t_qgb * 1e3, t_q / t_qgb);

    JsonValue entry = JsonValue::Object();
    entry.Set("orders", JsonValue::Int(config.num_orders));
    entry.Set("lineitems", JsonValue::Int(lineitems));
    entry.Set("t_qgb_seconds", JsonValue::Number(t_qgb));
    entry.Set("t_q_seconds", JsonValue::Number(t_q));
    entry.Set("ratio", JsonValue::Number(t_q / t_qgb));
    entry.Set("with_groupby", MeasureEntry(with_groupby, doc, t_qgb));
    entry.Set("without_groupby", MeasureEntry(without_groupby, doc, t_q));
    results.Append(std::move(entry));
  }

  // --- Thread scaling (docs/PARALLELISM.md) --------------------------------
  // The same explicit group-by on one large document (~100K lineitems full,
  // ~10K quick) at increasing worker counts. Results are byte-identical at
  // every thread count (checked below); only the wall time may change.
  std::printf("\nthread scaling: group by on one large document\n");
  std::printf("%10s %12s %9s\n", "threads", "t(Qgb) ms", "speedup");
  xqa::workload::OrderConfig scaling_config;
  scaling_config.num_orders = quick ? 2500 : 25000;
  DocumentPtr scaling_doc =
      xqa::workload::GenerateOrdersDocument(scaling_config);
  int scaling_lineitems = xqa::workload::CountLineitems(scaling_config);
  const std::string serial_result = with_groupby.ExecuteToString(scaling_doc);

  JsonValue thread_results = JsonValue::Array();
  double t_serial = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    PreparedQuery query = with_groupby;  // copy: per-thread-count options
    xqa::ExecutionOptions options;
    options.num_threads = threads;
    query.set_execution_options(options);
    if (query.ExecuteToString(scaling_doc) != serial_result) {
      std::fprintf(stderr,
                   "FATAL: num_threads=%d result differs from serial\n",
                   threads);
      return 1;
    }
    double seconds = MeasureSeconds(query, scaling_doc, quick ? 3 : 5);
    if (threads == 1) t_serial = seconds;
    std::printf("%10d %12.2f %9.2f\n", threads, seconds * 1e3,
                t_serial / seconds);

    JsonValue entry = JsonValue::Object();
    entry.Set("threads", JsonValue::Int(threads));
    entry.Set("lineitems", JsonValue::Int(scaling_lineitems));
    entry.Set("seconds", JsonValue::Number(seconds));
    entry.Set("speedup_vs_1_thread", JsonValue::Number(t_serial / seconds));
    thread_results.Append(std::move(entry));
  }

  // --- Batched-vs-scalar ablation (docs/VECTORIZATION.md) ------------------
  // The explicit group-by on the large document with the batched engine
  // flipped, serial and 4-way parallel. Byte identity is asserted first.
  std::printf("\nbatched-engine ablation: group by on the large document\n");
  std::printf("%10s %12s %12s %9s\n", "threads", "batched ms", "scalar ms",
              "speedup");
  JsonValue ablation = JsonValue::Array();
  for (int threads : {1, 4}) {
    xqa::ExecutionOptions batched_opts;
    batched_opts.num_threads = threads;
    batched_opts.use_batched_execution = true;
    xqa::ExecutionOptions scalar_opts;
    scalar_opts.num_threads = threads;
    scalar_opts.use_batched_execution = false;
    if (with_groupby.ExecuteToString(scaling_doc, batched_opts) !=
            serial_result ||
        with_groupby.ExecuteToString(scaling_doc, scalar_opts) !=
            serial_result) {
      std::fprintf(stderr,
                   "FATAL: ablation result differs at num_threads=%d\n",
                   threads);
      return 1;
    }
    double t_batched = MeasureSeconds(with_groupby, scaling_doc, batched_opts,
                                      quick ? 3 : 5);
    double t_scalar = MeasureSeconds(with_groupby, scaling_doc, scalar_opts,
                                     quick ? 3 : 5);
    std::printf("%10d %12.2f %12.2f %9.2f\n", threads, t_batched * 1e3,
                t_scalar * 1e3, t_scalar / t_batched);
    JsonValue entry = JsonValue::Object();
    entry.Set("threads", JsonValue::Int(threads));
    entry.Set("lineitems", JsonValue::Int(scaling_lineitems));
    entry.Set("batched_seconds", JsonValue::Number(t_batched));
    entry.Set("scalar_seconds", JsonValue::Number(t_scalar));
    entry.Set("batched_speedup", JsonValue::Number(t_scalar / t_batched));
    ablation.Append(std::move(entry));
  }

  JsonValue root = JsonValue::Object();
  root.Set("bench", JsonValue::Str("scaling"));
  root.Set("experiment",
           JsonValue::Str("E3: input-size scaling, 8K..32K lineitems "
                          "(Section 6)"));
  JsonValue params = JsonValue::Object();
  params.Set("quick", JsonValue::Bool(quick));
  params.Set("groups", JsonValue::Int(50));
  root.Set("parameters", std::move(params));
  root.Set("results", std::move(results));
  root.Set("thread_scaling", std::move(thread_results));
  root.Set("batched_ablation", std::move(ablation));
  xqa::bench::WriteBenchJson("scaling", root);
  return 0;
}

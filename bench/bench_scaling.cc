// E3 — Section 6 scaling: the number of aggregated lineitems ranges from 8K
// to 32K (the paper's input sizes). The explicit group by scales linearly in
// the input; the naive form scales as input x groups.
//
// Usage: bench_scaling [--quick]

#include <chrono>
#include <cstdio>
#include <cstring>

#include "api/engine.h"
#include "workload/orders.h"

namespace {

using xqa::DocumentPtr;
using xqa::Engine;
using xqa::PreparedQuery;

double MeasureSeconds(const PreparedQuery& query, const DocumentPtr& doc) {
  (void)query.Execute(doc);  // warm-up
  auto start = std::chrono::steady_clock::now();
  (void)query.Execute(doc);
  auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  Engine engine;
  PreparedQuery with_groupby = engine.Compile(
      "for $litem in //order/lineitem "
      "group by $litem/quantity into $a "
      "nest $litem into $items "
      "return <r>{$a, count($items)}</r>");
  PreparedQuery without_groupby = engine.Compile(
      "for $a in distinct-values(//order/lineitem/quantity) "
      "let $items := for $i in //order/lineitem "
      "              where $i/quantity = $a "
      "              return $i "
      "return <r>{$a, count($items)}</r>");

  std::printf("E3: scaling with input size (grouping by quantity, 50 groups)\n");
  std::printf("%10s %10s %12s %12s %9s\n", "orders", "lineitems", "t(Q) ms",
              "t(Qgb) ms", "ratio");
  // ~4 lineitems per order: 2000..8000 orders give the paper's 8K..32K range.
  for (int orders : {2000, 4000, 6000, 8000}) {
    xqa::workload::OrderConfig config;
    config.num_orders = quick ? orders / 4 : orders;
    DocumentPtr doc = xqa::workload::GenerateOrdersDocument(config);
    int lineitems = xqa::workload::CountLineitems(config);
    double t_qgb = MeasureSeconds(with_groupby, doc);
    double t_q = MeasureSeconds(without_groupby, doc);
    std::printf("%10d %10d %12.2f %12.2f %9.1f\n", config.num_orders,
                lineitems, t_q * 1e3, t_qgb * 1e3, t_q / t_qgb);
  }
  return 0;
}

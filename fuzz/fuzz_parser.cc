// libFuzzer harness for the compile front half: lexer → parser → binder.
// Arbitrary bytes go through Engine::Compile; any XQueryError is the
// expected rejection path and is swallowed. What the fuzzer hunts is
// everything else — crashes, sanitizer reports, and unbounded recursion
// (the parser depth guard, XQSV0005 territory, is load-bearing here: before
// it, `((((...` overflowed the C++ stack).
//
// Build:  cmake -B build-fuzz -S . -DXQA_FUZZ=ON \
//             -DCMAKE_CXX_COMPILER=clang++ \
//             -DCMAKE_CXX_FLAGS=-fsanitize=address
// Run:    ./build-fuzz/fuzz/fuzz_parser fuzz/corpus -max_total_time=30
//
// Compilation only — no execution — so the harness needs no documents and
// every input terminates quickly.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "api/engine.h"
#include "base/error.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // One engine per process: Compile is const and the harness is
  // single-threaded, so reusing it keeps the per-input cost at parse time.
  static xqa::Engine* engine = new xqa::Engine();
  std::string_view query(reinterpret_cast<const char*>(data), size);
  try {
    engine->Compile(query);
  } catch (const xqa::XQueryError&) {
    // Typed rejection is the contract for bad input.
  }
  return 0;
}

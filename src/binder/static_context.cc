#include "binder/static_context.h"

#include <sstream>

namespace xqa {

StaticContext DescribeModule(const Module& module) {
  StaticContext context;
  context.ordered = module.ordered;
  context.global_count = static_cast<int>(module.variables.size());
  context.main_frame_size = module.frame_size;
  for (const FunctionDecl& fn : module.functions) {
    context.functions.push_back(
        {fn.name, fn.params.size(), fn.frame_size});
  }
  return context;
}

std::string FormatStaticContext(const StaticContext& context) {
  std::ostringstream out;
  out << "ordering mode: " << (context.ordered ? "ordered" : "unordered")
      << "\n";
  out << "globals: " << context.global_count << "\n";
  out << "main frame slots: " << context.main_frame_size << "\n";
  for (const auto& fn : context.functions) {
    out << "function " << fn.name << "#" << fn.arity << " (frame "
        << fn.frame_size << ")\n";
  }
  return out.str();
}

}  // namespace xqa

#include "binder/binder.h"

#include "base/fault_injection.h"

#include <set>
#include <string>
#include <vector>

#include "functions/function_registry.h"

namespace xqa {

namespace {

class Binder {
 public:
  explicit Binder(Module* module) : module_(module) {}

  void Bind() {
    // Pass 1: register user function signatures (forward references and
    // recursion are allowed).
    for (size_t i = 0; i < module_->functions.size(); ++i) {
      const FunctionDecl& fn = module_->functions[i];
      for (size_t j = 0; j < i; ++j) {
        if (module_->functions[j].name == fn.name &&
            module_->functions[j].params.size() == fn.params.size()) {
          ThrowError(ErrorCode::kXQST0034,
                     "duplicate function declaration " + fn.name, fn.location);
        }
      }
    }

    // Pass 2: global variables, bound sequentially (each sees the previous).
    for (size_t i = 0; i < module_->variables.size(); ++i) {
      VariableDecl& decl = module_->variables[i];
      for (size_t j = 0; j < i; ++j) {
        if (module_->variables[j].name == decl.name) {
          ThrowError(ErrorCode::kXQST0049,
                     "duplicate global variable $" + decl.name, decl.location);
        }
      }
      BindExpr(decl.expr.get());
      decl.slot = static_cast<int>(i);
      scope_.push_back({decl.name, decl.slot, /*global=*/true, /*dead=*/false});
    }
    size_t globals_end = scope_.size();
    // Slots consumed by FLWORs inside global initializers live in the main
    // frame; body slots must start after them.
    int globals_slot_count = slot_counter_;

    // Pass 3: function bodies, each in its own frame with globals visible.
    for (FunctionDecl& fn : module_->functions) {
      scope_.resize(globals_end);
      slot_counter_ = 0;
      std::set<std::string> param_names;
      for (FunctionDecl::Param& param : fn.params) {
        if (!param_names.insert(param.name).second) {
          ThrowError(ErrorCode::kXQST0039,
                     "duplicate parameter $" + param.name + " in " + fn.name,
                     fn.location);
        }
        param.slot = Declare(param.name);
      }
      BindExpr(fn.body.get());
      fn.frame_size = slot_counter_;
    }

    // Pass 4: the query body in the main frame.
    scope_.resize(globals_end);
    slot_counter_ = globals_slot_count;
    BindExpr(module_->body.get());
    module_->frame_size = slot_counter_;
  }

 private:
  struct ScopeEntry {
    std::string name;
    int slot;
    bool global;
    bool dead;  ///< pre-group binding invalidated by a group by clause
  };

  int Declare(const std::string& name) {
    int slot = slot_counter_++;
    scope_.push_back({name, slot, /*global=*/false, /*dead=*/false});
    return slot;
  }

  void BindVarRef(VarRefExpr* e) {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->name != e->name) continue;
      if (it->dead) {
        ThrowError(ErrorCode::kXQAG0001,
                   "$" + e->name +
                       " was bound before the group by clause and is no "
                       "longer in scope (rebind it as a grouping or nesting "
                       "variable)",
                   e->location());
      }
      e->slot = it->slot;
      e->is_global = it->global;
      return;
    }
    if (sibling_group_names_ != nullptr &&
        sibling_group_names_->count(e->name) > 0) {
      ThrowError(ErrorCode::kXQAG0002,
                 "grouping expression may not reference the grouping or "
                 "nesting variable $" +
                     e->name,
                 e->location());
    }
    ThrowError(ErrorCode::kXPST0008, "undefined variable $" + e->name,
               e->location());
  }

  void ResolveCall(FunctionCallExpr* e) {
    for (size_t i = 0; i < module_->functions.size(); ++i) {
      const FunctionDecl& fn = module_->functions[i];
      if (fn.name == e->name && fn.params.size() == e->args.size()) {
        e->user_fn_index = static_cast<int>(i);
        return;
      }
    }
    int builtin = FindBuiltin(e->name, e->args.size());
    if (builtin >= 0) {
      e->builtin_id = builtin;
      return;
    }
    ThrowError(ErrorCode::kXPST0017,
               "unknown function " + e->name + "#" +
                   std::to_string(e->args.size()),
               e->location());
  }

  void ResolveUsing(FlworClause::GroupKey* key, SourceLocation loc) {
    if (key->using_function.empty()) return;
    for (size_t i = 0; i < module_->functions.size(); ++i) {
      const FunctionDecl& fn = module_->functions[i];
      if (fn.name == key->using_function && fn.params.size() == 2) {
        key->using_user_fn_index = static_cast<int>(i);
        return;
      }
    }
    int builtin = FindBuiltin(key->using_function, 2);
    if (builtin >= 0) {
      key->using_builtin_id = builtin;
      return;
    }
    ThrowError(ErrorCode::kXQAG0005,
               "'using' requires a two-argument comparison function; " +
                   key->using_function + " is not one",
               loc);
  }

  void BindOrderBy(OrderByData* order) {
    for (OrderSpec& spec : order->specs) {
      BindExpr(spec.key.get());
    }
  }

  void BindFlwor(FlworExpr* e) {
    size_t flwor_start = scope_.size();
    bool seen_group = false;
    for (FlworClause& clause : e->clauses) {
      switch (clause.kind) {
        case ClauseKind::kFor:
          BindExpr(clause.for_expr.get());
          clause.for_slot = Declare(clause.for_var);
          if (!clause.pos_var.empty()) {
            if (clause.pos_var == clause.for_var) {
              ThrowError(ErrorCode::kXQST0089,
                         "positional variable $" + clause.pos_var +
                             " shadows the binding variable",
                         clause.location);
            }
            clause.pos_slot = Declare(clause.pos_var);
          }
          break;
        case ClauseKind::kLet:
          BindExpr(clause.let_expr.get());
          clause.let_slot = Declare(clause.let_var);
          break;
        case ClauseKind::kWhere:
          BindExpr(clause.where_expr.get());
          break;
        case ClauseKind::kCount:
          clause.count_slot = Declare(clause.count_var);
          break;
        case ClauseKind::kOrderBy:
          clause.order_after_group = seen_group;
          BindOrderBy(&clause.order_by);
          break;
        case ClauseKind::kGroupBy: {
          if (seen_group) {
            ThrowError(ErrorCode::kXQAG0003,
                       "at most one group by clause per FLWOR expression",
                       clause.location);
          }
          seen_group = true;
          BindGroupBy(&clause, flwor_start);
          break;
        }
      }
    }
    if (!e->at_var.empty()) {
      e->at_slot = Declare(e->at_var);
    }
    BindExpr(e->return_expr.get());
    scope_.resize(flwor_start);
  }

  void BindGroupBy(FlworClause* clause, size_t flwor_start) {
    if (clause->xquery3_group_style) {
      // XQuery 3.0 dialect: keys bound in the pre-group scope; all pre-group
      // variables REMAIN in scope, implicitly rebound to per-group sequences
      // by the evaluator (the design the paper's Section 3.2 rejects for its
      // own syntax, standardized later by XQuery 3.0).
      std::set<std::string> names;
      for (auto& key : clause->group_keys) {
        if (!names.insert(key.var).second) {
          ThrowError(ErrorCode::kXQAG0004,
                     "duplicate grouping variable $" + key.var,
                     clause->location);
        }
        BindExpr(key.expr.get());
        // A bare `group by $x` whose $x is bound by this same FLWOR regroups
        // the variable in place: reuse its slot instead of declaring a shadow,
        // so the tuple stream carries one binding for $x (the key), not a
        // key/merged-concatenation pair fighting for the same name. Keys
        // bound in an *outer* FLWOR still get a fresh slot — writing the
        // atomized key back into the outer slot would corrupt the outer
        // binding.
        const VarRefExpr* bare =
            key.expr->kind() == ExprKind::kVarRef
                ? static_cast<const VarRefExpr*>(key.expr.get())
                : nullptr;
        bool reuse_slot = false;
        if (bare != nullptr && bare->name == key.var && !bare->is_global) {
          for (size_t i = flwor_start; i < scope_.size(); ++i) {
            if (scope_[i].slot == bare->slot && scope_[i].name == key.var) {
              reuse_slot = true;
              break;
            }
          }
        }
        if (reuse_slot) {
          key.slot = bare->slot;
          // Re-push the name so the key binding is the innermost resolution
          // for the post-group clauses.
          scope_.push_back({key.var, key.slot, /*global=*/false,
                            /*dead=*/false});
        } else {
          key.slot = Declare(key.var);
        }
      }
      return;
    }
    // Collect the clause's grouping/nesting variable names; duplicates are a
    // static error, and references to them from grouping expressions are
    // XQAG0002 (they are not yet in scope while groups are being formed).
    std::set<std::string> sibling_names;
    for (const auto& key : clause->group_keys) {
      if (!sibling_names.insert(key.var).second) {
        ThrowError(ErrorCode::kXQAG0004,
                   "duplicate grouping variable $" + key.var, clause->location);
      }
    }
    for (const auto& nest : clause->nest_specs) {
      if (!sibling_names.insert(nest.var).second) {
        ThrowError(ErrorCode::kXQAG0004,
                   "duplicate grouping/nesting variable $" + nest.var,
                   clause->location);
      }
    }

    // Bind grouping and nesting expressions in the pre-group scope.
    const std::set<std::string>* saved = sibling_group_names_;
    sibling_group_names_ = &sibling_names;
    for (auto& key : clause->group_keys) {
      BindExpr(key.expr.get());
      ResolveUsing(&key, clause->location);
    }
    for (auto& nest : clause->nest_specs) {
      BindExpr(nest.expr.get());
      if (nest.order_by.has_value()) {
        // Section 3.4.1: the nest's order by sees the input tuple stream.
        BindOrderBy(&*nest.order_by);
      }
    }
    sibling_group_names_ = saved;

    // Section 3.2: pre-group bindings of this FLWOR leave scope. They keep
    // their entries (marked dead) so that references produce XQAG0001 rather
    // than resolving to shadowed outer bindings.
    for (size_t i = flwor_start; i < scope_.size(); ++i) {
      scope_[i].dead = true;
    }

    // Grouping and nesting variables enter scope (possibly reusing names).
    for (auto& key : clause->group_keys) {
      key.slot = Declare(key.var);
    }
    for (auto& nest : clause->nest_specs) {
      nest.slot = Declare(nest.var);
    }
  }

  void BindExpr(Expr* expr) {
    if (expr == nullptr) return;
    switch (expr->kind()) {
      case ExprKind::kLiteral:
      case ExprKind::kContextItem:
        return;
      case ExprKind::kVarRef:
        BindVarRef(static_cast<VarRefExpr*>(expr));
        return;
      case ExprKind::kSequence:
        for (ExprPtr& item : static_cast<SequenceExpr*>(expr)->items) {
          BindExpr(item.get());
        }
        return;
      case ExprKind::kRange: {
        auto* e = static_cast<RangeExpr*>(expr);
        BindExpr(e->lo.get());
        BindExpr(e->hi.get());
        return;
      }
      case ExprKind::kArithmetic: {
        auto* e = static_cast<ArithmeticExpr*>(expr);
        BindExpr(e->lhs.get());
        BindExpr(e->rhs.get());
        return;
      }
      case ExprKind::kUnary:
        BindExpr(static_cast<UnaryExpr*>(expr)->operand.get());
        return;
      case ExprKind::kComparison: {
        auto* e = static_cast<ComparisonExpr*>(expr);
        BindExpr(e->lhs.get());
        BindExpr(e->rhs.get());
        return;
      }
      case ExprKind::kLogical: {
        auto* e = static_cast<LogicalExpr*>(expr);
        BindExpr(e->lhs.get());
        BindExpr(e->rhs.get());
        return;
      }
      case ExprKind::kIf: {
        auto* e = static_cast<IfExpr*>(expr);
        BindExpr(e->condition.get());
        BindExpr(e->then_branch.get());
        BindExpr(e->else_branch.get());
        return;
      }
      case ExprKind::kQuantified: {
        auto* e = static_cast<QuantifiedExpr*>(expr);
        size_t start = scope_.size();
        for (QuantifiedExpr::Binding& binding : e->bindings) {
          BindExpr(binding.expr.get());
          binding.slot = Declare(binding.var);
        }
        BindExpr(e->satisfies.get());
        scope_.resize(start);
        return;
      }
      case ExprKind::kPath: {
        auto* e = static_cast<PathExpr*>(expr);
        BindExpr(e->start.get());
        for (PathSegment& segment : e->segments) {
          if (segment.is_expr()) {
            BindExpr(segment.expr.get());
          } else {
            for (ExprPtr& predicate : segment.step.predicates) {
              BindExpr(predicate.get());
            }
          }
        }
        return;
      }
      case ExprKind::kFilter: {
        auto* e = static_cast<FilterExpr*>(expr);
        BindExpr(e->primary.get());
        for (ExprPtr& predicate : e->predicates) {
          BindExpr(predicate.get());
        }
        return;
      }
      case ExprKind::kFunctionCall: {
        auto* e = static_cast<FunctionCallExpr*>(expr);
        for (ExprPtr& arg : e->args) {
          BindExpr(arg.get());
        }
        ResolveCall(e);
        return;
      }
      case ExprKind::kFlwor:
        BindFlwor(static_cast<FlworExpr*>(expr));
        return;
      case ExprKind::kDirectConstructor: {
        auto* e = static_cast<DirectConstructorExpr*>(expr);
        for (auto& attr : e->attributes) {
          for (ConstructorContent& part : attr.parts) {
            BindExpr(part.expr.get());
          }
        }
        for (ConstructorContent& child : e->children) {
          BindExpr(child.expr.get());
        }
        return;
      }
      case ExprKind::kComputedConstructor: {
        auto* e = static_cast<ComputedConstructorExpr*>(expr);
        BindExpr(e->name_expr.get());
        BindExpr(e->content.get());
        return;
      }
      case ExprKind::kTypeOp:
        BindExpr(static_cast<TypeOpExpr*>(expr)->operand.get());
        return;
      case ExprKind::kTypeswitch: {
        auto* e = static_cast<TypeswitchExpr*>(expr);
        BindExpr(e->operand.get());
        for (TypeswitchExpr::CaseClause& clause : e->cases) {
          size_t start = scope_.size();
          if (!clause.var.empty()) clause.slot = Declare(clause.var);
          BindExpr(clause.result.get());
          scope_.resize(start);
        }
        size_t start = scope_.size();
        if (!e->default_var.empty()) e->default_slot = Declare(e->default_var);
        BindExpr(e->default_result.get());
        scope_.resize(start);
        return;
      }
      default:
        return;
    }
  }

  Module* module_;
  std::vector<ScopeEntry> scope_;
  int slot_counter_ = 0;
  const std::set<std::string>* sibling_group_names_ = nullptr;
};

}  // namespace

void BindModule(Module* module) {
  XQA_FAULT_POINT("compile.bind", ErrorCode::kXPST0008);
  Binder(module).Bind();
}

}  // namespace xqa

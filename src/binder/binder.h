#ifndef XQA_BINDER_BINDER_H_
#define XQA_BINDER_BINDER_H_

#include "parser/ast.h"

namespace xqa {

/// Static analysis pass: resolves variable references to frame slots,
/// resolves function calls to built-ins or user declarations, and enforces
/// the scoping rules of the paper's group-by extension (Section 3.2):
///
///  - after a group by clause, variables bound earlier in the same FLWOR are
///    out of scope (XQAG0001), including when they shadow outer bindings;
///  - a grouping expression may not reference a sibling grouping or nesting
///    variable (XQAG0002);
///  - grouping / nesting variable names within one clause must be distinct
///    (XQAG0004);
///  - a nest clause's embedded order by is bound in the *pre-group* scope;
///  - an order by that follows group by has `stable` ignored (Section 3.4.2)
///    — the binder marks it so the evaluator can skip stability bookkeeping.
///
/// Throws XQueryError with a static error code on violations. On success the
/// module's slots/frame sizes and call-site resolution fields are filled and
/// the module is ready for evaluation.
void BindModule(Module* module);

}  // namespace xqa

#endif  // XQA_BINDER_BINDER_H_

#ifndef XQA_BINDER_STATIC_CONTEXT_H_
#define XQA_BINDER_STATIC_CONTEXT_H_

#include <string>
#include <vector>

#include "parser/ast.h"

namespace xqa {

/// Summary of a module's static environment: what the prolog declared and
/// which names the binder resolved. Produced by DescribeModule() after
/// binding; used by tooling, tests, and the engine's explain output.
struct StaticContext {
  bool ordered = true;
  int global_count = 0;
  int main_frame_size = 0;

  struct FunctionInfo {
    std::string name;
    size_t arity;
    int frame_size;
  };
  std::vector<FunctionInfo> functions;
};

/// Builds the static-context summary for a bound module.
StaticContext DescribeModule(const Module& module);

/// Human-readable rendering (one line per entry) for debugging / explain.
std::string FormatStaticContext(const StaticContext& context);

}  // namespace xqa

#endif  // XQA_BINDER_STATIC_CONTEXT_H_

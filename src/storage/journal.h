#ifndef XQA_STORAGE_JOURNAL_H_
#define XQA_STORAGE_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/file_io.h"
#include "xml/node.h"

namespace xqa::storage {

/// The append-only ingest journal (docs/STORAGE.md): every Put / Remove /
/// BulkLoad between checkpoints becomes one length-prefixed, per-record
/// checksummed entry, appended (and fsynced per policy) *before* the
/// mutation applies in memory — write-ahead, so an acknowledged mutation is
/// on disk by the time the caller sees it succeed.
///
/// File layout:
///   header  := [magic "XQAJRN1\0"][u32 format][u64 base_version][u32 crc]
///              (crc covers the 20 header bytes before it)
///   record  := [u32 payload_len][payload][u32 crc32c(payload)]
///   payload := [u8 op][op-specific fields]   (ops in JournalOp)
///
/// Replay applies records in order and stops at the first violation — a
/// truncated length prefix, a length that overruns the file, a truncated
/// payload or checksum, or a checksum mismatch. Everything before that point
/// is the torn-tail-safe prefix; everything after is counted, not trusted
/// (a crash mid-append can only produce garbage at the tail). The writer
/// then truncates to the valid prefix before appending new records.

enum class JournalOp : uint8_t {
  kPut = 1,
  kRemove = 2,
  kBulkLoad = 3,
};

/// One decoded replay record. For kPut, `documents` has exactly one entry;
/// for kBulkLoad, one per ingested document; for kRemove, none.
struct JournalRecord {
  JournalOp op = JournalOp::kPut;
  std::string collection;
  /// (uri, decoded document) pairs; document is sealed.
  std::vector<std::pair<std::string, DocumentPtr>> documents;
  std::string uri;  ///< kRemove only
};

/// Record encoders (doc blobs via storage::EncodeDocument).
std::string EncodePutRecord(const std::string& collection,
                            const std::string& uri, const Document& document);
std::string EncodeRemoveRecord(const std::string& collection,
                               const std::string& uri);
/// `documents` are (uri, sealed document) pairs.
std::string EncodeBulkLoadRecord(
    const std::string& collection,
    const std::vector<std::pair<std::string, const Document*>>& documents);

/// Frames `payload` as one on-disk record (length + payload + CRC).
std::string FrameJournalRecord(std::string_view payload);

/// The 24-byte journal header for `base_version`.
std::string BuildJournalHeader(uint64_t base_version);

/// Outcome of scanning one journal file.
struct JournalScanResult {
  bool header_valid = false;
  uint64_t base_version = 0;
  size_t records_valid = 0;     ///< records in the torn-tail-safe prefix
  size_t records_dropped = 0;   ///< undecodable records past the prefix (0/1;
                                ///< boundaries past a bad record are unknown)
  uint64_t valid_prefix_bytes = 0;  ///< file offset replay stopped at
  uint64_t dropped_bytes = 0;       ///< file size minus the valid prefix
};

/// Scans the journal at `path`, invoking `handler` (may be null — scrub
/// verifies without applying) for every record in the valid prefix. Decode
/// errors and torn tails are reported through the result, never thrown; an
/// unreadable file throws kXQSV0007.
JournalScanResult ScanJournalFile(
    const std::string& path,
    const std::function<void(JournalRecord)>* handler);

}  // namespace xqa::storage

#endif  // XQA_STORAGE_JOURNAL_H_

#ifndef XQA_STORAGE_SEGMENT_H_
#define XQA_STORAGE_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/file_io.h"
#include "xml/node.h"

namespace xqa::storage {

/// Segment files: the checkpointed, immutable portion of the corpus, one
/// file per CollectionStore shard (docs/STORAGE.md).
///
/// Layout: [magic "XQASEG1\0"][u32 format][u32 shard] then zero or more
/// blocks, each [u32 payload_len][u32 crc32c(payload)][payload]; EOF ends
/// the file. A payload holds one document: length-prefixed collection name,
/// URI, and doc_codec blob. Segments are only ever written whole (temp +
/// fsync + atomic rename) before a manifest references them, so a valid
/// manifest never points at a torn segment — corruption seen by the reader
/// means bit rot or tampering, and is quarantined per block (a framing
/// violation abandons the rest of the file, since block boundaries can no
/// longer be trusted).

struct SegmentEntry {
  std::string collection;
  std::string uri;
  DocumentPtr document;  ///< sealed
};

/// Outcome counters of reading one segment; aggregated into RecoveryResult
/// and ScrubReport.
struct SegmentReadStats {
  size_t blocks_ok = 0;
  size_t blocks_corrupt = 0;   ///< CRC mismatch or undecodable payload
  bool header_valid = false;   ///< magic/format/shard header parsed
  bool truncated = false;      ///< framing violation; tail abandoned
};

/// Serializes `entries` into segment-file bytes for `shard`.
std::string BuildSegmentBytes(uint32_t shard,
                              const std::vector<SegmentEntry>& entries);

/// Reads the segment at `path`, invoking `sink` for every intact block.
/// `sink` may be null (scrub: verify checksums only — payloads are CRC-
/// checked but not decoded). Never throws on corruption — bad blocks are
/// counted and skipped; a broken header or framing stops the scan with the
/// stats telling the caller what was lost. I/O failures (unreadable file)
/// throw kXQSV0007.
SegmentReadStats ReadSegmentFile(
    const std::string& path, uint32_t expected_shard,
    const std::function<void(SegmentEntry)>* sink);

}  // namespace xqa::storage

#endif  // XQA_STORAGE_SEGMENT_H_

#include "storage/format.h"

#include <cstdio>
#include <cstring>

namespace xqa::storage {

std::string ManifestFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "MANIFEST-%06llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string JournalFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "journal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string SegmentFileName(uint64_t seq, uint32_t shard) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "seg-%06llu-%04u.seg",
                static_cast<unsigned long long>(seq), shard);
  return buf;
}

namespace {

bool ParseSeqDigits(std::string_view digits, uint64_t* seq) {
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

}  // namespace

bool ParseManifestFileName(std::string_view name, uint64_t* seq) {
  constexpr std::string_view kPrefix = "MANIFEST-";
  if (name.size() <= kPrefix.size() || name.substr(0, kPrefix.size()) != kPrefix) {
    return false;
  }
  return ParseSeqDigits(name.substr(kPrefix.size()), seq);
}

bool ParseStorageFileSeq(std::string_view name, uint64_t* seq) {
  if (ParseManifestFileName(name, seq)) return true;
  for (std::string_view prefix : {std::string_view("seg-"),
                                  std::string_view("journal-")}) {
    if (name.size() > prefix.size() &&
        name.substr(0, prefix.size()) == prefix) {
      std::string_view rest = name.substr(prefix.size());
      size_t end = rest.find_first_not_of("0123456789");
      if (end == std::string_view::npos || end == 0) return false;
      return ParseSeqDigits(rest.substr(0, end), seq);
    }
  }
  return false;
}

void AppendU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void AppendU32(std::string* out, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xFF);
  buf[1] = static_cast<char>((value >> 8) & 0xFF);
  buf[2] = static_cast<char>((value >> 16) & 0xFF);
  buf[3] = static_cast<char>((value >> 24) & 0xFF);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t value) {
  AppendU32(out, static_cast<uint32_t>(value & 0xFFFFFFFFu));
  AppendU32(out, static_cast<uint32_t>(value >> 32));
}

void AppendBytes(std::string* out, std::string_view bytes) {
  AppendU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes.data(), bytes.size());
}

bool ByteReader::ReadU8(uint8_t* value) {
  if (remaining() < 1) return false;
  *value = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool ByteReader::ReadU32(uint32_t* value) {
  if (remaining() < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data() + pos_);
  *value = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  pos_ += 4;
  return true;
}

bool ByteReader::ReadU64(uint64_t* value) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
  *value = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool ByteReader::ReadBytes(std::string_view* bytes) {
  uint32_t size = 0;
  if (!ReadU32(&size)) return false;
  return ReadRaw(size, bytes);
}

bool ByteReader::ReadRaw(size_t size, std::string_view* bytes) {
  if (remaining() < size) return false;
  *bytes = data_.substr(pos_, size);
  pos_ += size;
  return true;
}

}  // namespace xqa::storage

#include "storage/durable_store.h"

#include <sstream>
#include <utility>

#include "base/crc32c.h"
#include "base/error.h"
#include "base/fault_injection.h"
#include "base/json_escape.h"
#include "storage/format.h"

namespace xqa::storage {

namespace {

[[noreturn]] void ThrowStorage(const std::string& what) {
  throw XQueryError(ErrorCode::kXQSV0007, what);
}

}  // namespace

DurableStore::DurableStore(StorageOptions options)
    : options_(std::move(options)) {}

DurableStore::~DurableStore() = default;

uint64_t DurableStore::manifest_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return has_manifest_ ? current_.seq : 0;
}

SegmentReadStats DurableStore::ReadSegmentWithRetry(
    const std::string& path, uint32_t shard,
    const std::function<void(SegmentEntry)>* sink) {
  // The fault site models a transient read error (EINTR, a device hiccup).
  // One retry keeps an injected trip from changing the recovery outcome —
  // ReadSegmentFile touches the sink only after the whole file is in memory,
  // so a failed first attempt has applied nothing and the retry is safe.
  // Persistent failure (real corruption, missing file) still throws and the
  // caller quarantines the segment.
  try {
    XQA_FAULT_POINT("storage.recover_read", ErrorCode::kXQSV0007);
    return ReadSegmentFile(path, shard, sink);
  } catch (const XQueryError&) {
    return ReadSegmentFile(path, shard, sink);
  }
}

RecoveryResult DurableStore::Open(CorpusSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  CreateDirs(options_.data_dir);
  recovery_ = RecoveryResult();

  std::optional<Manifest> manifest = FindNewestValidManifest(
      options_.data_dir, &recovery_.manifests_quarantined);
  uint64_t base_version = 0;
  if (manifest.has_value()) {
    recovery_.manifest_found = true;
    recovery_.manifest_seq = manifest->seq;
    base_version = manifest->corpus_version;
    std::function<void(SegmentEntry)> apply = [&](SegmentEntry entry) {
      if (sink != nullptr) {
        sink->ApplyPut(entry.collection, entry.uri, std::move(entry.document));
      }
      ++recovery_.documents_loaded;
    };
    for (const SegmentRef& ref : manifest->segments) {
      const std::string path = options_.data_dir + "/" + ref.file;
      try {
        SegmentReadStats stats = ReadSegmentWithRetry(path, ref.shard, &apply);
        recovery_.segment_blocks_corrupt += stats.blocks_corrupt;
        if (!stats.header_valid) ++recovery_.segments_quarantined;
      } catch (const XQueryError&) {
        ++recovery_.segments_quarantined;
      }
    }
    current_ = std::move(*manifest);
    has_manifest_ = true;
  } else {
    current_ = Manifest();
    has_manifest_ = false;
  }

  // The journal holding mutations after the manifest — or, before the first
  // checkpoint ever, the generation-0 journal by naming convention.
  const std::string journal_name =
      has_manifest_ ? current_.journal_file : JournalFileName(0);
  journal_path_ = options_.data_dir + "/" + journal_name;
  uint64_t version = base_version;
  bool journal_reusable = false;
  if (FileExists(journal_path_)) {
    try {
      XQA_FAULT_POINT("storage.recover_read", ErrorCode::kXQSV0007);
    } catch (const XQueryError&) {
      // Transient; the scan below reads the file itself.
    }
    // First pass validates the header (including that the journal really
    // belongs to this generation) before any record is applied.
    JournalScanResult probe;
    try {
      probe = ScanJournalFile(journal_path_, nullptr);
    } catch (const XQueryError&) {
      probe = JournalScanResult();  // unreadable: rebuild it fresh below
    }
    if (probe.header_valid && probe.base_version == base_version) {
      std::function<void(JournalRecord)> replay = [&](JournalRecord record) {
        ++version;  // one version bump per record, matching the live path
        switch (record.op) {
          case JournalOp::kPut:
          case JournalOp::kBulkLoad:
            for (auto& [uri, document] : record.documents) {
              if (sink != nullptr) {
                sink->ApplyPut(record.collection, uri, std::move(document));
              }
              ++recovery_.documents_loaded;
            }
            break;
          case JournalOp::kRemove:
            if (sink != nullptr) {
              sink->ApplyRemove(record.collection, record.uri);
            }
            break;
        }
      };
      JournalScanResult scan = ScanJournalFile(journal_path_, &replay);
      recovery_.journal_records_applied = scan.records_valid;
      recovery_.journal_records_dropped = scan.records_dropped;
      recovery_.journal_dropped_bytes = scan.dropped_bytes;
      recovery_.journal_tail_torn = scan.dropped_bytes > 0;
      journal_.OpenTruncated(journal_path_, scan.valid_prefix_bytes);
      journal_reusable = true;
    } else {
      // Header torn or from another generation: nothing in it can be
      // attributed to this corpus. Count the loss and start over.
      recovery_.journal_tail_torn = true;
      recovery_.journal_dropped_bytes = probe.dropped_bytes;
    }
  }
  if (!journal_reusable) {
    journal_.Create(journal_path_, BuildJournalHeader(base_version),
                    options_.fsync);
  }

  recovery_.corpus_version = version;
  if (sink != nullptr) sink->RestoreVersion(version);

  GarbageCollectLocked();
  return recovery_;
}

void DurableStore::AppendRecordLocked(std::string_view payload) {
  if (!journal_.is_open() || journal_.broken()) {
    ++journal_append_failures_;
    ThrowStorage("journal is not writable; checkpoint to rotate it");
  }
  try {
    XQA_FAULT_POINT("storage.journal_append", ErrorCode::kXQSV0007);
    journal_.Append(FrameJournalRecord(payload), options_.fsync);
  } catch (const XQueryError&) {
    ++journal_append_failures_;
    throw;
  }
  ++journal_appends_;
}

void DurableStore::JournalPut(const std::string& collection,
                              const std::string& uri,
                              const Document& document) {
  std::lock_guard<std::mutex> lock(mutex_);
  AppendRecordLocked(EncodePutRecord(collection, uri, document));
}

void DurableStore::JournalRemove(const std::string& collection,
                                 const std::string& uri) {
  std::lock_guard<std::mutex> lock(mutex_);
  AppendRecordLocked(EncodeRemoveRecord(collection, uri));
}

void DurableStore::JournalBulkLoad(
    const std::string& collection,
    const std::vector<std::pair<std::string, const Document*>>& documents) {
  std::lock_guard<std::mutex> lock(mutex_);
  AppendRecordLocked(EncodeBulkLoadRecord(collection, documents));
}

void DurableStore::Checkpoint(const CorpusImage& image) {
  std::lock_guard<std::mutex> lock(mutex_);
  Manifest next;
  next.seq = (has_manifest_ ? current_.seq : 0) + 1;
  next.corpus_version = image.version;
  next.shard_count = static_cast<uint32_t>(image.shards.size());
  next.journal_file = JournalFileName(next.seq);

  // Everything below is written under the *next* sequence number; nothing
  // the current generation references is touched, so an abort anywhere
  // before the manifest rename leaves the store exactly as it was.
  std::vector<std::string> written;
  std::string header = BuildJournalHeader(image.version);
  try {
    for (uint32_t shard = 0; shard < image.shards.size(); ++shard) {
      if (image.shards[shard].empty()) continue;
      std::vector<SegmentEntry> entries;
      entries.reserve(image.shards[shard].size());
      for (const CorpusImage::Entry& e : image.shards[shard]) {
        entries.push_back(SegmentEntry{e.collection, e.uri, e.document});
      }
      std::string bytes = BuildSegmentBytes(shard, entries);
      SegmentRef ref;
      ref.shard = shard;
      ref.file = SegmentFileName(next.seq, shard);
      ref.file_bytes = bytes.size();
      ref.file_crc = Crc32c(bytes);
      XQA_FAULT_POINT("storage.segment_write", ErrorCode::kXQSV0007);
      WriteFileDurable(options_.data_dir + "/" + ref.file, bytes,
                       options_.fsync);
      written.push_back(ref.file);
      next.segments.push_back(std::move(ref));
    }
    {
      // The new generation's journal must exist before the manifest names
      // it (recovery tolerates the opposite order, but never needs to).
      AppendFile fresh;
      XQA_FAULT_POINT("storage.journal_append", ErrorCode::kXQSV0007);
      fresh.Create(options_.data_dir + "/" + next.journal_file, header,
                   options_.fsync);
      written.push_back(next.journal_file);
      fresh.Close();
    }
    // The atomic rename inside WriteManifestFile is the commit point.
    XQA_FAULT_POINT("storage.manifest_write", ErrorCode::kXQSV0007);
    WriteManifestFile(options_.data_dir, next, options_.fsync);
  } catch (...) {
    ++checkpoint_failures_;
    for (const std::string& name : written) {
      RemoveFileIfExists(options_.data_dir + "/" + name);
    }
    throw;
  }

  // Committed. Swap the journal to the new generation and drop the old one.
  journal_.Close();
  journal_path_ = options_.data_dir + "/" + next.journal_file;
  journal_.OpenTruncated(journal_path_, header.size());
  current_ = std::move(next);
  has_manifest_ = true;
  ++checkpoints_;
  GarbageCollectLocked();
}

ScrubReport DurableStore::Scrub() {
  std::lock_guard<std::mutex> lock(mutex_);
  ScrubReport report;
  report.manifest_seq = has_manifest_ ? current_.seq : 0;
  if (has_manifest_) {
    for (const SegmentRef& ref : current_.segments) {
      ++report.segments_checked;
      const std::string path = options_.data_dir + "/" + ref.file;
      bool file_ok = false;
      try {
        std::string bytes = ReadFileToString(path);
        file_ok = bytes.size() == ref.file_bytes &&
                  Crc32c(bytes) == ref.file_crc;
      } catch (const XQueryError&) {
        file_ok = false;
      }
      SegmentReadStats stats;
      bool readable = true;
      try {
        stats = ReadSegmentFile(path, ref.shard, nullptr);
      } catch (const XQueryError&) {
        readable = false;
      }
      report.blocks_checked += stats.blocks_ok + stats.blocks_corrupt;
      report.blocks_corrupt += stats.blocks_corrupt;
      if (!readable || !file_ok || !stats.header_valid) {
        ++report.segments_corrupt;
      }
    }
  }
  if (journal_.is_open()) {
    JournalScanResult scan;
    try {
      scan = ScanJournalFile(journal_path_, nullptr);
    } catch (const XQueryError&) {
      scan = JournalScanResult();
      ++report.journal_records_corrupt;
    }
    report.journal_records = scan.records_valid;
    report.journal_records_corrupt += scan.records_dropped;
    if (!scan.header_valid) ++report.journal_records_corrupt;
  }
  ++scrubs_;
  last_scrub_ = report;
  return report;
}

void DurableStore::GarbageCollectLocked() {
  // Only files of *superseded* generations (seq below the committed
  // manifest) and leftover temp files are deleted. Files with a newer or
  // unparseable sequence stay on disk: quarantine means keep and count,
  // never destroy possible evidence.
  const uint64_t live_seq = has_manifest_ ? current_.seq : 0;
  std::vector<std::string> names;
  try {
    names = ListDirectory(options_.data_dir);
  } catch (const XQueryError&) {
    return;  // GC is best-effort
  }
  for (const std::string& name : names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      RemoveFileIfExists(options_.data_dir + "/" + name);
      continue;
    }
    uint64_t seq = 0;
    if ((ParseManifestFileName(name, &seq) ||
         ParseStorageFileSeq(name, &seq)) &&
        seq < live_seq) {
      RemoveFileIfExists(options_.data_dir + "/" + name);
    }
  }
}

std::string DurableStore::StatsJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"data_dir\": \"" << JsonEscape(options_.data_dir) << "\""
      << ", \"fsync\": \""
      << (options_.fsync == FsyncPolicy::kAlways ? "always" : "never") << "\""
      << ", \"manifest_seq\": " << (has_manifest_ ? current_.seq : 0)
      << ", \"segments\": " << (has_manifest_ ? current_.segments.size() : 0)
      << ", \"journal_bytes\": " << journal_.size()
      << ", \"journal_appends\": " << journal_appends_
      << ", \"journal_append_failures\": " << journal_append_failures_
      << ", \"checkpoints\": " << checkpoints_
      << ", \"checkpoint_failures\": " << checkpoint_failures_
      << ", \"scrubs\": " << scrubs_;
  out << ", \"recovery\": {"
      << "\"manifest_found\": " << (recovery_.manifest_found ? "true" : "false")
      << ", \"manifest_seq\": " << recovery_.manifest_seq
      << ", \"corpus_version\": " << recovery_.corpus_version
      << ", \"documents_loaded\": " << recovery_.documents_loaded
      << ", \"manifests_quarantined\": " << recovery_.manifests_quarantined
      << ", \"segments_quarantined\": " << recovery_.segments_quarantined
      << ", \"segment_blocks_corrupt\": " << recovery_.segment_blocks_corrupt
      << ", \"journal_records_applied\": " << recovery_.journal_records_applied
      << ", \"journal_records_dropped\": " << recovery_.journal_records_dropped
      << ", \"journal_tail_torn\": "
      << (recovery_.journal_tail_torn ? "true" : "false") << "}";
  if (last_scrub_.has_value()) {
    out << ", \"last_scrub\": {"
        << "\"manifest_seq\": " << last_scrub_->manifest_seq
        << ", \"segments_checked\": " << last_scrub_->segments_checked
        << ", \"segments_corrupt\": " << last_scrub_->segments_corrupt
        << ", \"blocks_checked\": " << last_scrub_->blocks_checked
        << ", \"blocks_corrupt\": " << last_scrub_->blocks_corrupt
        << ", \"journal_records\": " << last_scrub_->journal_records
        << ", \"journal_records_corrupt\": "
        << last_scrub_->journal_records_corrupt
        << ", \"clean\": " << (last_scrub_->clean() ? "true" : "false") << "}";
  } else {
    out << ", \"last_scrub\": null";
  }
  out << "}";
  return out.str();
}

}  // namespace xqa::storage

#ifndef XQA_STORAGE_DURABLE_STORE_H_
#define XQA_STORAGE_DURABLE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "base/file_io.h"
#include "storage/journal.h"
#include "storage/manifest.h"
#include "storage/segment.h"
#include "xml/node.h"

namespace xqa::storage {

/// Configuration of one DurableStore (docs/STORAGE.md).
struct StorageOptions {
  /// Directory holding segments, journals, and manifests. Created on Open.
  std::string data_dir;

  /// kAlways is the crash-durability contract; kNever keeps the format but
  /// only survives clean exits (tests, benches, bulk seeding).
  FsyncPolicy fsync = FsyncPolicy::kAlways;
};

/// The in-memory corpus as the storage layer sees it. DurableStore rebuilds
/// a corpus through this interface during recovery and never touches
/// CollectionStore directly, so storage depends only on base + xml.
/// Recovery calls arrive single-threaded, in deterministic order (segments
/// shard-major, then journal records in append order).
class CorpusSink {
 public:
  virtual ~CorpusSink() = default;

  /// Insert or replace (collection, uri). `document` is sealed. Must not
  /// journal and must not bump the corpus version — RestoreVersion sets it.
  virtual void ApplyPut(const std::string& collection, const std::string& uri,
                        DocumentPtr document) = 0;

  /// Remove (collection, uri); absent entries are a no-op.
  virtual void ApplyRemove(const std::string& collection,
                           const std::string& uri) = 0;

  /// Install the recovered corpus version (manifest base + replayed
  /// journal records, one bump per record).
  virtual void RestoreVersion(uint64_t version) = 0;
};

/// Point-in-time copy of the corpus for Checkpoint, built by the owner under
/// its own mutation locks. Entries are grouped by shard so each segment file
/// holds exactly one shard's documents.
struct CorpusImage {
  struct Entry {
    std::string collection;
    std::string uri;
    DocumentPtr document;  ///< sealed
  };
  uint64_t version = 0;
  std::vector<std::vector<Entry>> shards;  ///< index = shard
};

/// What Open found and did (docs/STORAGE.md recovery invariants). Corruption
/// is counted, never thrown — a damaged data directory yields the largest
/// provably-consistent corpus, not a crash.
struct RecoveryResult {
  bool manifest_found = false;
  uint64_t manifest_seq = 0;       ///< generation recovered from (0 = none)
  uint64_t corpus_version = 0;     ///< version handed to RestoreVersion
  size_t documents_loaded = 0;     ///< segment blocks + journal puts applied
  size_t manifests_quarantined = 0;  ///< newer manifests that failed validation
  size_t segments_quarantined = 0;   ///< segments unreadable or header-invalid
  size_t segment_blocks_corrupt = 0;  ///< blocks skipped inside readable segments
  size_t journal_records_applied = 0;
  size_t journal_records_dropped = 0;  ///< records past the valid prefix
  bool journal_tail_torn = false;      ///< journal truncated to valid prefix
  uint64_t journal_dropped_bytes = 0;
};

/// Outcome of one Scrub pass: every checksum in the current generation
/// re-verified (whole-file CRCs against the manifest, per-block CRCs inside
/// segments, per-record CRCs in the journal).
struct ScrubReport {
  uint64_t manifest_seq = 0;
  size_t segments_checked = 0;
  size_t segments_corrupt = 0;  ///< unreadable, size/CRC mismatch, bad header
  size_t blocks_checked = 0;
  size_t blocks_corrupt = 0;
  size_t journal_records = 0;
  size_t journal_records_corrupt = 0;
  bool clean() const {
    return segments_corrupt == 0 && blocks_corrupt == 0 &&
           journal_records_corrupt == 0;
  }
};

/// Durable corpus storage under CollectionStore (docs/STORAGE.md): immutable
/// checksummed segment files per shard, an append-only write-ahead ingest
/// journal between checkpoints, and a MANIFEST whose atomic rename is the
/// checkpoint commit point.
///
/// Invariants:
///  - Every acknowledged mutation is in the journal before it is visible in
///    memory (the owner calls JournalPut/Remove/BulkLoad first and applies
///    only on success), so kill -9 at any instant loses nothing acknowledged
///    under FsyncPolicy::kAlways.
///  - A failed checkpoint leaves the previous generation fully intact: new
///    segments and the new journal are written under the next sequence
///    number and become live only when MANIFEST-<seq> renames into place.
///  - Recovery never crashes on corruption: invalid manifests fall back to
///    the previous generation, corrupt segments/blocks are quarantined and
///    counted, and the journal replays to its torn-tail-safe prefix.
///
/// Thread safety: Open is called once before concurrent use. Journal*,
/// Checkpoint, Scrub, and StatsJson are internally locked, but the WAL
/// ordering contract (append order == apply order) is the owner's to keep —
/// CollectionStore serializes mutations on its durable mutex around the
/// journal-then-apply pair.
class DurableStore {
 public:
  explicit DurableStore(StorageOptions options);
  ~DurableStore();
  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Recovers the corpus into `sink` (see RecoveryResult), opens the journal
  /// for appending (truncated to its valid prefix), and garbage-collects
  /// files of superseded generations plus leftover temp files. Throws
  /// kXQSV0007 only for environmental failures (directory cannot be created
  /// or listed) — corruption recovers and counts.
  RecoveryResult Open(CorpusSink* sink);

  /// Write-ahead append of one mutation; fsynced per options. Throws
  /// kXQSV0007 on failure, in which case the caller must not apply the
  /// mutation in memory.
  void JournalPut(const std::string& collection, const std::string& uri,
                  const Document& document);
  void JournalRemove(const std::string& collection, const std::string& uri);
  /// One record for the whole batch — one version bump on replay, matching
  /// BulkLoad's single bump.
  void JournalBulkLoad(
      const std::string& collection,
      const std::vector<std::pair<std::string, const Document*>>& documents);

  /// Writes `image` as the next generation: one segment per non-empty shard,
  /// a fresh journal based at image.version, then the manifest (the commit).
  /// On success the journal swaps to the new file and older generations are
  /// garbage-collected. On failure (I/O or injected fault) the previous
  /// generation — manifest, segments, and open journal — is untouched and
  /// partially written files are removed; throws kXQSV0007.
  void Checkpoint(const CorpusImage& image);

  /// Re-verifies every checksum of the current generation. Read-only apart
  /// from counters; holds the store lock, so concurrent ingest waits.
  ScrubReport Scrub();

  /// The "storage" object of the service metrics scrape
  /// (docs/OBSERVABILITY.md): directory, generation, recovery outcome,
  /// journal/checkpoint counters, and the last scrub.
  std::string StatsJson() const;

  const RecoveryResult& recovery() const { return recovery_; }
  uint64_t manifest_seq() const;
  const StorageOptions& options() const { return options_; }

 private:
  void AppendRecordLocked(std::string_view payload);
  void GarbageCollectLocked();
  SegmentReadStats ReadSegmentWithRetry(
      const std::string& path, uint32_t shard,
      const std::function<void(SegmentEntry)>* sink);

  StorageOptions options_;

  mutable std::mutex mutex_;
  Manifest current_;          ///< seq 0 + empty until the first checkpoint
  bool has_manifest_ = false;
  AppendFile journal_;
  std::string journal_path_;
  RecoveryResult recovery_;
  std::optional<ScrubReport> last_scrub_;

  // Counters for StatsJson, under mutex_.
  uint64_t journal_appends_ = 0;
  uint64_t journal_append_failures_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t checkpoint_failures_ = 0;
  uint64_t scrubs_ = 0;
};

}  // namespace xqa::storage

#endif  // XQA_STORAGE_DURABLE_STORE_H_

#include "storage/manifest.h"

#include <algorithm>

#include "base/crc32c.h"
#include "base/error.h"
#include "storage/format.h"

namespace xqa::storage {

void WriteManifestFile(const std::string& dir, const Manifest& manifest,
                       FsyncPolicy policy) {
  std::string payload;
  payload.append(kManifestMagic.data(), kManifestMagic.size());
  AppendU32(&payload, kFormatVersion);
  AppendU64(&payload, manifest.seq);
  AppendU64(&payload, manifest.corpus_version);
  AppendU32(&payload, manifest.shard_count);
  AppendBytes(&payload, manifest.journal_file);
  AppendU32(&payload, static_cast<uint32_t>(manifest.segments.size()));
  for (const SegmentRef& segment : manifest.segments) {
    AppendU32(&payload, segment.shard);
    AppendBytes(&payload, segment.file);
    AppendU64(&payload, segment.file_bytes);
    AppendU32(&payload, segment.file_crc);
  }
  AppendU32(&payload, Crc32c(payload));
  WriteFileDurable(dir + "/" + ManifestFileName(manifest.seq), payload,
                   policy);
}

std::optional<Manifest> LoadManifestFile(const std::string& path,
                                         uint64_t expected_seq) {
  std::string bytes;
  try {
    bytes = ReadFileToString(path);
  } catch (const XQueryError&) {
    return std::nullopt;
  }
  if (bytes.size() < 4) return std::nullopt;
  std::string_view payload(bytes.data(), bytes.size() - 4);
  ByteReader crc_reader(std::string_view(bytes).substr(bytes.size() - 4));
  uint32_t expected_crc = 0;
  if (!crc_reader.ReadU32(&expected_crc) ||
      Crc32c(payload) != expected_crc) {
    return std::nullopt;
  }

  ByteReader reader(payload);
  std::string_view magic;
  uint32_t format = 0;
  Manifest manifest;
  uint32_t segment_count = 0;
  std::string_view journal_file;
  if (!reader.ReadRaw(kManifestMagic.size(), &magic) ||
      magic != kManifestMagic || !reader.ReadU32(&format) ||
      format != kFormatVersion || !reader.ReadU64(&manifest.seq) ||
      manifest.seq != expected_seq ||
      !reader.ReadU64(&manifest.corpus_version) ||
      !reader.ReadU32(&manifest.shard_count) ||
      !reader.ReadBytes(&journal_file) || !reader.ReadU32(&segment_count)) {
    return std::nullopt;
  }
  manifest.journal_file.assign(journal_file);
  manifest.segments.reserve(segment_count);
  for (uint32_t i = 0; i < segment_count; ++i) {
    SegmentRef segment;
    std::string_view file;
    if (!reader.ReadU32(&segment.shard) || !reader.ReadBytes(&file) ||
        !reader.ReadU64(&segment.file_bytes) ||
        !reader.ReadU32(&segment.file_crc)) {
      return std::nullopt;
    }
    segment.file.assign(file);
    manifest.segments.push_back(std::move(segment));
  }
  if (!reader.AtEnd()) return std::nullopt;
  return manifest;
}

std::optional<Manifest> FindNewestValidManifest(const std::string& dir,
                                                size_t* quarantined) {
  std::vector<uint64_t> seqs;
  for (const std::string& name : ListDirectory(dir)) {
    uint64_t seq = 0;
    if (ParseManifestFileName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.rbegin(), seqs.rend());
  for (uint64_t seq : seqs) {
    std::optional<Manifest> manifest =
        LoadManifestFile(dir + "/" + ManifestFileName(seq), seq);
    if (manifest.has_value()) return manifest;
    if (quarantined != nullptr) ++*quarantined;
  }
  return std::nullopt;
}

}  // namespace xqa::storage

#ifndef XQA_STORAGE_DOC_CODEC_H_
#define XQA_STORAGE_DOC_CODEC_H_

#include <string>
#include <string_view>

#include "xml/node.h"

namespace xqa::storage {

/// Binary (de)serialization of sealed documents — the payload format inside
/// segment blocks and journal Put records (docs/STORAGE.md).
///
/// A blob is a name table (every distinct element/attribute/PI name once)
/// followed by the tree in preorder, each node as a fixed-shape record with
/// its child/attribute counts inline. Loading therefore skips everything the
/// XML parser must do — tokenizing, entity decoding, attribute-syntax
/// checks, whitespace stripping — and reduces to arena appends plus one
/// SealOrder, which is what makes recovery's cold start cheaper than
/// re-parsing the corpus (bench_service "cold_start").
///
/// Integrity: blobs travel under a CRC32C stamped by the segment/journal
/// framing, so decode errors mean either a checksum collision or a writer
/// bug. DecodeDocument is nevertheless hardened — every length, count, name
/// index, and nesting depth is validated against the buffer before use, and
/// malformed input throws XQueryError(kXQSV0007) (the caller quarantines)
/// rather than reading out of bounds.

/// Appends the encoded form of `document` (which must be sealed) to `out`.
void EncodeDocument(const Document& document, std::string* out);

/// Decodes one blob into a fresh sealed document. Throws kXQSV0007 on any
/// structural violation.
DocumentPtr DecodeDocument(std::string_view blob);

}  // namespace xqa::storage

#endif  // XQA_STORAGE_DOC_CODEC_H_

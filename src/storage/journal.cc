#include "storage/journal.h"

#include <functional>
#include <utility>

#include "base/crc32c.h"
#include "base/error.h"
#include "storage/doc_codec.h"
#include "storage/format.h"

namespace xqa::storage {

namespace {

/// A corrupt length prefix larger than this is torn framing even when it
/// happens to fit the remaining file.
constexpr uint32_t kMaxRecordPayload = 1u << 30;

}  // namespace

std::string EncodePutRecord(const std::string& collection,
                            const std::string& uri,
                            const Document& document) {
  std::string payload;
  AppendU8(&payload, static_cast<uint8_t>(JournalOp::kPut));
  AppendBytes(&payload, collection);
  AppendBytes(&payload, uri);
  std::string blob;
  EncodeDocument(document, &blob);
  AppendBytes(&payload, blob);
  return payload;
}

std::string EncodeRemoveRecord(const std::string& collection,
                               const std::string& uri) {
  std::string payload;
  AppendU8(&payload, static_cast<uint8_t>(JournalOp::kRemove));
  AppendBytes(&payload, collection);
  AppendBytes(&payload, uri);
  return payload;
}

std::string EncodeBulkLoadRecord(
    const std::string& collection,
    const std::vector<std::pair<std::string, const Document*>>& documents) {
  std::string payload;
  AppendU8(&payload, static_cast<uint8_t>(JournalOp::kBulkLoad));
  AppendBytes(&payload, collection);
  AppendU32(&payload, static_cast<uint32_t>(documents.size()));
  std::string blob;
  for (const auto& [uri, document] : documents) {
    AppendBytes(&payload, uri);
    blob.clear();
    EncodeDocument(*document, &blob);
    AppendBytes(&payload, blob);
  }
  return payload;
}

std::string FrameJournalRecord(std::string_view payload) {
  std::string framed;
  framed.reserve(payload.size() + 8);
  AppendU32(&framed, static_cast<uint32_t>(payload.size()));
  framed.append(payload.data(), payload.size());
  AppendU32(&framed, Crc32c(payload));
  return framed;
}

std::string BuildJournalHeader(uint64_t base_version) {
  std::string header;
  header.append(kJournalMagic.data(), kJournalMagic.size());
  AppendU32(&header, kFormatVersion);
  AppendU64(&header, base_version);
  AppendU32(&header, Crc32c(header));
  return header;
}

namespace {

/// Decodes one CRC-verified payload; returns false (caller stops the scan)
/// on structural violations — a checksum collision or writer bug.
bool DecodeRecordPayload(std::string_view payload, JournalRecord* record) {
  ByteReader reader(payload);
  uint8_t op = 0;
  std::string_view collection;
  if (!reader.ReadU8(&op) || !reader.ReadBytes(&collection)) return false;
  record->collection.assign(collection);
  switch (static_cast<JournalOp>(op)) {
    case JournalOp::kPut: {
      record->op = JournalOp::kPut;
      std::string_view uri;
      std::string_view blob;
      if (!reader.ReadBytes(&uri) || !reader.ReadBytes(&blob) ||
          !reader.AtEnd()) {
        return false;
      }
      try {
        record->documents.emplace_back(std::string(uri),
                                       DecodeDocument(blob));
      } catch (const XQueryError&) {
        return false;
      }
      return true;
    }
    case JournalOp::kRemove: {
      record->op = JournalOp::kRemove;
      std::string_view uri;
      if (!reader.ReadBytes(&uri) || !reader.AtEnd()) return false;
      record->uri.assign(uri);
      return true;
    }
    case JournalOp::kBulkLoad: {
      record->op = JournalOp::kBulkLoad;
      uint32_t count = 0;
      if (!reader.ReadU32(&count) ||
          static_cast<size_t>(count) > reader.remaining() / 8) {
        return false;
      }
      record->documents.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        std::string_view uri;
        std::string_view blob;
        if (!reader.ReadBytes(&uri) || !reader.ReadBytes(&blob)) return false;
        try {
          record->documents.emplace_back(std::string(uri),
                                         DecodeDocument(blob));
        } catch (const XQueryError&) {
          return false;
        }
      }
      return reader.AtEnd();
    }
    default:
      return false;
  }
}

}  // namespace

JournalScanResult ScanJournalFile(
    const std::string& path,
    const std::function<void(JournalRecord)>* handler) {
  JournalScanResult result;
  std::string bytes = ReadFileToString(path);
  ByteReader reader(bytes);

  std::string_view magic;
  uint32_t format = 0;
  std::string_view header_crc_input(bytes.data(),
                                    std::min<size_t>(bytes.size(), 20));
  uint32_t header_crc = 0;
  if (!reader.ReadRaw(kJournalMagic.size(), &magic) ||
      magic != kJournalMagic || !reader.ReadU32(&format) ||
      format != kFormatVersion || !reader.ReadU64(&result.base_version) ||
      !reader.ReadU32(&header_crc) ||
      Crc32c(header_crc_input) != header_crc) {
    // Header invalid: nothing in the file is trustworthy. The whole file is
    // the dropped tail.
    result.dropped_bytes = bytes.size();
    return result;
  }
  result.header_valid = true;
  result.valid_prefix_bytes = reader.position();

  while (!reader.AtEnd()) {
    uint32_t payload_len = 0;
    std::string_view payload;
    uint32_t expected_crc = 0;
    if (!reader.ReadU32(&payload_len) || payload_len > kMaxRecordPayload ||
        !reader.ReadRaw(payload_len, &payload) ||
        !reader.ReadU32(&expected_crc)) {
      // Torn tail: mid-length-prefix, mid-payload, or mid-checksum.
      ++result.records_dropped;
      break;
    }
    if (Crc32c(payload) != expected_crc) {
      // Bit rot or a torn rewrite; later record boundaries would only be
      // trustworthy by luck, so the valid prefix ends here.
      ++result.records_dropped;
      break;
    }
    JournalRecord record;
    if (!DecodeRecordPayload(payload, &record)) {
      ++result.records_dropped;
      break;
    }
    if (handler != nullptr) (*handler)(std::move(record));
    ++result.records_valid;
    result.valid_prefix_bytes = reader.position();
  }
  result.dropped_bytes = bytes.size() - result.valid_prefix_bytes;
  return result;
}

}  // namespace xqa::storage

#include "storage/doc_codec.h"

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/error.h"
#include "storage/format.h"

namespace xqa::storage {

namespace {

/// Nesting bound for decode: far above anything the parser (depth <= 1000)
/// or the evaluator's construction guard (<= 4096) can produce, low enough
/// that a corrupt child count cannot grow the decode stack unboundedly.
constexpr size_t kMaxDecodeDepth = 1 << 16;

[[noreturn]] void ThrowCorrupt(const char* what) {
  ThrowError(ErrorCode::kXQSV0007,
             std::string("storage decode: malformed document blob (") + what +
                 ")");
}

/// First-encounter name interning for the blob's local name table. Indexes
/// are assigned in preorder-first-use order, so encoding is deterministic
/// for a given tree.
class NameTable {
 public:
  uint32_t IdOf(const std::string& name) {
    auto [it, inserted] =
        ids_.try_emplace(name, static_cast<uint32_t>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
};

void CollectNames(const Node* root, NameTable* table, size_t* record_count) {
  std::vector<const Node*> stack{root};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++*record_count;
    switch (node->kind()) {
      case NodeKind::kElement:
      case NodeKind::kProcessingInstruction:
        (void)table->IdOf(node->name());
        break;
      default:
        break;
    }
    for (const Node* attribute : node->attributes()) {
      (void)table->IdOf(attribute->name());
      ++*record_count;
    }
    const std::vector<Node*>& children = node->children();
    for (size_t i = children.size(); i > 0; --i) {
      stack.push_back(children[i - 1]);
    }
  }
}

void EncodeNodeRecord(const Node* node, NameTable* table, std::string* out) {
  AppendU8(out, static_cast<uint8_t>(node->kind()));
  switch (node->kind()) {
    case NodeKind::kDocument:
      break;
    case NodeKind::kElement: {
      AppendU32(out, table->IdOf(node->name()));
      AppendU32(out, static_cast<uint32_t>(node->attributes().size()));
      for (const Node* attribute : node->attributes()) {
        AppendU32(out, table->IdOf(attribute->name()));
        AppendBytes(out, attribute->content());
      }
      break;
    }
    case NodeKind::kProcessingInstruction:
      AppendU32(out, table->IdOf(node->name()));
      AppendBytes(out, node->content());
      break;
    case NodeKind::kText:
    case NodeKind::kComment:
      AppendBytes(out, node->content());
      break;
    case NodeKind::kAttribute:
      // Attributes are encoded inline with their element, never as a
      // standalone preorder record.
      ThrowCorrupt("free-standing attribute");
  }
  if (node->kind() == NodeKind::kDocument ||
      node->kind() == NodeKind::kElement) {
    AppendU32(out, static_cast<uint32_t>(node->children().size()));
  }
}

}  // namespace

void EncodeDocument(const Document& document, std::string* out) {
  const Node* root = document.root();
  NameTable table;
  size_t record_count = 0;
  CollectNames(root, &table, &record_count);

  AppendU32(out, static_cast<uint32_t>(table.names().size()));
  for (const std::string& name : table.names()) AppendBytes(out, name);
  AppendU32(out, static_cast<uint32_t>(record_count));

  // Preorder emission; each element/document record carries its child count,
  // so the decoder reconstructs the exact shape without terminators.
  std::vector<const Node*> stack{root};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    EncodeNodeRecord(node, &table, out);
    const std::vector<Node*>& children = node->children();
    for (size_t i = children.size(); i > 0; --i) {
      stack.push_back(children[i - 1]);
    }
  }
}

DocumentPtr DecodeDocument(std::string_view blob) {
  ByteReader reader(blob);

  uint32_t name_count = 0;
  if (!reader.ReadU32(&name_count)) ThrowCorrupt("name table header");
  // Each name costs at least its 4-byte length prefix.
  if (static_cast<size_t>(name_count) > reader.remaining() / 4) {
    ThrowCorrupt("name table count");
  }
  std::vector<std::string_view> names(name_count);
  for (uint32_t i = 0; i < name_count; ++i) {
    if (!reader.ReadBytes(&names[i])) ThrowCorrupt("name table entry");
  }

  uint32_t record_count = 0;
  if (!reader.ReadU32(&record_count)) ThrowCorrupt("record count");
  // Every record is at least one kind byte; attributes inline cost >= 8.
  if (static_cast<size_t>(record_count) > reader.remaining() + 1) {
    ThrowCorrupt("record count vs payload");
  }

  DocumentPtr document = MakeDocument();
  uint32_t records_read = 0;

  auto read_name = [&](uint32_t* index) {
    if (!reader.ReadU32(index) || *index >= name_count) {
      ThrowCorrupt("name index");
    }
  };

  // (parent, children still to attach). The root document record is read
  // first and seeds the stack.
  struct Frame {
    Node* parent;
    uint32_t remaining;
  };
  std::vector<Frame> stack;

  uint8_t root_kind = 0;
  uint32_t root_children = 0;
  if (!reader.ReadU8(&root_kind) ||
      root_kind != static_cast<uint8_t>(NodeKind::kDocument) ||
      !reader.ReadU32(&root_children)) {
    ThrowCorrupt("root record");
  }
  ++records_read;
  if (root_children > 0) {
    stack.push_back({document->root(), root_children});
  }

  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.remaining == 0) {
      stack.pop_back();
      continue;
    }
    --top.remaining;
    Node* parent = top.parent;

    uint8_t kind_byte = 0;
    if (!reader.ReadU8(&kind_byte)) ThrowCorrupt("truncated record");
    ++records_read;
    if (records_read > record_count) ThrowCorrupt("more records than declared");

    switch (static_cast<NodeKind>(kind_byte)) {
      case NodeKind::kElement: {
        uint32_t name_index = 0;
        read_name(&name_index);
        Node* element = document->CreateElement(names[name_index]);
        uint32_t attr_count = 0;
        if (!reader.ReadU32(&attr_count)) ThrowCorrupt("attribute count");
        if (static_cast<size_t>(attr_count) > reader.remaining() / 8) {
          ThrowCorrupt("attribute count vs payload");
        }
        for (uint32_t a = 0; a < attr_count; ++a) {
          uint32_t attr_name = 0;
          read_name(&attr_name);
          std::string_view value;
          if (!reader.ReadBytes(&value)) ThrowCorrupt("attribute value");
          Node* attribute =
              document->CreateAttribute(names[attr_name], value);
          if (!document->AppendAttribute(element, attribute)) {
            ThrowCorrupt("duplicate attribute");
          }
          records_read += 1;
          if (records_read > record_count) {
            ThrowCorrupt("more records than declared");
          }
        }
        document->AppendChild(parent, element);
        uint32_t child_count = 0;
        if (!reader.ReadU32(&child_count)) ThrowCorrupt("child count");
        if (static_cast<size_t>(child_count) > reader.remaining() + 1) {
          ThrowCorrupt("child count vs payload");
        }
        if (child_count > 0) {
          if (stack.size() >= kMaxDecodeDepth) ThrowCorrupt("nesting depth");
          stack.push_back({element, child_count});
        }
        break;
      }
      case NodeKind::kText: {
        std::string_view content;
        if (!reader.ReadBytes(&content)) ThrowCorrupt("text content");
        document->AppendChild(parent, document->CreateText(content));
        break;
      }
      case NodeKind::kComment: {
        std::string_view content;
        if (!reader.ReadBytes(&content)) ThrowCorrupt("comment content");
        document->AppendChild(parent, document->CreateComment(content));
        break;
      }
      case NodeKind::kProcessingInstruction: {
        uint32_t name_index = 0;
        read_name(&name_index);
        std::string_view content;
        if (!reader.ReadBytes(&content)) ThrowCorrupt("PI content");
        document->AppendChild(
            parent,
            document->CreateProcessingInstruction(names[name_index], content));
        break;
      }
      case NodeKind::kDocument:
      case NodeKind::kAttribute:
      default:
        ThrowCorrupt("unexpected node kind");
    }
  }

  if (records_read != record_count) ThrowCorrupt("record count mismatch");
  if (!reader.AtEnd()) ThrowCorrupt("trailing bytes");
  document->SealOrder();
  return document;
}

}  // namespace xqa::storage

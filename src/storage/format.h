#ifndef XQA_STORAGE_FORMAT_H_
#define XQA_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace xqa::storage {

/// On-disk format constants and little-endian encode/decode primitives
/// shared by the segment, manifest, and journal codecs (docs/STORAGE.md).
/// All multi-byte integers are little-endian regardless of host; every file
/// starts with an 8-byte magic and a u32 format version so a reader can
/// refuse what it does not understand instead of misparsing it.

inline constexpr uint32_t kFormatVersion = 1;

inline constexpr std::string_view kSegmentMagic{"XQASEG1\0", 8};
inline constexpr std::string_view kManifestMagic{"XQAMAN1\0", 8};
inline constexpr std::string_view kJournalMagic{"XQAJRN1\0", 8};

/// File-name conventions inside a data directory. Sequence numbers are
/// zero-padded so lexicographic directory order equals numeric order.
std::string ManifestFileName(uint64_t seq);
std::string JournalFileName(uint64_t seq);
std::string SegmentFileName(uint64_t seq, uint32_t shard);

/// Parses the sequence number out of a "MANIFEST-<seq>" name; returns false
/// for anything else (temp files, segments, foreign files).
bool ParseManifestFileName(std::string_view name, uint64_t* seq);

/// Parses "<prefix>-<seq>-..." storage names (segments, journals) just far
/// enough for garbage collection: which checkpoint generation a file belongs
/// to. Returns false for names that are not generated storage files.
bool ParseStorageFileSeq(std::string_view name, uint64_t* seq);

// --- Little-endian primitives ----------------------------------------------

void AppendU8(std::string* out, uint8_t value);
void AppendU32(std::string* out, uint32_t value);
void AppendU64(std::string* out, uint64_t value);
/// u32 length prefix + raw bytes.
void AppendBytes(std::string* out, std::string_view bytes);

/// Bounded, non-throwing reader for hardened decoding: every Read* checks
/// the remaining size and returns false instead of running past the buffer,
/// so a corrupt length field can never cause an out-of-bounds read — the
/// caller turns `false` into a quarantine decision.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* value);
  bool ReadU32(uint32_t* value);
  bool ReadU64(uint64_t* value);
  /// Length-prefixed bytes; the returned view aliases the input buffer.
  bool ReadBytes(std::string_view* bytes);
  /// Exactly `size` raw bytes.
  bool ReadRaw(size_t size, std::string_view* bytes);

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace xqa::storage

#endif  // XQA_STORAGE_FORMAT_H_

#ifndef XQA_STORAGE_MANIFEST_H_
#define XQA_STORAGE_MANIFEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/file_io.h"

namespace xqa::storage {

/// The MANIFEST is the commit record of a checkpoint (docs/STORAGE.md): it
/// names the segment files (with their sizes and whole-file CRCs) and the
/// journal file that together represent one corpus version. It is written
/// with WriteFileDurable — temp file, fsync, atomic rename — so a manifest
/// either exists completely or not at all; the rename is the checkpoint's
/// single commit point. Recovery scans for MANIFEST-<seq> files and loads
/// the newest one that validates (magic, format, trailing CRC32C over the
/// whole payload, name/seq agreement), counting invalid ones as quarantined
/// and falling back to the next-newest.

struct SegmentRef {
  uint32_t shard = 0;
  std::string file;       ///< name within the data directory
  uint64_t file_bytes = 0;
  uint32_t file_crc = 0;  ///< CRC32C of the entire segment file
};

struct Manifest {
  uint64_t seq = 0;             ///< checkpoint generation, monotonically rising
  uint64_t corpus_version = 0;  ///< CollectionStore version the segments hold
  uint32_t shard_count = 0;
  std::string journal_file;     ///< journal capturing mutations after `seq`
  std::vector<SegmentRef> segments;
};

/// Serializes and commits `manifest` as MANIFEST-<seq> in `dir`.
/// Throws kXQSV0007 on I/O failure.
void WriteManifestFile(const std::string& dir, const Manifest& manifest,
                       FsyncPolicy policy);

/// Parses and validates one manifest file; nullopt when missing, torn, or
/// checksum-invalid (never throws on corruption — the caller falls back).
std::optional<Manifest> LoadManifestFile(const std::string& path,
                                         uint64_t expected_seq);

/// Scans `dir` for manifests, newest first, and returns the first valid one.
/// `quarantined` (may be null) receives the count of manifest files that
/// existed but failed validation and were skipped.
std::optional<Manifest> FindNewestValidManifest(const std::string& dir,
                                                size_t* quarantined);

}  // namespace xqa::storage

#endif  // XQA_STORAGE_MANIFEST_H_

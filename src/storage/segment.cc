#include "storage/segment.h"

#include <utility>

#include "base/crc32c.h"
#include "base/error.h"
#include "storage/doc_codec.h"
#include "storage/format.h"

namespace xqa::storage {

namespace {

/// Upper bound on one block's payload: a corrupt length field larger than
/// this is treated as a framing violation even when it happens to fit the
/// remaining file.
constexpr uint32_t kMaxBlockPayload = 1u << 30;

}  // namespace

std::string BuildSegmentBytes(uint32_t shard,
                              const std::vector<SegmentEntry>& entries) {
  std::string out;
  out.append(kSegmentMagic.data(), kSegmentMagic.size());
  AppendU32(&out, kFormatVersion);
  AppendU32(&out, shard);
  std::string payload;
  for (const SegmentEntry& entry : entries) {
    payload.clear();
    AppendBytes(&payload, entry.collection);
    AppendBytes(&payload, entry.uri);
    std::string blob;
    EncodeDocument(*entry.document, &blob);
    AppendBytes(&payload, blob);
    AppendU32(&out, static_cast<uint32_t>(payload.size()));
    AppendU32(&out, Crc32c(payload));
    out.append(payload);
  }
  return out;
}

SegmentReadStats ReadSegmentFile(
    const std::string& path, uint32_t expected_shard,
    const std::function<void(SegmentEntry)>* sink) {
  SegmentReadStats stats;
  std::string bytes = ReadFileToString(path);
  ByteReader reader(bytes);

  std::string_view magic;
  uint32_t format = 0;
  uint32_t shard = 0;
  if (!reader.ReadRaw(kSegmentMagic.size(), &magic) ||
      magic != kSegmentMagic || !reader.ReadU32(&format) ||
      format != kFormatVersion || !reader.ReadU32(&shard) ||
      shard != expected_shard) {
    // Unreadable header: nothing in the file can be trusted.
    stats.truncated = true;
    return stats;
  }
  stats.header_valid = true;

  while (!reader.AtEnd()) {
    uint32_t payload_len = 0;
    uint32_t expected_crc = 0;
    std::string_view payload;
    if (!reader.ReadU32(&payload_len) || payload_len > kMaxBlockPayload ||
        !reader.ReadU32(&expected_crc) ||
        !reader.ReadRaw(payload_len, &payload)) {
      // Framing violation: the length prefix itself is suspect, so the next
      // block boundary is unknowable — abandon the rest of the file.
      stats.truncated = true;
      ++stats.blocks_corrupt;
      break;
    }
    if (Crc32c(payload) != expected_crc) {
      // The framing was intact (lengths plausible), so skipping just this
      // block and continuing at the next boundary is safe.
      ++stats.blocks_corrupt;
      continue;
    }
    ByteReader record(payload);
    std::string_view collection;
    std::string_view uri;
    std::string_view blob;
    if (!record.ReadBytes(&collection) || !record.ReadBytes(&uri) ||
        !record.ReadBytes(&blob) || !record.AtEnd()) {
      ++stats.blocks_corrupt;
      continue;
    }
    if (sink != nullptr) {
      SegmentEntry entry;
      entry.collection.assign(collection);
      entry.uri.assign(uri);
      try {
        entry.document = DecodeDocument(blob);
      } catch (const XQueryError&) {
        ++stats.blocks_corrupt;
        continue;
      }
      (*sink)(std::move(entry));
    }
    ++stats.blocks_ok;
  }
  return stats;
}

}  // namespace xqa::storage

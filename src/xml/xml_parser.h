#ifndef XQA_XML_XML_PARSER_H_
#define XQA_XML_XML_PARSER_H_

#include <string_view>

#include "base/sanitizer.h"
#include "xml/node.h"

namespace xqa {

/// Options controlling XML parsing.
struct XmlParseOptions {
  /// Drop text nodes that consist solely of whitespace between elements
  /// (typical for data-oriented documents; keeps trees compact).
  bool strip_whitespace_text = true;
  /// Keep comments and processing instructions in the tree.
  bool keep_comments = true;
  /// Maximum element nesting depth; deeper input raises XMLP0001 (guards
  /// the recursive-descent parser's stack against adversarial documents).
  /// Sanitizer builds get a tighter default: their frames are several times
  /// larger, and the guard must fire before the real stack runs out.
#if defined(XQA_UNDER_ASAN)
  int max_depth = 100;
#else
  int max_depth = 1000;
#endif
};

/// Parses an XML document (or fragment with a single root element) into a
/// fresh Document. Non-validating: DOCTYPE declarations are skipped, entity
/// references are limited to the five predefined entities plus numeric
/// character references. Throws XQueryError(kXMLP0001) on malformed input.
/// The returned document is sealed (document order assigned).
DocumentPtr ParseXml(std::string_view text, const XmlParseOptions& options = {});

}  // namespace xqa

#endif  // XQA_XML_XML_PARSER_H_

#include "xml/node.h"

#include <cassert>

namespace xqa {

std::atomic<uint64_t> Document::next_id_{1};

namespace {

void AppendStringValue(const Node* node, std::string* out) {
  switch (node->kind()) {
    case NodeKind::kText:
      out->append(node->content());
      break;
    case NodeKind::kDocument:
    case NodeKind::kElement:
      // Only descendant text nodes contribute (XDM string-value rule);
      // comments and processing instructions are skipped.
      for (const Node* child : node->children()) {
        if (child->kind() == NodeKind::kElement ||
            child->kind() == NodeKind::kText) {
          AppendStringValue(child, out);
        }
      }
      break;
    case NodeKind::kAttribute:
    case NodeKind::kComment:
    case NodeKind::kProcessingInstruction:
      out->append(node->content());
      break;
  }
}

}  // namespace

std::string Node::StringValue() const {
  std::string out;
  AppendStringValue(this, &out);
  return out;
}

Node* Node::FindAttribute(std::string_view attr_name) const {
  for (Node* attr : attributes_) {
    if (attr->name() == attr_name) return attr;
  }
  return nullptr;
}

bool Node::IsDescendantOrSelfOf(const Node* ancestor) const {
  for (const Node* n = this; n != nullptr; n = n->parent()) {
    if (n == ancestor) return true;
  }
  return false;
}

Document::Document() : id_(next_id_.fetch_add(1, std::memory_order_relaxed)) {
  root_ = NewNode(NodeKind::kDocument);
}

Node* Document::NewNode(NodeKind kind) {
  arena_.emplace_back(Node::Passkey{}, kind, this);
  return &arena_.back();
}

Node* Document::CreateElement(std::string_view name) {
  Node* node = NewNode(NodeKind::kElement);
  node->name_ = name;
  return node;
}

Node* Document::CreateText(std::string_view content) {
  Node* node = NewNode(NodeKind::kText);
  node->content_ = content;
  return node;
}

Node* Document::CreateComment(std::string_view content) {
  Node* node = NewNode(NodeKind::kComment);
  node->content_ = content;
  return node;
}

Node* Document::CreateProcessingInstruction(std::string_view target,
                                            std::string_view content) {
  Node* node = NewNode(NodeKind::kProcessingInstruction);
  node->name_ = target;
  node->content_ = content;
  return node;
}

Node* Document::CreateAttribute(std::string_view name,
                                std::string_view value) {
  Node* node = NewNode(NodeKind::kAttribute);
  node->name_ = name;
  node->content_ = value;
  return node;
}

void Document::AppendChild(Node* parent, Node* child) {
  assert(parent->kind() == NodeKind::kDocument ||
         parent->kind() == NodeKind::kElement);
  assert(child->kind() != NodeKind::kDocument &&
         child->kind() != NodeKind::kAttribute);
  assert(child->document() == this);
  // Merge adjacent text nodes (XDM requires no adjacent text siblings).
  if (child->kind() == NodeKind::kText && !parent->children_.empty() &&
      parent->children_.back()->kind() == NodeKind::kText) {
    parent->children_.back()->content_ += child->content_;
    return;
  }
  child->parent_ = parent;
  parent->children_.push_back(child);
}

bool Document::AppendAttribute(Node* element, Node* attribute) {
  assert(element->kind() == NodeKind::kElement);
  assert(attribute->kind() == NodeKind::kAttribute);
  if (element->FindAttribute(attribute->name()) != nullptr) return false;
  attribute->parent_ = element;
  element->attributes_.push_back(attribute);
  return true;
}

Node* Document::ImportNode(const Node* source) {
  switch (source->kind()) {
    case NodeKind::kText:
      return CreateText(source->content());
    case NodeKind::kComment:
      return CreateComment(source->content());
    case NodeKind::kProcessingInstruction:
      return CreateProcessingInstruction(source->name(), source->content());
    case NodeKind::kAttribute:
      return CreateAttribute(source->name(), source->content());
    case NodeKind::kElement: {
      Node* copy = CreateElement(source->name());
      for (const Node* attr : source->attributes()) {
        AppendAttribute(copy, ImportNode(attr));
      }
      for (const Node* child : source->children()) {
        AppendChild(copy, ImportNode(child));
      }
      return copy;
    }
    case NodeKind::kDocument: {
      // Importing a document node imports its children into an element-less
      // fragment; callers splice the children themselves. Represented here by
      // copying children under a fresh element is wrong, so we forbid it.
      assert(false && "cannot import a document node");
      return nullptr;
    }
  }
  return nullptr;
}

void Document::SealOrder() {
  uint32_t next = 0;
  // Iterative preorder walk: element attributes come right after the element.
  std::vector<Node*> stack = {root_};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    node->order_index_ = next++;
    for (Node* attr : node->attributes_) {
      attr->order_index_ = next++;
    }
    for (auto it = node->children_.rbegin(); it != node->children_.rend();
         ++it) {
      stack.push_back(*it);
    }
  }
}

int CompareDocumentOrder(const Node* a, const Node* b) {
  if (a == b) return 0;
  if (a->document() != b->document()) {
    return a->document()->id() < b->document()->id() ? -1 : 1;
  }
  if (a->order_index() == b->order_index()) return 0;
  return a->order_index() < b->order_index() ? -1 : 1;
}

}  // namespace xqa

#include "xml/node.h"

#include <cassert>
#include <utility>

namespace xqa {

std::atomic<uint64_t> Document::next_id_{1};

namespace {

void AppendStringValue(const Node* node, std::string* out) {
  switch (node->kind()) {
    case NodeKind::kText:
      out->append(node->content());
      break;
    case NodeKind::kDocument:
    case NodeKind::kElement:
      // Only descendant text nodes contribute (XDM string-value rule);
      // comments and processing instructions are skipped.
      for (const Node* child : node->children()) {
        if (child->kind() == NodeKind::kElement ||
            child->kind() == NodeKind::kText) {
          AppendStringValue(child, out);
        }
      }
      break;
    case NodeKind::kAttribute:
    case NodeKind::kComment:
    case NodeKind::kProcessingInstruction:
      out->append(node->content());
      break;
  }
}

}  // namespace

std::string Node::StringValue() const {
  std::string out;
  AppendStringValue(this, &out);
  return out;
}

Node* Node::FindAttribute(std::string_view attr_name) const {
  for (Node* attr : attributes_) {
    if (attr->name() == attr_name) return attr;
  }
  return nullptr;
}

bool Node::IsDescendantOrSelfOf(const Node* ancestor) const {
  if (document_ == ancestor->document() && document_->sealed()) {
    return ancestor->order_index_ <= order_index_ &&
           order_index_ < ancestor->subtree_end_;
  }
  for (const Node* n = this; n != nullptr; n = n->parent()) {
    if (n == ancestor) return true;
  }
  return false;
}

Document::Document() : id_(next_id_.fetch_add(1, std::memory_order_relaxed)) {
  root_ = NewNode(NodeKind::kDocument);
}

DocumentPtr MakeDocument() {
  Document* doc = new Document();
  doc->AddRefs(1);
  return DocumentPtr::Adopt(doc);
}

Node* Document::NewNode(NodeKind kind) {
  arena_.emplace_back(Node::Passkey{}, kind, this);
  return &arena_.back();
}

NameId Document::InternName(std::string_view name) {
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  NameId id = static_cast<NameId>(names_.size());
  assert(id < kNameIdAny && "name pool overflow");
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

NameId Document::LookupName(std::string_view name) const {
  auto it = name_ids_.find(name);
  return it != name_ids_.end() ? it->second : kNameIdAbsent;
}

Node* Document::CreateElement(std::string_view name) {
  Node* node = NewNode(NodeKind::kElement);
  node->name_ = name;
  node->name_id_ = InternName(name);
  return node;
}

Node* Document::CreateText(std::string_view content) {
  Node* node = NewNode(NodeKind::kText);
  node->content_ = content;
  return node;
}

Node* Document::CreateComment(std::string_view content) {
  Node* node = NewNode(NodeKind::kComment);
  node->content_ = content;
  return node;
}

Node* Document::CreateProcessingInstruction(std::string_view target,
                                            std::string_view content) {
  Node* node = NewNode(NodeKind::kProcessingInstruction);
  node->name_ = target;
  node->name_id_ = InternName(target);
  node->content_ = content;
  return node;
}

Node* Document::CreateAttribute(std::string_view name,
                                std::string_view value) {
  Node* node = NewNode(NodeKind::kAttribute);
  node->name_ = name;
  node->name_id_ = InternName(name);
  node->content_ = value;
  return node;
}

void Document::AppendChild(Node* parent, Node* child) {
  assert(parent->kind() == NodeKind::kDocument ||
         parent->kind() == NodeKind::kElement);
  assert(child->kind() != NodeKind::kDocument &&
         child->kind() != NodeKind::kAttribute);
  assert(child->document() == this);
  // Merge adjacent text nodes (XDM requires no adjacent text siblings).
  if (child->kind() == NodeKind::kText && !parent->children_.empty() &&
      parent->children_.back()->kind() == NodeKind::kText) {
    parent->children_.back()->content_ += child->content_;
    return;
  }
  child->parent_ = parent;
  parent->children_.push_back(child);
}

bool Document::AppendAttribute(Node* element, Node* attribute) {
  assert(element->kind() == NodeKind::kElement);
  assert(attribute->kind() == NodeKind::kAttribute);
  if (element->FindAttribute(attribute->name()) != nullptr) return false;
  attribute->parent_ = element;
  element->attributes_.push_back(attribute);
  return true;
}

Node* Document::ImportNode(const Node* source) {
  switch (source->kind()) {
    case NodeKind::kText:
      return CreateText(source->content());
    case NodeKind::kComment:
      return CreateComment(source->content());
    case NodeKind::kProcessingInstruction:
      return CreateProcessingInstruction(source->name(), source->content());
    case NodeKind::kAttribute:
      return CreateAttribute(source->name(), source->content());
    case NodeKind::kElement: {
      Node* copy = CreateElement(source->name());
      for (const Node* attr : source->attributes()) {
        AppendAttribute(copy, ImportNode(attr));
      }
      for (const Node* child : source->children()) {
        AppendChild(copy, ImportNode(child));
      }
      return copy;
    }
    case NodeKind::kDocument: {
      // Importing a document node imports its children into an element-less
      // fragment; callers splice the children themselves. Represented here by
      // copying children under a fresh element is wrong, so we forbid it.
      assert(false && "cannot import a document node");
      return nullptr;
    }
  }
  return nullptr;
}

void Document::SealOrder() {
  uint32_t next = 0;
  element_index_.clear();
  const bool build_index = arena_.size() >= kElementIndexMinNodes;
  if (build_index) element_index_.resize(names_.size());
  // Iterative two-phase preorder walk: the first visit assigns the preorder
  // index (element attributes come right after the element); the second,
  // after the whole subtree was numbered, records the subtree span end.
  std::vector<std::pair<Node*, bool>> stack;
  stack.emplace_back(root_, true);
  while (!stack.empty()) {
    auto [node, entering] = stack.back();
    stack.pop_back();
    if (!entering) {
      node->subtree_end_ = next;
      continue;
    }
    node->order_index_ = next++;
    if (build_index && node->kind_ == NodeKind::kElement) {
      // Preorder emission keeps every bucket sorted by order_index.
      element_index_[node->name_id_].push_back(node);
    }
    for (Node* attr : node->attributes_) {
      attr->order_index_ = next++;
      attr->subtree_end_ = next;
    }
    stack.emplace_back(node, false);
    for (auto it = node->children_.rbegin(); it != node->children_.rend();
         ++it) {
      stack.emplace_back(*it, true);
    }
  }
  sealed_ = true;
}

int CompareDocumentOrder(const Node* a, const Node* b) {
  if (a == b) return 0;
  if (a->document() != b->document()) {
    return a->document()->id() < b->document()->id() ? -1 : 1;
  }
  if (a->order_index() == b->order_index()) return 0;
  return a->order_index() < b->order_index() ? -1 : 1;
}

}  // namespace xqa

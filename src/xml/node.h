#ifndef XQA_XML_NODE_H_
#define XQA_XML_NODE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xqa {

class Document;

/// The seven XDM node kinds, minus namespace nodes (not materialized).
enum class NodeKind : uint8_t {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction,
};

/// A node in an XML tree. Nodes are arena-allocated by their owning Document
/// and addressed by raw pointer; node identity is pointer identity. Document
/// order is a preorder index assigned by Document::SealOrder(), with
/// attributes ordered after their owning element and before its children.
class Node {
 public:
  /// Passkey restricting construction to Document (nodes must live in a
  /// document's arena) while keeping the constructor usable by containers.
  class Passkey {
   private:
    friend class Document;
    Passkey() = default;
  };

  Node(Passkey, NodeKind kind, Document* document)
      : kind_(kind), document_(document) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  Document* document() const { return document_; }
  Node* parent() const { return parent_; }

  /// Element / attribute / PI name ("publisher", "xml-stylesheet"). Empty
  /// for document, text, and comment nodes.
  const std::string& name() const { return name_; }

  /// Text content for text / comment / PI nodes; attribute value for
  /// attribute nodes. Unused for document and element nodes.
  const std::string& content() const { return content_; }

  const std::vector<Node*>& children() const { return children_; }
  const std::vector<Node*>& attributes() const { return attributes_; }

  /// Preorder position in the document; valid after Document::SealOrder().
  uint32_t order_index() const { return order_index_; }

  /// The XDM string-value: concatenation of descendant text for document /
  /// element nodes, the content for the rest.
  std::string StringValue() const;

  /// Looks up an attribute by name; nullptr when absent.
  Node* FindAttribute(std::string_view attr_name) const;

  /// True if this node is `ancestor` or a descendant of it.
  bool IsDescendantOrSelfOf(const Node* ancestor) const;

 private:
  friend class Document;

  NodeKind kind_;
  Document* document_;
  Node* parent_ = nullptr;
  std::string name_;
  std::string content_;
  std::vector<Node*> children_;
  std::vector<Node*> attributes_;
  uint32_t order_index_ = 0;
};

/// Owns an XML tree. All nodes live in a deque arena (stable addresses).
/// Evaluation-constructed fragments are Documents too, so every node has a
/// well-defined owner whose lifetime is managed by shared_ptr.
class Document {
 public:
  Document();
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  /// The document node (root of the tree).
  Node* root() { return root_; }
  const Node* root() const { return root_; }

  /// Globally unique id used to order nodes across documents.
  uint64_t id() const { return id_; }

  // --- Tree construction ----------------------------------------------------
  // The builder API below is used by the XML parser and by element
  // constructors in the evaluator. AppendChild/AppendAttribute enforce the
  // kind constraints of the XDM.

  Node* CreateElement(std::string_view name);
  Node* CreateText(std::string_view content);
  Node* CreateComment(std::string_view content);
  Node* CreateProcessingInstruction(std::string_view target,
                                    std::string_view content);
  Node* CreateAttribute(std::string_view name, std::string_view value);

  /// Appends `child` (element/text/comment/PI) to `parent` (document or
  /// element). Adjacent text children are merged per XDM.
  void AppendChild(Node* parent, Node* child);

  /// Attaches an attribute to an element. Returns false if an attribute with
  /// the same name already exists.
  bool AppendAttribute(Node* element, Node* attribute);

  /// Deep-copies `source` (from any document) into this document; returns the
  /// new node. Used by element construction, which copies content per XQuery.
  Node* ImportNode(const Node* source);

  /// Assigns preorder order indexes. Must be called after construction is
  /// complete and before document-order comparisons.
  void SealOrder();

  size_t node_count() const { return arena_.size(); }

 private:
  Node* NewNode(NodeKind kind);

  std::deque<Node> arena_;
  Node* root_;
  uint64_t id_;

  static std::atomic<uint64_t> next_id_;
};

using DocumentPtr = std::shared_ptr<Document>;

/// Compares two nodes in document order: -1, 0, +1. Nodes from different
/// documents are ordered by document id (a stable, implementation-defined
/// total order, as the XDM allows).
int CompareDocumentOrder(const Node* a, const Node* b);

}  // namespace xqa

#endif  // XQA_XML_NODE_H_

#ifndef XQA_XML_NODE_H_
#define XQA_XML_NODE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xqa {

class Document;
class DocumentPtr;
DocumentPtr MakeDocument();

/// Dense per-document identifier for an interned element/attribute/PI name.
/// Ids are assigned in first-interning order by the owning Document's name
/// pool, so equal names within one document always share one id and name
/// tests reduce to integer compares (docs/INDEXES.md).
using NameId = uint32_t;

/// The name is not interned in the document: no node bears it, and a name
/// test resolving to this id can match nothing.
inline constexpr NameId kNameIdAbsent = 0xFFFFFFFFu;

/// Wildcard resolution result ("*" or an empty test name): matches every
/// name. Never assigned to a node.
inline constexpr NameId kNameIdAny = 0xFFFFFFFEu;

/// The seven XDM node kinds, minus namespace nodes (not materialized).
enum class NodeKind : uint8_t {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction,
};

/// A node in an XML tree. Nodes are arena-allocated by their owning Document
/// and addressed by raw pointer; node identity is pointer identity. Document
/// order is a preorder index assigned by Document::SealOrder(), with
/// attributes ordered after their owning element and before its children.
class Node {
 public:
  /// Passkey restricting construction to Document (nodes must live in a
  /// document's arena) while keeping the constructor usable by containers.
  class Passkey {
   private:
    friend class Document;
    Passkey() = default;
  };

  Node(Passkey, NodeKind kind, Document* document)
      : kind_(kind), document_(document) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  Document* document() const { return document_; }
  Node* parent() const { return parent_; }

  /// Element / attribute / PI name ("publisher", "xml-stylesheet"). Empty
  /// for document, text, and comment nodes.
  const std::string& name() const { return name_; }

  /// The document-local interned id of name(); kNameIdAbsent for the
  /// nameless kinds (document, text, comment).
  NameId name_id() const { return name_id_; }

  /// Text content for text / comment / PI nodes; attribute value for
  /// attribute nodes. Unused for document and element nodes.
  const std::string& content() const { return content_; }

  const std::vector<Node*>& children() const { return children_; }
  const std::vector<Node*>& attributes() const { return attributes_; }

  /// Preorder position in the document; valid after Document::SealOrder().
  uint32_t order_index() const { return order_index_; }

  /// One past the preorder index of the last node in this node's subtree
  /// (attributes included); valid after Document::SealOrder(). The half-open
  /// interval [order_index, subtree_end) spans exactly the subtree, so
  /// descendant containment is an O(1) interval check and the element-name
  /// index can answer descendant steps with a binary-search range scan.
  uint32_t subtree_end() const { return subtree_end_; }

  /// The XDM string-value: concatenation of descendant text for document /
  /// element nodes, the content for the rest.
  std::string StringValue() const;

  /// Looks up an attribute by name; nullptr when absent.
  Node* FindAttribute(std::string_view attr_name) const;

  /// True if this node is `ancestor` or a descendant of it. O(1) via the
  /// subtree span once the document is sealed; parent-chain walk before.
  bool IsDescendantOrSelfOf(const Node* ancestor) const;

 private:
  friend class Document;

  NodeKind kind_;
  Document* document_;
  Node* parent_ = nullptr;
  std::string name_;
  std::string content_;
  std::vector<Node*> children_;
  std::vector<Node*> attributes_;
  NameId name_id_ = kNameIdAbsent;
  uint32_t order_index_ = 0;
  uint32_t subtree_end_ = 0;
};

/// Owns an XML tree. All nodes live in a deque arena (stable addresses).
/// Evaluation-constructed fragments are Documents too, so every node has a
/// well-defined owner whose lifetime is managed by DocumentPtr (an intrusive
/// refcounted handle — see below).
///
/// Structural indexes: every named node's name is interned into a
/// per-document pool at creation time, and SealOrder() additionally assigns
/// subtree spans and (for documents of at least kElementIndexMinNodes nodes)
/// builds the element-name index consulted by descendant path steps. The
/// indexes are immutable after sealing, so parallel FLWOR lanes read them
/// without synchronization (docs/INDEXES.md).
class Document {
 public:
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  /// The document node (root of the tree).
  Node* root() { return root_; }
  const Node* root() const { return root_; }

  /// Globally unique id used to order nodes across documents. Starts at 1.
  uint64_t id() const { return id_; }

  // --- Tree construction ----------------------------------------------------
  // The builder API below is used by the XML parser and by element
  // constructors in the evaluator. AppendChild/AppendAttribute enforce the
  // kind constraints of the XDM.

  Node* CreateElement(std::string_view name);
  Node* CreateText(std::string_view content);
  Node* CreateComment(std::string_view content);
  Node* CreateProcessingInstruction(std::string_view target,
                                    std::string_view content);
  Node* CreateAttribute(std::string_view name, std::string_view value);

  /// Appends `child` (element/text/comment/PI) to `parent` (document or
  /// element). Adjacent text children are merged per XDM.
  void AppendChild(Node* parent, Node* child);

  /// Attaches an attribute to an element. Returns false if an attribute with
  /// the same name already exists.
  bool AppendAttribute(Node* element, Node* attribute);

  /// Deep-copies `source` (from any document) into this document; returns the
  /// new node. Used by element construction, which copies content per XQuery.
  Node* ImportNode(const Node* source);

  /// Assigns preorder order indexes and subtree spans, and builds the
  /// element-name index (above the size threshold). Must be called after
  /// construction is complete and before document-order comparisons or
  /// evaluation; the indexes are stale if the tree is mutated afterwards.
  void SealOrder();

  /// True once SealOrder() ran (spans and order indexes are valid).
  bool sealed() const { return sealed_; }

  size_t node_count() const { return arena_.size(); }

  // --- Structural index accessors -------------------------------------------

  /// The interned id of `name`, or kNameIdAbsent when no node of this
  /// document ever bore it. Never interns.
  NameId LookupName(std::string_view name) const;

  /// Number of distinct interned names.
  size_t name_pool_size() const { return names_.size(); }

  /// True when SealOrder built the element-name index (node count reached
  /// kElementIndexMinNodes).
  bool has_element_index() const { return !element_index_.empty(); }

  /// The document's elements bearing the interned name `id`, sorted by
  /// preorder position; nullptr when the index was not built or the id is
  /// out of range. May point at an empty vector (the name is interned for
  /// attributes/PIs only).
  const std::vector<Node*>* ElementsWithName(NameId id) const {
    if (!has_element_index() || id >= element_index_.size()) return nullptr;
    return &element_index_[id];
  }

  /// Minimum node count for SealOrder to build the element-name index.
  /// Tiny documents (per-tuple constructed fragments) skip the build: the
  /// walking fallback is already cheap there and the per-name buckets would
  /// cost more to allocate than they save.
  static constexpr size_t kElementIndexMinNodes = 32;

  // --- Intrusive reference count --------------------------------------------
  // DocumentPtr copies cost one relaxed atomic increment, and hot loops that
  // emit many nodes of one document batch the updates: AddRefs(n) once, then
  // n DocumentPtr::Adopt handles (see BorrowedEmitter in eval/path.cc).

  void AddRefs(uint64_t count) const {
    refcount_.fetch_add(count, std::memory_order_relaxed);
  }
  void ReleaseRefs(uint64_t count) const {
    if (refcount_.fetch_sub(count, std::memory_order_acq_rel) == count) {
      delete this;
    }
  }

  /// Current reference count — a diagnostic gauge for tests asserting
  /// ownership hand-offs (e.g. that a store Remove leaves a snapshot as the
  /// only owner). Racy by nature; only exact when no other thread is
  /// mutating handles.
  uint64_t refs() const { return refcount_.load(std::memory_order_acquire); }

 private:
  friend DocumentPtr MakeDocument();

  /// Heap-only: documents are created via MakeDocument() and destroyed by
  /// their refcount reaching zero.
  Document();
  ~Document() = default;

  Node* NewNode(NodeKind kind);

  /// Returns the id for `name`, interning it on first sight.
  NameId InternName(std::string_view name);

  /// Transparent hash so the pool can be probed with string_view.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::deque<Node> arena_;
  Node* root_;
  uint64_t id_;
  bool sealed_ = false;

  std::vector<std::string> names_;  ///< NameId -> name text
  std::unordered_map<std::string, NameId, StringHash, std::equal_to<>>
      name_ids_;
  std::vector<std::vector<Node*>> element_index_;  ///< NameId -> elements

  mutable std::atomic<uint64_t> refcount_{0};

  static std::atomic<uint64_t> next_id_;
};

/// Intrusive refcounted handle to a Document. Drop-in for the previous
/// std::shared_ptr<Document> alias, with one addition: Adopt() wraps a
/// pre-paid reference so bulk emitters can retain once per step instead of
/// once per emitted item.
class DocumentPtr {
 public:
  constexpr DocumentPtr() noexcept = default;
  constexpr DocumentPtr(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  /// Retaining constructor (one increment).
  explicit DocumentPtr(Document* doc) noexcept : doc_(doc) {
    if (doc_ != nullptr) doc_->AddRefs(1);
  }

  DocumentPtr(const DocumentPtr& other) noexcept : doc_(other.doc_) {
    if (doc_ != nullptr) doc_->AddRefs(1);
  }
  DocumentPtr(DocumentPtr&& other) noexcept : doc_(other.doc_) {
    other.doc_ = nullptr;
  }
  DocumentPtr& operator=(const DocumentPtr& other) noexcept {
    if (other.doc_ != nullptr) other.doc_->AddRefs(1);
    Document* old = doc_;
    doc_ = other.doc_;
    if (old != nullptr) old->ReleaseRefs(1);
    return *this;
  }
  DocumentPtr& operator=(DocumentPtr&& other) noexcept {
    if (this != &other) {
      Document* old = doc_;
      doc_ = other.doc_;
      other.doc_ = nullptr;
      if (old != nullptr) old->ReleaseRefs(1);
    }
    return *this;
  }
  ~DocumentPtr() {
    if (doc_ != nullptr) doc_->ReleaseRefs(1);
  }

  /// Wraps `doc` taking over one reference the caller already paid for (via
  /// Document::AddRefs). The inverse of a leak; no atomic operation here.
  static DocumentPtr Adopt(Document* doc) noexcept {
    DocumentPtr ptr;
    ptr.doc_ = doc;
    return ptr;
  }

  Document* get() const noexcept { return doc_; }
  Document& operator*() const noexcept { return *doc_; }
  Document* operator->() const noexcept { return doc_; }
  explicit operator bool() const noexcept { return doc_ != nullptr; }

  void reset() noexcept {
    if (doc_ != nullptr) doc_->ReleaseRefs(1);
    doc_ = nullptr;
  }

  friend bool operator==(const DocumentPtr& a, const DocumentPtr& b) noexcept {
    return a.doc_ == b.doc_;
  }
  friend bool operator!=(const DocumentPtr& a, const DocumentPtr& b) noexcept {
    return a.doc_ != b.doc_;
  }
  friend bool operator==(const DocumentPtr& a, std::nullptr_t) noexcept {
    return a.doc_ == nullptr;
  }
  friend bool operator!=(const DocumentPtr& a, std::nullptr_t) noexcept {
    return a.doc_ != nullptr;
  }

 private:
  Document* doc_ = nullptr;
};

/// Creates a new empty document (refcount 1).
DocumentPtr MakeDocument();

/// Compares two nodes in document order: -1, 0, +1. Nodes from different
/// documents are ordered by document id (a stable, implementation-defined
/// total order, as the XDM allows).
int CompareDocumentOrder(const Node* a, const Node* b);

}  // namespace xqa

#endif  // XQA_XML_NODE_H_

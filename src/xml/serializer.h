#ifndef XQA_XML_SERIALIZER_H_
#define XQA_XML_SERIALIZER_H_

#include <string>

#include "base/cancellation.h"
#include "base/memory_tracker.h"
#include "xml/node.h"

namespace xqa {

/// Options controlling XML serialization.
struct SerializeOptions {
  /// Pretty-print with the given indent width; 0 = compact single line.
  int indent = 0;

  /// Cooperative cancellation for the output loop (docs/SERVICE.md): checked
  /// in batches of nodes so serializing a huge tree respects a deadline or
  /// cancel. Not owned; null (the default) disables the checkpoints.
  const CancellationToken* cancellation = nullptr;

  /// Memory accounting for the output buffer (docs/ROBUSTNESS.md): the
  /// buffer's growth is charged in batches, raising XQSV0004 past the
  /// budget. Not owned; null (the default) disables accounting.
  MemoryTracker* memory = nullptr;
};

/// Serializes a node (and its subtree) back to XML text. Attribute nodes
/// serialize as name="value"; document nodes serialize their children.
std::string SerializeNode(const Node* node, const SerializeOptions& options = {});

}  // namespace xqa

#endif  // XQA_XML_SERIALIZER_H_

#ifndef XQA_XML_SERIALIZER_H_
#define XQA_XML_SERIALIZER_H_

#include <string>

#include "xml/node.h"

namespace xqa {

/// Options controlling XML serialization.
struct SerializeOptions {
  /// Pretty-print with the given indent width; 0 = compact single line.
  int indent = 0;
};

/// Serializes a node (and its subtree) back to XML text. Attribute nodes
/// serialize as name="value"; document nodes serialize their children.
std::string SerializeNode(const Node* node, const SerializeOptions& options = {});

}  // namespace xqa

#endif  // XQA_XML_SERIALIZER_H_

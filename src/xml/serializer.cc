#include "xml/serializer.h"

#include <sstream>

#include "base/string_util.h"

namespace xqa {

namespace {

bool HasElementChild(const Node* node) {
  for (const Node* child : node->children()) {
    if (child->kind() == NodeKind::kElement) return true;
  }
  return false;
}

void Serialize(const Node* node, const SerializeOptions& options, int depth,
               std::ostringstream* out) {
  auto newline_indent = [&](int d) {
    if (options.indent <= 0) return;
    *out << '\n';
    for (int i = 0; i < d * options.indent; ++i) *out << ' ';
  };

  switch (node->kind()) {
    case NodeKind::kDocument: {
      bool first = true;
      for (const Node* child : node->children()) {
        if (!first) newline_indent(depth);
        first = false;
        Serialize(child, options, depth, out);
      }
      break;
    }
    case NodeKind::kElement: {
      *out << '<' << node->name();
      for (const Node* attr : node->attributes()) {
        *out << ' ' << attr->name() << "=\"" << EscapeAttribute(attr->content())
             << '"';
      }
      if (node->children().empty()) {
        *out << "/>";
        break;
      }
      *out << '>';
      bool indent_children = options.indent > 0 && HasElementChild(node);
      for (const Node* child : node->children()) {
        if (indent_children) newline_indent(depth + 1);
        Serialize(child, options, depth + 1, out);
      }
      if (indent_children) newline_indent(depth);
      *out << "</" << node->name() << '>';
      break;
    }
    case NodeKind::kText:
      *out << EscapeText(node->content());
      break;
    case NodeKind::kAttribute:
      *out << node->name() << "=\"" << EscapeAttribute(node->content()) << '"';
      break;
    case NodeKind::kComment:
      *out << "<!--" << node->content() << "-->";
      break;
    case NodeKind::kProcessingInstruction:
      *out << "<?" << node->name() << ' ' << node->content() << "?>";
      break;
  }
}

}  // namespace

std::string SerializeNode(const Node* node, const SerializeOptions& options) {
  std::ostringstream out;
  Serialize(node, options, 0, &out);
  return out.str();
}

}  // namespace xqa

#include "xml/serializer.h"

#include <sstream>

#include "base/fault_injection.h"
#include "base/string_util.h"

namespace xqa {

namespace {

/// Per-call serializer state: the output buffer plus counters for the batched
/// cancellation poll and incremental buffer charge.
struct SerializeState {
  std::ostringstream out;
  uint32_t poll = 0;
  int64_t charged = 0;
};

/// Cancellation is polled and the buffer growth charged once per batch of
/// nodes, so huge trees stay responsive without a clock read or atomic per
/// node. The buffer charge has no matching release here: the serialized text
/// escapes into the response, and the per-query tracker settles the balance
/// when the execution ends.
constexpr uint32_t kSerializePollMask = 255;

void Checkpoint(const SerializeOptions& options, SerializeState* state) {
  if ((++state->poll & kSerializePollMask) != 0) return;
  if (options.cancellation != nullptr) options.cancellation->Check();
  if (options.memory != nullptr) {
    XQA_FAULT_POINT("serialize.buffer", ErrorCode::kXQSV0004);
    int64_t size = static_cast<int64_t>(state->out.tellp());
    if (size > state->charged) {
      options.memory->Charge(size - state->charged);
      state->charged = size;
    }
  }
}

bool HasElementChild(const Node* node) {
  for (const Node* child : node->children()) {
    if (child->kind() == NodeKind::kElement) return true;
  }
  return false;
}

void Serialize(const Node* node, const SerializeOptions& options, int depth,
               SerializeState* state) {
  std::ostringstream* out = &state->out;
  auto newline_indent = [&](int d) {
    if (options.indent <= 0) return;
    *out << '\n';
    for (int i = 0; i < d * options.indent; ++i) *out << ' ';
  };
  Checkpoint(options, state);

  switch (node->kind()) {
    case NodeKind::kDocument: {
      bool first = true;
      for (const Node* child : node->children()) {
        if (!first) newline_indent(depth);
        first = false;
        Serialize(child, options, depth, state);
      }
      break;
    }
    case NodeKind::kElement: {
      *out << '<' << node->name();
      for (const Node* attr : node->attributes()) {
        *out << ' ' << attr->name() << "=\"" << EscapeAttribute(attr->content())
             << '"';
      }
      if (node->children().empty()) {
        *out << "/>";
        break;
      }
      *out << '>';
      bool indent_children = options.indent > 0 && HasElementChild(node);
      for (const Node* child : node->children()) {
        if (indent_children) newline_indent(depth + 1);
        Serialize(child, options, depth + 1, state);
      }
      if (indent_children) newline_indent(depth);
      *out << "</" << node->name() << '>';
      break;
    }
    case NodeKind::kText:
      *out << EscapeText(node->content());
      break;
    case NodeKind::kAttribute:
      *out << node->name() << "=\"" << EscapeAttribute(node->content()) << '"';
      break;
    case NodeKind::kComment:
      *out << "<!--" << node->content() << "-->";
      break;
    case NodeKind::kProcessingInstruction:
      *out << "<?" << node->name() << ' ' << node->content() << "?>";
      break;
  }
}

}  // namespace

std::string SerializeNode(const Node* node, const SerializeOptions& options) {
  SerializeState state;
  Serialize(node, options, 0, &state);
  if (options.memory != nullptr) {
    // Small subtrees never reach the in-flight checkpoint, so the settling
    // charge is the fault boundary every charged serialization passes.
    XQA_FAULT_POINT("serialize.buffer", ErrorCode::kXQSV0004);
    int64_t size = static_cast<int64_t>(state.out.tellp());
    if (size > state.charged) options.memory->Charge(size - state.charged);
  }
  return state.out.str();
}

}  // namespace xqa

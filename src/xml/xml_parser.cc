#include "xml/xml_parser.h"

#include <string>
#include <vector>

#include "base/error.h"
#include "base/string_util.h"

namespace xqa {

namespace {

/// Single-pass, non-validating XML parser. Keeps a cursor into the input and
/// tracks line/column for error messages.
class XmlParser {
 public:
  XmlParser(std::string_view text, const XmlParseOptions& options)
      : text_(text), options_(options), doc_(MakeDocument()) {}

  DocumentPtr Parse() {
    SkipProlog();
    // Misc before the root element.
    SkipMiscAndContentTo(doc_->root(), /*allow_text=*/false);
    if (!AtEnd()) {
      Fail("unexpected content after document element");
    }
    bool has_element = false;
    for (const Node* child : doc_->root()->children()) {
      if (child->kind() == NodeKind::kElement) {
        if (has_element) Fail("multiple document elements");
        has_element = true;
      }
    }
    if (!has_element) Fail("no document element");
    doc_->SealOrder();
    return doc_;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char PeekAt(size_t offset) const {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }

  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool Consume(std::string_view expected) {
    if (text_.substr(pos_, expected.size()) != expected) return false;
    for (size_t i = 0; i < expected.size(); ++i) Advance();
    return true;
  }

  void Expect(std::string_view expected, const char* what) {
    if (!Consume(expected)) Fail(std::string("expected ") + what);
  }

  void SkipWhitespace() {
    while (!AtEnd() && IsXmlWhitespace(Peek())) Advance();
  }

  [[noreturn]] void Fail(const std::string& message) {
    ThrowError(ErrorCode::kXMLP0001, message, {line_, column_});
  }

  void SkipProlog() {
    SkipWhitespace();
    if (Consume("<?xml")) {
      while (!AtEnd() && !Consume("?>")) Advance();
    }
    SkipWhitespace();
    if (Consume("<!DOCTYPE")) {
      int depth = 1;
      while (!AtEnd() && depth > 0) {
        char c = Advance();
        if (c == '<') ++depth;
        if (c == '>') --depth;
        if (c == '[') {
          // Internal subset: skip to matching ']'.
          while (!AtEnd() && Peek() != ']') Advance();
        }
      }
    }
  }

  std::string ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) Fail("expected a name");
    size_t start = pos_;
    while (!AtEnd() && (IsNameChar(Peek()) || Peek() == ':')) Advance();
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Decodes &amp; &lt; &gt; &quot; &apos; and numeric references.
  void AppendReference(std::string* out) {
    Expect("&", "'&'");
    if (Consume("amp;")) {
      out->push_back('&');
    } else if (Consume("lt;")) {
      out->push_back('<');
    } else if (Consume("gt;")) {
      out->push_back('>');
    } else if (Consume("quot;")) {
      out->push_back('"');
    } else if (Consume("apos;")) {
      out->push_back('\'');
    } else if (Consume("#")) {
      int base = Consume("x") ? 16 : 10;
      uint32_t code = 0;
      bool any = false;
      while (!AtEnd() && Peek() != ';') {
        char c = Advance();
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          Fail("bad character reference");
        }
        code = code * base + static_cast<uint32_t>(digit);
        any = true;
      }
      if (!any || code == 0 || code > 0x10FFFF) Fail("bad character reference");
      Expect(";", "';'");
      AppendUtf8(code, out);
    } else {
      Fail("unknown entity reference");
    }
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string ParseAttributeValue() {
    char quote = Peek();
    if (quote != '"' && quote != '\'') Fail("expected quoted attribute value");
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        AppendReference(&value);
      } else if (Peek() == '<') {
        Fail("'<' in attribute value");
      } else {
        value.push_back(Advance());
      }
    }
    if (AtEnd()) Fail("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  /// Parses element/comment/PI/text content into `parent` until a closing
  /// tag (for elements) or end of input (for the document node).
  void SkipMiscAndContentTo(Node* parent, bool allow_text) {
    std::string text_buffer;
    auto flush_text = [&]() {
      if (text_buffer.empty()) return;
      if (options_.strip_whitespace_text && IsAllWhitespace(text_buffer)) {
        text_buffer.clear();
        return;
      }
      doc_->AppendChild(parent, doc_->CreateText(text_buffer));
      text_buffer.clear();
    };

    while (!AtEnd()) {
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          flush_text();
          return;  // caller handles the end tag
        }
        flush_text();
        if (Consume("<!--")) {
          ParseComment(parent);
        } else if (Consume("<![CDATA[")) {
          ParseCData(&text_buffer);
          // CDATA is text: do not flush yet, it may merge with neighbors.
        } else if (Consume("<?")) {
          ParsePI(parent);
        } else {
          ParseElement(parent);
        }
      } else if (Peek() == '&') {
        AppendReference(&text_buffer);
      } else {
        if (!allow_text && !IsXmlWhitespace(Peek())) {
          Fail("text not allowed at document level");
        }
        text_buffer.push_back(Advance());
      }
    }
    flush_text();
  }

  void ParseComment(Node* parent) {
    size_t start = pos_;
    while (!AtEnd()) {
      if (text_.substr(pos_, 3) == "-->") break;
      Advance();
    }
    if (AtEnd()) Fail("unterminated comment");
    std::string content(text_.substr(start, pos_ - start));
    Expect("-->", "'-->'");
    if (options_.keep_comments) {
      doc_->AppendChild(parent, doc_->CreateComment(content));
    }
  }

  void ParseCData(std::string* out) {
    while (!AtEnd()) {
      if (text_.substr(pos_, 3) == "]]>") {
        Expect("]]>", "']]>'");
        return;
      }
      out->push_back(Advance());
    }
    Fail("unterminated CDATA section");
  }

  void ParsePI(Node* parent) {
    std::string target = ParseName();
    SkipWhitespace();
    size_t start = pos_;
    while (!AtEnd() && text_.substr(pos_, 2) != "?>") Advance();
    if (AtEnd()) Fail("unterminated processing instruction");
    std::string content(text_.substr(start, pos_ - start));
    Expect("?>", "'?>'");
    if (options_.keep_comments) {
      doc_->AppendChild(parent,
                        doc_->CreateProcessingInstruction(target, content));
    }
  }

  void ParseElement(Node* parent) {
    if (++depth_ > options_.max_depth) {
      Fail("element nesting exceeds the depth limit (" +
           std::to_string(options_.max_depth) + ")");
    }
    Expect("<", "'<'");
    std::string name = ParseName();
    Node* element = doc_->CreateElement(name);
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) Fail("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') break;
      std::string attr_name = ParseName();
      SkipWhitespace();
      Expect("=", "'='");
      SkipWhitespace();
      std::string attr_value = ParseAttributeValue();
      // xmlns declarations are accepted but treated as ordinary attributes
      // (the engine is namespace-lexical: QNames compare by lexical form).
      if (!doc_->AppendAttribute(element,
                                 doc_->CreateAttribute(attr_name, attr_value))) {
        Fail("duplicate attribute '" + attr_name + "'");
      }
    }
    doc_->AppendChild(parent, element);
    if (Consume("/>")) {
      --depth_;
      return;
    }
    Expect(">", "'>'");
    SkipMiscAndContentTo(element, /*allow_text=*/true);
    Expect("</", "'</'");
    std::string end_name = ParseName();
    if (end_name != name) {
      Fail("mismatched end tag </" + end_name + ">, expected </" + name + ">");
    }
    SkipWhitespace();
    Expect(">", "'>'");
    --depth_;
  }

  std::string_view text_;
  XmlParseOptions options_;
  DocumentPtr doc_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t column_ = 1;
  int depth_ = 0;
};

}  // namespace

DocumentPtr ParseXml(std::string_view text, const XmlParseOptions& options) {
  XmlParser parser(text, options);
  return parser.Parse();
}

}  // namespace xqa

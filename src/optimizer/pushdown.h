#ifndef XQA_OPTIMIZER_PUSHDOWN_H_
#define XQA_OPTIMIZER_PUSHDOWN_H_

#include <set>
#include <string>
#include <vector>

#include "parser/ast.h"

namespace xqa {

/// Predicate pushdown: hoists `where` clauses whose only free variable is a
/// single preceding `for` variable into that for clause's domain, so tuples
/// are filtered before they are materialized (both FLWOR engines then filter
/// inside path evaluation instead of after tuple construction).
///
/// Two forms, tried in order per where clause:
///  1. Literal fast path — `where $v/c <op> literal` (general comparison)
///     with a path domain ending in a named element step becomes a
///     PushedValueFilter annotation on that last step, which EvalPath
///     honors inside the element-name index scan itself.
///  2. General form — the where expression W (free vars exactly {$v}, no
///     focus-dependent constructs) becomes the predicate `boolean(W')` on
///     the domain path's last step, W' being W with $v replaced by the
///     context item. boolean() forces effective-boolean-value semantics,
///     matching the where clause exactly (a bare numeric predicate would be
///     positional).
///
/// Refuses to push when semantics could change: the binder carries a
/// positional variable, a count/group-by/order-by clause sits between binder
/// and where (their numbering, stream shape, or key-validation errors would
/// observe the unfiltered stream), the where references the context item /
/// absolute paths / zero-argument or user-declared functions (focus and
/// environment change inside a predicate), or the domain is not a path
/// ending in an axis step (pushing into e.g. collection() would defeat the
/// partitioned scan).
///
/// Removes pushed where clauses from `expr->clauses`. Appends one
/// description per pushed clause to `fired` (if non-null). Returns the
/// number of clauses pushed.
int PushPredicates(FlworExpr* expr, const std::set<std::string>& user_functions,
                   std::vector<std::string>* fired);

}  // namespace xqa

#endif  // XQA_OPTIMIZER_PUSHDOWN_H_

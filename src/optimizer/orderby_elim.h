#ifndef XQA_OPTIMIZER_ORDERBY_ELIM_H_
#define XQA_OPTIMIZER_ORDERBY_ELIM_H_

#include <set>
#include <string>
#include <vector>

#include "parser/ast.h"

namespace xqa {

/// Order-by elimination: removes an `order by` clause whose keys are already
/// implied by the derived ordering of the tuple stream, so both FLWOR
/// engines skip materializing and stable-sorting the tuple buffer entirely.
///
/// Two cases fire:
///  1. Positional keys — a single ascending spec whose key is exactly the
///     positional variable of the first clause (`for $x at $p in ...`) or a
///     preceding `count` variable. Tuple numbering is non-decreasing in
///     stream order (later for clauses repeat, never reorder, a number), so
///     a stable sort is the identity, and integer keys can never fail
///     order-key validation.
///  2. Derived key-sorted domains — the first `for` clause's domain derives
///     OrderingKind::kKeySorted (a range expression, or a nested FLWOR with
///     its own trailing order-by), and the specs are a prefix of the derived
///     keys: same key expression relative to the driving variable (see
///     DumpKeyRelativeTo), same direction, same empty-ordering. The inner
///     sort already ordered and validated the same keys on the same items.
///
/// Refusals: any group-by before the order-by (grouping rebuilds the tuple
/// stream), the driving variable rebound in between, keys referencing other
/// variables or non-relocatable constructs. Elisions are recorded on the
/// FLWOR node (`FlworExpr::elided_order_by`) so execution can surface
/// QueryStats::order_by_elided at run time.
///
/// Appends one description per elision to `fired` (if non-null). Returns the
/// number of clauses removed.
int EliminateOrderBy(FlworExpr* expr,
                     const std::set<std::string>& user_functions,
                     std::vector<std::string>* fired);

}  // namespace xqa

#endif  // XQA_OPTIMIZER_ORDERBY_ELIM_H_

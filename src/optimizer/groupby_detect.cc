#include "optimizer/groupby_detect.h"

#include <set>
#include <string>
#include <vector>

namespace xqa {

namespace {

/// Matches FunctionCallExpr `name(arg)`; returns the argument or nullptr.
Expr* MatchCall1(Expr* expr, std::string_view name) {
  if (expr == nullptr || expr->kind() != ExprKind::kFunctionCall) return nullptr;
  auto* call = static_cast<FunctionCallExpr*>(expr);
  if (call->name != name || call->args.size() != 1) return nullptr;
  return call->args[0].get();
}

/// Matches a single-child-step path "$var/child" and returns the child name.
bool MatchVarChildPath(const Expr* expr, std::string* var, std::string* child) {
  if (expr == nullptr || expr->kind() != ExprKind::kPath) return false;
  const auto* path = static_cast<const PathExpr*>(expr);
  if (path->absolute || path->start == nullptr) return false;
  if (path->start->kind() != ExprKind::kVarRef) return false;
  if (path->segments.size() != 1) return false;
  const PathSegment& segment = path->segments[0];
  if (segment.is_expr()) return false;
  if (segment.step.axis != Axis::kChild ||
      segment.step.test.kind != NodeTest::Kind::kName ||
      segment.step.test.name == "*" || !segment.step.predicates.empty()) {
    return false;
  }
  *var = static_cast<const VarRefExpr*>(path->start.get())->name;
  *child = segment.step.test.name;
  return true;
}

/// Flattens an `and` tree into conjuncts.
void CollectConjuncts(Expr* expr, std::vector<Expr*>* out) {
  if (expr->kind() == ExprKind::kLogical &&
      static_cast<LogicalExpr*>(expr)->op == LogicalOp::kAnd) {
    auto* logical = static_cast<LogicalExpr*>(expr);
    CollectConjuncts(logical->lhs.get(), out);
    CollectConjuncts(logical->rhs.get(), out);
    return;
  }
  out->push_back(expr);
}

/// Builds the path expression $var/child.
ExprPtr BuildVarChildPath(const std::string& var, const std::string& child,
                          SourceLocation loc) {
  std::vector<PathSegment> segments(1);
  segments[0].step.axis = Axis::kChild;
  segments[0].step.test.kind = NodeTest::Kind::kName;
  segments[0].step.test.name = child;
  return std::make_unique<PathExpr>(std::make_unique<VarRefExpr>(var, loc),
                                    /*absolute=*/false, std::move(segments),
                                    loc);
}

ExprPtr BuildCall1(std::string name, ExprPtr arg, SourceLocation loc) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(arg));
  return std::make_unique<FunctionCallExpr>(std::move(name), std::move(args),
                                            loc);
}

}  // namespace

ExprPtr TryRewriteGroupByPattern(FlworExpr* expr) {
  // --- Shape check ----------------------------------------------------------
  // Leading for-clauses over distinct-values(...).
  size_t index = 0;
  std::vector<std::string> key_vars;
  while (index < expr->clauses.size() &&
         expr->clauses[index].kind == ClauseKind::kFor) {
    FlworClause& clause = expr->clauses[index];
    if (!clause.pos_var.empty()) return nullptr;
    if (MatchCall1(clause.for_expr.get(), "distinct-values") == nullptr &&
        MatchCall1(clause.for_expr.get(), "fn:distinct-values") == nullptr) {
      break;
    }
    key_vars.push_back(clause.for_var);
    ++index;
  }
  if (key_vars.empty()) return nullptr;

  // One let clause binding the correlated inner FLWOR.
  if (index >= expr->clauses.size() ||
      expr->clauses[index].kind != ClauseKind::kLet) {
    return nullptr;
  }
  FlworClause& let_clause = expr->clauses[index];
  const std::string items_var = let_clause.let_var;
  if (let_clause.let_expr->kind() != ExprKind::kFlwor) return nullptr;
  auto* inner = static_cast<FlworExpr*>(let_clause.let_expr.get());
  ++index;

  // Inner: for $i in SRC where <conjunction> return $i.
  if (inner->clauses.size() != 2 ||
      inner->clauses[0].kind != ClauseKind::kFor ||
      inner->clauses[1].kind != ClauseKind::kWhere ||
      !inner->at_var.empty()) {
    return nullptr;
  }
  FlworClause& inner_for = inner->clauses[0];
  if (!inner_for.pos_var.empty()) return nullptr;
  const std::string item_var = inner_for.for_var;
  if (inner->return_expr->kind() != ExprKind::kVarRef ||
      static_cast<VarRefExpr*>(inner->return_expr.get())->name != item_var) {
    return nullptr;
  }

  // The conjunction must pair each key variable with one $i/child = $key.
  std::vector<Expr*> conjuncts;
  CollectConjuncts(inner->clauses[1].where_expr.get(), &conjuncts);
  if (conjuncts.size() != key_vars.size()) return nullptr;
  std::vector<std::string> key_children(key_vars.size());
  std::set<std::string> matched;
  for (Expr* conjunct : conjuncts) {
    if (conjunct->kind() != ExprKind::kComparison) return nullptr;
    auto* comparison = static_cast<ComparisonExpr*>(conjunct);
    if (comparison->comparison_kind != ComparisonKind::kGeneral ||
        comparison->op != 0 /* CompareOp::kEq */) {
      return nullptr;
    }
    std::string path_var, child;
    Expr* lhs = comparison->lhs.get();
    Expr* rhs = comparison->rhs.get();
    // Accept either orientation: $i/c = $k or $k = $i/c.
    if (!MatchVarChildPath(lhs, &path_var, &child)) {
      std::swap(lhs, rhs);
      if (!MatchVarChildPath(lhs, &path_var, &child)) return nullptr;
    }
    if (path_var != item_var) return nullptr;
    if (rhs->kind() != ExprKind::kVarRef) return nullptr;
    const std::string& key_name = static_cast<VarRefExpr*>(rhs)->name;
    bool found = false;
    for (size_t k = 0; k < key_vars.size(); ++k) {
      if (key_vars[k] == key_name) {
        if (!matched.insert(key_name).second) return nullptr;
        key_children[k] = child;
        found = true;
        break;
      }
    }
    if (!found) return nullptr;
  }

  // Optional `where exists($items)`.
  if (index < expr->clauses.size() &&
      expr->clauses[index].kind == ClauseKind::kWhere) {
    Expr* arg = MatchCall1(expr->clauses[index].where_expr.get(), "exists");
    if (arg == nullptr) {
      arg = MatchCall1(expr->clauses[index].where_expr.get(), "fn:exists");
    }
    if (arg == nullptr || arg->kind() != ExprKind::kVarRef ||
        static_cast<VarRefExpr*>(arg)->name != items_var) {
      return nullptr;
    }
    ++index;
  }

  // Optional trailing order by, then nothing else.
  FlworClause* order_clause = nullptr;
  if (index < expr->clauses.size() &&
      expr->clauses[index].kind == ClauseKind::kOrderBy) {
    order_clause = &expr->clauses[index];
    ++index;
  }
  if (index != expr->clauses.size()) return nullptr;

  // Name hygiene: the inner item variable must not collide with the key or
  // items variables (its name becomes visible in the rewritten FLWOR head).
  for (const std::string& key : key_vars) {
    if (key == item_var) return nullptr;
  }
  if (items_var == item_var) return nullptr;

  // --- Build the rewritten FLWOR --------------------------------------------
  SourceLocation loc = expr->location();
  std::vector<FlworClause> clauses;

  FlworClause for_clause;
  for_clause.kind = ClauseKind::kFor;
  for_clause.location = loc;
  for_clause.for_var = item_var;
  for_clause.for_expr = std::move(inner_for.for_expr);
  clauses.push_back(std::move(for_clause));

  FlworClause group_clause;
  group_clause.kind = ClauseKind::kGroupBy;
  group_clause.location = loc;
  for (size_t k = 0; k < key_vars.size(); ++k) {
    FlworClause::GroupKey key;
    key.expr = BuildCall1(
        "data", BuildVarChildPath(item_var, key_children[k], loc), loc);
    key.var = key_vars[k];
    group_clause.group_keys.push_back(std::move(key));
  }
  FlworClause::NestSpec nest;
  nest.expr = std::make_unique<VarRefExpr>(item_var, loc);
  nest.var = items_var;
  group_clause.nest_specs.push_back(std::move(nest));
  clauses.push_back(std::move(group_clause));

  // Post-group filter: drop groups whose key is the empty sequence — items
  // lacking the child element never matched the naive form's equality.
  ExprPtr filter;
  for (const std::string& key : key_vars) {
    ExprPtr exists = BuildCall1(
        "exists", std::make_unique<VarRefExpr>(key, loc), loc);
    if (filter == nullptr) {
      filter = std::move(exists);
    } else {
      filter = std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(filter),
                                             std::move(exists), loc);
    }
  }
  FlworClause where_clause;
  where_clause.kind = ClauseKind::kWhere;
  where_clause.location = loc;
  where_clause.where_expr = std::move(filter);
  clauses.push_back(std::move(where_clause));

  if (order_clause != nullptr) {
    clauses.push_back(std::move(*order_clause));
  }

  return std::make_unique<FlworExpr>(std::move(clauses), expr->at_var,
                                     std::move(expr->return_expr), loc);
}

}  // namespace xqa

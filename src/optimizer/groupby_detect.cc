#include "optimizer/groupby_detect.h"

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "optimizer/expr_clone.h"
#include "optimizer/logical_props.h"
#include "xdm/compare.h"

namespace xqa {

namespace {

/// Matches FunctionCallExpr `name(arg)`; returns the argument or nullptr.
const Expr* MatchCall1(const Expr* expr, std::string_view name) {
  if (expr == nullptr || expr->kind() != ExprKind::kFunctionCall) return nullptr;
  const auto* call = static_cast<const FunctionCallExpr*>(expr);
  if (call->name != name || call->args.size() != 1) return nullptr;
  return call->args[0].get();
}

/// Matches a single-child-step path "$var/child" and returns the child name.
bool MatchVarChildPath(const Expr* expr, std::string* var, std::string* child) {
  if (expr == nullptr || expr->kind() != ExprKind::kPath) return false;
  const auto* path = static_cast<const PathExpr*>(expr);
  if (path->absolute || path->start == nullptr) return false;
  if (path->start->kind() != ExprKind::kVarRef) return false;
  if (path->segments.size() != 1) return false;
  const PathSegment& segment = path->segments[0];
  if (segment.is_expr()) return false;
  if (segment.step.axis != Axis::kChild ||
      segment.step.test.kind != NodeTest::Kind::kName ||
      segment.step.test.name == "*" || !segment.step.predicates.empty() ||
      segment.step.pushed_filter != nullptr) {
    return false;
  }
  *var = static_cast<const VarRefExpr*>(path->start.get())->name;
  *child = segment.step.test.name;
  return true;
}

/// Flattens an `and` tree into conjuncts.
void CollectConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr->kind() == ExprKind::kLogical &&
      static_cast<const LogicalExpr*>(expr)->op == LogicalOp::kAnd) {
    const auto* logical = static_cast<const LogicalExpr*>(expr);
    CollectConjuncts(logical->lhs.get(), out);
    CollectConjuncts(logical->rhs.get(), out);
    return;
  }
  out->push_back(expr);
}

/// Builds the path expression $var/child.
ExprPtr BuildVarChildPath(const std::string& var, const std::string& child,
                          SourceLocation loc) {
  std::vector<PathSegment> segments(1);
  segments[0].step.axis = Axis::kChild;
  segments[0].step.test.kind = NodeTest::Kind::kName;
  segments[0].step.test.name = child;
  return std::make_unique<PathExpr>(std::make_unique<VarRefExpr>(var, loc),
                                    /*absolute=*/false, std::move(segments),
                                    loc);
}

ExprPtr BuildCall1(std::string name, ExprPtr arg, SourceLocation loc) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(arg));
  return std::make_unique<FunctionCallExpr>(std::move(name), std::move(args),
                                            loc);
}

/// True when `key_domain` is structurally SRC/child: a path whose last
/// segment is child::child (no predicates) and whose remaining prefix dumps
/// equal to `src`. Ensures the naive key domain is exactly the grouped child
/// values, which the correctness argument relies on.
bool KeyDomainMatchesSource(const Expr* key_domain, const Expr* src,
                            const std::string& child) {
  if (key_domain == nullptr || key_domain->kind() != ExprKind::kPath) {
    return false;
  }
  const auto* path = static_cast<const PathExpr*>(key_domain);
  if (path->segments.empty()) return false;
  const PathSegment& last = path->segments.back();
  if (last.is_expr()) return false;
  if (last.step.axis != Axis::kChild ||
      last.step.test.kind != NodeTest::Kind::kName ||
      last.step.test.name != child || !last.step.predicates.empty() ||
      last.step.pushed_filter != nullptr) {
    return false;
  }
  ExprPtr prefix = CloneExpr(key_domain);
  auto* prefix_path = static_cast<PathExpr*>(prefix.get());
  prefix_path->segments.pop_back();
  if (prefix_path->segments.empty() && !prefix_path->absolute) {
    if (prefix_path->start == nullptr) return false;
    return DumpExpr(prefix_path->start.get()) == DumpExpr(src);
  }
  return DumpExpr(prefix.get()) == DumpExpr(src);
}

/// Builds `every $item in SRC satisfies count($item/c1) <= 1 (and ...)`.
ExprPtr BuildGuard(const Expr* src, const std::string& item_var,
                   const std::vector<std::string>& key_children,
                   SourceLocation loc) {
  ExprPtr satisfies;
  std::set<std::string> seen;
  for (const std::string& child : key_children) {
    if (!seen.insert(child).second) continue;
    ExprPtr count =
        BuildCall1("count", BuildVarChildPath(item_var, child, loc), loc);
    ExprPtr one =
        std::make_unique<LiteralExpr>(AtomicValue::Integer(1), loc);
    ExprPtr at_most_once = std::make_unique<ComparisonExpr>(
        ComparisonKind::kValue, static_cast<int>(CompareOp::kLe),
        std::move(count), std::move(one), loc);
    if (satisfies == nullptr) {
      satisfies = std::move(at_most_once);
    } else {
      satisfies = std::make_unique<LogicalExpr>(
          LogicalOp::kAnd, std::move(satisfies), std::move(at_most_once), loc);
    }
  }
  std::vector<QuantifiedExpr::Binding> bindings;
  QuantifiedExpr::Binding binding;
  binding.var = item_var;
  binding.expr = CloneExpr(src);
  bindings.push_back(std::move(binding));
  return std::make_unique<QuantifiedExpr>(/*every=*/true, std::move(bindings),
                                          std::move(satisfies), loc);
}

}  // namespace

bool TryRewriteGroupByPattern(const FlworExpr& expr,
                              int64_t cardinality_threshold,
                              GroupByRewrite* out) {
  // --- Shape check ----------------------------------------------------------
  // Leading for-clauses over distinct-values(...).
  size_t index = 0;
  std::vector<std::string> key_vars;
  std::vector<const Expr*> key_domains;
  while (index < expr.clauses.size() &&
         expr.clauses[index].kind == ClauseKind::kFor) {
    const FlworClause& clause = expr.clauses[index];
    if (!clause.pos_var.empty()) return false;
    const Expr* domain = MatchCall1(clause.for_expr.get(), "distinct-values");
    if (domain == nullptr) {
      domain = MatchCall1(clause.for_expr.get(), "fn:distinct-values");
    }
    if (domain == nullptr) break;
    key_vars.push_back(clause.for_var);
    key_domains.push_back(domain);
    ++index;
  }
  if (key_vars.empty()) return false;

  // One let clause binding the correlated inner FLWOR.
  if (index >= expr.clauses.size() ||
      expr.clauses[index].kind != ClauseKind::kLet) {
    return false;
  }
  const FlworClause& let_clause = expr.clauses[index];
  const std::string items_var = let_clause.let_var;
  if (let_clause.let_expr->kind() != ExprKind::kFlwor) return false;
  const auto* inner = static_cast<const FlworExpr*>(let_clause.let_expr.get());
  ++index;

  // Inner: for $i in SRC where <conjunction> return $i.
  if (inner->clauses.size() != 2 ||
      inner->clauses[0].kind != ClauseKind::kFor ||
      inner->clauses[1].kind != ClauseKind::kWhere ||
      !inner->at_var.empty()) {
    return false;
  }
  const FlworClause& inner_for = inner->clauses[0];
  if (!inner_for.pos_var.empty()) return false;
  const std::string item_var = inner_for.for_var;
  const Expr* src = inner_for.for_expr.get();
  if (inner->return_expr->kind() != ExprKind::kVarRef ||
      static_cast<const VarRefExpr*>(inner->return_expr.get())->name !=
          item_var) {
    return false;
  }

  // The conjunction must pair each key variable with one $i/child = $key.
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(inner->clauses[1].where_expr.get(), &conjuncts);
  if (conjuncts.size() != key_vars.size()) return false;
  std::vector<std::string> key_children(key_vars.size());
  std::set<std::string> matched;
  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind() != ExprKind::kComparison) return false;
    const auto* comparison = static_cast<const ComparisonExpr*>(conjunct);
    if (comparison->comparison_kind != ComparisonKind::kGeneral ||
        comparison->op != static_cast<int>(CompareOp::kEq)) {
      return false;
    }
    std::string path_var, child;
    const Expr* lhs = comparison->lhs.get();
    const Expr* rhs = comparison->rhs.get();
    // Accept either orientation: $i/c = $k or $k = $i/c.
    if (!MatchVarChildPath(lhs, &path_var, &child)) {
      std::swap(lhs, rhs);
      if (!MatchVarChildPath(lhs, &path_var, &child)) return false;
    }
    if (path_var != item_var) return false;
    if (rhs->kind() != ExprKind::kVarRef) return false;
    const std::string& key_name =
        static_cast<const VarRefExpr*>(rhs)->name;
    bool found = false;
    for (size_t k = 0; k < key_vars.size(); ++k) {
      if (key_vars[k] == key_name) {
        if (!matched.insert(key_name).second) return false;
        key_children[k] = child;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }

  // Each key domain must be exactly SRC/ck.
  for (size_t k = 0; k < key_vars.size(); ++k) {
    if (!KeyDomainMatchesSource(key_domains[k], src, key_children[k])) {
      return false;
    }
  }

  // Optional `where exists($items)` — required with >= 2 keys, where the
  // naive form otherwise also emits empty cross-product combinations.
  bool has_exists_filter = false;
  if (index < expr.clauses.size() &&
      expr.clauses[index].kind == ClauseKind::kWhere) {
    const Expr* arg =
        MatchCall1(expr.clauses[index].where_expr.get(), "exists");
    if (arg == nullptr) {
      arg = MatchCall1(expr.clauses[index].where_expr.get(), "fn:exists");
    }
    if (arg == nullptr || arg->kind() != ExprKind::kVarRef ||
        static_cast<const VarRefExpr*>(arg)->name != items_var) {
      return false;
    }
    has_exists_filter = true;
    ++index;
  }

  // Optional trailing order by, then nothing else.
  const FlworClause* order_clause = nullptr;
  if (index < expr.clauses.size() &&
      expr.clauses[index].kind == ClauseKind::kOrderBy) {
    order_clause = &expr.clauses[index];
    ++index;
  }
  if (index != expr.clauses.size()) return false;

  // With multiple keys the naive form's group order is the first-occurrence
  // cross product, which grouping does not reproduce: require the exists
  // filter plus an order-by whose bare-variable keys cover every key var
  // (then keys are unique per group and both forms sort identically).
  if (key_vars.size() > 1) {
    if (!has_exists_filter || order_clause == nullptr) return false;
    std::set<std::string> covered;
    for (const OrderSpec& spec : order_clause->order_by.specs) {
      if (spec.key == nullptr || spec.key->kind() != ExprKind::kVarRef) {
        return false;
      }
      const std::string& name =
          static_cast<const VarRefExpr*>(spec.key.get())->name;
      bool is_key = false;
      for (const std::string& key : key_vars) {
        if (key == name) is_key = true;
      }
      if (!is_key) return false;
      covered.insert(name);
    }
    if (covered.size() != key_vars.size()) return false;
  }

  // Name hygiene: the inner item variable must not collide with the key or
  // items variables (its name becomes visible in the rewritten FLWOR head).
  for (const std::string& key : key_vars) {
    if (key == item_var) return false;
  }
  if (items_var == item_var) return false;

  // Cost gate: the rewrite (and its runtime guard pass) only pays off when
  // the alternative is a large O(n^2) self-join.
  LogicalProps src_props = DeriveProps(src);
  if (!src_props.CardinalityAtLeast(cardinality_threshold)) return false;

  // --- Build the rewritten FLWOR --------------------------------------------
  SourceLocation loc = expr.location();
  std::vector<FlworClause> clauses;

  FlworClause for_clause;
  for_clause.kind = ClauseKind::kFor;
  for_clause.location = loc;
  for_clause.for_var = item_var;
  for_clause.for_expr = CloneExpr(src);
  clauses.push_back(std::move(for_clause));

  FlworClause group_clause;
  group_clause.kind = ClauseKind::kGroupBy;
  group_clause.location = loc;
  for (size_t k = 0; k < key_vars.size(); ++k) {
    FlworClause::GroupKey key;
    key.expr = BuildCall1(
        "data", BuildVarChildPath(item_var, key_children[k], loc), loc);
    key.var = key_vars[k];
    group_clause.group_keys.push_back(std::move(key));
  }
  FlworClause::NestSpec nest;
  nest.expr = std::make_unique<VarRefExpr>(item_var, loc);
  nest.var = items_var;
  group_clause.nest_specs.push_back(std::move(nest));
  clauses.push_back(std::move(group_clause));

  // Post-group filter: drop groups whose key is the empty sequence — items
  // lacking the child element never matched the naive form's equality.
  ExprPtr filter;
  for (const std::string& key : key_vars) {
    ExprPtr exists = BuildCall1(
        "exists", std::make_unique<VarRefExpr>(key, loc), loc);
    if (filter == nullptr) {
      filter = std::move(exists);
    } else {
      filter = std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(filter),
                                             std::move(exists), loc);
    }
  }
  FlworClause where_clause;
  where_clause.kind = ClauseKind::kWhere;
  where_clause.location = loc;
  where_clause.where_expr = std::move(filter);
  clauses.push_back(std::move(where_clause));

  if (order_clause != nullptr) {
    clauses.push_back(CloneClause(*order_clause));
  }

  out->grouped = std::make_unique<FlworExpr>(
      std::move(clauses), expr.at_var, CloneExpr(expr.return_expr.get()), loc);
  out->guard = BuildGuard(src, item_var, key_children, loc);
  std::string keys;
  for (size_t k = 0; k < key_children.size(); ++k) {
    if (k > 0) keys += ", ";
    keys += key_children[k];
  }
  out->description = "group-by extraction: keys (" + keys + ") over source (" +
                     DescribeProps(src_props) + "), guarded";
  return true;
}

}  // namespace xqa

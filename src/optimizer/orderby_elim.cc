#include "optimizer/orderby_elim.h"

#include <cstddef>

#include "optimizer/logical_props.h"

namespace xqa {

namespace {

bool BindsVar(const FlworClause& clause, const std::string& name) {
  switch (clause.kind) {
    case ClauseKind::kFor:
      return clause.for_var == name || clause.pos_var == name;
    case ClauseKind::kLet:
      return clause.let_var == name;
    case ClauseKind::kCount:
      return clause.count_var == name;
    case ClauseKind::kGroupBy:
      for (const FlworClause::GroupKey& key : clause.group_keys) {
        if (key.var == name) return true;
      }
      for (const FlworClause::NestSpec& nest : clause.nest_specs) {
        if (nest.var == name) return true;
      }
      return false;
    default:
      return false;
  }
}

bool GroupByBefore(const FlworExpr& expr, size_t end) {
  for (size_t i = 0; i < end; ++i) {
    if (expr.clauses[i].kind == ClauseKind::kGroupBy) return true;
  }
  return false;
}

/// True when `var` is rebound by any clause in (begin, end).
bool ReboundBetween(const FlworExpr& expr, size_t begin, size_t end,
                    const std::string& var) {
  for (size_t i = begin + 1; i < end; ++i) {
    if (BindsVar(expr.clauses[i], var)) return true;
  }
  return false;
}

/// Case 1: single ascending spec on a tuple-numbering variable — the
/// positional variable of the first clause, or a count variable bound before
/// the order-by. Numbering is non-decreasing in stream order, so a stable
/// sort of it is the identity.
bool PositionalKeyElides(const FlworExpr& expr, size_t order_index,
                         std::string* description) {
  const OrderByData& order = expr.clauses[order_index].order_by;
  if (order.specs.size() != 1) return false;
  const OrderSpec& spec = order.specs[0];
  if (spec.descending) return false;
  if (spec.key == nullptr || spec.key->kind() != ExprKind::kVarRef) {
    return false;
  }
  const std::string& var =
      static_cast<const VarRefExpr*>(spec.key.get())->name;
  if (GroupByBefore(expr, order_index)) return false;

  const FlworClause& first = expr.clauses[0];
  if (first.kind == ClauseKind::kFor && first.pos_var == var &&
      !ReboundBetween(expr, 0, order_index, var)) {
    *description = "order by $" + var +
                   " (position of first for clause, non-decreasing)";
    return true;
  }
  for (size_t i = 0; i < order_index; ++i) {
    const FlworClause& clause = expr.clauses[i];
    if (clause.kind == ClauseKind::kCount && clause.count_var == var &&
        !ReboundBetween(expr, i, order_index, var)) {
      *description =
          "order by $" + var + " (count variable, non-decreasing)";
      return true;
    }
  }
  return false;
}

/// Case 2: the first for clause's domain derives kKeySorted and the specs
/// are a prefix of the derived keys (same expression relative to the driving
/// variable, same direction, same empty ordering).
bool SortedDomainElides(const FlworExpr& expr, size_t order_index,
                        const std::set<std::string>& user_functions,
                        std::string* description) {
  size_t for_index = expr.clauses.size();
  for (size_t i = 0; i < order_index; ++i) {
    ClauseKind kind = expr.clauses[i].kind;
    if (kind == ClauseKind::kFor) {
      for_index = i;
      break;
    }
    if (kind != ClauseKind::kLet && kind != ClauseKind::kWhere) return false;
  }
  if (for_index >= order_index) return false;
  const FlworClause& for_clause = expr.clauses[for_index];
  LogicalProps props = DeriveProps(for_clause.for_expr.get());
  if (props.ordering != OrderingKind::kKeySorted || props.keys.empty()) {
    return false;
  }
  if (GroupByBefore(expr, order_index)) return false;
  if (ReboundBetween(expr, for_index, order_index, for_clause.for_var)) {
    return false;
  }

  const OrderByData& order = expr.clauses[order_index].order_by;
  if (order.specs.empty() || order.specs.size() > props.keys.size()) {
    return false;
  }
  for (size_t i = 0; i < order.specs.size(); ++i) {
    const OrderSpec& spec = order.specs[i];
    std::string dump;
    if (!DumpKeyRelativeTo(spec.key.get(), for_clause.for_var,
                           user_functions, &dump)) {
      return false;
    }
    DerivedKey wanted;
    wanted.dump = dump;
    wanted.descending = spec.descending;
    wanted.empty_greatest = spec.empty_greatest;
    if (!(wanted == props.keys[i])) return false;
  }
  *description = "order by on already-sorted domain (" +
                 DescribeProps(props) + ")";
  return true;
}

}  // namespace

int EliminateOrderBy(FlworExpr* expr,
                     const std::set<std::string>& user_functions,
                     std::vector<std::string>* fired) {
  int eliminated = 0;
  for (size_t j = 0; j < expr->clauses.size();) {
    if (expr->clauses[j].kind != ClauseKind::kOrderBy) {
      ++j;
      continue;
    }
    std::string description;
    if (!PositionalKeyElides(*expr, j, &description) &&
        !SortedDomainElides(*expr, j, user_functions, &description)) {
      ++j;
      continue;
    }
    expr->clauses.erase(expr->clauses.begin() + static_cast<long>(j));
    ++expr->elided_order_by;
    ++eliminated;
    if (fired != nullptr) {
      fired->push_back("order-by elimination: " + description);
    }
  }
  return eliminated;
}

}  // namespace xqa

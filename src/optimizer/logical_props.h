#ifndef XQA_OPTIMIZER_LOGICAL_PROPS_H_
#define XQA_OPTIMIZER_LOGICAL_PROPS_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "parser/ast.h"

namespace xqa {

/// Derived ordering of an expression's result sequence. The lattice is
/// kUnordered < {kDocumentOrder, kKeySorted}: rules may rely on a stronger
/// derived ordering, never assume one that wasn't derived.
enum class OrderingKind : uint8_t {
  kUnordered,      ///< nothing known
  kDocumentOrder,  ///< nodes in document order, no duplicate identities
  kKeySorted,      ///< sorted by `LogicalProps::keys` (stable w.r.t. input)
};

/// One derived sort key, identified structurally: `dump` is the key
/// expression rendered relative to the item it applies to (the driving
/// variable replaced by a placeholder), so keys derived from different
/// variable names still compare equal.
struct DerivedKey {
  std::string dump;
  bool descending = false;
  bool empty_greatest = false;

  bool operator==(const DerivedKey& other) const {
    return dump == other.dump && descending == other.descending &&
           empty_greatest == other.empty_greatest;
  }
};

/// Statically derived properties of one expression subtree. Cardinality is a
/// heuristic estimate (the engine has no per-name index statistics at
/// compile time — see docs/OPTIMIZER.md): `cardinality >= 0` only for
/// literal-shaped domains, and `cardinality_large` marks domains that scan
/// documents or collections, which the cost gates treat as clearing any
/// threshold.
struct LogicalProps {
  OrderingKind ordering = OrderingKind::kUnordered;
  std::vector<DerivedKey> keys;  ///< meaningful when ordering == kKeySorted
  bool duplicate_free = false;
  int64_t cardinality = -1;  ///< exact item count when >= 0; -1 unknown
  bool cardinality_large = false;

  bool CardinalityAtLeast(int64_t threshold) const {
    return cardinality_large || (cardinality >= 0 && cardinality >= threshold);
  }
};

/// Derives properties bottom-up for one expression. Pure and conservative:
/// anything not recognized degrades to the bottom of the lattice.
LogicalProps DeriveProps(const Expr* expr);

/// Human-readable one-liner for EXPLAIN annotations and fired-rule logs,
/// e.g. "document-order, dup-free, card~large" or "sorted[•/price asc]".
std::string DescribeProps(const LogicalProps& props);

/// Collects the free variable names of `expr` (variables referenced but not
/// bound inside it), respecting FLWOR clause scoping, quantifier bindings,
/// and typeswitch case variables.
void CollectFreeVars(const Expr* expr, std::set<std::string>* out);

/// True when `expr` (anywhere in its tree) depends on the evaluation focus
/// or other surroundings that change if the expression is relocated into a
/// path predicate: the context item, absolute paths, zero-argument function
/// calls (position/last/... — conservatively all of them), or calls to
/// user-declared functions from `user_functions`.
bool ContainsNonRelocatable(const Expr* expr,
                            const std::set<std::string>& user_functions);

/// Renders `key` relative to `var`: the s-expression dump with every
/// reference to $var replaced by the placeholder "•". Fails (returns false)
/// when the key references any other variable or contains non-relocatable
/// constructs, so two keys match only if they are the same function of the
/// driving item.
bool DumpKeyRelativeTo(const Expr* key, const std::string& var,
                       const std::set<std::string>& user_functions,
                       std::string* out);

}  // namespace xqa

#endif  // XQA_OPTIMIZER_LOGICAL_PROPS_H_

#include "optimizer/shred_plan.h"

namespace xqa {

namespace {

/// Matches a direct fn:collection call usable as a shredded-scan source:
/// zero arguments (the default collection) or one string literal. Returns
/// false for computed names — the collection must be known at compile time
/// to name a table. Runs pre-bind, so the match is by name, excluding names
/// shadowed by user-declared functions.
bool MatchCollectionCall(const Expr* expr,
                         const std::set<std::string>& user_functions,
                         std::string* collection) {
  if (expr == nullptr || expr->kind() != ExprKind::kFunctionCall) return false;
  const auto* call = static_cast<const FunctionCallExpr*>(expr);
  if (call->name != "collection" && call->name != "fn:collection") {
    return false;
  }
  if (user_functions.count(call->name) > 0) return false;
  if (call->args.empty()) {
    collection->clear();
    return true;
  }
  if (call->args.size() != 1) return false;
  const Expr* arg = call->args[0].get();
  if (arg == nullptr || arg->kind() != ExprKind::kLiteral) return false;
  const auto* literal = static_cast<const LiteralExpr*>(arg);
  if (!literal->value.IsStringLike()) return false;
  *collection = literal->value.ToLexical();
  return true;
}

/// Matches the `//rec` tail: descendant-or-self::node() (no predicates, no
/// pushed filter) then child::rec (no predicates; a pushed value filter is
/// fine — the shredded scan evaluates it against the dictionary).
bool MatchDescendantRecord(const PathExpr* path, std::string* record) {
  if (path->segments.size() != 2) return false;
  const PathSegment& dos = path->segments[0];
  const PathSegment& rec = path->segments[1];
  if (dos.is_expr() || rec.is_expr()) return false;
  if (dos.step.axis != Axis::kDescendantOrSelf ||
      dos.step.test.kind != NodeTest::Kind::kAnyKind ||
      !dos.step.predicates.empty() || dos.step.pushed_filter != nullptr) {
    return false;
  }
  if (rec.step.axis != Axis::kChild ||
      rec.step.test.kind != NodeTest::Kind::kName ||
      rec.step.test.name.empty() || rec.step.test.name == "*" ||
      !rec.step.predicates.empty()) {
    return false;
  }
  *record = rec.step.test.name;
  return true;
}

}  // namespace

int MarkShreddedScans(FlworExpr* expr,
                      const std::set<std::string>& user_functions,
                      std::vector<std::string>* fired) {
  int marked = 0;
  for (FlworClause& clause : expr->clauses) {
    if (clause.kind != ClauseKind::kFor || clause.shred_candidate) continue;
    const Expr* domain = clause.for_expr.get();
    if (domain == nullptr || domain->kind() != ExprKind::kPath) continue;
    const auto* path = static_cast<const PathExpr*>(domain);
    if (path->absolute || path->start == nullptr) continue;
    std::string collection;
    if (!MatchCollectionCall(path->start.get(), user_functions, &collection)) {
      continue;
    }
    std::string record;
    if (!MatchDescendantRecord(path, &record)) continue;
    clause.shred_candidate = true;
    clause.shred_collection = std::move(collection);
    clause.shred_record = record;
    ++marked;
    if (fired != nullptr) {
      fired->push_back("shredded-scan candidate: collection(" +
                       (clause.shred_collection.empty()
                            ? std::string()
                            : "'" + clause.shred_collection + "'") +
                       ")//" + record);
    }
  }
  return marked;
}

}  // namespace xqa

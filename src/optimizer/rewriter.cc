#include "optimizer/rewriter.h"

#include <memory>
#include <set>
#include <utility>

#include "optimizer/constant_fold.h"
#include "optimizer/groupby_detect.h"
#include "optimizer/orderby_elim.h"
#include "optimizer/pushdown.h"
#include "optimizer/shred_plan.h"

namespace xqa {

namespace {

class Rewriter {
 public:
  Rewriter(const OptimizerOptions& options,
           std::set<std::string> user_functions,
           std::vector<std::string>* fired)
      : options_(options),
        user_functions_(std::move(user_functions)),
        fired_(fired) {}

  const RewriteCounts& counts() const { return counts_; }

  /// Rewrites the expression in `slot`, recursing into children first so
  /// nested occurrences of a pattern are handled bottom-up.
  void Rewrite(ExprPtr* slot) {
    RewriteChildren(slot);
    if (options_.fold_constants && slot->get() != nullptr) {
      ExprPtr folded = TryFoldConstant(slot->get());
      if (folded != nullptr) {
        RecordFold();
        *slot = std::move(folded);
        // A folded if-branch may expose further folds.
        ExprPtr again = TryFoldConstant(slot->get());
        while (again != nullptr) {
          RecordFold();
          *slot = std::move(again);
          again = TryFoldConstant(slot->get());
        }
      }
    }
  }

  void RewriteChildren(ExprPtr* slot) {
    Expr* expr = slot->get();
    if (expr == nullptr) return;
    switch (expr->kind()) {
      case ExprKind::kLiteral:
      case ExprKind::kVarRef:
      case ExprKind::kContextItem:
        return;
      case ExprKind::kSequence:
        for (ExprPtr& item : static_cast<SequenceExpr*>(expr)->items) {
          Rewrite(&item);
        }
        return;
      case ExprKind::kRange: {
        auto* e = static_cast<RangeExpr*>(expr);
        Rewrite(&e->lo);
        Rewrite(&e->hi);
        return;
      }
      case ExprKind::kArithmetic: {
        auto* e = static_cast<ArithmeticExpr*>(expr);
        Rewrite(&e->lhs);
        Rewrite(&e->rhs);
        return;
      }
      case ExprKind::kUnary:
        Rewrite(&static_cast<UnaryExpr*>(expr)->operand);
        return;
      case ExprKind::kComparison: {
        auto* e = static_cast<ComparisonExpr*>(expr);
        Rewrite(&e->lhs);
        Rewrite(&e->rhs);
        return;
      }
      case ExprKind::kLogical: {
        auto* e = static_cast<LogicalExpr*>(expr);
        Rewrite(&e->lhs);
        Rewrite(&e->rhs);
        return;
      }
      case ExprKind::kIf: {
        auto* e = static_cast<IfExpr*>(expr);
        Rewrite(&e->condition);
        Rewrite(&e->then_branch);
        Rewrite(&e->else_branch);
        return;
      }
      case ExprKind::kQuantified: {
        auto* e = static_cast<QuantifiedExpr*>(expr);
        for (QuantifiedExpr::Binding& binding : e->bindings) {
          Rewrite(&binding.expr);
        }
        Rewrite(&e->satisfies);
        return;
      }
      case ExprKind::kPath: {
        auto* e = static_cast<PathExpr*>(expr);
        if (e->start != nullptr) Rewrite(&e->start);
        for (PathSegment& segment : e->segments) {
          if (segment.is_expr()) {
            Rewrite(&segment.expr);
          } else {
            for (ExprPtr& predicate : segment.step.predicates) {
              Rewrite(&predicate);
            }
          }
        }
        return;
      }
      case ExprKind::kFilter: {
        auto* e = static_cast<FilterExpr*>(expr);
        Rewrite(&e->primary);
        for (ExprPtr& predicate : e->predicates) {
          Rewrite(&predicate);
        }
        return;
      }
      case ExprKind::kFunctionCall:
        for (ExprPtr& arg : static_cast<FunctionCallExpr*>(expr)->args) {
          Rewrite(&arg);
        }
        return;
      case ExprKind::kFlwor: {
        auto* e = static_cast<FlworExpr*>(expr);
        for (FlworClause& clause : e->clauses) {
          switch (clause.kind) {
            case ClauseKind::kFor:
              Rewrite(&clause.for_expr);
              break;
            case ClauseKind::kLet:
              Rewrite(&clause.let_expr);
              break;
            case ClauseKind::kWhere:
              Rewrite(&clause.where_expr);
              break;
            case ClauseKind::kGroupBy:
              for (auto& key : clause.group_keys) Rewrite(&key.expr);
              for (auto& nest : clause.nest_specs) {
                Rewrite(&nest.expr);
                if (nest.order_by.has_value()) {
                  for (OrderSpec& spec : nest.order_by->specs) {
                    Rewrite(&spec.key);
                  }
                }
              }
              break;
            case ClauseKind::kOrderBy:
              for (OrderSpec& spec : clause.order_by.specs) {
                Rewrite(&spec.key);
              }
              break;
            case ClauseKind::kCount:
              break;
          }
        }
        Rewrite(&e->return_expr);
        RewriteFlwor(slot, e);
        return;
      }
      case ExprKind::kDirectConstructor: {
        auto* e = static_cast<DirectConstructorExpr*>(expr);
        for (auto& attr : e->attributes) {
          for (ConstructorContent& part : attr.parts) {
            if (part.expr != nullptr) Rewrite(&part.expr);
          }
        }
        for (ConstructorContent& child : e->children) {
          if (child.expr != nullptr) Rewrite(&child.expr);
        }
        return;
      }
      case ExprKind::kComputedConstructor: {
        auto* e = static_cast<ComputedConstructorExpr*>(expr);
        if (e->name_expr != nullptr) Rewrite(&e->name_expr);
        if (e->content != nullptr) Rewrite(&e->content);
        return;
      }
      case ExprKind::kTypeOp:
        Rewrite(&static_cast<TypeOpExpr*>(expr)->operand);
        return;
      case ExprKind::kTypeswitch: {
        auto* e = static_cast<TypeswitchExpr*>(expr);
        Rewrite(&e->operand);
        for (TypeswitchExpr::CaseClause& clause : e->cases) {
          Rewrite(&clause.result);
        }
        Rewrite(&e->default_result);
        return;
      }
      default:
        return;
    }
  }

 private:
  /// The FLWOR rule sequence. Pushdown first (it shrinks the clause list the
  /// later rules scan), then order-by elimination, then group-by extraction
  /// on whatever shape remains. The extraction wraps the matched FLWOR in
  /// `if (guard) then grouped else original` so repeated grouping children
  /// fall back to the naive form byte-identically at run time.
  void RewriteFlwor(ExprPtr* slot, FlworExpr* e) {
    if (options_.push_predicates) {
      counts_.predicates_pushed += PushPredicates(e, user_functions_, fired_);
    }
    if (options_.eliminate_order_by) {
      counts_.order_by_eliminated +=
          EliminateOrderBy(e, user_functions_, fired_);
    }
    if (options_.mark_shredded_scans) {
      counts_.shredded_scans_marked +=
          MarkShreddedScans(e, user_functions_, fired_);
    }
    if (!options_.detect_groupby_patterns) return;
    GroupByRewrite rewrite;
    if (!TryRewriteGroupByPattern(*e, options_.groupby_cardinality_threshold,
                                  &rewrite)) {
      return;
    }
    ++counts_.groupby_extracted;
    if (fired_ != nullptr) fired_->push_back(rewrite.description);
    // The synthesized grouped FLWOR is new AST the bottom-up walk has
    // already passed — give its for clauses their shred marks too.
    if (options_.mark_shredded_scans && rewrite.grouped != nullptr &&
        rewrite.grouped->kind() == ExprKind::kFlwor) {
      counts_.shredded_scans_marked += MarkShreddedScans(
          static_cast<FlworExpr*>(rewrite.grouped.get()), user_functions_,
          fired_);
    }
    SourceLocation loc = e->location();
    ExprPtr original = std::move(*slot);
    *slot = std::make_unique<IfExpr>(std::move(rewrite.guard),
                                     std::move(rewrite.grouped),
                                     std::move(original), loc);
  }

  void RecordFold() {
    ++counts_.constants_folded;
    if (fired_ != nullptr) fired_->push_back("constant folding");
  }

  OptimizerOptions options_;
  std::set<std::string> user_functions_;
  std::vector<std::string>* fired_;
  RewriteCounts counts_;
};

}  // namespace

RewriteCounts OptimizeModule(Module* module, const OptimizerOptions& options,
                             std::vector<std::string>* fired_rules) {
  std::set<std::string> user_functions;
  for (const FunctionDecl& fn : module->functions) {
    user_functions.insert(fn.name);
  }
  Rewriter rewriter(options, std::move(user_functions), fired_rules);
  for (FunctionDecl& fn : module->functions) {
    rewriter.Rewrite(&fn.body);
  }
  for (VariableDecl& decl : module->variables) {
    rewriter.Rewrite(&decl.expr);
  }
  rewriter.Rewrite(&module->body);
  return rewriter.counts();
}

}  // namespace xqa

#include "optimizer/expr_clone.h"

#include <memory>
#include <utility>
#include <vector>

namespace xqa {

namespace {

std::vector<ExprPtr> CloneList(const std::vector<ExprPtr>& list) {
  std::vector<ExprPtr> out;
  out.reserve(list.size());
  for (const ExprPtr& item : list) out.push_back(CloneExpr(item.get()));
  return out;
}

PathStep CloneStep(const PathStep& step) {
  PathStep out;
  out.axis = step.axis;
  out.test = step.test;
  out.predicates = CloneList(step.predicates);
  if (step.pushed_filter != nullptr) {
    out.pushed_filter = std::make_unique<PushedValueFilter>();
    out.pushed_filter->child = step.pushed_filter->child;
    out.pushed_filter->op = step.pushed_filter->op;
    out.pushed_filter->literal = step.pushed_filter->literal;
  }
  return out;
}

ConstructorContent CloneContent(const ConstructorContent& content) {
  ConstructorContent out;
  out.text = content.text;
  out.expr = CloneExpr(content.expr.get());
  out.is_comment = content.is_comment;
  return out;
}

}  // namespace

OrderByData CloneOrderBy(const OrderByData& order) {
  OrderByData out;
  out.stable = order.stable;
  out.specs.reserve(order.specs.size());
  for (const OrderSpec& spec : order.specs) {
    OrderSpec copy;
    copy.key = CloneExpr(spec.key.get());
    copy.descending = spec.descending;
    copy.empty_greatest = spec.empty_greatest;
    out.specs.push_back(std::move(copy));
  }
  return out;
}

FlworClause CloneClause(const FlworClause& clause) {
  FlworClause out;
  out.kind = clause.kind;
  out.location = clause.location;
  out.for_var = clause.for_var;
  out.for_slot = clause.for_slot;
  out.pos_var = clause.pos_var;
  out.pos_slot = clause.pos_slot;
  out.for_expr = CloneExpr(clause.for_expr.get());
  out.shred_candidate = clause.shred_candidate;
  out.shred_collection = clause.shred_collection;
  out.shred_record = clause.shred_record;
  out.let_var = clause.let_var;
  out.let_slot = clause.let_slot;
  out.let_expr = CloneExpr(clause.let_expr.get());
  out.where_expr = CloneExpr(clause.where_expr.get());
  out.xquery3_group_style = clause.xquery3_group_style;
  for (const FlworClause::GroupKey& key : clause.group_keys) {
    FlworClause::GroupKey copy;
    copy.expr = CloneExpr(key.expr.get());
    copy.var = key.var;
    copy.slot = key.slot;
    copy.using_function = key.using_function;
    copy.using_builtin_id = key.using_builtin_id;
    copy.using_user_fn_index = key.using_user_fn_index;
    out.group_keys.push_back(std::move(copy));
  }
  for (const FlworClause::NestSpec& nest : clause.nest_specs) {
    FlworClause::NestSpec copy;
    copy.expr = CloneExpr(nest.expr.get());
    if (nest.order_by.has_value()) copy.order_by = CloneOrderBy(*nest.order_by);
    copy.var = nest.var;
    copy.slot = nest.slot;
    out.nest_specs.push_back(std::move(copy));
  }
  out.count_var = clause.count_var;
  out.count_slot = clause.count_slot;
  out.order_by = CloneOrderBy(clause.order_by);
  out.order_after_group = clause.order_after_group;
  return out;
}

ExprPtr CloneExpr(const Expr* expr) {
  if (expr == nullptr) return nullptr;
  SourceLocation loc = expr->location();
  switch (expr->kind()) {
    case ExprKind::kLiteral: {
      const auto* e = static_cast<const LiteralExpr*>(expr);
      return std::make_unique<LiteralExpr>(e->value, loc);
    }
    case ExprKind::kVarRef: {
      const auto* e = static_cast<const VarRefExpr*>(expr);
      auto out = std::make_unique<VarRefExpr>(e->name, loc);
      out->slot = e->slot;
      out->is_global = e->is_global;
      return out;
    }
    case ExprKind::kContextItem:
      return std::make_unique<ContextItemExpr>(loc);
    case ExprKind::kSequence: {
      const auto* e = static_cast<const SequenceExpr*>(expr);
      return std::make_unique<SequenceExpr>(CloneList(e->items), loc);
    }
    case ExprKind::kRange: {
      const auto* e = static_cast<const RangeExpr*>(expr);
      return std::make_unique<RangeExpr>(CloneExpr(e->lo.get()),
                                         CloneExpr(e->hi.get()), loc);
    }
    case ExprKind::kArithmetic: {
      const auto* e = static_cast<const ArithmeticExpr*>(expr);
      return std::make_unique<ArithmeticExpr>(
          e->op, CloneExpr(e->lhs.get()), CloneExpr(e->rhs.get()), loc);
    }
    case ExprKind::kUnary: {
      const auto* e = static_cast<const UnaryExpr*>(expr);
      return std::make_unique<UnaryExpr>(e->negate,
                                         CloneExpr(e->operand.get()), loc);
    }
    case ExprKind::kComparison: {
      const auto* e = static_cast<const ComparisonExpr*>(expr);
      return std::make_unique<ComparisonExpr>(
          e->comparison_kind, e->op, CloneExpr(e->lhs.get()),
          CloneExpr(e->rhs.get()), loc);
    }
    case ExprKind::kLogical: {
      const auto* e = static_cast<const LogicalExpr*>(expr);
      return std::make_unique<LogicalExpr>(
          e->op, CloneExpr(e->lhs.get()), CloneExpr(e->rhs.get()), loc);
    }
    case ExprKind::kIf: {
      const auto* e = static_cast<const IfExpr*>(expr);
      return std::make_unique<IfExpr>(CloneExpr(e->condition.get()),
                                      CloneExpr(e->then_branch.get()),
                                      CloneExpr(e->else_branch.get()), loc);
    }
    case ExprKind::kQuantified: {
      const auto* e = static_cast<const QuantifiedExpr*>(expr);
      std::vector<QuantifiedExpr::Binding> bindings;
      bindings.reserve(e->bindings.size());
      for (const QuantifiedExpr::Binding& binding : e->bindings) {
        QuantifiedExpr::Binding copy;
        copy.var = binding.var;
        copy.slot = binding.slot;
        copy.expr = CloneExpr(binding.expr.get());
        bindings.push_back(std::move(copy));
      }
      return std::make_unique<QuantifiedExpr>(
          e->every, std::move(bindings), CloneExpr(e->satisfies.get()), loc);
    }
    case ExprKind::kPath: {
      const auto* e = static_cast<const PathExpr*>(expr);
      std::vector<PathSegment> segments;
      segments.reserve(e->segments.size());
      for (const PathSegment& segment : e->segments) {
        PathSegment copy;
        if (segment.is_expr()) {
          copy.expr = CloneExpr(segment.expr.get());
        } else {
          copy.step = CloneStep(segment.step);
        }
        segments.push_back(std::move(copy));
      }
      return std::make_unique<PathExpr>(CloneExpr(e->start.get()),
                                        e->absolute, std::move(segments), loc);
    }
    case ExprKind::kFilter: {
      const auto* e = static_cast<const FilterExpr*>(expr);
      return std::make_unique<FilterExpr>(CloneExpr(e->primary.get()),
                                          CloneList(e->predicates), loc);
    }
    case ExprKind::kFunctionCall: {
      const auto* e = static_cast<const FunctionCallExpr*>(expr);
      auto out = std::make_unique<FunctionCallExpr>(e->name,
                                                    CloneList(e->args), loc);
      out->builtin_id = e->builtin_id;
      out->user_fn_index = e->user_fn_index;
      return out;
    }
    case ExprKind::kFlwor: {
      const auto* e = static_cast<const FlworExpr*>(expr);
      std::vector<FlworClause> clauses;
      clauses.reserve(e->clauses.size());
      for (const FlworClause& clause : e->clauses) {
        clauses.push_back(CloneClause(clause));
      }
      auto out = std::make_unique<FlworExpr>(std::move(clauses), e->at_var,
                                             CloneExpr(e->return_expr.get()),
                                             loc);
      out->at_slot = e->at_slot;
      out->elided_order_by = e->elided_order_by;
      return out;
    }
    case ExprKind::kDirectConstructor: {
      const auto* e = static_cast<const DirectConstructorExpr*>(expr);
      std::vector<DirectConstructorExpr::Attribute> attributes;
      attributes.reserve(e->attributes.size());
      for (const DirectConstructorExpr::Attribute& attr : e->attributes) {
        DirectConstructorExpr::Attribute copy;
        copy.name = attr.name;
        copy.parts.reserve(attr.parts.size());
        for (const ConstructorContent& part : attr.parts) {
          copy.parts.push_back(CloneContent(part));
        }
        attributes.push_back(std::move(copy));
      }
      std::vector<ConstructorContent> children;
      children.reserve(e->children.size());
      for (const ConstructorContent& child : e->children) {
        children.push_back(CloneContent(child));
      }
      return std::make_unique<DirectConstructorExpr>(
          e->name, std::move(attributes), std::move(children), loc);
    }
    case ExprKind::kComputedConstructor: {
      const auto* e = static_cast<const ComputedConstructorExpr*>(expr);
      return std::make_unique<ComputedConstructorExpr>(
          e->constructor_kind, e->name, CloneExpr(e->name_expr.get()),
          CloneExpr(e->content.get()), loc);
    }
    case ExprKind::kTypeOp: {
      const auto* e = static_cast<const TypeOpExpr*>(expr);
      return std::make_unique<TypeOpExpr>(e->op, CloneExpr(e->operand.get()),
                                          e->type, loc);
    }
    case ExprKind::kTypeswitch: {
      const auto* e = static_cast<const TypeswitchExpr*>(expr);
      std::vector<TypeswitchExpr::CaseClause> cases;
      cases.reserve(e->cases.size());
      for (const TypeswitchExpr::CaseClause& clause : e->cases) {
        TypeswitchExpr::CaseClause copy;
        copy.var = clause.var;
        copy.slot = clause.slot;
        copy.type = clause.type;
        copy.result = CloneExpr(clause.result.get());
        cases.push_back(std::move(copy));
      }
      auto out = std::make_unique<TypeswitchExpr>(
          CloneExpr(e->operand.get()), std::move(cases), e->default_var,
          CloneExpr(e->default_result.get()), loc);
      out->default_slot = e->default_slot;
      return out;
    }
  }
  return nullptr;
}

}  // namespace xqa

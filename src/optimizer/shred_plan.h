#ifndef XQA_OPTIMIZER_SHRED_PLAN_H_
#define XQA_OPTIMIZER_SHRED_PLAN_H_

#include <set>
#include <string>
#include <vector>

#include "parser/ast.h"

namespace xqa {

/// Shredded-scan eligibility (docs/SHREDDING.md): marks every for clause of
/// `expr` whose domain is exactly
///
///   collection()//rec   or   collection("name")//rec
///
/// — a direct fn:collection call (zero args, or one string literal; not
/// shadowed by a user-declared function) followed by the two-segment
/// descendant pattern `//rec` (descendant-or-self::node() with no
/// predicates, then child::rec with no predicates; a pushed value filter on
/// the record step is allowed — the shredded scan can evaluate it from the
/// dictionary) — by setting FlworClause::shred_candidate plus the collection
/// and record names.
///
/// The mark is advisory, never a rewrite: at execution the batched engine
/// asks the snapshot for a matching column table and falls back to the DOM
/// path (counting QueryStats::shred_fallbacks) when inference refused the
/// corpus, the pushed filter names a non-column field, or shredding is
/// disabled. Results are byte-identical either way, so the rule needs no
/// cost gate.
///
/// Appends one "shredded-scan candidate: ..." line per mark to `fired` (if
/// non-null). Returns the number of clauses marked.
int MarkShreddedScans(FlworExpr* expr,
                      const std::set<std::string>& user_functions,
                      std::vector<std::string>* fired);

}  // namespace xqa

#endif  // XQA_OPTIMIZER_SHRED_PLAN_H_

#include "optimizer/logical_props.h"

#include <cctype>
#include <functional>
#include <utility>

namespace xqa {

namespace {

/// Invokes `fn` on every direct child expression of `expr` (clause bodies,
/// predicates, constructor content, ...). Scope-blind — callers that care
/// about variable scoping (CollectFreeVars) walk explicitly instead.
void ForEachChild(const Expr* expr,
                  const std::function<void(const Expr*)>& fn) {
  if (expr == nullptr) return;
  auto visit = [&fn](const ExprPtr& child) {
    if (child != nullptr) fn(child.get());
  };
  switch (expr->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kVarRef:
    case ExprKind::kContextItem:
      return;
    case ExprKind::kSequence:
      for (const ExprPtr& item : static_cast<const SequenceExpr*>(expr)->items)
        visit(item);
      return;
    case ExprKind::kRange: {
      const auto* e = static_cast<const RangeExpr*>(expr);
      visit(e->lo);
      visit(e->hi);
      return;
    }
    case ExprKind::kArithmetic: {
      const auto* e = static_cast<const ArithmeticExpr*>(expr);
      visit(e->lhs);
      visit(e->rhs);
      return;
    }
    case ExprKind::kUnary:
      visit(static_cast<const UnaryExpr*>(expr)->operand);
      return;
    case ExprKind::kComparison: {
      const auto* e = static_cast<const ComparisonExpr*>(expr);
      visit(e->lhs);
      visit(e->rhs);
      return;
    }
    case ExprKind::kLogical: {
      const auto* e = static_cast<const LogicalExpr*>(expr);
      visit(e->lhs);
      visit(e->rhs);
      return;
    }
    case ExprKind::kIf: {
      const auto* e = static_cast<const IfExpr*>(expr);
      visit(e->condition);
      visit(e->then_branch);
      visit(e->else_branch);
      return;
    }
    case ExprKind::kQuantified: {
      const auto* e = static_cast<const QuantifiedExpr*>(expr);
      for (const QuantifiedExpr::Binding& binding : e->bindings)
        visit(binding.expr);
      visit(e->satisfies);
      return;
    }
    case ExprKind::kPath: {
      const auto* e = static_cast<const PathExpr*>(expr);
      visit(e->start);
      for (const PathSegment& segment : e->segments) {
        if (segment.is_expr()) {
          visit(segment.expr);
        } else {
          for (const ExprPtr& predicate : segment.step.predicates)
            visit(predicate);
        }
      }
      return;
    }
    case ExprKind::kFilter: {
      const auto* e = static_cast<const FilterExpr*>(expr);
      visit(e->primary);
      for (const ExprPtr& predicate : e->predicates) visit(predicate);
      return;
    }
    case ExprKind::kFunctionCall:
      for (const ExprPtr& arg :
           static_cast<const FunctionCallExpr*>(expr)->args)
        visit(arg);
      return;
    case ExprKind::kFlwor: {
      const auto* e = static_cast<const FlworExpr*>(expr);
      for (const FlworClause& clause : e->clauses) {
        visit(clause.for_expr);
        visit(clause.let_expr);
        visit(clause.where_expr);
        for (const FlworClause::GroupKey& key : clause.group_keys)
          visit(key.expr);
        for (const FlworClause::NestSpec& nest : clause.nest_specs) {
          visit(nest.expr);
          if (nest.order_by.has_value()) {
            for (const OrderSpec& spec : nest.order_by->specs) visit(spec.key);
          }
        }
        for (const OrderSpec& spec : clause.order_by.specs) visit(spec.key);
      }
      visit(e->return_expr);
      return;
    }
    case ExprKind::kDirectConstructor: {
      const auto* e = static_cast<const DirectConstructorExpr*>(expr);
      for (const DirectConstructorExpr::Attribute& attr : e->attributes) {
        for (const ConstructorContent& part : attr.parts) visit(part.expr);
      }
      for (const ConstructorContent& child : e->children) visit(child.expr);
      return;
    }
    case ExprKind::kComputedConstructor: {
      const auto* e = static_cast<const ComputedConstructorExpr*>(expr);
      visit(e->name_expr);
      visit(e->content);
      return;
    }
    case ExprKind::kTypeOp:
      visit(static_cast<const TypeOpExpr*>(expr)->operand);
      return;
    case ExprKind::kTypeswitch: {
      const auto* e = static_cast<const TypeswitchExpr*>(expr);
      visit(e->operand);
      for (const TypeswitchExpr::CaseClause& clause : e->cases)
        visit(clause.result);
      visit(e->default_result);
      return;
    }
  }
}

void FreeVarsWalk(const Expr* expr, std::set<std::string> bound,
                  std::set<std::string>* out);

void FreeVarsChild(const Expr* child, const std::set<std::string>& bound,
                   std::set<std::string>* out) {
  if (child != nullptr) FreeVarsWalk(child, bound, out);
}

void FreeVarsWalk(const Expr* expr, std::set<std::string> bound,
                  std::set<std::string>* out) {
  if (expr == nullptr) return;
  switch (expr->kind()) {
    case ExprKind::kVarRef: {
      const auto* e = static_cast<const VarRefExpr*>(expr);
      if (bound.count(e->name) == 0) out->insert(e->name);
      return;
    }
    case ExprKind::kFlwor: {
      const auto* e = static_cast<const FlworExpr*>(expr);
      for (const FlworClause& clause : e->clauses) {
        switch (clause.kind) {
          case ClauseKind::kFor:
            FreeVarsChild(clause.for_expr.get(), bound, out);
            bound.insert(clause.for_var);
            if (!clause.pos_var.empty()) bound.insert(clause.pos_var);
            break;
          case ClauseKind::kLet:
            FreeVarsChild(clause.let_expr.get(), bound, out);
            bound.insert(clause.let_var);
            break;
          case ClauseKind::kWhere:
            FreeVarsChild(clause.where_expr.get(), bound, out);
            break;
          case ClauseKind::kGroupBy:
            for (const FlworClause::GroupKey& key : clause.group_keys)
              FreeVarsChild(key.expr.get(), bound, out);
            for (const FlworClause::NestSpec& nest : clause.nest_specs) {
              FreeVarsChild(nest.expr.get(), bound, out);
              if (nest.order_by.has_value()) {
                for (const OrderSpec& spec : nest.order_by->specs)
                  FreeVarsChild(spec.key.get(), bound, out);
              }
            }
            for (const FlworClause::GroupKey& key : clause.group_keys)
              bound.insert(key.var);
            for (const FlworClause::NestSpec& nest : clause.nest_specs)
              bound.insert(nest.var);
            break;
          case ClauseKind::kOrderBy:
            for (const OrderSpec& spec : clause.order_by.specs)
              FreeVarsChild(spec.key.get(), bound, out);
            break;
          case ClauseKind::kCount:
            bound.insert(clause.count_var);
            break;
        }
      }
      if (!e->at_var.empty()) bound.insert(e->at_var);
      FreeVarsChild(e->return_expr.get(), bound, out);
      return;
    }
    case ExprKind::kQuantified: {
      const auto* e = static_cast<const QuantifiedExpr*>(expr);
      for (const QuantifiedExpr::Binding& binding : e->bindings) {
        FreeVarsChild(binding.expr.get(), bound, out);
        bound.insert(binding.var);
      }
      FreeVarsChild(e->satisfies.get(), bound, out);
      return;
    }
    case ExprKind::kTypeswitch: {
      const auto* e = static_cast<const TypeswitchExpr*>(expr);
      FreeVarsChild(e->operand.get(), bound, out);
      for (const TypeswitchExpr::CaseClause& clause : e->cases) {
        std::set<std::string> case_bound = bound;
        if (!clause.var.empty()) case_bound.insert(clause.var);
        FreeVarsChild(clause.result.get(), case_bound, out);
      }
      std::set<std::string> default_bound = std::move(bound);
      if (!e->default_var.empty()) default_bound.insert(e->default_var);
      FreeVarsChild(e->default_result.get(), default_bound, out);
      return;
    }
    default:
      ForEachChild(expr, [&bound, out](const Expr* child) {
        FreeVarsWalk(child, bound, out);
      });
      return;
  }
}

/// True when `name` at position `pos` in `text` is a whole $var token (not a
/// prefix of a longer variable name).
bool TokenBoundary(const std::string& text, size_t end) {
  if (end >= text.size()) return true;
  char c = text[end];
  return !(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':');
}

int64_t LiteralInt(const Expr* expr, bool* ok) {
  *ok = false;
  if (expr == nullptr || expr->kind() != ExprKind::kLiteral) return 0;
  const auto* literal = static_cast<const LiteralExpr*>(expr);
  if (literal->value.type() != AtomicType::kInteger) return 0;
  *ok = true;
  return literal->value.AsInteger();
}

}  // namespace

void CollectFreeVars(const Expr* expr, std::set<std::string>* out) {
  FreeVarsWalk(expr, {}, out);
}

bool ContainsNonRelocatable(const Expr* expr,
                            const std::set<std::string>& user_functions) {
  if (expr == nullptr) return false;
  if (expr->kind() == ExprKind::kContextItem) return true;
  if (expr->kind() == ExprKind::kPath &&
      static_cast<const PathExpr*>(expr)->absolute) {
    return true;
  }
  if (expr->kind() == ExprKind::kFunctionCall) {
    const auto* call = static_cast<const FunctionCallExpr*>(expr);
    // Zero-argument calls cover every focus-dependent builtin (position,
    // last, ...); user functions are excluded wholesale rather than proving
    // their bodies relocatable.
    if (call->args.empty()) return true;
    if (user_functions.count(call->name) > 0) return true;
  }
  bool found = false;
  ForEachChild(expr, [&found, &user_functions](const Expr* child) {
    if (!found && ContainsNonRelocatable(child, user_functions)) found = true;
  });
  return found;
}

bool DumpKeyRelativeTo(const Expr* key, const std::string& var,
                       const std::set<std::string>& user_functions,
                       std::string* out) {
  if (key == nullptr) return false;
  std::set<std::string> free_vars;
  CollectFreeVars(key, &free_vars);
  if (free_vars.size() != 1 || free_vars.count(var) == 0) return false;
  if (ContainsNonRelocatable(key, user_functions)) return false;
  std::string dump = DumpExpr(key);
  std::string token = "$" + var;
  std::string result;
  result.reserve(dump.size());
  size_t pos = 0;
  while (pos < dump.size()) {
    size_t hit = dump.find(token, pos);
    if (hit == std::string::npos) {
      result.append(dump, pos, std::string::npos);
      break;
    }
    result.append(dump, pos, hit - pos);
    if (TokenBoundary(dump, hit + token.size())) {
      result += "\xe2\x80\xa2";  // •
    } else {
      result += token;
    }
    pos = hit + token.size();
  }
  *out = std::move(result);
  return true;
}

LogicalProps DeriveProps(const Expr* expr) {
  LogicalProps props;
  if (expr == nullptr) {
    props.cardinality = 0;
    return props;
  }
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      props.cardinality = 1;
      props.duplicate_free = true;
      return props;
    case ExprKind::kSequence: {
      const auto* e = static_cast<const SequenceExpr*>(expr);
      int64_t total = 0;
      bool known = true;
      bool large = false;
      for (const ExprPtr& item : e->items) {
        LogicalProps item_props = DeriveProps(item.get());
        if (item_props.cardinality >= 0) {
          total += item_props.cardinality;
        } else {
          known = false;
        }
        large = large || item_props.cardinality_large;
      }
      if (known) props.cardinality = total;
      props.cardinality_large = large;
      return props;
    }
    case ExprKind::kRange: {
      const auto* e = static_cast<const RangeExpr*>(expr);
      // `lo to hi` is ascending and duplicate-free by construction, which
      // makes `order by` on the range variable itself removable.
      props.ordering = OrderingKind::kKeySorted;
      props.keys.push_back(DerivedKey{"\xe2\x80\xa2", false, false});
      props.duplicate_free = true;
      bool lo_ok = false, hi_ok = false;
      int64_t lo = LiteralInt(e->lo.get(), &lo_ok);
      int64_t hi = LiteralInt(e->hi.get(), &hi_ok);
      if (lo_ok && hi_ok) props.cardinality = hi < lo ? 0 : hi - lo + 1;
      return props;
    }
    case ExprKind::kPath: {
      const auto* e = static_cast<const PathExpr*>(expr);
      // EvalPath normalizes multi-context steps to document order and
      // deduplicates identities; single-context forward steps are in
      // document order by construction. Either way the result is
      // document-ordered and duplicate-free (atomic-producing final
      // segments lose both, but nothing downstream relies on them then).
      props.ordering = OrderingKind::kDocumentOrder;
      props.duplicate_free = true;
      bool descends = false;
      for (const PathSegment& segment : e->segments) {
        if (!segment.is_expr() &&
            (segment.step.axis == Axis::kDescendant ||
             segment.step.axis == Axis::kDescendantOrSelf)) {
          descends = true;
        }
      }
      if (e->start != nullptr) {
        descends = descends || DeriveProps(e->start.get()).cardinality_large;
      }
      props.cardinality_large = descends;
      return props;
    }
    case ExprKind::kFilter: {
      LogicalProps primary =
          DeriveProps(static_cast<const FilterExpr*>(expr)->primary.get());
      // A filter keeps a subsequence: ordering and duplicate-freeness
      // survive, cardinality bounds do not.
      props.ordering = primary.ordering;
      props.keys = std::move(primary.keys);
      props.duplicate_free = primary.duplicate_free;
      return props;
    }
    case ExprKind::kFunctionCall: {
      const auto* call = static_cast<const FunctionCallExpr*>(expr);
      if (call->name == "collection" || call->name == "fn:collection" ||
          call->name == "doc" || call->name == "fn:doc") {
        props.ordering = OrderingKind::kDocumentOrder;
        props.duplicate_free = true;
        props.cardinality_large = call->name == "collection" ||
                                  call->name == "fn:collection";
        return props;
      }
      if ((call->name == "distinct-values" ||
           call->name == "fn:distinct-values") &&
          call->args.size() == 1) {
        LogicalProps arg = DeriveProps(call->args[0].get());
        props.duplicate_free = true;
        props.cardinality_large = arg.cardinality_large;
        if (arg.cardinality >= 0) props.cardinality = arg.cardinality;
        return props;
      }
      if ((call->name == "exactly-one" || call->name == "fn:exactly-one") &&
          call->args.size() == 1) {
        props.cardinality = 1;
        props.duplicate_free = true;
        return props;
      }
      return props;
    }
    case ExprKind::kFlwor: {
      const auto* e = static_cast<const FlworExpr*>(expr);
      const FlworClause* first_for = nullptr;
      size_t for_count = 0;
      bool has_group = false;
      const FlworClause* trailing_order = nullptr;
      for (const FlworClause& clause : e->clauses) {
        if (clause.kind == ClauseKind::kFor) {
          if (first_for == nullptr) first_for = &clause;
          ++for_count;
        }
        if (clause.kind == ClauseKind::kGroupBy) has_group = true;
        trailing_order =
            clause.kind == ClauseKind::kOrderBy ? &clause : nullptr;
      }
      if (first_for != nullptr) {
        props.cardinality_large =
            DeriveProps(first_for->for_expr.get()).cardinality_large;
      }
      // `for $v in D ... order by K1($v), ... return $v` emits items sorted
      // by the keys; with no order by and a single unnested for, the domain's
      // ordering passes straight through.
      if (e->return_expr == nullptr ||
          e->return_expr->kind() != ExprKind::kVarRef || has_group) {
        return props;
      }
      const std::string& ret_var =
          static_cast<const VarRefExpr*>(e->return_expr.get())->name;
      bool ret_is_for_var = false;
      for (const FlworClause& clause : e->clauses) {
        if (clause.kind == ClauseKind::kFor && clause.for_var == ret_var) {
          ret_is_for_var = true;
        }
      }
      if (!ret_is_for_var || !e->at_var.empty()) return props;
      if (trailing_order != nullptr) {
        std::vector<DerivedKey> keys;
        for (const OrderSpec& spec : trailing_order->order_by.specs) {
          DerivedKey key;
          if (!DumpKeyRelativeTo(spec.key.get(), ret_var, {}, &key.dump)) {
            return props;
          }
          key.descending = spec.descending;
          key.empty_greatest = spec.empty_greatest;
          keys.push_back(std::move(key));
        }
        props.ordering = OrderingKind::kKeySorted;
        props.keys = std::move(keys);
        return props;
      }
      if (for_count == 1 && first_for->for_var == ret_var) {
        // Filtering clauses (where/let/count) keep a subsequence of the
        // domain, so its derived ordering survives.
        LogicalProps domain = DeriveProps(first_for->for_expr.get());
        props.ordering = domain.ordering;
        props.keys = std::move(domain.keys);
        props.duplicate_free = domain.duplicate_free;
      }
      return props;
    }
    default:
      return props;
  }
}

std::string DescribeProps(const LogicalProps& props) {
  std::string out;
  switch (props.ordering) {
    case OrderingKind::kUnordered:
      out = "unordered";
      break;
    case OrderingKind::kDocumentOrder:
      out = "document-order";
      break;
    case OrderingKind::kKeySorted: {
      out = "sorted[";
      for (size_t i = 0; i < props.keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += props.keys[i].dump;
        out += props.keys[i].descending ? " desc" : " asc";
      }
      out += "]";
      break;
    }
  }
  if (props.duplicate_free) out += ", dup-free";
  if (props.cardinality >= 0) {
    out += ", card=" + std::to_string(props.cardinality);
  } else {
    out += props.cardinality_large ? ", card~large" : ", card=?";
  }
  return out;
}

}  // namespace xqa

#ifndef XQA_OPTIMIZER_EXPR_CLONE_H_
#define XQA_OPTIMIZER_EXPR_CLONE_H_

#include "parser/ast.h"

namespace xqa {

/// Deep copy of an (unbound) expression tree. The AST is deliberately
/// non-copyable, so rewrite rules that must keep the original alive — the
/// guarded group-by extraction builds both an if-branch plan and a fallback
/// from one source FLWOR — clone the pieces they reuse instead of moving
/// them out. Binder-filled fields (slots, builtin ids) are copied verbatim;
/// the optimizer runs before BindModule, so they are still -1 here.
/// Returns null for null input.
ExprPtr CloneExpr(const Expr* expr);

/// Deep copy of one FLWOR clause (any ClauseKind).
FlworClause CloneClause(const FlworClause& clause);

/// Deep copy of an order-by key list.
OrderByData CloneOrderBy(const OrderByData& order);

}  // namespace xqa

#endif  // XQA_OPTIMIZER_EXPR_CLONE_H_

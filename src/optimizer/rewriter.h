#ifndef XQA_OPTIMIZER_REWRITER_H_
#define XQA_OPTIMIZER_REWRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "parser/ast.h"

namespace xqa {

/// Per-rule switches for the logical rewrite layer. The cost-gated rules are
/// on by default — each preserves results byte-for-byte (the group-by
/// extraction via a runtime guard, see groupby_detect.h) — and each flag
/// exists so ablation benchmarks and tests can isolate one rule at a time.
struct OptimizerOptions {
  /// Rewrite the distinct-values/self-join grouping pattern (the naive
  /// formulation from Table 1 of the paper) into an explicit, guarded
  /// group by. See groupby_detect.h for the template and safety conditions.
  bool detect_groupby_patterns = true;

  /// Hoist single-variable where clauses into the bound for clause's path
  /// domain (literal comparisons become index-scan value filters). See
  /// pushdown.h.
  bool push_predicates = true;

  /// Remove order-by clauses whose keys are implied by the derived ordering
  /// of the tuple stream. See orderby_elim.h.
  bool eliminate_order_by = true;

  /// Mark `for $x in collection(...)//rec` clauses as shredded-scan
  /// candidates for the batched engine (shred_plan.h). Advisory annotation,
  /// not a rewrite: execution verifies a column table exists and falls back
  /// to the DOM path byte-identically.
  bool mark_shredded_scans = true;

  /// Fold literal-only arithmetic, comparisons, logic, and concatenations at
  /// compile time, and prune statically-decided conditionals. Off by
  /// default: folding rewrites plans that cost nothing at run time, so it
  /// stays an opt-in ablation.
  bool fold_constants = false;

  /// Minimum derived source cardinality for the group-by extraction to fire
  /// (its runtime guard costs one extra pass over the source, which only
  /// pays off against a large O(n^2) self-join). Domains with unknown-large
  /// cardinality (document/collection scans) always clear the gate.
  int64_t groupby_cardinality_threshold = 64;
};

/// Per-rule breakdown of applied rewrites, surfaced in the EXPLAIN header
/// and QueryStats::ToJson.
struct RewriteCounts {
  int groupby_extracted = 0;
  int predicates_pushed = 0;
  int order_by_eliminated = 0;
  int constants_folded = 0;
  int shredded_scans_marked = 0;

  int total() const {
    return groupby_extracted + predicates_pushed + order_by_eliminated +
           constants_folded + shredded_scans_marked;
  }
};

/// Runs enabled rewrite passes over the (parsed, unbound) module. Run before
/// BindModule. When `fired_rules` is non-null, appends one human-readable
/// line per applied rewrite (EXPLAIN prints these verbatim).
RewriteCounts OptimizeModule(Module* module, const OptimizerOptions& options,
                             std::vector<std::string>* fired_rules = nullptr);

}  // namespace xqa

#endif  // XQA_OPTIMIZER_REWRITER_H_

#ifndef XQA_OPTIMIZER_REWRITER_H_
#define XQA_OPTIMIZER_REWRITER_H_

#include "parser/ast.h"

namespace xqa {

struct OptimizerOptions {
  /// Detect the distinct-values/self-join grouping pattern (the naive
  /// formulation from Table 1 of the paper) and rewrite it to an explicit
  /// group by. See groupby_detect.h for the exact template and the
  /// conditions under which the rewrite preserves semantics.
  bool detect_groupby_patterns = false;

  /// Fold literal-only arithmetic, comparisons, logic, and concatenations at
  /// compile time, and prune statically-decided conditionals.
  bool fold_constants = false;
};

/// Runs enabled rewrite passes over the (parsed, unbound) module. Returns
/// the number of rewrites applied. Run before BindModule.
int OptimizeModule(Module* module, const OptimizerOptions& options);

}  // namespace xqa

#endif  // XQA_OPTIMIZER_REWRITER_H_

#ifndef XQA_OPTIMIZER_GROUPBY_DETECT_H_
#define XQA_OPTIMIZER_GROUPBY_DETECT_H_

#include "parser/ast.h"

namespace xqa {

/// Attempts to rewrite one FLWOR matching the naive grouping template of
/// Table 1 into an explicit group by:
///
///   for $k1 in distinct-values(P1) (, $k2 in distinct-values(P2))*
///   let $items := for $i in SRC
///                 where $i/c1 = $k1 (and $i/c2 = $k2)* return $i
///   (where exists($items))?
///   (order by ...)?
///   return R
///
/// becomes
///
///   for $i in SRC
///   group by data($i/c1) into $k1 (, data($i/c2) into $k2)*
///     nest $i into $items
///   where exists($k1) (and exists($k2))*
///   (order by ...)?
///   return R
///
/// The rewrite preserves semantics when each ci occurs at most once per item
/// of SRC — the configuration of the paper's experiment ("each grouping
/// element occurred exactly once in its parent"). With repeated ci children
/// the general '=' in the naive form is existential while grouping compares
/// the whole value sequence; detecting and compensating that difference is
/// exactly the hardness the paper argues motivates an explicit construct
/// (Section 7).
///
/// Returns the replacement (and empties *expr) or nullptr if the FLWOR does
/// not match the template.
ExprPtr TryRewriteGroupByPattern(FlworExpr* expr);

}  // namespace xqa

#endif  // XQA_OPTIMIZER_GROUPBY_DETECT_H_

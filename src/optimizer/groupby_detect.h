#ifndef XQA_OPTIMIZER_GROUPBY_DETECT_H_
#define XQA_OPTIMIZER_GROUPBY_DETECT_H_

#include <cstdint>
#include <string>

#include "parser/ast.h"

namespace xqa {

/// One group-by extraction: the rewriter replaces the matched FLWOR with
///
///   if (<guard>) then <grouped> else <original FLWOR>
///
/// so the O(n) grouped plan runs when the single-occurrence safety condition
/// holds on the actual data, and the naive self-join runs byte-identically
/// otherwise.
struct GroupByRewrite {
  ExprPtr guard;    ///< every $i in SRC satisfies count($i/ck) <= 1, per key
  ExprPtr grouped;  ///< the explicit group-by FLWOR
  std::string description;  ///< one line for EXPLAIN / fired-rule logs
};

/// Recognizes the naive grouping template of Table 1 and builds its explicit
/// group-by form. This is a real rewrite (no longer detection-only):
///
///   for $k1 in distinct-values(SRC/c1) (, $k2 in distinct-values(SRC/c2))*
///   let $items := for $i in SRC
///                 where $i/c1 = $k1 (and $i/c2 = $k2)* return $i
///   (where exists($items))?       -- required when there are >= 2 keys
///   (order by ...)?               -- required when there are >= 2 keys,
///                                 -- keys must cover every $ki
///   return R
///
/// becomes
///
///   for $i in SRC
///   group by data($i/c1) into $k1 (, data($i/c2) into $k2)*
///     nest $i into $items
///   where exists($k1) (and exists($k2))*
///   (order by ...)?
///   return R
///
/// Safety:
///  - Each distinct-values argument must be structurally SRC/ck (same dump),
///    so the key domain is exactly the grouped child values.
///  - The single-occurrence condition of the paper's experiment ("each
///    grouping element occurred exactly once in its parent") is NOT assumed
///    statically: the returned guard checks `every $i in SRC satisfies
///    count($i/ck) <= 1` at run time and falls back to the naive form when
///    it fails — with repeated children the naive `=` is existential while
///    grouping compares whole value sequences (Section 7 hazard).
///  - With multiple keys the naive form enumerates the key cross product, so
///    `where exists($items)` and a trailing order-by covering every key are
///    required for the two forms to agree on group order and membership.
///  - Cost gate: fires only when the derived cardinality of SRC clears
///    `cardinality_threshold` (document/collection scans always clear it;
///    known-small literal domains never do) — the guard costs one extra
///    pass, which only pays off when the O(n^2) self-join is the
///    alternative.
///
/// Reads `expr` without modifying it (everything in the result is cloned).
/// Returns true and fills `out` on a match.
bool TryRewriteGroupByPattern(const FlworExpr& expr,
                              int64_t cardinality_threshold,
                              GroupByRewrite* out);

}  // namespace xqa

#endif  // XQA_OPTIMIZER_GROUPBY_DETECT_H_

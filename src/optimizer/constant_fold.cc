#include "optimizer/constant_fold.h"

#include <cmath>
#include <optional>

#include "xdm/compare.h"

namespace xqa {

namespace {

const AtomicValue* AsLiteral(const Expr* expr) {
  if (expr == nullptr || expr->kind() != ExprKind::kLiteral) return nullptr;
  return &static_cast<const LiteralExpr*>(expr)->value;
}

ExprPtr MakeLiteral(AtomicValue value, SourceLocation loc) {
  return std::make_unique<LiteralExpr>(std::move(value), loc);
}

/// Folds numeric arithmetic when it cannot raise (no division, no overflow).
ExprPtr FoldArithmetic(const ArithmeticExpr* e) {
  const AtomicValue* a = AsLiteral(e->lhs.get());
  const AtomicValue* b = AsLiteral(e->rhs.get());
  if (a == nullptr || b == nullptr) return nullptr;
  if (!a->IsNumeric() || !b->IsNumeric()) return nullptr;
  // Division and modulo can raise FOAR0001; leave them to runtime.
  if (e->op == ArithOp::kDivide || e->op == ArithOp::kIntegerDivide ||
      e->op == ArithOp::kModulo) {
    return nullptr;
  }
  if (a->type() == AtomicType::kDouble || b->type() == AtomicType::kDouble) {
    double x = a->ToDoubleValue();
    double y = b->ToDoubleValue();
    double result = e->op == ArithOp::kAdd        ? x + y
                    : e->op == ArithOp::kSubtract ? x - y
                                                  : x * y;
    return MakeLiteral(AtomicValue::Double(result), e->location());
  }
  if (a->type() == AtomicType::kDecimal || b->type() == AtomicType::kDecimal) {
    Decimal x = a->type() == AtomicType::kDecimal ? a->AsDecimal()
                                                  : Decimal(a->AsInteger());
    Decimal y = b->type() == AtomicType::kDecimal ? b->AsDecimal()
                                                  : Decimal(b->AsInteger());
    try {
      Decimal result = e->op == ArithOp::kAdd        ? x.Add(y)
                       : e->op == ArithOp::kSubtract ? x.Subtract(y)
                                                     : x.Multiply(y);
      return MakeLiteral(AtomicValue::MakeDecimal(result), e->location());
    } catch (const XQueryError&) {
      return nullptr;  // overflow: keep the runtime error
    }
  }
  int64_t result = 0;
  bool overflow = false;
  switch (e->op) {
    case ArithOp::kAdd:
      overflow = __builtin_add_overflow(a->AsInteger(), b->AsInteger(), &result);
      break;
    case ArithOp::kSubtract:
      overflow = __builtin_sub_overflow(a->AsInteger(), b->AsInteger(), &result);
      break;
    case ArithOp::kMultiply:
      overflow = __builtin_mul_overflow(a->AsInteger(), b->AsInteger(), &result);
      break;
    default:
      return nullptr;
  }
  if (overflow) return nullptr;
  return MakeLiteral(AtomicValue::Integer(result), e->location());
}

ExprPtr FoldComparison(const ComparisonExpr* e) {
  if (e->comparison_kind == ComparisonKind::kNodeIs) return nullptr;
  const AtomicValue* a = AsLiteral(e->lhs.get());
  const AtomicValue* b = AsLiteral(e->rhs.get());
  if (a == nullptr || b == nullptr) return nullptr;
  try {
    bool result = ValueCompareAtomic(static_cast<CompareOp>(e->op), *a, *b);
    return MakeLiteral(AtomicValue::Boolean(result), e->location());
  } catch (const XQueryError&) {
    return nullptr;  // incomparable types: keep the runtime error
  }
}

std::optional<bool> LiteralTruth(const Expr* expr) {
  const AtomicValue* v = AsLiteral(expr);
  if (v == nullptr) return std::nullopt;
  switch (v->type()) {
    case AtomicType::kBoolean:
      return v->AsBoolean();
    case AtomicType::kString:
    case AtomicType::kUntypedAtomic:
      return !v->AsString().empty();
    case AtomicType::kInteger:
      return v->AsInteger() != 0;
    case AtomicType::kDecimal:
      return !v->AsDecimal().IsZero();
    case AtomicType::kDouble: {
      double d = v->AsDouble();
      return d != 0 && !std::isnan(d);
    }
    default:
      return std::nullopt;
  }
}

ExprPtr FoldLogical(LogicalExpr* e) {
  std::optional<bool> lhs = LiteralTruth(e->lhs.get());
  std::optional<bool> rhs = LiteralTruth(e->rhs.get());
  bool is_and = e->op == LogicalOp::kAnd;
  // A decided short-circuit side folds the whole expression (evaluation
  // order of and/or is implementation-defined in XQuery, so dropping the
  // other side's potential errors is permitted).
  if (lhs.has_value() && *lhs == !is_and) {
    return MakeLiteral(AtomicValue::Boolean(*lhs), e->location());
  }
  if (rhs.has_value() && *rhs == !is_and) {
    return MakeLiteral(AtomicValue::Boolean(*rhs), e->location());
  }
  if (lhs.has_value() && rhs.has_value()) {
    return MakeLiteral(
        AtomicValue::Boolean(is_and ? (*lhs && *rhs) : (*lhs || *rhs)),
        e->location());
  }
  // true and E  ->  E must still be reduced to its EBV; only fold when E is
  // itself a decided literal (handled above), so nothing more to do.
  return nullptr;
}

ExprPtr FoldIf(IfExpr* e) {
  std::optional<bool> condition = LiteralTruth(e->condition.get());
  if (!condition.has_value()) return nullptr;
  return std::move(*condition ? e->then_branch : e->else_branch);
}

ExprPtr FoldUnary(UnaryExpr* e) {
  const AtomicValue* v = AsLiteral(e->operand.get());
  if (v == nullptr || !v->IsNumeric()) return nullptr;
  if (!e->negate) return std::move(e->operand);
  switch (v->type()) {
    case AtomicType::kInteger:
      if (v->AsInteger() == INT64_MIN) return nullptr;
      return MakeLiteral(AtomicValue::Integer(-v->AsInteger()), e->location());
    case AtomicType::kDecimal:
      return MakeLiteral(AtomicValue::MakeDecimal(v->AsDecimal().Negate()),
                         e->location());
    case AtomicType::kDouble:
      return MakeLiteral(AtomicValue::Double(-v->AsDouble()), e->location());
    default:
      return nullptr;
  }
}

}  // namespace

ExprPtr TryFoldConstant(Expr* expr) {
  switch (expr->kind()) {
    case ExprKind::kArithmetic:
      return FoldArithmetic(static_cast<const ArithmeticExpr*>(expr));
    case ExprKind::kComparison:
      return FoldComparison(static_cast<const ComparisonExpr*>(expr));
    case ExprKind::kLogical:
      return FoldLogical(static_cast<LogicalExpr*>(expr));
    case ExprKind::kIf:
      return FoldIf(static_cast<IfExpr*>(expr));
    case ExprKind::kUnary:
      return FoldUnary(static_cast<UnaryExpr*>(expr));
    default:
      return nullptr;
  }
}

}  // namespace xqa

#ifndef XQA_OPTIMIZER_CONSTANT_FOLD_H_
#define XQA_OPTIMIZER_CONSTANT_FOLD_H_

#include "parser/ast.h"

namespace xqa {

/// Attempts to fold one expression whose children have already been folded:
///
///  - arithmetic / unary over literals  (1 + 2 -> 3)
///  - value and general comparisons over literals  (1 < 2 -> true)
///  - and/or with a decided literal side  (false and E -> false;
///    true and E -> boolean(E) only when E is a literal)
///  - if with a literal condition -> the taken branch
///  - concat / string functions over literals are left alone (the fold is
///    conservative: only pure arithmetic/logic kernels)
///
/// Folding never changes error behavior for the expressions it touches: a
/// literal expression that would raise a dynamic error (1 div 0) is left
/// unfolded so the error still surfaces at evaluation time.
///
/// Returns the replacement literal/branch, or nullptr when not foldable.
ExprPtr TryFoldConstant(Expr* expr);

}  // namespace xqa

#endif  // XQA_OPTIMIZER_CONSTANT_FOLD_H_

#include "optimizer/pushdown.h"

#include <memory>
#include <utility>

#include "optimizer/logical_props.h"
#include "xdm/compare.h"

namespace xqa {

namespace {

std::string Brief(const Expr* expr) {
  std::string dumped = DumpExpr(expr);
  if (dumped.size() <= 60) return dumped;
  return dumped.substr(0, 57) + "...";
}

/// True when `clause` binds the variable `name` (any binding position).
bool BindsVar(const FlworClause& clause, const std::string& name) {
  switch (clause.kind) {
    case ClauseKind::kFor:
      return clause.for_var == name || clause.pos_var == name;
    case ClauseKind::kLet:
      return clause.let_var == name;
    case ClauseKind::kCount:
      return clause.count_var == name;
    case ClauseKind::kGroupBy:
      for (const FlworClause::GroupKey& key : clause.group_keys) {
        if (key.var == name) return true;
      }
      for (const FlworClause::NestSpec& nest : clause.nest_specs) {
        if (nest.var == name) return true;
      }
      return false;
    default:
      return false;
  }
}

/// Replaces every reference to $var with the context item, respecting
/// shadowing: a nested construct that rebinds `var` keeps its own scope
/// untouched.
void SubstituteVar(ExprPtr* slot, const std::string& var);

void SubstituteClauseList(FlworExpr* e, const std::string& var) {
  bool shadowed = false;
  for (FlworClause& clause : e->clauses) {
    if (shadowed) return;
    switch (clause.kind) {
      case ClauseKind::kFor:
        SubstituteVar(&clause.for_expr, var);
        break;
      case ClauseKind::kLet:
        SubstituteVar(&clause.let_expr, var);
        break;
      case ClauseKind::kWhere:
        SubstituteVar(&clause.where_expr, var);
        break;
      case ClauseKind::kGroupBy:
        for (FlworClause::GroupKey& key : clause.group_keys) {
          SubstituteVar(&key.expr, var);
        }
        for (FlworClause::NestSpec& nest : clause.nest_specs) {
          SubstituteVar(&nest.expr, var);
          if (nest.order_by.has_value()) {
            for (OrderSpec& spec : nest.order_by->specs) {
              SubstituteVar(&spec.key, var);
            }
          }
        }
        break;
      case ClauseKind::kOrderBy:
        for (OrderSpec& spec : clause.order_by.specs) {
          SubstituteVar(&spec.key, var);
        }
        break;
      case ClauseKind::kCount:
        break;
    }
    if (BindsVar(clause, var)) shadowed = true;
  }
  if (e->at_var == var) return;
  SubstituteVar(&e->return_expr, var);
}

void SubstituteVar(ExprPtr* slot, const std::string& var) {
  Expr* expr = slot->get();
  if (expr == nullptr) return;
  switch (expr->kind()) {
    case ExprKind::kVarRef:
      if (static_cast<VarRefExpr*>(expr)->name == var) {
        *slot = std::make_unique<ContextItemExpr>(expr->location());
      }
      return;
    case ExprKind::kLiteral:
    case ExprKind::kContextItem:
      return;
    case ExprKind::kSequence:
      for (ExprPtr& item : static_cast<SequenceExpr*>(expr)->items) {
        SubstituteVar(&item, var);
      }
      return;
    case ExprKind::kRange: {
      auto* e = static_cast<RangeExpr*>(expr);
      SubstituteVar(&e->lo, var);
      SubstituteVar(&e->hi, var);
      return;
    }
    case ExprKind::kArithmetic: {
      auto* e = static_cast<ArithmeticExpr*>(expr);
      SubstituteVar(&e->lhs, var);
      SubstituteVar(&e->rhs, var);
      return;
    }
    case ExprKind::kUnary:
      SubstituteVar(&static_cast<UnaryExpr*>(expr)->operand, var);
      return;
    case ExprKind::kComparison: {
      auto* e = static_cast<ComparisonExpr*>(expr);
      SubstituteVar(&e->lhs, var);
      SubstituteVar(&e->rhs, var);
      return;
    }
    case ExprKind::kLogical: {
      auto* e = static_cast<LogicalExpr*>(expr);
      SubstituteVar(&e->lhs, var);
      SubstituteVar(&e->rhs, var);
      return;
    }
    case ExprKind::kIf: {
      auto* e = static_cast<IfExpr*>(expr);
      SubstituteVar(&e->condition, var);
      SubstituteVar(&e->then_branch, var);
      SubstituteVar(&e->else_branch, var);
      return;
    }
    case ExprKind::kQuantified: {
      auto* e = static_cast<QuantifiedExpr*>(expr);
      for (QuantifiedExpr::Binding& binding : e->bindings) {
        SubstituteVar(&binding.expr, var);
        if (binding.var == var) return;  // shadowed from here on
      }
      SubstituteVar(&e->satisfies, var);
      return;
    }
    case ExprKind::kPath: {
      auto* e = static_cast<PathExpr*>(expr);
      if (e->start != nullptr) SubstituteVar(&e->start, var);
      for (PathSegment& segment : e->segments) {
        if (segment.is_expr()) {
          SubstituteVar(&segment.expr, var);
        } else {
          for (ExprPtr& predicate : segment.step.predicates) {
            SubstituteVar(&predicate, var);
          }
        }
      }
      return;
    }
    case ExprKind::kFilter: {
      auto* e = static_cast<FilterExpr*>(expr);
      SubstituteVar(&e->primary, var);
      for (ExprPtr& predicate : e->predicates) SubstituteVar(&predicate, var);
      return;
    }
    case ExprKind::kFunctionCall:
      for (ExprPtr& arg : static_cast<FunctionCallExpr*>(expr)->args) {
        SubstituteVar(&arg, var);
      }
      return;
    case ExprKind::kFlwor:
      SubstituteClauseList(static_cast<FlworExpr*>(expr), var);
      return;
    case ExprKind::kDirectConstructor: {
      auto* e = static_cast<DirectConstructorExpr*>(expr);
      for (DirectConstructorExpr::Attribute& attr : e->attributes) {
        for (ConstructorContent& part : attr.parts) {
          if (part.expr != nullptr) SubstituteVar(&part.expr, var);
        }
      }
      for (ConstructorContent& child : e->children) {
        if (child.expr != nullptr) SubstituteVar(&child.expr, var);
      }
      return;
    }
    case ExprKind::kComputedConstructor: {
      auto* e = static_cast<ComputedConstructorExpr*>(expr);
      if (e->name_expr != nullptr) SubstituteVar(&e->name_expr, var);
      if (e->content != nullptr) SubstituteVar(&e->content, var);
      return;
    }
    case ExprKind::kTypeOp:
      SubstituteVar(&static_cast<TypeOpExpr*>(expr)->operand, var);
      return;
    case ExprKind::kTypeswitch: {
      auto* e = static_cast<TypeswitchExpr*>(expr);
      SubstituteVar(&e->operand, var);
      for (TypeswitchExpr::CaseClause& clause : e->cases) {
        if (clause.var != var) SubstituteVar(&clause.result, var);
      }
      if (e->default_var != var) SubstituteVar(&e->default_result, var);
      return;
    }
  }
}

/// Matches a single-child-step path "$var/child" with no predicates.
bool MatchVarChildPath(const Expr* expr, const std::string& var,
                       std::string* child) {
  if (expr == nullptr || expr->kind() != ExprKind::kPath) return false;
  const auto* path = static_cast<const PathExpr*>(expr);
  if (path->absolute || path->start == nullptr ||
      path->start->kind() != ExprKind::kVarRef ||
      static_cast<const VarRefExpr*>(path->start.get())->name != var) {
    return false;
  }
  if (path->segments.size() != 1) return false;
  const PathSegment& segment = path->segments[0];
  if (segment.is_expr()) return false;
  if (segment.step.axis != Axis::kChild ||
      segment.step.test.kind != NodeTest::Kind::kName ||
      segment.step.test.name == "*" || segment.step.test.name.empty() ||
      !segment.step.predicates.empty() ||
      segment.step.pushed_filter != nullptr) {
    return false;
  }
  *child = segment.step.test.name;
  return true;
}

int MirrorOp(int op) {
  switch (static_cast<CompareOp>(op)) {
    case CompareOp::kLt: return static_cast<int>(CompareOp::kGt);
    case CompareOp::kLe: return static_cast<int>(CompareOp::kGe);
    case CompareOp::kGt: return static_cast<int>(CompareOp::kLt);
    case CompareOp::kGe: return static_cast<int>(CompareOp::kLe);
    default: return op;  // eq / ne are symmetric
  }
}

/// Literal fast path: `$v/c <op> literal` (either orientation) becomes a
/// PushedValueFilter on the domain's last step. Requires the step to carry
/// no predicates (the filter runs at axis time, before predicates, which
/// would reorder evaluation relative to a positional predicate) and no
/// prior filter.
bool TryLiteralPush(const Expr* where, const std::string& var,
                    PathStep* last_step, std::string* described) {
  if (last_step->pushed_filter != nullptr || !last_step->predicates.empty()) {
    return false;
  }
  if (last_step->test.kind != NodeTest::Kind::kName &&
      last_step->test.kind != NodeTest::Kind::kElement) {
    return false;
  }
  if (where == nullptr || where->kind() != ExprKind::kComparison) return false;
  const auto* cmp = static_cast<const ComparisonExpr*>(where);
  if (cmp->comparison_kind != ComparisonKind::kGeneral) return false;
  const Expr* path_side = cmp->lhs.get();
  const Expr* literal_side = cmp->rhs.get();
  int op = cmp->op;
  std::string child;
  if (!MatchVarChildPath(path_side, var, &child)) {
    std::swap(path_side, literal_side);
    op = MirrorOp(op);
    if (!MatchVarChildPath(path_side, var, &child)) return false;
  }
  if (literal_side->kind() != ExprKind::kLiteral) return false;
  auto filter = std::make_unique<PushedValueFilter>();
  filter->child.kind = NodeTest::Kind::kName;
  filter->child.name = child;
  filter->op = op;
  filter->literal = static_cast<const LiteralExpr*>(literal_side)->value;
  last_step->pushed_filter = std::move(filter);
  *described = Brief(where);
  return true;
}

ExprPtr BuildBooleanCall(ExprPtr arg, SourceLocation loc) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(arg));
  return std::make_unique<FunctionCallExpr>("boolean", std::move(args), loc);
}

}  // namespace

int PushPredicates(FlworExpr* expr, const std::set<std::string>& user_functions,
                   std::vector<std::string>* fired) {
  int pushed = 0;
  for (size_t j = 0; j < expr->clauses.size();) {
    FlworClause& where_clause = expr->clauses[j];
    if (where_clause.kind != ClauseKind::kWhere ||
        where_clause.where_expr == nullptr) {
      ++j;
      continue;
    }
    std::set<std::string> free_vars;
    CollectFreeVars(where_clause.where_expr.get(), &free_vars);
    if (free_vars.size() != 1 ||
        ContainsNonRelocatable(where_clause.where_expr.get(),
                               user_functions)) {
      ++j;
      continue;
    }
    const std::string var = *free_vars.begin();

    // Scan back to the nearest clause binding `var`; every clause crossed on
    // the way lies between binder and where, so a count / group by /
    // order by there blocks the hoist (tuple numbering, stream shape, and
    // key-validation errors would all observe the unfiltered stream).
    int binder = -1;
    bool blocked = false;
    for (int i = static_cast<int>(j) - 1; i >= 0; --i) {
      const FlworClause& clause = expr->clauses[static_cast<size_t>(i)];
      if (BindsVar(clause, var)) {
        if (clause.kind == ClauseKind::kFor && clause.for_var == var &&
            clause.pos_var.empty()) {
          binder = i;
        }
        break;
      }
      if (clause.kind == ClauseKind::kCount ||
          clause.kind == ClauseKind::kGroupBy ||
          clause.kind == ClauseKind::kOrderBy) {
        blocked = true;
        break;
      }
    }
    if (binder < 0 || blocked) {
      ++j;
      continue;
    }

    FlworClause& for_clause = expr->clauses[static_cast<size_t>(binder)];
    if (for_clause.for_expr == nullptr ||
        for_clause.for_expr->kind() != ExprKind::kPath) {
      ++j;
      continue;
    }
    auto* domain = static_cast<PathExpr*>(for_clause.for_expr.get());
    if (domain->segments.empty() || domain->segments.back().is_expr()) {
      ++j;
      continue;
    }
    PathStep& last_step = domain->segments.back().step;

    std::string described;
    bool literal = TryLiteralPush(where_clause.where_expr.get(), var,
                                  &last_step, &described);
    if (!literal) {
      described = Brief(where_clause.where_expr.get());
      ExprPtr hoisted = std::move(where_clause.where_expr);
      SubstituteVar(&hoisted, var);
      last_step.predicates.push_back(
          BuildBooleanCall(std::move(hoisted), where_clause.location));
    }
    if (fired != nullptr) {
      fired->push_back(std::string("predicate pushdown") +
                       (literal ? " (index value filter)" : "") + ": where " +
                       described + " -> domain of $" + var + " (" +
                       DescribeProps(DeriveProps(domain)) + ")");
    }
    expr->clauses.erase(expr->clauses.begin() + static_cast<long>(j));
    ++pushed;
  }
  return pushed;
}

}  // namespace xqa

#include "service/query_service.h"

#include <sstream>
#include <utility>

#include "base/fault_injection.h"
#include "base/json_escape.h"

namespace xqa::service {

namespace {

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

QueryService::QueryService(ServiceOptions options)
    : options_(std::move(options)),
      engine_(options_.engine),
      collections_(CollectionStore::Options{options_.collection_shards}),
      cache_(options_.plan_cache),
      root_memory_("service", options_.total_memory_bytes),
      max_concurrent_(options_.max_concurrent_queries > 0
                          ? options_.max_concurrent_queries
                          : options_.worker_threads),
      pool_(std::make_unique<ThreadPool>(options_.worker_threads)) {
  if (!options_.data_dir.empty()) {
    // Recovery before anything else can touch the store: the corpus that
    // was on disk (newest valid manifest + journal replay) becomes the
    // starting state, and only then does write-ahead journaling attach.
    storage_ = std::make_unique<storage::DurableStore>(
        storage::StorageOptions{options_.data_dir, options_.storage_fsync});
    storage_recovery_ = storage_->Open(&collections_);
    collections_.AttachDurability(storage_.get());
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  shutdown_.store(true, std::memory_order_relaxed);
  // ThreadPool's destructor drains the queue before joining, so every
  // admitted request resolves its promise before Shutdown returns.
  pool_.reset();
}

std::future<Response> QueryService::Submit(
    Request request, std::shared_ptr<CancellationToken> token) {
  auto submitted = std::chrono::steady_clock::now();
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);

  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();

  if (token == nullptr) token = std::make_shared<CancellationToken>();
  // Arm the deadline at admission: it covers queue wait plus execution, so
  // a request stuck behind a full scheduler still times out on schedule.
  double deadline = request.deadline_seconds < 0
                        ? options_.default_deadline_seconds
                        : request.deadline_seconds;
  if (deadline > 0) token->SetTimeout(deadline);

  // Pressure gate: under memory pressure the service sheds new load instead
  // of letting admissions push running queries over the root budget —
  // reject-new before kill-running. Shed rejections are retryable: pressure
  // is transient, released as in-flight requests finish.
  if (options_.total_memory_bytes > 0 &&
      options_.memory_pressure_shed_fraction > 0) {
    int64_t threshold = static_cast<int64_t>(
        options_.memory_pressure_shed_fraction *
        static_cast<double>(options_.total_memory_bytes));
    if (root_memory_.used() >= threshold) {
      metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
      metrics_.shed_memory_pressure.fetch_add(1, std::memory_order_relaxed);
      Response response;
      response.retryable = true;
      response.status =
          Status(ErrorCode::kXQSV0003,
                 "admission rejected: memory pressure (" +
                     std::to_string(root_memory_.used()) + " of " +
                     std::to_string(options_.total_memory_bytes) +
                     " budget bytes in use)");
      promise->set_value(std::move(response));
      return future;
    }
  }

  // Injected enqueue failures resolve the future like any other rejection —
  // Submit never throws.
  try {
    XQA_FAULT_POINT("service.enqueue", ErrorCode::kXQSV0003);
  } catch (const XQueryError& error) {
    metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
    Response response;
    response.retryable = true;
    response.status = Status::FromException(error);
    promise->set_value(std::move(response));
    return future;
  }

  // shutdown_mutex_ pins pool_ across the enqueue (Shutdown destroys it
  // under the same lock); rejection decisions happen inside so a request
  // can never be admitted into a pool that is being torn down.
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    bool admitted =
        !shutdown_.load(std::memory_order_relaxed) &&
        pending_.fetch_add(1, std::memory_order_relaxed) <
            options_.max_pending_requests;
    if (!admitted) {
      if (!shutdown_.load(std::memory_order_relaxed)) {
        pending_.fetch_sub(1, std::memory_order_relaxed);
      }
      metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
      Response response;
      bool shutting_down = shutdown_.load(std::memory_order_relaxed);
      // A full queue drains as requests finish — worth a client retry; a
      // shutdown does not.
      response.retryable = !shutting_down;
      response.status = Status(
          ErrorCode::kXQSV0003,
          shutting_down
              ? "admission rejected: service is shutting down"
              : "admission rejected: pending queue full (" +
                    std::to_string(options_.max_pending_requests) + ")");
      promise->set_value(std::move(response));
      return future;
    }
    metrics_.admitted.fetch_add(1, std::memory_order_relaxed);

    pool_->Submit([this, request = std::move(request),
                   token = std::move(token), promise = std::move(promise),
                   submitted]() mutable {
      // Concurrency gate: at most max_concurrent_ requests execute at once;
      // surplus workers wait here (still cancellable — RunRequest checks the
      // token before doing any work).
      {
        std::unique_lock<std::mutex> gate(gate_mutex_);
        gate_cv_.wait(gate, [this] { return running_ < max_concurrent_; });
        ++running_;
      }
      Response response = RunRequest(request, *token, submitted);
      {
        std::lock_guard<std::mutex> gate(gate_mutex_);
        --running_;
      }
      gate_cv_.notify_one();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      promise->set_value(std::move(response));
    });
  }
  return future;
}

Response QueryService::Execute(Request request,
                               std::shared_ptr<CancellationToken> token) {
  return Submit(std::move(request), std::move(token)).get();
}

bool QueryService::CheckpointStorage() {
  if (storage_ == nullptr) return false;
  collections_.Checkpoint();
  return true;
}

storage::ScrubReport QueryService::ScrubStorage() {
  if (storage_ == nullptr) return storage::ScrubReport();
  return storage_->Scrub();
}

Response QueryService::RunRequest(
    const Request& request, const CancellationToken& token,
    std::chrono::steady_clock::time_point submitted) {
  Response response;
  auto started = std::chrono::steady_clock::now();
  response.queue_seconds = SecondsBetween(submitted, started);
  metrics_.queue_latency.Record(response.queue_seconds);

  // Per-request memory budget, a child of the service root tracker. Lives
  // for the whole try block (execution and serialization) and is destroyed
  // on every exit path — success or unwind — returning its entire chunked
  // reservation to the root, which is how the root balance comes back to
  // zero after any failure.
  std::unique_ptr<MemoryTracker> memory;

  try {
    // A request whose deadline elapsed in the queue (or that was cancelled
    // before a worker picked it up) fails here, before any compilation or
    // evaluation.
    token.Check();
    XQA_FAULT_POINT("service.execute", ErrorCode::kXQSV0002);

    ExecutionOptions exec =
        request.exec.has_value() ? *request.exec : options_.default_exec;
    exec.cancellation = &token;
    if (options_.per_query_memory_bytes > 0 ||
        options_.total_memory_bytes > 0) {
      memory = std::make_unique<MemoryTracker>(
          "request", options_.per_query_memory_bytes, &root_memory_);
      exec.memory = memory.get();
    }

    PlanHandle plan;
    if (options_.enable_plan_cache) {
      plan = cache_.GetOrCompile(engine_, request.query, exec,
                                 &response.cache_hit);
    } else {
      plan = std::make_shared<const PreparedQuery>(
          engine_.Compile(request.query));
    }

    DocumentPtr doc;
    if (!request.document.empty()) {
      doc = store_.Get(request.document);
      if (doc == nullptr) {
        metrics_.documents_missing.fetch_add(1, std::memory_order_relaxed);
        ThrowError(ErrorCode::kXQSV0006,
                   "unknown document '" + request.document + "'");
      }
    }

    // The request's environment, resolved once: a DocumentStore snapshot for
    // fn:doc, a CollectionStore snapshot for fn:collection / the partitioned
    // scan. Both are point-in-time — later Put/Remove/BulkLoad calls do not
    // reach this execution — and the collection snapshot (a shared_ptr held
    // across the call) pins its documents until serialization is done.
    DocumentRegistry registry;
    const DocumentRegistry* registry_ptr = nullptr;
    if (request.provide_registry) {
      registry = store_.Snapshot();
      registry_ptr = &registry;
    }
    std::shared_ptr<const CollectionSnapshot> corpus;
    if (request.provide_collections) corpus = collections_.Snapshot();

    Sequence sequence;
    if (request.collect_stats) {
      ProfiledResult profiled =
          plan->ExecuteProfiled(doc, registry_ptr, corpus.get(), exec);
      sequence = std::move(profiled.sequence);
      response.stats = std::move(profiled.stats);
    } else {
      sequence = plan->Execute(doc, registry_ptr, corpus.get(), exec);
    }
    // Serialization stays under the request's deadline and budget: the
    // output buffer of a huge result is a materialization like any other.
    SerializeOptions serialize;
    serialize.indent = request.indent;
    serialize.cancellation = &token;
    serialize.memory = exec.memory;
    response.result = SerializeSequence(sequence, serialize);
    response.executed = true;
    if (request.collect_stats) metrics_.RecordQueryStats(response.stats);
    metrics_.completed.fetch_add(1, std::memory_order_relaxed);
  } catch (const XQueryError& error) {
    // Never a partial result: whatever was serialized or collected before
    // the checkpoint fired is discarded with the unwound execution.
    response.result.clear();
    response.executed = false;
    response.status = Status::FromException(error);
    switch (error.code()) {
      case ErrorCode::kXQSV0001:
        // A deadline can expire from queue wait or transient load; the same
        // request resent against an idle service may well finish.
        response.retryable = true;
        metrics_.timed_out.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kXQSV0002:
        metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kXQSV0004:
        metrics_.budget_exceeded.fetch_add(1, std::memory_order_relaxed);
        metrics_.failed.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        metrics_.failed.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }

  auto finished = std::chrono::steady_clock::now();
  response.exec_seconds = SecondsBetween(started, finished);
  response.total_seconds = SecondsBetween(submitted, finished);
  metrics_.latency.Record(response.total_seconds);
  return response;
}

std::string QueryService::MetricsJson(int indent) const {
  PlanCache::Counters cache = cache_.counters();
  std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent), ' ') : "";
  std::string nl = indent > 0 ? "\n" : "";
  std::ostringstream out;
  out << "{" << nl;
  out << pad << "\"service\": " << metrics_.ToJson() << "," << nl;
  out << pad << "\"plan_cache\": {\"hits\": " << cache.hits
      << ", \"misses\": " << cache.misses
      << ", \"evictions\": " << cache.evictions
      << ", \"entries\": " << cache.entries
      << ", \"compile_failures\": " << cache.compile_failures << "}," << nl;
  out << pad << "\"memory\": {\"used_bytes\": " << root_memory_.used()
      << ", \"peak_bytes\": " << root_memory_.peak()
      << ", \"limit_bytes\": " << root_memory_.limit()
      << ", \"budget_failures\": " << root_memory_.budget_failures() << "},"
      << nl;
  out << pad << "\"faults\": {\"enabled\": "
      << (fault::Enabled() ? "true" : "false")
      << ", \"hits\": " << fault::TotalHits()
      << ", \"trips\": " << fault::TotalTrips() << "}," << nl;
  out << pad << "\"documents\": {\"count\": " << store_.size()
      << ", \"version\": " << store_.version() << ", \"names\": [";
  // Document names are caller-chosen — a quote or backslash in one must not
  // corrupt the scrape (regression-tested in tests/service_test.cc).
  std::vector<std::string> names = store_.Names();
  for (size_t i = 0; i < names.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << JsonEscape(names[i]) << "\"";
  }
  out << "]}," << nl;
  out << pad << "\"collections\": " << collections_.StatsJson() << "," << nl;
  if (storage_ != nullptr) {
    out << pad << "\"storage\": " << storage_->StatsJson() << "," << nl;
  }
  out << pad << "\"shred\": " << collections_.Snapshot()->ShredStatsJson()
      << nl;
  out << "}";
  return out.str();
}

}  // namespace xqa::service

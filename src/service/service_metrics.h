#ifndef XQA_SERVICE_SERVICE_METRICS_H_
#define XQA_SERVICE_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "api/query_stats.h"

namespace xqa::service {

/// Lock-free log-spaced latency histogram: bucket i counts observations in
/// [2^i, 2^(i+1)) microseconds, with the first and last buckets absorbing
/// the tails (sub-microsecond / beyond ~67 s). Record is two relaxed
/// fetch_adds, safe from any number of worker threads; percentiles are
/// bucket-upper-bound estimates, which is what a serving dashboard needs —
/// exact per-request latencies stay available to callers via Response.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 27;

  void Record(double seconds);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const {
    return static_cast<double>(
               total_micros_.load(std::memory_order_relaxed)) *
           1e-6;
  }
  double mean_seconds() const;

  /// Upper bound of the bucket containing the p-th percentile observation
  /// (p in [0, 1]); 0 when empty.
  double PercentileSeconds(double p) const;

  /// {"count":..,"mean_seconds":..,"p50_seconds":..,...,"buckets":[..]} —
  /// schema in docs/OBSERVABILITY.md.
  std::string ToJson() const;

 private:
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> total_micros_{0};
};

/// Service-level counters plus an aggregate of every profiled request's
/// QueryStats (docs/SERVICE.md). Counter writes are relaxed atomics on the
/// request path; the QueryStats aggregate takes a mutex, amortized by its
/// per-request (not per-tuple) cadence.
///
/// Counter semantics: submitted = rejected + admitted; admitted requests
/// finish as exactly one of completed / failed / timed_out / cancelled.
/// `documents_missing` and `budget_exceeded` sub-count failed requests
/// (XQSV0006 and XQSV0004 respectively); `shed_memory_pressure` sub-counts
/// rejected ones.
class ServiceMetrics {
 public:
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> rejected{0};   ///< admission refused (XQSV0003)
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};     ///< dynamic/static errors
  std::atomic<uint64_t> timed_out{0};  ///< deadline exceeded (XQSV0001)
  std::atomic<uint64_t> cancelled{0};  ///< client cancel (XQSV0002)
  std::atomic<uint64_t> documents_missing{0};  ///< absent document (XQSV0006)
  /// Submit rejections from the memory pressure gate (retryable XQSV0003):
  /// the service sheds new load before killing running queries.
  std::atomic<uint64_t> shed_memory_pressure{0};
  /// Requests that failed on a memory budget (XQSV0004), per-query or root.
  std::atomic<uint64_t> budget_exceeded{0};

  /// End-to-end latency (queue wait + execution) of finished requests.
  LatencyHistogram latency;
  /// Queue wait alone (admission to execution start).
  LatencyHistogram queue_latency;

  /// Folds one request's execution stats into the service-wide aggregate.
  void RecordQueryStats(const QueryStats& stats);

  /// Copy of the aggregate (per-clause entries merged across requests).
  QueryStats AggregatedQueryStats() const;

  /// Machine-readable rendering of everything above; schema in
  /// docs/OBSERVABILITY.md. `indent` > 0 pretty-prints.
  std::string ToJson(int indent = 0) const;

 private:
  mutable std::mutex stats_mutex_;
  QueryStats aggregate_stats_;
};

}  // namespace xqa::service

#endif  // XQA_SERVICE_SERVICE_METRICS_H_

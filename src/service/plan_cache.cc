#include "service/plan_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace xqa::service {

PlanCache::PlanCache(Config config) {
  int shard_count = std::max(config.shards, 1);
  per_shard_capacity_ =
      std::max<size_t>(1, config.capacity / static_cast<size_t>(shard_count));
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string PlanCache::MakeKey(std::string_view query,
                               const Engine::Options& compile,
                               const ExecutionOptions& exec) {
  // Fixed-width option prefix, then the query text verbatim. The '\x1f'
  // separator cannot occur in the prefix, so distinct option sets can never
  // alias distinct queries.
  std::string key;
  key.reserve(query.size() + 24);
  key += compile.optimizer.detect_groupby_patterns ? 'G' : 'g';
  key += compile.optimizer.fold_constants ? 'F' : 'f';
  key += compile.optimizer.push_predicates ? 'P' : 'p';
  key += compile.optimizer.eliminate_order_by ? 'O' : 'o';
  key += compile.optimizer.mark_shredded_scans ? 'S' : 's';
  key += 'h';
  key += std::to_string(compile.optimizer.groupby_cardinality_threshold);
  key += exec.use_structural_index ? 'I' : 'i';
  key += exec.use_batched_execution ? 'B' : 'b';
  key += exec.use_shredded_scan ? 'R' : 'r';
  key += 't';
  key += std::to_string(exec.num_threads);
  key += '\x1f';
  key += query;
  return key;
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  size_t hash = std::hash<std::string_view>{}(key);
  return *shards_[hash % shards_.size()];
}

PlanHandle PlanCache::Lookup(const Engine& engine, std::string_view query,
                             const ExecutionOptions& exec) {
  std::string key = MakeKey(query, engine.options(), exec);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(std::string_view(key));
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->plan;
}

PlanHandle PlanCache::GetOrCompile(const Engine& engine,
                                   std::string_view query,
                                   const ExecutionOptions& exec,
                                   bool* cache_hit) {
  std::string key = MakeKey(query, engine.options(), exec);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(std::string_view(key));
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (cache_hit != nullptr) *cache_hit = true;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->plan;
    }
  }
  // Miss: compile outside the lock (a slow parse must not block hits on
  // sibling keys). Static errors propagate and cache nothing — no tombstone
  // entry and no eviction, so the shard is exactly as it was before the
  // failed call.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit != nullptr) *cache_hit = false;
  PlanHandle plan;
  try {
    plan = std::make_shared<const PreparedQuery>(engine.Compile(query));
  } catch (...) {
    compile_failures_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }

  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(std::string_view(key));
  if (it != shard.map.end()) {
    // Lost a compile race; adopt the resident entry so every caller of this
    // key shares one handle from now on.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->plan;
  }
  shard.lru.push_front(Entry{std::move(key), plan});
  shard.map.emplace(std::string_view(shard.lru.front().key),
                    shard.lru.begin());
  entries_.fetch_add(1, std::memory_order_relaxed);
  if (shard.lru.size() > per_shard_capacity_) {
    shard.map.erase(std::string_view(shard.lru.back().key));
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  return plan;
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    entries_.fetch_sub(shard->lru.size(), std::memory_order_relaxed);
    shard->map.clear();
    shard->lru.clear();
  }
}

PlanCache::Counters PlanCache::counters() const {
  Counters counters;
  counters.hits = hits_.load(std::memory_order_relaxed);
  counters.misses = misses_.load(std::memory_order_relaxed);
  counters.evictions = evictions_.load(std::memory_order_relaxed);
  counters.entries = entries_.load(std::memory_order_relaxed);
  counters.compile_failures =
      compile_failures_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace xqa::service

#ifndef XQA_SERVICE_DOCUMENT_STORE_H_
#define XQA_SERVICE_DOCUMENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "eval/dynamic_context.h"
#include "xml/node.h"

namespace xqa::service {

/// Named, sealed, shared documents for the query service (docs/SERVICE.md).
///
/// Every stored document is sealed (Document::SealOrder ran), so its order
/// indexes, subtree spans, and element-name index are immutable and any
/// number of queries — including parallel FLWOR lanes — read it without
/// synchronization (docs/INDEXES.md).
///
/// Replacement is an atomic snapshot swap: Put() publishes the new document
/// under the name while in-flight queries keep executing against the
/// DocumentPtr they resolved at admission time. The intrusive refcount keeps
/// the old tree alive until its last reader finishes; a request therefore
/// observes exactly one version for its whole execution, never a mix
/// (asserted under TSan by tests/service_test.cc).
class DocumentStore {
 public:
  DocumentStore() = default;
  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  /// Inserts or atomically replaces the document published under `name`.
  /// Seals the document first if the caller has not (sealing mutates the
  /// tree, so pass unshared documents when unsealed). Null erases nothing
  /// and is rejected. Returns true when an existing document was replaced.
  bool Put(const std::string& name, DocumentPtr document);

  /// The current document under `name`; null when absent. The returned
  /// handle pins that version for as long as the caller holds it.
  DocumentPtr Get(const std::string& name) const;

  /// Removes `name`; in-flight readers keep their version. Returns whether
  /// the name was present.
  bool Remove(const std::string& name);

  /// A point-in-time copy of the whole catalog, usable as the fn:doc /
  /// fn:collection registry of one request: later Put/Remove calls do not
  /// affect the snapshot.
  DocumentRegistry Snapshot() const;

  std::vector<std::string> Names() const;
  size_t size() const;

  /// Bumped by every successful Put/Remove; lets callers detect catalog
  /// changes without diffing snapshots.
  ///
  /// Acquire, paired with the release bumps, matching CollectionStore: a
  /// caller that observes version N is guaranteed to also observe the
  /// catalog writes that produced N if it then takes the mutex-free read
  /// paths. With relaxed ordering a version-gated cache (the pattern
  /// CollectionStore::Snapshot uses) could see the new number with the old
  /// catalog. The mutexed accessors do not need it, but the two stores
  /// should make the same promise.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mutex_;
  DocumentRegistry documents_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace xqa::service

#endif  // XQA_SERVICE_DOCUMENT_STORE_H_

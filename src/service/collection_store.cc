#include "service/collection_store.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "base/error.h"
#include "base/json_escape.h"
#include "base/thread_pool.h"
#include "xml/xml_parser.h"

namespace xqa::service {

namespace {

/// FNV-1a over the URI. std::hash would work on any single build, but the
/// shard layout decides canonical document order (partition-major), and a
/// defined hash keeps that order — and therefore every byte-identity
/// assertion over collection() results — stable across builds and hosts.
size_t HashUri(const std::string& uri) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : uri) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(hash);
}

}  // namespace

CollectionStore::CollectionStore(Options options) {
  int shards = std::max(options.shards, 1);
  shards_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t CollectionStore::ShardOf(const std::string& uri) const {
  return HashUri(uri) % shards_.size();
}

int64_t CollectionStore::EstimateDocumentBytes(const Document& document) {
  // Arena nodes plus a flat per-name estimate for the pool — structure, not
  // text payload, matching the engine's other shallow estimates.
  return static_cast<int64_t>(document.node_count() * sizeof(Node)) +
         static_cast<int64_t>(document.name_pool_size()) * 32;
}

void CollectionStore::AddDocumentStats(Shard* shard,
                                       const Document& document) {
  ++shard->stats.documents;
  shard->stats.nodes += static_cast<int64_t>(document.node_count());
  shard->stats.bytes += EstimateDocumentBytes(document);
  if (document.has_element_index()) ++shard->stats.indexed_documents;
}

void CollectionStore::RemoveDocumentStats(Shard* shard,
                                          const Document& document) {
  --shard->stats.documents;
  shard->stats.nodes -= static_cast<int64_t>(document.node_count());
  shard->stats.bytes -= EstimateDocumentBytes(document);
  if (document.has_element_index()) --shard->stats.indexed_documents;
}

bool CollectionStore::InsertSealed(const std::string& collection,
                                   const std::string& uri,
                                   DocumentPtr document, bool bump_version) {
  Shard* shard = shards_[ShardOf(uri)].get();
  std::lock_guard<std::mutex> lock(shard->mutex);
  auto [it, inserted] = shard->catalogs[collection].try_emplace(uri);
  if (!inserted) RemoveDocumentStats(shard, *it->second);
  it->second = std::move(document);
  AddDocumentStats(shard, *it->second);
  if (bump_version) version_.fetch_add(1, std::memory_order_release);
  return !inserted;
}

bool CollectionStore::Put(const std::string& collection,
                          const std::string& uri, DocumentPtr document) {
  if (document == nullptr) {
    ThrowError(ErrorCode::kXQSV0006, "CollectionStore::Put: null document for '" +
                                         collection + "'/'" + uri + "'");
  }
  // Seal outside the lock: sealing walks the whole tree, and the document is
  // not yet visible to readers.
  if (!document->sealed()) document->SealOrder();
  if (durable_ != nullptr) {
    // Write-ahead: the journal append happens (and fsyncs) before the
    // document becomes visible, under the durable mutex so append order is
    // apply order. A failed append throws with the store unchanged.
    std::lock_guard<std::mutex> durable_lock(durable_mutex_);
    durable_->JournalPut(collection, uri, *document);
    return InsertSealed(collection, uri, std::move(document), true);
  }
  return InsertSealed(collection, uri, std::move(document), true);
}

DocumentPtr CollectionStore::Get(const std::string& collection,
                                 const std::string& uri) const {
  const Shard* shard = shards_[ShardOf(uri)].get();
  std::lock_guard<std::mutex> lock(shard->mutex);
  auto catalog = shard->catalogs.find(collection);
  if (catalog == shard->catalogs.end()) return nullptr;
  auto it = catalog->second.find(uri);
  if (it == catalog->second.end()) return nullptr;
  return it->second;  // refcount increment pins this version for the caller
}

bool CollectionStore::EraseDocument(const std::string& collection,
                                    const std::string& uri,
                                    bool bump_version) {
  Shard* shard = shards_[ShardOf(uri)].get();
  std::lock_guard<std::mutex> lock(shard->mutex);
  auto catalog = shard->catalogs.find(collection);
  if (catalog == shard->catalogs.end()) return false;
  auto it = catalog->second.find(uri);
  if (it == catalog->second.end()) return false;
  RemoveDocumentStats(shard, *it->second);
  catalog->second.erase(it);
  if (catalog->second.empty()) shard->catalogs.erase(catalog);
  // Like DocumentStore: the version bumps only on a successful removal, so
  // snapshot caches are not invalidated by no-op calls.
  if (bump_version) version_.fetch_add(1, std::memory_order_release);
  return true;
}

bool CollectionStore::Remove(const std::string& collection,
                             const std::string& uri) {
  if (durable_ != nullptr) {
    std::lock_guard<std::mutex> durable_lock(durable_mutex_);
    // Probe first so a no-op remove journals nothing: replay counts one
    // version bump per record, and the live path does not bump on a miss.
    // The probe cannot go stale — every mutation holds the durable mutex.
    if (Get(collection, uri) == nullptr) return false;
    durable_->JournalRemove(collection, uri);
    return EraseDocument(collection, uri, true);
  }
  return EraseDocument(collection, uri, true);
}

size_t CollectionStore::BulkLoad(const std::string& collection,
                                 const std::vector<BulkDocument>& batch,
                                 int num_threads) {
  const size_t count = batch.size();
  if (count == 0) return 0;

  // Parse + seal fanned across the shared pool: the expensive, lock-free
  // part of ingest. ParallelFor rethrows the lowest-index document's parse
  // error after draining, and nothing below runs — a failed batch inserts
  // nothing.
  std::vector<DocumentPtr> parsed(count);
  auto parse_one = [&](size_t i) {
    DocumentPtr document = ParseXml(batch[i].xml);
    if (!document->sealed()) document->SealOrder();
    parsed[i] = std::move(document);
  };
  int workers = num_threads;
  if (workers == 0) workers = ThreadPool::Shared().size() + 1;
  workers = std::max(1, std::min(workers, static_cast<int>(count)));
  if (workers > 1) {
    ThreadPool::Shared().ParallelFor(count, workers,
                                     [&](int, size_t i) { parse_one(i); });
  } else {
    for (size_t i = 0; i < count; ++i) parse_one(i);
  }

  // With durability attached, the whole batch becomes one journal record —
  // one version bump on replay, matching the single bump below — appended
  // before anything is inserted. The durable mutex is taken only now, after
  // the parallel parse: parsing is lock-free work that need not serialize.
  std::unique_lock<std::mutex> durable_lock;
  if (durable_ != nullptr) {
    durable_lock = std::unique_lock<std::mutex>(durable_mutex_);
    std::vector<std::pair<std::string, const Document*>> journal_batch;
    journal_batch.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      journal_batch.emplace_back(batch[i].uri, parsed[i].get());
    }
    durable_->JournalBulkLoad(collection, journal_batch);
  }

  // Insert shard by shard: one lock acquisition per touched shard, single
  // version bump for the whole batch. Within a shard, batch order decides
  // duplicate-URI winners (last write wins, like repeated Put calls).
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < count; ++i) {
    by_shard[ShardOf(batch[i].uri)].push_back(i);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard* shard = shards_[s].get();
    std::lock_guard<std::mutex> lock(shard->mutex);
    auto& catalog = shard->catalogs[collection];
    for (size_t i : by_shard[s]) {
      auto [it, inserted] = catalog.try_emplace(batch[i].uri);
      if (!inserted) RemoveDocumentStats(shard, *it->second);
      it->second = std::move(parsed[i]);
      AddDocumentStats(shard, *it->second);
    }
  }
  version_.fetch_add(1, std::memory_order_release);
  return count;
}

void CollectionStore::AttachDurability(storage::DurableStore* storage) {
  durable_ = storage;
}

void CollectionStore::Checkpoint() {
  if (durable_ == nullptr) return;
  // The durable mutex quiesces mutations (they all take it while durability
  // is attached), so the image below is one corpus version. Entries are
  // refcounted handles — capture is cheap; serialization happens inside
  // DurableStore against trees the image pins.
  std::lock_guard<std::mutex> durable_lock(durable_mutex_);
  storage::CorpusImage image;
  image.version = version();
  image.shards.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard* shard = shards_[s].get();
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [name, catalog] : shard->catalogs) {
      for (const auto& [uri, document] : catalog) {
        image.shards[s].push_back(
            storage::CorpusImage::Entry{name, uri, document});
      }
    }
  }
  durable_->Checkpoint(image);
}

void CollectionStore::ApplyPut(const std::string& collection,
                               const std::string& uri, DocumentPtr document) {
  InsertSealed(collection, uri, std::move(document), false);
}

void CollectionStore::ApplyRemove(const std::string& collection,
                                  const std::string& uri) {
  EraseDocument(collection, uri, false);
}

void CollectionStore::RestoreVersion(uint64_t version) {
  version_.store(version, std::memory_order_release);
}

std::shared_ptr<const CollectionSnapshot> CollectionStore::Snapshot() const {
  std::lock_guard<std::mutex> cache_lock(snapshot_mutex_);
  if (cached_snapshot_ != nullptr && cached_version_ == version()) {
    return cached_snapshot_;
  }

  // Rebuild under every shard lock, acquired in index order: mutations (which
  // take a single shard lock, or BulkLoad's one-at-a-time sequence) block for
  // the duration, so the snapshot is one corpus version across all shards.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    locks.emplace_back(shard->mutex);
  }
  const uint64_t version = version_.load(std::memory_order_relaxed);

  std::shared_ptr<CollectionSnapshot> snapshot(new CollectionSnapshot());
  snapshot->version_ = version;
  // Register every collection name first so each view gets a full set of
  // partition offsets, including shards where the collection is empty.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const auto& [name, catalog] : shard->catalogs) {
      (void)catalog;
      snapshot->views_[name];
    }
  }
  const size_t nshards = shards_.size();
  for (auto& [name, view] : snapshot->views_) {
    view.partition_offsets.reserve(nshards + 1);
  }
  snapshot->default_view_.partition_offsets.reserve(nshards + 1);
  for (size_t s = 0; s < nshards; ++s) {
    for (auto& [name, view] : snapshot->views_) {
      view.partition_offsets.push_back(view.documents.size());
    }
    snapshot->default_view_.partition_offsets.push_back(
        snapshot->default_view_.documents.size());
    for (const auto& [name, catalog] : shards_[s]->catalogs) {
      CollectionView& view = snapshot->views_[name];
      for (const auto& [uri, document] : catalog) {
        view.documents.push_back(document);
        snapshot->default_view_.documents.push_back(document);
      }
    }
  }
  for (auto& [name, view] : snapshot->views_) {
    view.partition_offsets.push_back(view.documents.size());
  }
  snapshot->default_view_.partition_offsets.push_back(
      snapshot->default_view_.documents.size());

  cached_snapshot_ = std::move(snapshot);
  cached_version_ = version;
  return cached_snapshot_;
}

std::vector<CollectionStore::ShardStats> CollectionStore::PerShardStats()
    const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.push_back(shard->stats);
  }
  return stats;
}

size_t CollectionStore::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->stats.documents;
  }
  return total;
}

std::vector<std::string> CollectionStore::CollectionNames() const {
  std::vector<std::string> names;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [name, catalog] : shard->catalogs) {
      (void)catalog;
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::string CollectionStore::StatsJson() const {
  std::vector<ShardStats> stats = PerShardStats();
  size_t documents = 0;
  for (const ShardStats& shard : stats) documents += shard.documents;
  std::vector<std::string> names = CollectionNames();
  std::ostringstream out;
  out << "{\"shards\": " << shards_.size() << ", \"documents\": " << documents
      << ", \"collections\": " << names.size() << ", \"names\": [";
  // Collection names are caller-chosen strings; JsonEscape keeps a quote or
  // backslash in a name from corrupting the scrape.
  for (size_t i = 0; i < names.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << JsonEscape(names[i]) << "\"";
  }
  out << "], \"version\": " << version() << ", \"per_shard\": [";
  for (size_t s = 0; s < stats.size(); ++s) {
    const ShardStats& shard = stats[s];
    out << (s > 0 ? ", " : "") << "{\"documents\": " << shard.documents
        << ", \"nodes\": " << shard.nodes << ", \"bytes\": " << shard.bytes
        << ", \"indexed_documents\": " << shard.indexed_documents << "}";
  }
  out << "]}";
  return out.str();
}

const CollectionView* CollectionSnapshot::FindCollection(
    const std::string& name) const {
  auto it = views_.find(name);
  return it != views_.end() ? &it->second : nullptr;
}

const CollectionView* CollectionSnapshot::DefaultCollection() const {
  return &default_view_;
}

const ShreddedTable* CollectionSnapshot::FindShreddedTable(
    const std::string& collection, const std::string& record,
    const ShredBuildContext& context) const {
  const CollectionView* view =
      collection.empty() ? DefaultCollection() : FindCollection(collection);
  if (view == nullptr || view->documents.empty()) return nullptr;
  return shred_catalog_.FindOrBuild(collection, record, *view, ShredOptions(),
                                    context);
}

std::vector<std::string> CollectionSnapshot::CollectionNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, view] : views_) {
    (void)view;
    names.push_back(name);
  }
  return names;
}

}  // namespace xqa::service

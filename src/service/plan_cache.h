#ifndef XQA_SERVICE_PLAN_CACHE_H_
#define XQA_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/engine.h"

namespace xqa::service {

/// A shared, immutable handle to a compiled query. The PreparedQuery behind
/// the handle is never mutated after insertion — callers pass per-call
/// ExecutionOptions to the const Execute* overloads — so one handle can be
/// executed by any number of threads concurrently.
using PlanHandle = std::shared_ptr<const PreparedQuery>;

/// Sharded LRU cache of compiled plans, keyed by (query text, compile
/// dialect = Engine::Options, ExecutionOptions fingerprint). Amortizes
/// parse/rewrite/bind across repeated requests for the same query — the
/// workload shape the paper's Section 6 experiments assume (the same
/// analytics queries run again and again over shared documents), safe to
/// reuse because grouping semantics are order-independent, so a cached plan
/// is indistinguishable from a fresh compile (asserted byte-for-byte by
/// tests/service_test.cc).
///
/// Sharding bounds contention: a key is owned by exactly one shard (by key
/// hash), each shard holds its own mutex, LRU list, and map, and the global
/// capacity is split evenly across shards. Compilation runs outside the
/// shard lock, so a slow compile never blocks hits on sibling keys; two
/// threads racing on the same missing key may both compile, and the loser
/// adopts the winner's entry (counted as one miss each, never a double
/// insert).
class PlanCache {
 public:
  struct Config {
    /// Total cached plans across all shards (per-shard cap = capacity /
    /// shards, at least 1). Oldest entry of the owning shard is evicted on
    /// overflow.
    size_t capacity = 256;
    int shards = 8;
  };

  /// Monotonic counters, aggregated over every shard. hits + misses equals
  /// the number of GetOrCompile calls that returned (failed compiles count
  /// as misses).
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;  ///< current resident plans
    /// GetOrCompile calls whose compile threw. A failed compile caches
    /// nothing — no tombstone entry, no eviction — so the next caller of the
    /// same key compiles again (and a transient fault cannot poison the
    /// cache). Counted in addition to the miss.
    uint64_t compile_failures = 0;
  };

  PlanCache() : PlanCache(Config{}) {}
  explicit PlanCache(Config config);

  /// Returns the cached plan for (query, engine.options(), exec), compiling
  /// via `engine` and inserting on miss. Throws XQueryError on static errors
  /// (failed compiles are never cached). `cache_hit`, when non-null, is set
  /// to whether the plan came from the cache.
  PlanHandle GetOrCompile(const Engine& engine, std::string_view query,
                          const ExecutionOptions& exec,
                          bool* cache_hit = nullptr);

  /// Lookup without compiling; null on miss. Counts toward hits/misses.
  PlanHandle Lookup(const Engine& engine, std::string_view query,
                    const ExecutionOptions& exec);

  /// Drops every cached plan (in-flight handles stay valid — shared
  /// ownership). Counters are preserved; drops are not counted as evictions.
  void Clear();

  Counters counters() const;

  /// The canonical cache key: a fingerprint of the compile dialect and the
  /// semantically relevant ExecutionOptions fields, followed by the query
  /// text verbatim. ExecutionOptions::cancellation is deliberately excluded
  /// — it is per-request runtime state, not plan configuration.
  static std::string MakeKey(std::string_view query,
                             const Engine::Options& compile,
                             const ExecutionOptions& exec);

 private:
  struct Entry {
    std::string key;
    PlanHandle plan;
  };
  /// One shard: an LRU list (front = most recently used) plus the key map
  /// pointing into it.
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> map;
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> compile_failures_{0};
};

}  // namespace xqa::service

#endif  // XQA_SERVICE_PLAN_CACHE_H_

#include "service/service_metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace xqa::service {

namespace {

/// Bucket upper bound in seconds: 2^(i+1) microseconds.
double BucketUpperSeconds(int bucket) {
  return std::ldexp(1e-6, bucket + 1);
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  double micros = seconds * 1e6;
  int bucket = 0;
  if (micros >= 1.0) {
    bucket = std::min(kBuckets - 1,
                      static_cast<int>(std::floor(std::log2(micros))));
  }
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_micros_.fetch_add(static_cast<int64_t>(micros),
                          std::memory_order_relaxed);
}

double LatencyHistogram::mean_seconds() const {
  int64_t n = count();
  return n > 0 ? total_seconds() / static_cast<double>(n) : 0.0;
}

double LatencyHistogram::PercentileSeconds(double p) const {
  int64_t n = count();
  if (n <= 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target observation, 1-based ceiling.
  int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p * static_cast<double>(n))));
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperSeconds(i);
  }
  return BucketUpperSeconds(kBuckets - 1);
}

std::string LatencyHistogram::ToJson() const {
  std::ostringstream out;
  out << "{\"count\": " << count()
      << ", \"mean_seconds\": " << mean_seconds()
      << ", \"p50_seconds\": " << PercentileSeconds(0.50)
      << ", \"p95_seconds\": " << PercentileSeconds(0.95)
      << ", \"p99_seconds\": " << PercentileSeconds(0.99)
      << ", \"buckets_upper_micros_pow2\": [";
  // Sparse rendering: [bucket_index, count] pairs for non-empty buckets;
  // bucket i spans [2^i, 2^(i+1)) microseconds.
  bool first = true;
  for (int i = 0; i < kBuckets; ++i) {
    int64_t n = buckets_[static_cast<size_t>(i)].load(
        std::memory_order_relaxed);
    if (n == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << "[" << i << ", " << n << "]";
  }
  out << "]}";
  return out.str();
}

void ServiceMetrics::RecordQueryStats(const QueryStats& stats) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  aggregate_stats_.MergeFrom(stats);
}

QueryStats ServiceMetrics::AggregatedQueryStats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return aggregate_stats_;
}

std::string ServiceMetrics::ToJson(int indent) const {
  std::string pad = indent > 0 ? std::string(static_cast<size_t>(indent), ' ')
                               : "";
  std::string nl = indent > 0 ? "\n" : "";
  std::ostringstream out;
  out << "{" << nl;
  out << pad << "\"submitted\": "
      << submitted.load(std::memory_order_relaxed) << "," << nl;
  out << pad << "\"rejected\": "
      << rejected.load(std::memory_order_relaxed) << "," << nl;
  out << pad << "\"admitted\": "
      << admitted.load(std::memory_order_relaxed) << "," << nl;
  out << pad << "\"completed\": "
      << completed.load(std::memory_order_relaxed) << "," << nl;
  out << pad << "\"failed\": " << failed.load(std::memory_order_relaxed)
      << "," << nl;
  out << pad << "\"timed_out\": "
      << timed_out.load(std::memory_order_relaxed) << "," << nl;
  out << pad << "\"cancelled\": "
      << cancelled.load(std::memory_order_relaxed) << "," << nl;
  out << pad << "\"documents_missing\": "
      << documents_missing.load(std::memory_order_relaxed) << "," << nl;
  out << pad << "\"shed_memory_pressure\": "
      << shed_memory_pressure.load(std::memory_order_relaxed) << "," << nl;
  out << pad << "\"budget_exceeded\": "
      << budget_exceeded.load(std::memory_order_relaxed) << "," << nl;
  out << pad << "\"latency\": " << latency.ToJson() << "," << nl;
  out << pad << "\"queue_latency\": " << queue_latency.ToJson() << "," << nl;
  out << pad << "\"query_stats\": " << AggregatedQueryStats().ToJson() << nl;
  out << "}";
  return out.str();
}

}  // namespace xqa::service

#ifndef XQA_SERVICE_QUERY_SERVICE_H_
#define XQA_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "api/engine.h"
#include "base/cancellation.h"
#include "base/file_io.h"
#include "base/thread_pool.h"
#include "service/collection_store.h"
#include "service/document_store.h"
#include "service/plan_cache.h"
#include "service/service_metrics.h"

namespace xqa::service {

/// Configuration of one QueryService instance (docs/SERVICE.md).
struct ServiceOptions {
  /// Scheduler worker threads. Requests execute on this private pool, never
  /// on ThreadPool::Shared — the shared pool stays dedicated to intra-query
  /// parallel sections, so a saturated service cannot starve the lanes of
  /// its own running queries.
  int worker_threads = 4;

  /// Requests executing at once; 0 means worker_threads. When smaller than
  /// worker_threads, surplus workers block on the concurrency gate.
  int max_concurrent_queries = 0;

  /// Admitted-but-not-finished requests beyond which Submit rejects
  /// immediately with XQSV0003 (bounded queue — a slow service sheds load
  /// instead of buffering it).
  size_t max_pending_requests = 64;

  /// Deadline applied to requests that do not set their own; 0 disables.
  /// The deadline clock starts at Submit and covers queue wait plus
  /// execution.
  double default_deadline_seconds = 0.0;

  /// Plan cache on/off (off compiles every request — the bench_service
  /// ablation) and its sizing.
  bool enable_plan_cache = true;
  PlanCache::Config plan_cache;

  /// Compile dialect for every query of this service (part of the plan
  /// cache key).
  Engine::Options engine;

  /// Execution options for requests that do not carry their own.
  ExecutionOptions default_exec;

  /// Shard count of the service's CollectionStore — also the partition
  /// fan-out of every partitioned collection() scan (docs/SERVICE.md).
  int collection_shards = 16;

  // --- Durable storage (docs/STORAGE.md) -----------------------------------

  /// When non-empty, the service opens a DurableStore at this directory:
  /// construction recovers the corpus that was there (newest valid manifest
  /// + journal replay), and every CollectionStore mutation thereafter is
  /// journaled ahead of applying. Empty (the default) keeps the corpus
  /// purely in-memory, exactly as before.
  std::string data_dir;

  /// fsync policy of the durable store. kAlways is the crash-durability
  /// contract; kNever is for tests and bulk seeding, where only clean-exit
  /// recovery matters.
  FsyncPolicy storage_fsync = FsyncPolicy::kAlways;

  // --- Memory governance (docs/ROBUSTNESS.md) ------------------------------
  // Accounting is active when either budget is set; with both at 0 the
  // service runs untracked (every charge site reduces to a pointer test).

  /// Memory budget per request, in bytes; a request whose materializations
  /// exceed it fails with XQSV0004. 0 = no per-request limit (the request
  /// still charges the root tracker when total_memory_bytes is set).
  int64_t per_query_memory_bytes = 0;

  /// Budget across all in-flight requests (the root tracker's limit). The
  /// request that pushes the total past it gets XQSV0004. 0 = unlimited.
  int64_t total_memory_bytes = 0;

  /// Pressure gate: when the root tracker's in-use bytes reach this fraction
  /// of total_memory_bytes, Submit sheds new requests with a retryable
  /// XQSV0003 — reject-new before kill-running. <= 0 disables the gate;
  /// ignored when total_memory_bytes is 0.
  double memory_pressure_shed_fraction = 0.9;
};

/// One query request. Copyable; the service keeps its own copy until the
/// request finishes.
struct Request {
  std::string query;

  /// Name of the DocumentStore entry to use as the context item; empty runs
  /// with no context item. Resolved once, at execution start — the request
  /// then sees that document version for its whole execution regardless of
  /// concurrent Put calls.
  std::string document;

  /// Expose a point-in-time DocumentStore snapshot to fn:doc/fn:collection.
  bool provide_registry = false;

  /// Expose a point-in-time CollectionStore snapshot to fn:collection and
  /// the partitioned FLWOR scan. The snapshot is resolved once, at execution
  /// start, so the request sees one consistent corpus version regardless of
  /// concurrent ingest; the snapshot's refcounts keep every document it
  /// lists alive until the request finishes.
  bool provide_collections = false;

  /// Per-request deadline: < 0 uses ServiceOptions::default_deadline_seconds,
  /// 0 disables, > 0 overrides.
  double deadline_seconds = -1.0;

  /// Collect QueryStats for this request (ExecuteProfiled path). The stats
  /// land in Response::stats and in ServiceMetrics' aggregate.
  bool collect_stats = true;

  /// Serialization indent for Response::result.
  int indent = 0;

  /// Per-request execution options override (parallelism, index ablation).
  std::optional<ExecutionOptions> exec;
};

/// Outcome of one request. On any error `result` is empty — a timed-out or
/// failed request never carries a partial result.
struct Response {
  Status status;            ///< OK, or the error (XQSV* for service errors)
  std::string result;       ///< serialized result sequence (empty on error)
  QueryStats stats;         ///< populated when Request::collect_stats
  bool cache_hit = false;   ///< plan came from the cache
  bool executed = false;    ///< evaluation ran to completion

  /// Transient-failure classification (docs/SERVICE.md failure modes): true
  /// for overload and timing errors a client should back off and resend —
  /// deadline in queue or execution (XQSV0001), queue-full or memory
  /// pressure shed (XQSV0003). False for errors a retry would only repeat:
  /// static/dynamic query errors, per-query budget (XQSV0004), depth
  /// (XQSV0005), missing document (XQSV0006), client cancel (XQSV0002), and
  /// shutdown rejection.
  bool retryable = false;
  double queue_seconds = 0.0;  ///< admission → execution start
  double exec_seconds = 0.0;   ///< execution start → finish
  double total_seconds = 0.0;  ///< admission → finish
};

/// The serving layer over the engine: plan cache + document store +
/// admission control + cooperative cancellation + metrics, one instance per
/// served corpus (docs/SERVICE.md).
///
/// Threading model: Submit is safe from any thread and never blocks on query
/// execution (admission is a counter check; rejected requests resolve
/// immediately). Execution happens on the service's private pool; results
/// are delivered through the returned future. Shutdown (and the destructor)
/// stops admitting, then drains every admitted request.
class QueryService {
 public:
  explicit QueryService(ServiceOptions options = {});
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits `request` and schedules it. On admission failure (queue full or
  /// shutting down) the future resolves immediately with XQSV0003.
  /// `token`, when provided, lets the caller cancel the request from another
  /// thread (Response resolves with XQSV0002); the service arms the
  /// request's deadline on it.
  std::future<Response> Submit(
      Request request, std::shared_ptr<CancellationToken> token = nullptr);

  /// Synchronous convenience: Submit + wait.
  Response Execute(Request request,
                   std::shared_ptr<CancellationToken> token = nullptr);

  DocumentStore& documents() { return store_; }
  const DocumentStore& documents() const { return store_; }
  CollectionStore& collections() { return collections_; }
  const CollectionStore& collections() const { return collections_; }

  /// The durable store, or null when ServiceOptions::data_dir is empty.
  storage::DurableStore* storage() { return storage_.get(); }
  const storage::DurableStore* storage() const { return storage_.get(); }

  /// What construction-time recovery found (all zeros without a data_dir).
  const storage::RecoveryResult& storage_recovery() const {
    return storage_recovery_;
  }

  /// Checkpoints the corpus (CollectionStore::Checkpoint). Returns false
  /// when the service has no durable storage; throws kXQSV0007 on failure
  /// (previous generation intact).
  bool CheckpointStorage();

  /// Re-verifies every checksum of the current storage generation. Returns
  /// an empty (clean) report without a data_dir.
  storage::ScrubReport ScrubStorage();
  ServiceMetrics& metrics() { return metrics_; }
  const ServiceMetrics& metrics() const { return metrics_; }
  PlanCache::Counters plan_cache_counters() const {
    return cache_.counters();
  }
  const ServiceOptions& options() const { return options_; }

  /// Root of the memory-tracker hierarchy (used()/peak()/budget_failures()
  /// gauges; used() == 0 whenever no request is in flight).
  const MemoryTracker& root_memory() const { return root_memory_; }

  /// Everything observable about the service as one JSON object:
  /// ServiceMetrics, plan-cache counters, and the document catalog
  /// (docs/OBSERVABILITY.md).
  std::string MetricsJson(int indent = 0) const;

  /// Stops admitting new requests (XQSV0003 from then on) and blocks until
  /// every admitted request has finished. Idempotent.
  void Shutdown();

 private:
  Response RunRequest(const Request& request, const CancellationToken& token,
                      std::chrono::steady_clock::time_point submitted);

  ServiceOptions options_;
  Engine engine_;
  DocumentStore store_;
  CollectionStore collections_;

  /// Present only with a data_dir. Declared after collections_ (recovery
  /// feeds it) and destroyed before it would matter — the journal holds no
  /// pointers into the store.
  std::unique_ptr<storage::DurableStore> storage_;
  storage::RecoveryResult storage_recovery_;

  PlanCache cache_;
  ServiceMetrics metrics_;

  /// Root of the service's memory-tracker hierarchy: every request charges
  /// through its own child tracker, so this holds the all-requests total
  /// (and enforces total_memory_bytes). A request child returns its whole
  /// reservation when it is destroyed — after any unwind — so the root
  /// balance returning to zero when the service is idle is the leak
  /// invariant the chaos tests assert.
  MemoryTracker root_memory_;

  int max_concurrent_;
  std::atomic<size_t> pending_{0};
  std::atomic<bool> shutdown_{false};

  // Concurrency gate: workers block here when more requests are scheduled
  // than max_concurrent_queries allows.
  std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  int running_ = 0;

  /// Private scheduler pool; destroyed (draining its queue) by Shutdown.
  std::unique_ptr<ThreadPool> pool_;
  std::mutex shutdown_mutex_;
};

}  // namespace xqa::service

#endif  // XQA_SERVICE_QUERY_SERVICE_H_

#include "service/document_store.h"

#include <utility>

#include "base/error.h"

namespace xqa::service {

bool DocumentStore::Put(const std::string& name, DocumentPtr document) {
  if (document == nullptr) {
    ThrowError(ErrorCode::kXQSV0006,
               "DocumentStore::Put: null document for '" + name + "'");
  }
  // Seal outside the lock: sealing walks the whole tree, and the document is
  // not yet visible to readers.
  if (!document->sealed()) document->SealOrder();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = documents_.try_emplace(name);
  it->second = std::move(document);
  // Release, paired with the acquire load in version() (see header).
  version_.fetch_add(1, std::memory_order_release);
  return !inserted;
}

DocumentPtr DocumentStore::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = documents_.find(name);
  if (it == documents_.end()) return nullptr;
  return it->second;  // refcount increment pins this version for the caller
}

bool DocumentStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool erased = documents_.erase(name) > 0;
  // Release, paired with the acquire load in version() (see header).
  if (erased) version_.fetch_add(1, std::memory_order_release);
  return erased;
}

DocumentRegistry DocumentStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return documents_;
}

std::vector<std::string> DocumentStore::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(documents_.size());
  for (const auto& [name, doc] : documents_) names.push_back(name);
  return names;
}

size_t DocumentStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return documents_.size();
}

}  // namespace xqa::service

#ifndef XQA_SERVICE_COLLECTION_STORE_H_
#define XQA_SERVICE_COLLECTION_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eval/dynamic_context.h"
#include "shred/shred_catalog.h"
#include "storage/durable_store.h"
#include "xml/node.h"

namespace xqa::service {

class CollectionSnapshot;

/// Sharded catalog of named collections of sealed documents — the corpus
/// counterpart of DocumentStore (docs/SERVICE.md). Documents are
/// hash-sharded by URI (FNV-1a, so the layout is identical on every build
/// and host); each shard has its own mutex, its own (collection → URI →
/// document) catalog, and its own aggregate gauges, so concurrent ingest
/// into different shards never contends and a metrics scrape reads per-shard
/// stats without a global lock.
///
/// Reads go through Snapshot(): an immutable, per-version-cached
/// CollectionSnapshot built under every shard lock at once, so one request
/// sees one consistent corpus version — never a mix of shard states — and
/// the snapshot's views feed fn:collection and the partitioned FLWOR scan
/// directly (it implements CollectionProvider). Snapshots pin their
/// documents through the intrusive refcount: a corpus mutated mid-request
/// frees replaced trees only after the last snapshot holding them drops.
///
/// Durability (docs/STORAGE.md): after AttachDurability, every mutation is
/// written ahead to the DurableStore's ingest journal and applied in memory
/// only if the append succeeds, and all mutations serialize on a durable
/// mutex so journal order always equals apply order — the property recovery
/// replay depends on. The store doubles as the storage layer's CorpusSink:
/// recovery rebuilds the corpus through ApplyPut/ApplyRemove (no journaling,
/// no version bumps) and installs the recovered version via RestoreVersion.
class CollectionStore : public storage::CorpusSink {
 public:
  struct Options {
    /// Shard count — also the partition count of every collection view, and
    /// therefore the fan-out of the partitioned scan. Fixed at construction:
    /// canonical document order is partition-major, so changing the shard
    /// count is a (deliberate) corpus reorganization. Clamped to >= 1.
    int shards = 16;
  };

  CollectionStore() : CollectionStore(Options()) {}
  explicit CollectionStore(Options options);
  CollectionStore(const CollectionStore&) = delete;
  CollectionStore& operator=(const CollectionStore&) = delete;

  /// Inserts or replaces `uri` within `collection`. Seals the document first
  /// if the caller has not; null is rejected (XQSV0006). Returns true when
  /// an existing document was replaced. Locks only the URI's shard.
  bool Put(const std::string& collection, const std::string& uri,
           DocumentPtr document);

  /// The document at (collection, uri); null when absent.
  DocumentPtr Get(const std::string& collection, const std::string& uri) const;

  /// Removes (collection, uri); in-flight snapshots keep their version.
  /// Returns whether the document was present. The version bumps only on a
  /// successful remove.
  bool Remove(const std::string& collection, const std::string& uri);

  /// One document of a bulk ingest batch: the URI plus its unparsed XML.
  struct BulkDocument {
    std::string uri;
    std::string xml;
  };

  /// Bulk parallel ingest: parses and seals every document of `batch` with
  /// up to `num_threads` lanes of the shared pool (0 = one per hardware
  /// thread, 1 = serial), then inserts shard by shard under each shard's
  /// lock, as one version bump. On a parse failure the error of the
  /// lowest-index failing document is thrown (the pool's
  /// lowest-index-error-wins discipline) and nothing is inserted. Returns
  /// the number of documents ingested.
  size_t BulkLoad(const std::string& collection,
                  const std::vector<BulkDocument>& batch, int num_threads = 0);

  /// The current corpus as an immutable CollectionProvider. Cached per
  /// version: repeated calls between mutations return the same snapshot
  /// object, so a steady-state service pays one rebuild per corpus change,
  /// not per request.
  std::shared_ptr<const CollectionSnapshot> Snapshot() const;

  /// Aggregate gauges of one shard, maintained incrementally under the
  /// shard's lock (docs/OBSERVABILITY.md).
  struct ShardStats {
    size_t documents = 0;          ///< documents resident in the shard
    int64_t nodes = 0;             ///< XDM nodes across those documents
    int64_t bytes = 0;             ///< estimated resident tree bytes
    size_t indexed_documents = 0;  ///< documents with an element-name index
  };
  std::vector<ShardStats> PerShardStats() const;

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Documents across all shards and collections.
  size_t size() const;

  /// Collection names across all shards, sorted.
  std::vector<std::string> CollectionNames() const;

  /// Bumped by every successful mutation (Put, Remove, BulkLoad batch).
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// The "collections" object of the service metrics scrape: shard count,
  /// document/collection totals, version, and the per-shard gauge array
  /// (docs/OBSERVABILITY.md).
  std::string StatsJson() const;

  /// Shallow byte estimate of one sealed document's resident tree (arena
  /// nodes + name pool); the unit of the `bytes` gauge.
  static int64_t EstimateDocumentBytes(const Document& document);

  // --- Durability (docs/STORAGE.md) ---------------------------------------

  /// Attaches write-ahead journaling: from now on Put/Remove/BulkLoad append
  /// to `storage`'s journal before applying, and fail (kXQSV0007, store
  /// unchanged) when the append does. Call once, after storage->Open(this)
  /// has replayed the corpus and before concurrent use. Null detaches.
  void AttachDurability(storage::DurableStore* storage);

  /// Writes the current corpus as a checkpoint generation (segments + fresh
  /// journal + manifest commit). Mutations wait while the image is captured.
  /// No-op without attached durability; throws kXQSV0007 on failure, leaving
  /// the previous generation intact.
  void Checkpoint();

  // CorpusSink — recovery's rebuild path (storage/durable_store.h). ApplyPut
  // and ApplyRemove mutate without journaling or version bumps;
  // RestoreVersion installs the recovered corpus version.
  void ApplyPut(const std::string& collection, const std::string& uri,
                DocumentPtr document) override;
  void ApplyRemove(const std::string& collection,
                   const std::string& uri) override;
  void RestoreVersion(uint64_t version) override;

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// collection name → URI → document. Both maps ordered, so a snapshot
    /// built from shard iteration is deterministic for a given corpus.
    std::map<std::string, std::map<std::string, DocumentPtr>> catalogs;
    ShardStats stats;
  };

  size_t ShardOf(const std::string& uri) const;
  void AddDocumentStats(Shard* shard, const Document& document);
  void RemoveDocumentStats(Shard* shard, const Document& document);
  bool InsertSealed(const std::string& collection, const std::string& uri,
                    DocumentPtr document, bool bump_version);
  bool EraseDocument(const std::string& collection, const std::string& uri,
                     bool bump_version);

  /// Shards never move after construction (each holds a mutex).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> version_{0};

  /// Null until AttachDurability; guarded writes happen before use begins.
  storage::DurableStore* durable_ = nullptr;
  /// Serializes mutations while durability is attached so journal append
  /// order equals in-memory apply order. Lock order: durable_mutex_ before
  /// any shard mutex (Checkpoint takes it, then the shard locks in index
  /// order — consistent with single-shard mutations, so deadlock-free).
  std::mutex durable_mutex_;

  // Version-keyed snapshot cache. Rebuild takes every shard lock in index
  // order; single-shard mutations take only their own, so lock order is
  // globally consistent and deadlock-free.
  mutable std::mutex snapshot_mutex_;
  mutable std::shared_ptr<const CollectionSnapshot> cached_snapshot_;
  mutable uint64_t cached_version_ = ~0ULL;
};

/// An immutable, internally consistent view of one corpus version. Built by
/// CollectionStore::Snapshot under all shard locks; thereafter lock-free and
/// safe to share across any number of requests and lanes. Each collection's
/// view lists its documents partition-major (shard 0's URI-sorted documents,
/// then shard 1's, ...) with one partition per shard — the canonical order
/// every consumer iterates (see CollectionView). The default collection is
/// the union of all collections, (collection, URI)-sorted within each shard.
class CollectionSnapshot : public CollectionProvider {
 public:
  const CollectionView* FindCollection(
      const std::string& name) const override;
  const CollectionView* DefaultCollection() const override;

  /// Shredded column tables, built lazily per (collection, record) and
  /// cached for this snapshot's lifetime — i.e. per corpus version, the same
  /// granularity as the snapshot itself (docs/SHREDDING.md). "" names the
  /// default collection.
  const ShreddedTable* FindShreddedTable(
      const std::string& collection, const std::string& record,
      const ShredBuildContext& context) const override;

  /// Aggregate shredding gauges across this snapshot's cached tables.
  ShredCatalog::Stats shred_stats() const { return shred_catalog_.GetStats(); }

  /// The "shred" object of the service metrics scrape
  /// (docs/OBSERVABILITY.md).
  std::string ShredStatsJson() const { return shred_catalog_.StatsJson(); }

  /// Documents across all collections (the default view's size).
  size_t total_documents() const { return default_view_.documents.size(); }

  /// The store version this snapshot materializes.
  uint64_t version() const { return version_; }

  std::vector<std::string> CollectionNames() const;

 private:
  friend class CollectionStore;
  CollectionSnapshot() = default;

  std::map<std::string, CollectionView> views_;
  CollectionView default_view_;
  uint64_t version_ = 0;

  /// Lazily populated table cache; mutable because building a table is a
  /// logically-const read amplification of the immutable corpus.
  mutable ShredCatalog shred_catalog_;
};

}  // namespace xqa::service

#endif  // XQA_SERVICE_COLLECTION_STORE_H_

#ifndef XQA_FUNCTIONS_HELPERS_H_
#define XQA_FUNCTIONS_HELPERS_H_

#include <optional>
#include <string>

#include "base/error.h"
#include "functions/function_registry.h"
#include "xdm/sequence_ops.h"

namespace xqa {
namespace fn_internal {

/// Atomizes an argument and enforces empty-or-singleton cardinality.
inline std::optional<AtomicValue> OptionalAtomicArg(const Sequence& arg,
                                                    const char* fn_name) {
  Sequence atomized = Atomize(arg);
  if (atomized.empty()) return std::nullopt;
  if (atomized.size() > 1) {
    ThrowError(ErrorCode::kXPTY0004,
               std::string(fn_name) + " expects at most one item");
  }
  return atomized[0].atomic();
}

/// Atomized singleton argument, required.
inline AtomicValue RequiredAtomicArg(const Sequence& arg, const char* fn_name) {
  std::optional<AtomicValue> value = OptionalAtomicArg(arg, fn_name);
  if (!value.has_value()) {
    ThrowError(ErrorCode::kFORG0006,
               std::string(fn_name) + " expects exactly one item");
  }
  return *value;
}

/// String view of an optional string-typed argument; empty sequence -> "".
inline std::string StringArg(const Sequence& arg, const char* fn_name) {
  std::optional<AtomicValue> value = OptionalAtomicArg(arg, fn_name);
  if (!value.has_value()) return "";
  return value->ToLexical();
}

/// The singleton node argument of node functions (fn:name etc.).
inline const Node* OptionalNodeArg(const Sequence& arg, const char* fn_name) {
  if (arg.empty()) return nullptr;
  if (arg.size() > 1 || !arg[0].IsNode()) {
    ThrowError(ErrorCode::kXPTY0004,
               std::string(fn_name) + " expects at most one node");
  }
  return arg[0].node();
}

}  // namespace fn_internal
}  // namespace xqa

#endif  // XQA_FUNCTIONS_HELPERS_H_

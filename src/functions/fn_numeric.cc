#include <cmath>
#include <limits>

#include "eval/dynamic_context.h"
#include "functions/helpers.h"

namespace xqa {
namespace fn_internal {

namespace {

Sequence FnNumber(EvalContext& context, std::vector<Sequence>& args) {
  AtomicValue value;
  if (args.empty()) {
    if (!context.dynamic.focus.valid) {
      ThrowError(ErrorCode::kXPDY0002, "fn:number(): context item is absent");
    }
    value = AtomizeItem(context.dynamic.focus.item);
  } else {
    std::optional<AtomicValue> arg = OptionalAtomicArg(args[0], "fn:number");
    if (!arg.has_value()) {
      return {MakeDouble(std::numeric_limits<double>::quiet_NaN())};
    }
    value = *arg;
  }
  try {
    return {MakeDouble(value.CastTo(AtomicType::kDouble).AsDouble())};
  } catch (const XQueryError&) {
    return {MakeDouble(std::numeric_limits<double>::quiet_NaN())};
  }
}

/// Applies a numeric unary op preserving the numeric type family.
template <typename IntOp, typename DecimalOp, typename DoubleOp>
Sequence NumericUnary(std::vector<Sequence>& args, const char* name,
                      IntOp int_op, DecimalOp decimal_op, DoubleOp double_op) {
  std::optional<AtomicValue> arg = OptionalAtomicArg(args[0], name);
  if (!arg.has_value()) return {};
  AtomicValue v = *arg;
  if (v.type() == AtomicType::kUntypedAtomic) {
    v = AtomicValue::Double(v.ToDoubleValue());
  }
  switch (v.type()) {
    case AtomicType::kInteger:
      return {MakeInteger(int_op(v.AsInteger()))};
    case AtomicType::kDecimal:
      return {MakeDecimalItem(decimal_op(v.AsDecimal()))};
    case AtomicType::kDouble:
      return {MakeDouble(double_op(v.AsDouble()))};
    default:
      ThrowError(ErrorCode::kXPTY0004,
                 std::string(name) + " requires a numeric argument");
  }
}

Sequence FnAbs(EvalContext&, std::vector<Sequence>& args) {
  return NumericUnary(
      args, "fn:abs", [](int64_t x) { return x < 0 ? -x : x; },
      [](const Decimal& d) { return d.Abs(); },
      [](double d) { return std::fabs(d); });
}

Sequence FnFloor(EvalContext&, std::vector<Sequence>& args) {
  return NumericUnary(
      args, "fn:floor", [](int64_t x) { return x; },
      [](const Decimal& d) { return d.Floor(); },
      [](double d) { return std::floor(d); });
}

Sequence FnCeiling(EvalContext&, std::vector<Sequence>& args) {
  return NumericUnary(
      args, "fn:ceiling", [](int64_t x) { return x; },
      [](const Decimal& d) { return d.Ceiling(); },
      [](double d) { return std::ceil(d); });
}

Sequence FnRound(EvalContext&, std::vector<Sequence>& args) {
  return NumericUnary(
      args, "fn:round", [](int64_t x) { return x; },
      [](const Decimal& d) { return d.Round(); },
      [](double d) { return std::floor(d + 0.5); });
}

Sequence FnRoundHalfToEven(EvalContext&, std::vector<Sequence>& args) {
  int64_t precision = 0;
  if (args.size() > 1) {
    precision = RequiredAtomicArg(args[1], "fn:round-half-to-even")
                    .CastTo(AtomicType::kInteger)
                    .AsInteger();
  }
  std::optional<AtomicValue> arg =
      OptionalAtomicArg(args[0], "fn:round-half-to-even");
  if (!arg.has_value()) return {};
  AtomicValue v = *arg;
  if (v.type() == AtomicType::kUntypedAtomic) {
    v = AtomicValue::Double(v.ToDoubleValue());
  }
  switch (v.type()) {
    case AtomicType::kInteger:
      return {Item(v)};
    case AtomicType::kDecimal:
      return {MakeDecimalItem(
          v.AsDecimal().RoundHalfToEven(static_cast<int>(precision)))};
    case AtomicType::kDouble: {
      double scale = std::pow(10.0, static_cast<double>(precision));
      double scaled = v.AsDouble() * scale;
      double rounded = std::nearbyint(scaled);  // default mode: to-even
      return {MakeDouble(rounded / scale)};
    }
    default:
      ThrowError(ErrorCode::kXPTY0004,
                 "fn:round-half-to-even requires a numeric argument");
  }
}

// xs:TYPE constructor functions (cast subset).
template <AtomicType Target>
Sequence CastConstructor(EvalContext&, std::vector<Sequence>& args) {
  std::optional<AtomicValue> arg = OptionalAtomicArg(args[0], "constructor");
  if (!arg.has_value()) return {};
  return {Item(arg->CastTo(Target))};
}

}  // namespace

void RegisterNumeric(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"number", 0, 1, FnNumber});
  registry->push_back({"abs", 1, 1, FnAbs});
  registry->push_back({"floor", 1, 1, FnFloor});
  registry->push_back({"ceiling", 1, 1, FnCeiling});
  registry->push_back({"round", 1, 1, FnRound});
  registry->push_back({"round-half-to-even", 1, 2, FnRoundHalfToEven});
  registry->push_back({"xs:integer", 1, 1, CastConstructor<AtomicType::kInteger>});
  registry->push_back({"xs:decimal", 1, 1, CastConstructor<AtomicType::kDecimal>});
  registry->push_back({"xs:double", 1, 1, CastConstructor<AtomicType::kDouble>});
  registry->push_back({"xs:string", 1, 1, CastConstructor<AtomicType::kString>});
  registry->push_back({"xs:boolean", 1, 1, CastConstructor<AtomicType::kBoolean>});
  registry->push_back({"xs:date", 1, 1, CastConstructor<AtomicType::kDate>});
  registry->push_back({"xs:dateTime", 1, 1, CastConstructor<AtomicType::kDateTime>});
  registry->push_back({"xs:time", 1, 1, CastConstructor<AtomicType::kTime>});
  registry->push_back(
      {"xs:untypedAtomic", 1, 1, CastConstructor<AtomicType::kUntypedAtomic>});
}

}  // namespace fn_internal
}  // namespace xqa

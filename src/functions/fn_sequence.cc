#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "eval/dynamic_context.h"
#include "functions/helpers.h"
#include "xdm/deep_equal.h"

namespace xqa {
namespace fn_internal {

namespace {

Sequence FnExists(EvalContext&, std::vector<Sequence>& args) {
  return {MakeBoolean(!args[0].empty())};
}

Sequence FnEmpty(EvalContext&, std::vector<Sequence>& args) {
  return {MakeBoolean(args[0].empty())};
}

Sequence FnDistinctValues(EvalContext&, std::vector<Sequence>& args) {
  Sequence items = Atomize(args[0]);
  Sequence out;
  // Hash + verify, consistent with the `eq` equality used by deep-equal for
  // atomic values (NaN equals NaN, untypedAtomic compares as string).
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  for (const Item& item : items) {
    size_t hash = DeepHashItem(item);
    std::vector<size_t>& bucket = buckets[hash];
    bool duplicate = false;
    for (size_t index : bucket) {
      if (DeepEqualItems(out[index], item)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bucket.push_back(out.size());
      out.push_back(item);
    }
  }
  return out;
}

Sequence FnReverse(EvalContext&, std::vector<Sequence>& args) {
  Sequence out = args[0];
  std::reverse(out.begin(), out.end());
  return out;
}

Sequence FnSubsequence(EvalContext&, std::vector<Sequence>& args) {
  double start = RequiredAtomicArg(args[1], "fn:subsequence").ToDoubleValue();
  double length = args.size() > 2
      ? RequiredAtomicArg(args[2], "fn:subsequence").ToDoubleValue()
      : std::numeric_limits<double>::infinity();
  Sequence out;
  double position = 0;
  for (const Item& item : args[0]) {
    position += 1;
    if (position >= std::round(start) &&
        position < std::round(start) + std::round(length)) {
      out.push_back(item);
    }
  }
  return out;
}

Sequence FnInsertBefore(EvalContext&, std::vector<Sequence>& args) {
  int64_t position =
      RequiredAtomicArg(args[1], "fn:insert-before")
          .CastTo(AtomicType::kInteger)
          .AsInteger();
  if (position < 1) position = 1;
  Sequence out;
  size_t insert_at = std::min<size_t>(static_cast<size_t>(position - 1),
                                      args[0].size());
  out.insert(out.end(), args[0].begin(), args[0].begin() + insert_at);
  out.insert(out.end(), args[2].begin(), args[2].end());
  out.insert(out.end(), args[0].begin() + insert_at, args[0].end());
  return out;
}

Sequence FnRemove(EvalContext&, std::vector<Sequence>& args) {
  int64_t position = RequiredAtomicArg(args[1], "fn:remove")
                         .CastTo(AtomicType::kInteger)
                         .AsInteger();
  Sequence out;
  for (size_t i = 0; i < args[0].size(); ++i) {
    if (static_cast<int64_t>(i + 1) != position) out.push_back(args[0][i]);
  }
  return out;
}

Sequence FnIndexOf(EvalContext&, std::vector<Sequence>& args) {
  AtomicValue target = RequiredAtomicArg(args[1], "fn:index-of");
  Sequence items = Atomize(args[0]);
  Sequence out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (DeepEqualItems(items[i], Item(target))) {
      out.push_back(MakeInteger(static_cast<int64_t>(i + 1)));
    }
  }
  return out;
}

Sequence FnZeroOrOne(EvalContext&, std::vector<Sequence>& args) {
  if (args[0].size() > 1) {
    ThrowError(ErrorCode::kFORG0003,
               "fn:zero-or-one called with more than one item");
  }
  return args[0];
}

Sequence FnOneOrMore(EvalContext&, std::vector<Sequence>& args) {
  if (args[0].empty()) {
    ThrowError(ErrorCode::kFORG0004, "fn:one-or-more called with empty sequence");
  }
  return args[0];
}

Sequence FnExactlyOne(EvalContext&, std::vector<Sequence>& args) {
  if (args[0].size() != 1) {
    ThrowError(ErrorCode::kFORG0005,
               "fn:exactly-one called with " + std::to_string(args[0].size()) +
                   " items");
  }
  return args[0];
}

Sequence FnDeepEqual(EvalContext& context, std::vector<Sequence>& args) {
  // Pass the execution's cancellation token so comparing two huge subtrees
  // still honors a deadline or cancel.
  return {MakeBoolean(DeepEqualSequences(args[0], args[1],
                                         context.dynamic.exec.cancellation))};
}

Sequence FnUnion(EvalContext&, std::vector<Sequence>& args) {
  Sequence out = args[0];
  Concat(&out, args[1]);
  SortDocumentOrderAndDedup(&out);
  return out;
}

Sequence FnData(EvalContext&, std::vector<Sequence>& args) {
  return Atomize(args[0]);
}

Sequence FnUnordered(EvalContext&, std::vector<Sequence>& args) {
  return args[0];
}

Sequence FnHead(EvalContext&, std::vector<Sequence>& args) {
  if (args[0].empty()) return {};
  return {args[0][0]};
}

Sequence FnTail(EvalContext&, std::vector<Sequence>& args) {
  if (args[0].empty()) return {};
  return Sequence(args[0].begin() + 1, args[0].end());
}

}  // namespace

void RegisterSequence(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"exists", 1, 1, FnExists});
  registry->push_back({"empty", 1, 1, FnEmpty});
  registry->push_back({"distinct-values", 1, 1, FnDistinctValues});
  registry->push_back({"reverse", 1, 1, FnReverse});
  registry->push_back({"subsequence", 2, 3, FnSubsequence});
  registry->push_back({"insert-before", 3, 3, FnInsertBefore});
  registry->push_back({"remove", 2, 2, FnRemove});
  registry->push_back({"index-of", 2, 2, FnIndexOf});
  registry->push_back({"zero-or-one", 1, 1, FnZeroOrOne});
  registry->push_back({"one-or-more", 1, 1, FnOneOrMore});
  registry->push_back({"exactly-one", 1, 1, FnExactlyOne});
  registry->push_back({"deep-equal", 2, 2, FnDeepEqual});
  registry->push_back({"xqa:union", 2, 2, FnUnion});
  registry->push_back({"data", 1, 1, FnData});
  registry->push_back({"unordered", 1, 1, FnUnordered});
  registry->push_back({"head", 1, 1, FnHead});
  registry->push_back({"tail", 1, 1, FnTail});
}

}  // namespace fn_internal
}  // namespace xqa

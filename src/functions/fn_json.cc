#include "functions/helpers.h"
#include "xdm/json.h"

namespace xqa {
namespace fn_internal {

namespace {

// JSON interop (docs/SHREDDING.md): xqa:parse-json ingests a feed payload as
// a canonical element tree the shredder can infer a schema from;
// xqa:xml-to-json is the inverse-ish projection for emitting analytics
// results to JSON consumers.

Sequence FnParseJson(EvalContext& context, std::vector<Sequence>& args) {
  (void)context;
  std::optional<AtomicValue> text = OptionalAtomicArg(args[0], "xqa:parse-json");
  if (!text.has_value()) return {};
  DocumentPtr document = ParseJsonDocument(text->ToLexical());
  Node* root = document->root();
  return {Item(root, document)};
}

Sequence FnXmlToJson(EvalContext& context, std::vector<Sequence>& args) {
  (void)context;
  return {MakeString(SequenceToJson(args[0]))};
}

}  // namespace

void RegisterJson(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"xqa:parse-json", 1, 1, FnParseJson});
  registry->push_back({"xqa:xml-to-json", 1, 1, FnXmlToJson});
}

}  // namespace fn_internal
}  // namespace xqa

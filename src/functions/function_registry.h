#ifndef XQA_FUNCTIONS_FUNCTION_REGISTRY_H_
#define XQA_FUNCTIONS_FUNCTION_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "xdm/item.h"

namespace xqa {

class DynamicContext;
class Evaluator;

/// Context handed to built-in functions: the dynamic context (focus, frames)
/// plus the evaluator, so built-ins that need to call back into query
/// evaluation (none currently) or construct nodes can do so.
struct EvalContext {
  DynamicContext& dynamic;
  Evaluator& evaluator;
};

/// A built-in function implementation. Arguments are fully evaluated
/// sequences; the result is a sequence.
using BuiltinFn = Sequence (*)(EvalContext&, std::vector<Sequence>&);

struct BuiltinFunction {
  std::string_view name;  ///< local name ("avg") or prefixed ("xqa:union")
  int min_arity;
  int max_arity;  ///< -1 = unbounded (fn:concat)
  BuiltinFn fn;
};

/// All registered built-ins. Index into this vector is the builtin id the
/// binder stores on call sites.
const std::vector<BuiltinFunction>& BuiltinFunctions();

/// Resolves a lexical function name + arity to a builtin id, or -1. The
/// "fn:" prefix is optional ("fn:avg" == "avg").
int FindBuiltin(std::string_view name, size_t arity);

}  // namespace xqa

#endif  // XQA_FUNCTIONS_FUNCTION_REGISTRY_H_

#include "eval/dynamic_context.h"
#include "functions/helpers.h"

namespace xqa {
namespace fn_internal {

namespace {

const Node* ContextNode(EvalContext& context, const char* fn_name) {
  if (!context.dynamic.focus.valid || !context.dynamic.focus.item.IsNode()) {
    ThrowError(ErrorCode::kXPDY0002,
               std::string(fn_name) + ": context item is not a node");
  }
  return context.dynamic.focus.item.node();
}

Sequence FnName(EvalContext& context, std::vector<Sequence>& args) {
  const Node* node = args.empty() ? ContextNode(context, "fn:name")
                                  : OptionalNodeArg(args[0], "fn:name");
  if (node == nullptr) return {MakeString("")};
  return {MakeString(node->name())};
}

Sequence FnLocalName(EvalContext& context, std::vector<Sequence>& args) {
  const Node* node = args.empty() ? ContextNode(context, "fn:local-name")
                                  : OptionalNodeArg(args[0], "fn:local-name");
  if (node == nullptr) return {MakeString("")};
  std::string name = node->name();
  size_t colon = name.find(':');
  if (colon != std::string::npos) name = name.substr(colon + 1);
  return {MakeString(std::move(name))};
}

Sequence FnNodeName(EvalContext&, std::vector<Sequence>& args) {
  const Node* node = OptionalNodeArg(args[0], "fn:node-name");
  if (node == nullptr || node->name().empty()) return {};
  return {Item(AtomicValue::MakeQName(node->name()))};
}

Sequence FnRoot(EvalContext& context, std::vector<Sequence>& args) {
  if (args.empty()) {
    const Node* node = ContextNode(context, "fn:root");
    (void)node;
    const NodeRef& ref = context.dynamic.focus.item.node_ref();
    return {Item(ref.document->root(), ref.document)};
  }
  if (args[0].empty()) return {};
  if (!args[0][0].IsNode()) {
    ThrowError(ErrorCode::kXPTY0004, "fn:root expects a node");
  }
  const NodeRef& ref = args[0][0].node_ref();
  return {Item(ref.document->root(), ref.document)};
}

Sequence FnNot(EvalContext&, std::vector<Sequence>& args) {
  return {MakeBoolean(!EffectiveBooleanValue(args[0]))};
}

Sequence FnBoolean(EvalContext&, std::vector<Sequence>& args) {
  return {MakeBoolean(EffectiveBooleanValue(args[0]))};
}

Sequence FnTrue(EvalContext&, std::vector<Sequence>&) {
  return {MakeBoolean(true)};
}

Sequence FnFalse(EvalContext&, std::vector<Sequence>&) {
  return {MakeBoolean(false)};
}

Sequence FnPosition(EvalContext& context, std::vector<Sequence>&) {
  if (!context.dynamic.focus.valid) {
    ThrowError(ErrorCode::kXPDY0002, "fn:position(): no focus");
  }
  return {MakeInteger(context.dynamic.focus.position)};
}

Sequence FnLast(EvalContext& context, std::vector<Sequence>&) {
  if (!context.dynamic.focus.valid) {
    ThrowError(ErrorCode::kXPDY0002, "fn:last(): no focus");
  }
  return {MakeInteger(context.dynamic.focus.size)};
}

}  // namespace

void RegisterNode(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"name", 0, 1, FnName});
  registry->push_back({"local-name", 0, 1, FnLocalName});
  registry->push_back({"node-name", 1, 1, FnNodeName});
  registry->push_back({"root", 0, 1, FnRoot});
  registry->push_back({"not", 1, 1, FnNot});
  registry->push_back({"boolean", 1, 1, FnBoolean});
  registry->push_back({"true", 0, 0, FnTrue});
  registry->push_back({"false", 0, 0, FnFalse});
  registry->push_back({"position", 0, 0, FnPosition});
  registry->push_back({"last", 0, 0, FnLast});
}

}  // namespace fn_internal
}  // namespace xqa

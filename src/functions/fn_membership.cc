#include "functions/helpers.h"
#include "xdm/compare.h"

namespace xqa {
namespace fn_internal {

namespace {

// Membership functions (Sections 3.3 and 5 of the paper): helpers that map
// an item to the set of groups it belongs to, turning group by into rollup /
// cube / custom-equality grouping without further language extension. The
// paper anticipates that "a common set of such membership functions will be
// provided by the implementations"; these are xqa's built-in set.

/// xqa:set-equal($a, $b): true when each item of one sequence has an equal
/// item (under `eq` on atomized values) in the other — i.e. sequences
/// compared as sets, the Section 3.3 example.
Sequence FnSetEqual(EvalContext&, std::vector<Sequence>& args) {
  Sequence a = Atomize(args[0]);
  Sequence b = Atomize(args[1]);
  auto covered = [](const Sequence& xs, const Sequence& ys) {
    for (const Item& x : xs) {
      bool found = false;
      for (const Item& y : ys) {
        if (ValueCompareAtomic(CompareOp::kEq, x.atomic(), y.atomic())) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };
  return {MakeBoolean(covered(a, b) && covered(b, a))};
}

void CollectPaths(const Node* node, const std::string& prefix, Sequence* out) {
  if (node->kind() != NodeKind::kElement) return;
  std::string path = prefix.empty() ? node->name() : prefix + "/" + node->name();
  out->push_back(MakeString(path));
  for (const Node* child : node->children()) {
    CollectPaths(child, path, out);
  }
}

/// xqa:paths($elems): all root-to-descendant category paths of a ragged
/// hierarchy forest, as strings ("software", "software/db", ...). The
/// built-in equivalent of the paper's local:paths (Q11).
Sequence FnPaths(EvalContext&, std::vector<Sequence>& args) {
  Sequence out;
  for (const Item& item : args[0]) {
    if (!item.IsNode()) {
      ThrowError(ErrorCode::kXPTY0004, "xqa:paths expects element nodes");
    }
    CollectPaths(item.node(), "", &out);
  }
  return out;
}

/// xqa:cube($dims): the powerset of the dimension sequence, one
/// <cube-group> element per subset containing copies of the subset's items
/// (atomic items become <dim> wrappers). Grouping on these elements with
/// deep-equal reproduces SQL's CUBE (Q12). 2^n subsets — n is capped.
Sequence FnCube(EvalContext&, std::vector<Sequence>& args) {
  const Sequence& dims = args[0];
  if (dims.size() > 16) {
    ThrowError(ErrorCode::kFORG0006,
               "xqa:cube supports at most 16 dimensions");
  }
  DocumentPtr doc = MakeDocument();
  Sequence out;
  size_t subset_count = size_t{1} << dims.size();
  out.reserve(subset_count);
  for (size_t mask = 0; mask < subset_count; ++mask) {
    Node* group = doc->CreateElement("cube-group");
    doc->AppendChild(doc->root(), group);
    for (size_t i = 0; i < dims.size(); ++i) {
      if ((mask & (size_t{1} << i)) == 0) continue;
      const Item& dim = dims[i];
      if (dim.IsNode()) {
        doc->AppendChild(group, doc->ImportNode(dim.node()));
      } else {
        Node* wrapper = doc->CreateElement("dim");
        doc->AppendChild(wrapper, doc->CreateText(dim.atomic().ToLexical()));
        doc->AppendChild(group, wrapper);
      }
    }
    out.push_back(Item(group, doc));
  }
  doc->SealOrder();
  return out;
}

/// xqa:rollup($dims): the prefix sets of the dimension sequence — (), (d1),
/// (d1,d2), ... — one <rollup-group> element per prefix. The built-in
/// equivalent of SQL ROLLUP via complex-object grouping.
Sequence FnRollup(EvalContext&, std::vector<Sequence>& args) {
  const Sequence& dims = args[0];
  DocumentPtr doc = MakeDocument();
  Sequence out;
  out.reserve(dims.size() + 1);
  for (size_t length = 0; length <= dims.size(); ++length) {
    Node* group = doc->CreateElement("rollup-group");
    doc->AppendChild(doc->root(), group);
    for (size_t i = 0; i < length; ++i) {
      const Item& dim = dims[i];
      if (dim.IsNode()) {
        doc->AppendChild(group, doc->ImportNode(dim.node()));
      } else {
        Node* wrapper = doc->CreateElement("dim");
        doc->AppendChild(wrapper, doc->CreateText(dim.atomic().ToLexical()));
        doc->AppendChild(group, wrapper);
      }
    }
    out.push_back(Item(group, doc));
  }
  doc->SealOrder();
  return out;
}

}  // namespace

void RegisterMembership(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"xqa:set-equal", 2, 2, FnSetEqual});
  registry->push_back({"xqa:paths", 1, 1, FnPaths});
  registry->push_back({"xqa:cube", 1, 1, FnCube});
  registry->push_back({"xqa:rollup", 1, 1, FnRollup});
}

}  // namespace fn_internal
}  // namespace xqa

#include <cmath>

#include "functions/helpers.h"
#include "xdm/compare.h"

namespace xqa {
namespace fn_internal {

namespace {

/// Numeric accumulation with XQuery promotion: integer -> decimal -> double.
/// untypedAtomic items are cast to xs:double (the fn:sum / fn:avg rule).
struct NumericAccumulator {
  bool use_double = false;
  bool use_decimal = false;
  int64_t int_sum = 0;
  Decimal decimal_sum;
  double double_sum = 0;
  size_t count = 0;

  void Add(const AtomicValue& raw, const char* fn_name) {
    AtomicValue v = raw;
    if (v.type() == AtomicType::kUntypedAtomic) {
      v = AtomicValue::Double(v.ToDoubleValue());
    }
    if (!v.IsNumeric()) {
      ThrowError(ErrorCode::kFORG0006,
                 std::string(fn_name) + ": non-numeric item " +
                     std::string(AtomicTypeName(v.type())));
    }
    ++count;
    if (use_double || v.type() == AtomicType::kDouble) {
      Promote2();
      double_sum += v.ToDoubleValue();
      return;
    }
    if (use_decimal || v.type() == AtomicType::kDecimal) {
      Promote1();
      decimal_sum = decimal_sum.Add(v.type() == AtomicType::kDecimal
                                        ? v.AsDecimal()
                                        : Decimal(v.AsInteger()));
      return;
    }
    int64_t result;
    if (__builtin_add_overflow(int_sum, v.AsInteger(), &result)) {
      Promote1();
      decimal_sum = decimal_sum.Add(Decimal(v.AsInteger()));
      return;
    }
    int_sum = result;
  }

  void Promote1() {
    if (!use_decimal && !use_double) {
      decimal_sum = Decimal(int_sum);
      use_decimal = true;
    }
  }

  void Promote2() {
    if (!use_double) {
      Promote1();
      double_sum = use_decimal ? decimal_sum.ToDouble()
                               : static_cast<double>(int_sum);
      // After promotion we accumulate in double only.
      use_double = true;
    }
  }

  Item Total() const {
    if (use_double) return MakeDouble(double_sum);
    if (use_decimal) return MakeDecimalItem(decimal_sum);
    return MakeInteger(int_sum);
  }

  Item Average() const {
    if (use_double) return MakeDouble(double_sum / static_cast<double>(count));
    Decimal sum = use_decimal ? decimal_sum : Decimal(int_sum);
    return MakeDecimalItem(sum.Divide(Decimal(static_cast<int64_t>(count))));
  }
};

Sequence FnCount(EvalContext&, std::vector<Sequence>& args) {
  return {MakeInteger(static_cast<int64_t>(args[0].size()))};
}

/// Sums a sequence of xs:dayTimeDuration values; every item must be one.
int64_t SumDurations(const Sequence& items, const char* fn_name) {
  int64_t total = 0;
  for (const Item& item : items) {
    if (item.atomic().type() != AtomicType::kDuration) {
      ThrowError(ErrorCode::kFORG0006,
                 std::string(fn_name) +
                     ": cannot mix durations with other types");
    }
    if (__builtin_add_overflow(total, item.atomic().AsDurationMillis(),
                               &total)) {
      ThrowError(ErrorCode::kFODT0002,
                 std::string(fn_name) + ": overflow in duration addition");
    }
  }
  return total;
}

Sequence FnSum(EvalContext&, std::vector<Sequence>& args) {
  Sequence items = Atomize(args[0]);
  if (items.empty()) {
    if (args.size() > 1) return args[1];  // caller-provided zero
    return {MakeInteger(0)};
  }
  if (items[0].atomic().type() == AtomicType::kDuration) {
    return {Item(AtomicValue::MakeDuration(SumDurations(items, "fn:sum")))};
  }
  NumericAccumulator acc;
  for (const Item& item : items) acc.Add(item.atomic(), "fn:sum");
  return {acc.Total()};
}

Sequence FnAvg(EvalContext&, std::vector<Sequence>& args) {
  Sequence items = Atomize(args[0]);
  if (items.empty()) return {};
  if (items[0].atomic().type() == AtomicType::kDuration) {
    int64_t total = SumDurations(items, "fn:avg");
    return {Item(AtomicValue::MakeDuration(
        total / static_cast<int64_t>(items.size())))};
  }
  NumericAccumulator acc;
  for (const Item& item : items) acc.Add(item.atomic(), "fn:avg");
  return {acc.Average()};
}

/// Shared min/max: untyped items are cast to double; values must be mutually
/// comparable (numeric with promotion, or all strings, etc.).
Sequence MinMax(std::vector<Sequence>& args, bool want_max, const char* name) {
  Sequence items = Atomize(args[0]);
  if (items.empty()) return {};
  AtomicValue best;
  bool have_best = false;
  for (const Item& item : items) {
    AtomicValue v = item.atomic();
    if (v.type() == AtomicType::kUntypedAtomic) {
      v = AtomicValue::Double(v.ToDoubleValue());
    }
    // NaN propagates: the result is NaN if any item is NaN.
    if (v.type() == AtomicType::kDouble && std::isnan(v.AsDouble())) {
      return {MakeDouble(v.AsDouble())};
    }
    if (!have_best) {
      best = v;
      have_best = true;
      continue;
    }
    std::optional<int> cmp = ThreeWayCompareAtomic(v, best);
    if (!cmp.has_value()) continue;
    if ((want_max && *cmp > 0) || (!want_max && *cmp < 0)) best = v;
  }
  (void)name;
  return {Item(best)};
}

Sequence FnMin(EvalContext&, std::vector<Sequence>& args) {
  return MinMax(args, /*want_max=*/false, "fn:min");
}

Sequence FnMax(EvalContext&, std::vector<Sequence>& args) {
  return MinMax(args, /*want_max=*/true, "fn:max");
}

}  // namespace

void RegisterAggregate(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"count", 1, 1, FnCount});
  registry->push_back({"sum", 1, 2, FnSum});
  registry->push_back({"avg", 1, 1, FnAvg});
  registry->push_back({"min", 1, 1, FnMin});
  registry->push_back({"max", 1, 1, FnMax});
}

}  // namespace fn_internal
}  // namespace xqa

#include "functions/function_registry.h"

namespace xqa {

// Registration hooks implemented by the per-category translation units.
namespace fn_internal {
void RegisterAggregate(std::vector<BuiltinFunction>* registry);
void RegisterSequence(std::vector<BuiltinFunction>* registry);
void RegisterString(std::vector<BuiltinFunction>* registry);
void RegisterNumeric(std::vector<BuiltinFunction>* registry);
void RegisterDateTime(std::vector<BuiltinFunction>* registry);
void RegisterNode(std::vector<BuiltinFunction>* registry);
void RegisterMembership(std::vector<BuiltinFunction>* registry);
void RegisterRegex(std::vector<BuiltinFunction>* registry);
void RegisterDoc(std::vector<BuiltinFunction>* registry);
void RegisterJson(std::vector<BuiltinFunction>* registry);
}  // namespace fn_internal

const std::vector<BuiltinFunction>& BuiltinFunctions() {
  static const std::vector<BuiltinFunction>& registry = *[] {
    auto* r = new std::vector<BuiltinFunction>();
    fn_internal::RegisterAggregate(r);
    fn_internal::RegisterSequence(r);
    fn_internal::RegisterString(r);
    fn_internal::RegisterNumeric(r);
    fn_internal::RegisterDateTime(r);
    fn_internal::RegisterNode(r);
    fn_internal::RegisterMembership(r);
    fn_internal::RegisterRegex(r);
    fn_internal::RegisterDoc(r);
    fn_internal::RegisterJson(r);
    return r;
  }();
  return registry;
}

int FindBuiltin(std::string_view name, size_t arity) {
  // "fn:" is the default function namespace; strip it.
  if (name.rfind("fn:", 0) == 0) name.remove_prefix(3);
  const std::vector<BuiltinFunction>& registry = BuiltinFunctions();
  for (size_t i = 0; i < registry.size(); ++i) {
    const BuiltinFunction& fn = registry[i];
    if (fn.name != name) continue;
    if (static_cast<int>(arity) < fn.min_arity) continue;
    if (fn.max_arity >= 0 && static_cast<int>(arity) > fn.max_arity) continue;
    return static_cast<int>(i);
  }
  return -1;
}

}  // namespace xqa

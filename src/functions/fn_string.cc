#include <cctype>
#include <cmath>
#include <limits>

#include "base/string_util.h"
#include "eval/dynamic_context.h"
#include "functions/helpers.h"

namespace xqa {
namespace fn_internal {

namespace {

Sequence FnString(EvalContext& context, std::vector<Sequence>& args) {
  if (args.empty()) {
    if (!context.dynamic.focus.valid) {
      ThrowError(ErrorCode::kXPDY0002, "fn:string(): context item is absent");
    }
    return {MakeString(context.dynamic.focus.item.StringValue())};
  }
  return {MakeString(StringValueOf(args[0]))};
}

Sequence FnConcat(EvalContext&, std::vector<Sequence>& args) {
  std::string out;
  for (const Sequence& arg : args) {
    out += StringArg(arg, "fn:concat");
  }
  return {MakeString(std::move(out))};
}

Sequence FnStringJoin(EvalContext&, std::vector<Sequence>& args) {
  std::string separator = args.size() > 1 ? StringArg(args[1], "fn:string-join")
                                          : "";
  Sequence items = Atomize(args[0]);
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i].atomic().ToLexical();
  }
  return {MakeString(std::move(out))};
}

Sequence FnContains(EvalContext&, std::vector<Sequence>& args) {
  std::string haystack = StringArg(args[0], "fn:contains");
  std::string needle = StringArg(args[1], "fn:contains");
  return {MakeBoolean(haystack.find(needle) != std::string::npos)};
}

Sequence FnStartsWith(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:starts-with");
  std::string prefix = StringArg(args[1], "fn:starts-with");
  return {MakeBoolean(s.rfind(prefix, 0) == 0)};
}

Sequence FnEndsWith(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:ends-with");
  std::string suffix = StringArg(args[1], "fn:ends-with");
  return {MakeBoolean(s.size() >= suffix.size() &&
                      s.compare(s.size() - suffix.size(), suffix.size(),
                                suffix) == 0)};
}

Sequence FnSubstring(EvalContext&, std::vector<Sequence>& args) {
  // Byte-oriented (ASCII workloads); positions are 1-based and rounded.
  std::string s = StringArg(args[0], "fn:substring");
  double start = RequiredAtomicArg(args[1], "fn:substring").ToDoubleValue();
  double length = args.size() > 2
      ? RequiredAtomicArg(args[2], "fn:substring").ToDoubleValue()
      : std::numeric_limits<double>::infinity();
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    double position = static_cast<double>(i + 1);
    if (position >= std::round(start) &&
        position < std::round(start) + std::round(length)) {
      out.push_back(s[i]);
    }
  }
  return {MakeString(std::move(out))};
}

Sequence FnStringLength(EvalContext& context, std::vector<Sequence>& args) {
  std::string s;
  if (args.empty()) {
    if (!context.dynamic.focus.valid) {
      ThrowError(ErrorCode::kXPDY0002,
                 "fn:string-length(): context item is absent");
    }
    s = context.dynamic.focus.item.StringValue();
  } else {
    s = StringArg(args[0], "fn:string-length");
  }
  return {MakeInteger(static_cast<int64_t>(s.size()))};
}

Sequence FnUpperCase(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:upper-case");
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return {MakeString(std::move(s))};
}

Sequence FnLowerCase(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:lower-case");
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return {MakeString(std::move(s))};
}

Sequence FnNormalizeSpace(EvalContext& context, std::vector<Sequence>& args) {
  std::string s;
  if (args.empty()) {
    if (!context.dynamic.focus.valid) {
      ThrowError(ErrorCode::kXPDY0002,
                 "fn:normalize-space(): context item is absent");
    }
    s = context.dynamic.focus.item.StringValue();
  } else {
    s = StringArg(args[0], "fn:normalize-space");
  }
  return {MakeString(CollapseWhitespace(s))};
}

Sequence FnSubstringBefore(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:substring-before");
  std::string needle = StringArg(args[1], "fn:substring-before");
  if (needle.empty()) return {MakeString("")};
  size_t pos = s.find(needle);
  if (pos == std::string::npos) return {MakeString("")};
  return {MakeString(s.substr(0, pos))};
}

Sequence FnSubstringAfter(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:substring-after");
  std::string needle = StringArg(args[1], "fn:substring-after");
  if (needle.empty()) return {MakeString(s)};
  size_t pos = s.find(needle);
  if (pos == std::string::npos) return {MakeString("")};
  return {MakeString(s.substr(pos + needle.size()))};
}

Sequence FnTranslate(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:translate");
  std::string from = StringArg(args[1], "fn:translate");
  std::string to = StringArg(args[2], "fn:translate");
  std::string out;
  for (char c : s) {
    size_t pos = from.find(c);
    if (pos == std::string::npos) {
      out.push_back(c);
    } else if (pos < to.size()) {
      out.push_back(to[pos]);
    }  // else: dropped
  }
  return {MakeString(std::move(out))};
}

Sequence FnCompare(EvalContext&, std::vector<Sequence>& args) {
  if (args[0].empty() || args[1].empty()) return {};
  std::string a = StringArg(args[0], "fn:compare");
  std::string b = StringArg(args[1], "fn:compare");
  int cmp = a.compare(b);
  return {MakeInteger(cmp == 0 ? 0 : (cmp < 0 ? -1 : 1))};
}

Sequence FnStringToCodepoints(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:string-to-codepoints");
  Sequence out;
  // UTF-8 decoding; invalid bytes pass through as their byte values.
  for (size_t i = 0; i < s.size();) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    uint32_t code = c;
    size_t length = 1;
    if ((c & 0xE0) == 0xC0 && i + 1 < s.size()) {
      code = (c & 0x1F) << 6 | (s[i + 1] & 0x3F);
      length = 2;
    } else if ((c & 0xF0) == 0xE0 && i + 2 < s.size()) {
      code = (c & 0x0F) << 12 | (s[i + 1] & 0x3F) << 6 | (s[i + 2] & 0x3F);
      length = 3;
    } else if ((c & 0xF8) == 0xF0 && i + 3 < s.size()) {
      code = (c & 0x07) << 18 | (s[i + 1] & 0x3F) << 12 |
             (s[i + 2] & 0x3F) << 6 | (s[i + 3] & 0x3F);
      length = 4;
    }
    out.push_back(MakeInteger(static_cast<int64_t>(code)));
    i += length;
  }
  return out;
}

Sequence FnCodepointsToString(EvalContext&, std::vector<Sequence>& args) {
  Sequence codes = Atomize(args[0]);
  std::string out;
  for (const Item& item : codes) {
    int64_t code =
        item.atomic().CastTo(AtomicType::kInteger).AsInteger();
    if (code <= 0 || code > 0x10FFFF) {
      ThrowError(ErrorCode::kFOCA0002,
                 "codepoint out of range: " + std::to_string(code));
    }
    uint32_t u = static_cast<uint32_t>(code);
    if (u < 0x80) {
      out.push_back(static_cast<char>(u));
    } else if (u < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (u >> 6)));
      out.push_back(static_cast<char>(0x80 | (u & 0x3F)));
    } else if (u < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (u >> 12)));
      out.push_back(static_cast<char>(0x80 | ((u >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (u & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (u >> 18)));
      out.push_back(static_cast<char>(0x80 | ((u >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((u >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (u & 0x3F)));
    }
  }
  return {MakeString(std::move(out))};
}

}  // namespace

void RegisterString(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"string", 0, 1, FnString});
  registry->push_back({"concat", 2, -1, FnConcat});
  registry->push_back({"string-join", 1, 2, FnStringJoin});
  registry->push_back({"contains", 2, 2, FnContains});
  registry->push_back({"starts-with", 2, 2, FnStartsWith});
  registry->push_back({"ends-with", 2, 2, FnEndsWith});
  registry->push_back({"substring", 2, 3, FnSubstring});
  registry->push_back({"string-length", 0, 1, FnStringLength});
  registry->push_back({"upper-case", 1, 1, FnUpperCase});
  registry->push_back({"lower-case", 1, 1, FnLowerCase});
  registry->push_back({"normalize-space", 0, 1, FnNormalizeSpace});
  registry->push_back({"substring-before", 2, 2, FnSubstringBefore});
  registry->push_back({"substring-after", 2, 2, FnSubstringAfter});
  registry->push_back({"translate", 3, 3, FnTranslate});
  registry->push_back({"compare", 2, 2, FnCompare});
  registry->push_back({"string-to-codepoints", 1, 1, FnStringToCodepoints});
  registry->push_back({"codepoints-to-string", 1, 1, FnCodepointsToString});
}

}  // namespace fn_internal
}  // namespace xqa

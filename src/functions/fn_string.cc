#include <cctype>
#include <cmath>
#include <limits>

#include "base/string_util.h"
#include "eval/dynamic_context.h"
#include "functions/helpers.h"

namespace xqa {
namespace fn_internal {

namespace {

Sequence FnString(EvalContext& context, std::vector<Sequence>& args) {
  if (args.empty()) {
    if (!context.dynamic.focus.valid) {
      ThrowError(ErrorCode::kXPDY0002, "fn:string(): context item is absent");
    }
    return {MakeString(context.dynamic.focus.item.StringValue())};
  }
  return {MakeString(StringValueOf(args[0]))};
}

Sequence FnConcat(EvalContext&, std::vector<Sequence>& args) {
  std::string out;
  for (const Sequence& arg : args) {
    out += StringArg(arg, "fn:concat");
  }
  return {MakeString(std::move(out))};
}

Sequence FnStringJoin(EvalContext&, std::vector<Sequence>& args) {
  std::string separator = args.size() > 1 ? StringArg(args[1], "fn:string-join")
                                          : "";
  Sequence items = Atomize(args[0]);
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i].atomic().ToLexical();
  }
  return {MakeString(std::move(out))};
}

Sequence FnContains(EvalContext&, std::vector<Sequence>& args) {
  std::string haystack = StringArg(args[0], "fn:contains");
  std::string needle = StringArg(args[1], "fn:contains");
  return {MakeBoolean(haystack.find(needle) != std::string::npos)};
}

Sequence FnStartsWith(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:starts-with");
  std::string prefix = StringArg(args[1], "fn:starts-with");
  return {MakeBoolean(s.rfind(prefix, 0) == 0)};
}

Sequence FnEndsWith(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:ends-with");
  std::string suffix = StringArg(args[1], "fn:ends-with");
  return {MakeBoolean(s.size() >= suffix.size() &&
                      s.compare(s.size() - suffix.size(), suffix.size(),
                                suffix) == 0)};
}

/// fn:round semantics for fn:substring's positions: half rounds toward
/// positive infinity (round(-2.5) = -2, where std::round gives -3).
/// NaN and the infinities pass through.
double SubstringRound(double v) {
  if (std::isnan(v) || std::isinf(v)) return v;
  return std::floor(v + 0.5);
}

Sequence FnSubstring(EvalContext&, std::vector<Sequence>& args) {
  // F&O 5.4.3: codepoints at 1-based positions p with
  // p >= round(start) and p < round(start) + round(length). The bounds are
  // computed once and the string sliced directly on codepoint boundaries —
  // no per-byte comparison loop, and a multibyte character is never split.
  std::string s = StringArg(args[0], "fn:substring");
  double start = RequiredAtomicArg(args[1], "fn:substring").ToDoubleValue();
  double rstart = SubstringRound(start);
  double end_excl;  // first position past the slice
  if (args.size() > 2) {
    double length =
        RequiredAtomicArg(args[2], "fn:substring").ToDoubleValue();
    // NaN start, NaN length, or -INF + INF: every position comparison is
    // false, so the result is empty.
    end_excl = rstart + SubstringRound(length);
  } else {
    end_excl = std::numeric_limits<double>::infinity();
  }
  if (std::isnan(rstart) || std::isnan(end_excl)) return {MakeString("")};
  double first = rstart < 1 ? 1 : rstart;
  // Byte length bounds codepoint count, so these comparisons are safe before
  // any double→integer cast.
  if (end_excl <= first || first > static_cast<double>(s.size())) {
    return {MakeString("")};
  }
  size_t from = Utf8OffsetOf(s, static_cast<size_t>(first) - 1);
  size_t to = s.size();
  if (end_excl <= static_cast<double>(s.size())) {
    to = Utf8OffsetOf(s, static_cast<size_t>(end_excl) - 1);
  }
  return {MakeString(s.substr(from, to - from))};
}

Sequence FnStringLength(EvalContext& context, std::vector<Sequence>& args) {
  std::string s;
  if (args.empty()) {
    if (!context.dynamic.focus.valid) {
      ThrowError(ErrorCode::kXPDY0002,
                 "fn:string-length(): context item is absent");
    }
    s = context.dynamic.focus.item.StringValue();
  } else {
    s = StringArg(args[0], "fn:string-length");
  }
  return {MakeInteger(static_cast<int64_t>(Utf8Length(s)))};
}

/// Case-maps one codepoint: ASCII letters plus the Latin-1 Supplement pairs
/// (U+00C0–U+00DE ↔ U+00E0–U+00FE, skipping × and ÷). Other codepoints are
/// returned unchanged — never altered byte-wise, so multibyte characters
/// outside the mapped ranges pass through intact.
uint32_t MapCase(uint32_t code, bool to_upper) {
  if (to_upper) {
    if (code >= 'a' && code <= 'z') return code - 0x20;
    if (code >= 0xE0 && code <= 0xFE && code != 0xF7) return code - 0x20;
  } else {
    if (code >= 'A' && code <= 'Z') return code + 0x20;
    if (code >= 0xC0 && code <= 0xDE && code != 0xD7) return code + 0x20;
  }
  return code;
}

Sequence CaseMapped(const Sequence& arg, const char* name, bool to_upper) {
  std::string s = StringArg(arg, name);
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    Utf8Encode(MapCase(Utf8DecodeAt(s, &i), to_upper), &out);
  }
  return {MakeString(std::move(out))};
}

Sequence FnUpperCase(EvalContext&, std::vector<Sequence>& args) {
  return CaseMapped(args[0], "fn:upper-case", true);
}

Sequence FnLowerCase(EvalContext&, std::vector<Sequence>& args) {
  return CaseMapped(args[0], "fn:lower-case", false);
}

Sequence FnNormalizeSpace(EvalContext& context, std::vector<Sequence>& args) {
  std::string s;
  if (args.empty()) {
    if (!context.dynamic.focus.valid) {
      ThrowError(ErrorCode::kXPDY0002,
                 "fn:normalize-space(): context item is absent");
    }
    s = context.dynamic.focus.item.StringValue();
  } else {
    s = StringArg(args[0], "fn:normalize-space");
  }
  return {MakeString(CollapseWhitespace(s))};
}

Sequence FnSubstringBefore(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:substring-before");
  std::string needle = StringArg(args[1], "fn:substring-before");
  if (needle.empty()) return {MakeString("")};
  size_t pos = s.find(needle);
  if (pos == std::string::npos) return {MakeString("")};
  return {MakeString(s.substr(0, pos))};
}

Sequence FnSubstringAfter(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:substring-after");
  std::string needle = StringArg(args[1], "fn:substring-after");
  if (needle.empty()) return {MakeString(s)};
  size_t pos = s.find(needle);
  if (pos == std::string::npos) return {MakeString("")};
  return {MakeString(s.substr(pos + needle.size()))};
}

Sequence FnTranslate(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:translate");
  std::string from = StringArg(args[1], "fn:translate");
  std::string to = StringArg(args[2], "fn:translate");
  std::string out;
  for (char c : s) {
    size_t pos = from.find(c);
    if (pos == std::string::npos) {
      out.push_back(c);
    } else if (pos < to.size()) {
      out.push_back(to[pos]);
    }  // else: dropped
  }
  return {MakeString(std::move(out))};
}

Sequence FnCompare(EvalContext&, std::vector<Sequence>& args) {
  if (args[0].empty() || args[1].empty()) return {};
  std::string a = StringArg(args[0], "fn:compare");
  std::string b = StringArg(args[1], "fn:compare");
  int cmp = a.compare(b);
  return {MakeInteger(cmp == 0 ? 0 : (cmp < 0 ? -1 : 1))};
}

Sequence FnStringToCodepoints(EvalContext&, std::vector<Sequence>& args) {
  std::string s = StringArg(args[0], "fn:string-to-codepoints");
  Sequence out;
  // UTF-8 decoding; invalid bytes pass through as their byte values.
  for (size_t i = 0; i < s.size();) {
    out.push_back(MakeInteger(static_cast<int64_t>(Utf8DecodeAt(s, &i))));
  }
  return out;
}

Sequence FnCodepointsToString(EvalContext&, std::vector<Sequence>& args) {
  Sequence codes = Atomize(args[0]);
  std::string out;
  for (const Item& item : codes) {
    int64_t code =
        item.atomic().CastTo(AtomicType::kInteger).AsInteger();
    if (code <= 0 || code > 0x10FFFF) {
      ThrowError(ErrorCode::kFOCA0002,
                 "codepoint out of range: " + std::to_string(code));
    }
    Utf8Encode(static_cast<uint32_t>(code), &out);
  }
  return {MakeString(std::move(out))};
}

}  // namespace

void RegisterString(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"string", 0, 1, FnString});
  registry->push_back({"concat", 2, -1, FnConcat});
  registry->push_back({"string-join", 1, 2, FnStringJoin});
  registry->push_back({"contains", 2, 2, FnContains});
  registry->push_back({"starts-with", 2, 2, FnStartsWith});
  registry->push_back({"ends-with", 2, 2, FnEndsWith});
  registry->push_back({"substring", 2, 3, FnSubstring});
  registry->push_back({"string-length", 0, 1, FnStringLength});
  registry->push_back({"upper-case", 1, 1, FnUpperCase});
  registry->push_back({"lower-case", 1, 1, FnLowerCase});
  registry->push_back({"normalize-space", 0, 1, FnNormalizeSpace});
  registry->push_back({"substring-before", 2, 2, FnSubstringBefore});
  registry->push_back({"substring-after", 2, 2, FnSubstringAfter});
  registry->push_back({"translate", 3, 3, FnTranslate});
  registry->push_back({"compare", 2, 2, FnCompare});
  registry->push_back({"string-to-codepoints", 1, 1, FnStringToCodepoints});
  registry->push_back({"codepoints-to-string", 1, 1, FnCodepointsToString});
}

}  // namespace fn_internal
}  // namespace xqa

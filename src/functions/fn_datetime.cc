#include "functions/helpers.h"

namespace xqa {
namespace fn_internal {

namespace {

/// Coerces an argument to the expected date/time type (untypedAtomic and
/// string lexical forms cast implicitly — function conversion rules).
std::optional<DateTime> DateTimeArg(const Sequence& arg, AtomicType target,
                                    const char* fn_name) {
  std::optional<AtomicValue> value = OptionalAtomicArg(arg, fn_name);
  if (!value.has_value()) return std::nullopt;
  AtomicValue v = *value;
  if (v.type() != target) v = v.CastTo(target);
  return v.AsDateTime();
}

template <int (DateTime::*Component)() const, AtomicType Target>
Sequence ComponentFn(EvalContext&, std::vector<Sequence>& args) {
  std::optional<DateTime> value = DateTimeArg(args[0], Target, "component");
  if (!value.has_value()) return {};
  return {MakeInteger(((*value).*Component)())};
}

Sequence FnSecondsFromDateTime(EvalContext&, std::vector<Sequence>& args) {
  std::optional<DateTime> value =
      DateTimeArg(args[0], AtomicType::kDateTime, "fn:seconds-from-dateTime");
  if (!value.has_value()) return {};
  if (value->millisecond() == 0) return {MakeInteger(value->second())};
  Decimal seconds = Decimal::FromUnscaled(
      value->second() * 1000 + value->millisecond(), 3);
  return {MakeDecimalItem(seconds)};
}

Sequence FnCurrentDateTimePlaceholder(EvalContext&, std::vector<Sequence>&) {
  // The engine is deterministic by design (benchmarks and tests depend on
  // it); current-dateTime() returns a fixed instant, documented in README.
  DateTime value;
  DateTime::ParseDateTime("2005-06-14T00:00:00Z", &value);
  return {Item(AtomicValue::MakeDateTime(value))};
}

// --- xs:dayTimeDuration ---------------------------------------------------

std::optional<int64_t> DurationArg(const Sequence& arg, const char* fn_name) {
  std::optional<AtomicValue> value = OptionalAtomicArg(arg, fn_name);
  if (!value.has_value()) return std::nullopt;
  AtomicValue v = *value;
  if (v.type() != AtomicType::kDuration) v = v.CastTo(AtomicType::kDuration);
  return v.AsDurationMillis();
}

Sequence FnDaysFromDuration(EvalContext&, std::vector<Sequence>& args) {
  std::optional<int64_t> millis = DurationArg(args[0], "fn:days-from-duration");
  if (!millis.has_value()) return {};
  return {MakeInteger(*millis / (24LL * 60 * 60 * 1000))};
}

Sequence FnHoursFromDuration(EvalContext&, std::vector<Sequence>& args) {
  std::optional<int64_t> millis =
      DurationArg(args[0], "fn:hours-from-duration");
  if (!millis.has_value()) return {};
  return {MakeInteger(*millis / (60LL * 60 * 1000) % 24)};
}

Sequence FnMinutesFromDuration(EvalContext&, std::vector<Sequence>& args) {
  std::optional<int64_t> millis =
      DurationArg(args[0], "fn:minutes-from-duration");
  if (!millis.has_value()) return {};
  return {MakeInteger(*millis / (60LL * 1000) % 60)};
}

Sequence FnSecondsFromDuration(EvalContext&, std::vector<Sequence>& args) {
  std::optional<int64_t> millis =
      DurationArg(args[0], "fn:seconds-from-duration");
  if (!millis.has_value()) return {};
  int64_t part = *millis % (60LL * 1000);
  if (part % 1000 == 0) return {MakeInteger(part / 1000)};
  return {MakeDecimalItem(Decimal::FromUnscaled(part, 3))};
}

Sequence FnDayTimeDurationCtor(EvalContext&, std::vector<Sequence>& args) {
  std::optional<AtomicValue> value =
      OptionalAtomicArg(args[0], "xs:dayTimeDuration");
  if (!value.has_value()) return {};
  return {Item(value->CastTo(AtomicType::kDuration))};
}

}  // namespace

void RegisterDateTime(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"days-from-duration", 1, 1, FnDaysFromDuration});
  registry->push_back({"hours-from-duration", 1, 1, FnHoursFromDuration});
  registry->push_back({"minutes-from-duration", 1, 1, FnMinutesFromDuration});
  registry->push_back({"seconds-from-duration", 1, 1, FnSecondsFromDuration});
  registry->push_back({"xs:dayTimeDuration", 1, 1, FnDayTimeDurationCtor});
  registry->push_back({"year-from-dateTime", 1, 1,
                       ComponentFn<&DateTime::year, AtomicType::kDateTime>});
  registry->push_back({"month-from-dateTime", 1, 1,
                       ComponentFn<&DateTime::month, AtomicType::kDateTime>});
  registry->push_back({"day-from-dateTime", 1, 1,
                       ComponentFn<&DateTime::day, AtomicType::kDateTime>});
  registry->push_back({"hours-from-dateTime", 1, 1,
                       ComponentFn<&DateTime::hour, AtomicType::kDateTime>});
  registry->push_back({"minutes-from-dateTime", 1, 1,
                       ComponentFn<&DateTime::minute, AtomicType::kDateTime>});
  registry->push_back({"seconds-from-dateTime", 1, 1, FnSecondsFromDateTime});
  registry->push_back({"year-from-date", 1, 1,
                       ComponentFn<&DateTime::year, AtomicType::kDate>});
  registry->push_back({"month-from-date", 1, 1,
                       ComponentFn<&DateTime::month, AtomicType::kDate>});
  registry->push_back({"day-from-date", 1, 1,
                       ComponentFn<&DateTime::day, AtomicType::kDate>});
  registry->push_back({"hours-from-time", 1, 1,
                       ComponentFn<&DateTime::hour, AtomicType::kTime>});
  registry->push_back({"minutes-from-time", 1, 1,
                       ComponentFn<&DateTime::minute, AtomicType::kTime>});
  registry->push_back({"current-dateTime", 0, 0, FnCurrentDateTimePlaceholder});
}

}  // namespace fn_internal
}  // namespace xqa

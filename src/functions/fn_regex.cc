#include "base/regex_lite.h"
#include "functions/helpers.h"

namespace xqa {
namespace fn_internal {

namespace {

RegexLite CompileArgs(std::vector<Sequence>& args, size_t pattern_index,
                      size_t flags_index, const char* fn_name) {
  std::string pattern = StringArg(args[pattern_index], fn_name);
  std::string flags = args.size() > flags_index
                          ? StringArg(args[flags_index], fn_name)
                          : "";
  return RegexLite::Compile(pattern, flags);
}

Sequence FnMatches(EvalContext&, std::vector<Sequence>& args) {
  std::string input = StringArg(args[0], "fn:matches");
  RegexLite regex = CompileArgs(args, 1, 2, "fn:matches");
  return {MakeBoolean(regex.Search(input))};
}

Sequence FnReplace(EvalContext&, std::vector<Sequence>& args) {
  std::string input = StringArg(args[0], "fn:replace");
  RegexLite regex = CompileArgs(args, 1, 3, "fn:replace");
  std::string replacement = StringArg(args[2], "fn:replace");
  return {MakeString(regex.Replace(input, replacement))};
}

Sequence FnTokenize(EvalContext&, std::vector<Sequence>& args) {
  std::string input = StringArg(args[0], "fn:tokenize");
  RegexLite regex = CompileArgs(args, 1, 2, "fn:tokenize");
  Sequence out;
  for (std::string& token : regex.Tokenize(input)) {
    out.push_back(MakeString(std::move(token)));
  }
  return out;
}

}  // namespace

void RegisterRegex(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"matches", 2, 3, FnMatches});
  registry->push_back({"replace", 3, 4, FnReplace});
  registry->push_back({"tokenize", 2, 3, FnTokenize});
}

}  // namespace fn_internal
}  // namespace xqa

#include "base/fault_injection.h"
#include "eval/dynamic_context.h"
#include "functions/helpers.h"

namespace xqa {
namespace fn_internal {

namespace {

// fn:doc / fn:collection resolve against the DocumentRegistry supplied to
// PreparedQuery::Execute — the engine has no ambient filesystem access
// (deterministic evaluation; callers decide what is reachable).

const DocumentRegistry* Registry(EvalContext& context) {
  return context.dynamic.documents;
}

Sequence FnDoc(EvalContext& context, std::vector<Sequence>& args) {
  std::optional<AtomicValue> uri = OptionalAtomicArg(args[0], "fn:doc");
  if (!uri.has_value()) return {};
  XQA_FAULT_POINT("doc.load", ErrorCode::kFODC0002);
  const DocumentRegistry* registry = Registry(context);
  if (registry != nullptr) {
    auto it = registry->find(uri->ToLexical());
    if (it != registry->end()) {
      return {Item(it->second->root(), it->second)};
    }
  }
  ThrowError(ErrorCode::kFODC0002,
             "document '" + uri->ToLexical() + "' is not registered");
}

Sequence FnDocAvailable(EvalContext& context, std::vector<Sequence>& args) {
  std::optional<AtomicValue> uri = OptionalAtomicArg(args[0], "fn:doc-available");
  if (!uri.has_value()) return {MakeBoolean(false)};
  const DocumentRegistry* registry = Registry(context);
  return {MakeBoolean(registry != nullptr &&
                      registry->count(uri->ToLexical()) > 0)};
}

/// Emits every document of `view` in its canonical (partition-major) order —
/// the exact order the partitioned FLWOR scan produces, so a collection()
/// that reaches this generic body instead of the scan yields byte-identical
/// results.
Sequence EmitCollection(const CollectionView& view) {
  Sequence out;
  out.reserve(view.documents.size());
  for (const DocumentPtr& doc : view.documents) {
    out.push_back(Item(doc->root(), doc));
  }
  return out;
}

Sequence FnCollection(EvalContext& context, std::vector<Sequence>& args) {
  // Argument inspection first: fn:collection(()) is, per F&O, the same call
  // as fn:collection() — both resolve the default collection — so the empty
  // argument must be folded away before anything (including the fault point)
  // treats this as a named lookup.
  std::optional<AtomicValue> uri;
  if (!args.empty()) {
    uri = OptionalAtomicArg(args[0], "fn:collection");
  }
  // The fault site sits exactly where FnDoc's does: after argument
  // handling, before resolution — a chaos run injects FODC0002 only into
  // calls that would actually touch document loading.
  XQA_FAULT_POINT("doc.load", ErrorCode::kFODC0002);
  const CollectionProvider* collections = context.dynamic.collections;
  const DocumentRegistry* registry = Registry(context);
  if (!uri.has_value()) {
    // The default collection: the provider's default view when a provider is
    // attached, else every registered document in URI order.
    if (collections != nullptr) {
      const CollectionView* view = collections->DefaultCollection();
      if (view != nullptr) return EmitCollection(*view);
    }
    Sequence out;
    if (registry != nullptr) {
      for (const auto& [name, doc] : *registry) {
        out.push_back(Item(doc->root(), doc));
      }
    }
    return out;
  }
  if (collections != nullptr) {
    const CollectionView* view = collections->FindCollection(uri->ToLexical());
    if (view != nullptr) return EmitCollection(*view);
  }
  if (registry != nullptr) {
    auto it = registry->find(uri->ToLexical());
    if (it != registry->end()) {
      return {Item(it->second->root(), it->second)};
    }
  }
  ThrowError(ErrorCode::kFODC0002,
             "collection '" + uri->ToLexical() + "' is not registered");
}

}  // namespace

void RegisterDoc(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"doc", 1, 1, FnDoc});
  registry->push_back({"doc-available", 1, 1, FnDocAvailable});
  registry->push_back({"collection", 0, 1, FnCollection});
}

}  // namespace fn_internal
}  // namespace xqa

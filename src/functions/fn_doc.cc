#include "base/fault_injection.h"
#include "eval/dynamic_context.h"
#include "functions/helpers.h"

namespace xqa {
namespace fn_internal {

namespace {

// fn:doc / fn:collection resolve against the DocumentRegistry supplied to
// PreparedQuery::Execute — the engine has no ambient filesystem access
// (deterministic evaluation; callers decide what is reachable).

const DocumentRegistry* Registry(EvalContext& context) {
  return context.dynamic.documents;
}

Sequence FnDoc(EvalContext& context, std::vector<Sequence>& args) {
  std::optional<AtomicValue> uri = OptionalAtomicArg(args[0], "fn:doc");
  if (!uri.has_value()) return {};
  XQA_FAULT_POINT("doc.load", ErrorCode::kFODC0002);
  const DocumentRegistry* registry = Registry(context);
  if (registry != nullptr) {
    auto it = registry->find(uri->ToLexical());
    if (it != registry->end()) {
      return {Item(it->second->root(), it->second)};
    }
  }
  ThrowError(ErrorCode::kFODC0002,
             "document '" + uri->ToLexical() + "' is not registered");
}

Sequence FnDocAvailable(EvalContext& context, std::vector<Sequence>& args) {
  std::optional<AtomicValue> uri = OptionalAtomicArg(args[0], "fn:doc-available");
  if (!uri.has_value()) return {MakeBoolean(false)};
  const DocumentRegistry* registry = Registry(context);
  return {MakeBoolean(registry != nullptr &&
                      registry->count(uri->ToLexical()) > 0)};
}

Sequence FnCollection(EvalContext& context, std::vector<Sequence>& args) {
  XQA_FAULT_POINT("doc.load", ErrorCode::kFODC0002);
  const DocumentRegistry* registry = Registry(context);
  if (args.empty()) {
    // The default collection: every registered document, in URI order.
    Sequence out;
    if (registry != nullptr) {
      for (const auto& [uri, doc] : *registry) {
        out.push_back(Item(doc->root(), doc));
      }
    }
    return out;
  }
  std::optional<AtomicValue> uri = OptionalAtomicArg(args[0], "fn:collection");
  if (!uri.has_value()) return {};
  if (registry != nullptr) {
    auto it = registry->find(uri->ToLexical());
    if (it != registry->end()) {
      return {Item(it->second->root(), it->second)};
    }
  }
  ThrowError(ErrorCode::kFODC0002,
             "collection '" + uri->ToLexical() + "' is not registered");
}

}  // namespace

void RegisterDoc(std::vector<BuiltinFunction>* registry) {
  registry->push_back({"doc", 1, 1, FnDoc});
  registry->push_back({"doc-available", 1, 1, FnDocAvailable});
  registry->push_back({"collection", 0, 1, FnCollection});
}

}  // namespace fn_internal
}  // namespace xqa

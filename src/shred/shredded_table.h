#ifndef XQA_SHRED_SHREDDED_TABLE_H_
#define XQA_SHRED_SHREDDED_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "shred/shred_schema.h"
#include "xdm/deep_equal.h"
#include "xml/node.h"

namespace xqa {

/// An immutable columnar materialization of one record set
/// (docs/SHREDDING.md): one row per record element, one column per schema
/// field. Rows are ordered documents-ascending-by-id, preorder within each
/// document — exactly the order `collection(...)//record` produces after
/// cross-document sorting — so a shredded scan substitutes for the DOM path
/// byte for byte.
///
/// Column layout per field:
///  - `codes`: a dictionary code per row (kNullCode for an absent field).
///    The dictionary stores original lexical values in first-seen order, so
///    "07" and "7" remain distinct codes — dictionary-code equality
///    coincides with deep-equal over the (scalar-shaped, same-named) field
///    nodes, which is what lets group-by kernels compare codes instead of
///    trees.
///  - `nodes`: the field node per row, so grouping keys and serialized
///    output materialize the *node* (e.g. `<publisher>X</publisher>`), not a
///    typed value — required for byte identity with the DOM path.
///  - `code_hashes`: the deep-hash-chain group-key hash per code
///    (CombineDeepHash(kDeepHashSeqSeed, DeepHashNode(field))), identical to
///    what the generic grouping kernels compute for the same key, so
///    shredded and DOM lanes can share one hash table layout.
///  - `ints` / `doubles`: dense typed vectors for numeric columns (integer
///    -> int64, decimal/double -> double), with the null bitmap in
///    `present`. These serve typed analytics and the gauges; equality and
///    serialization always go through the lexical dictionary.
///
/// Thread-safe after construction (immutable; documents pinned by refcount).
class ShreddedTable {
 public:
  /// Code marking an absent (null) field.
  static constexpr uint32_t kNullCode = 0xFFFFFFFFu;

  /// Group-key hash of a null field (the empty key sequence): the deep-hash
  /// chain seed, matching DeepHashSequence({}).
  static constexpr size_t kNullKeyHash = kDeepHashSeqSeed;

  struct Column {
    ShredField field;
    std::vector<uint32_t> codes;      ///< row -> dictionary code / kNullCode
    std::vector<const Node*> nodes;   ///< row -> field node / nullptr
    std::vector<std::string> dict;    ///< code -> original lexical value
    std::vector<size_t> code_hashes;  ///< code -> group-key hash
    std::vector<int64_t> ints;        ///< dense values (kInteger), 0 at null
    std::vector<double> doubles;      ///< dense values (kDecimal/kDouble)
    std::vector<uint64_t> present;    ///< null bitmap, 1 bit per row
    int64_t null_count = 0;

    bool IsPresent(size_t row) const {
      return ((present[row >> 6] >> (row & 63)) & 1) != 0;
    }
  };

  const ShredSchema& schema() const { return schema_; }
  size_t row_count() const { return rows_.size(); }
  size_t column_count() const { return columns_.size(); }

  /// The record element of row `row` and its owning (pinned) document.
  const Node* record(size_t row) const { return rows_[row]; }
  const DocumentPtr& record_document(size_t row) const {
    return row_documents_[row];
  }

  const Column& column(size_t index) const { return columns_[index]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// The row of a record node; -1 when the node is not a record of this
  /// table. O(1) — this is how batched kernels translate a slot's bound node
  /// back into a row without any hidden per-tuple state.
  int RowOf(const Node* record) const {
    auto it = row_index_.find(record);
    return it != row_index_.end() ? static_cast<int>(it->second) : -1;
  }

  /// Estimated resident bytes of the table (columns, dictionary, row index).
  int64_t bytes() const { return bytes_; }

  /// Wall time of the build (inference excluded), for the metrics scrape.
  double build_seconds() const { return build_seconds_; }

 private:
  friend std::shared_ptr<const ShreddedTable> BuildShreddedTable(
      const std::vector<DocumentPtr>& documents, const ShredSchema& schema,
      const ShredBuildContext& context);

  ShreddedTable() = default;

  ShredSchema schema_;
  std::vector<const Node*> rows_;
  std::vector<DocumentPtr> row_documents_;
  std::vector<Column> columns_;
  std::unordered_map<const Node*, uint32_t> row_index_;
  int64_t bytes_ = 0;
  double build_seconds_ = 0.0;
};

/// Materializes the column table for `schema` over `documents` (any input
/// order; rows come out documents-ascending-by-id, preorder within each).
/// Polls the context's cancellation token, charges the context's memory
/// tracker transiently while building (XQSV0004 past the budget; the charge
/// is released once the table is handed to its long-lived owner, whose
/// gauges account it instead), and passes the `shred.column_build` fault
/// site per document (docs/ROBUSTNESS.md).
std::shared_ptr<const ShreddedTable> BuildShreddedTable(
    const std::vector<DocumentPtr>& documents, const ShredSchema& schema,
    const ShredBuildContext& context);

}  // namespace xqa

#endif  // XQA_SHRED_SHREDDED_TABLE_H_

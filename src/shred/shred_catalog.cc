#include "shred/shred_catalog.h"

#include <chrono>
#include <cstdio>

#include "eval/dynamic_context.h"

namespace xqa {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(ch));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

const ShreddedTable* ShredCatalog::FindOrBuild(
    const std::string& collection, const std::string& record,
    const CollectionView& view, const ShredOptions& options,
    const ShredBuildContext& context) {
  const std::string key = collection + '\x1f' + record;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) return it->second.table.get();

  // Inference iterates the view's partition-major order (deterministic for a
  // snapshot version), which fixes the schema's column order; the build then
  // re-sorts rows into cross-document document order.
  auto start = std::chrono::steady_clock::now();
  ShredInference inference =
      InferShredSchema(view.documents, record, options, context);
  last_infer_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Entry entry;
  entry.collection = collection;
  entry.record = record;
  if (!inference.ok) {
    entry.refusal = inference.refusal;
    auto [pos, inserted] = entries_.emplace(key, std::move(entry));
    (void)inserted;
    return pos->second.table.get();
  }

  // Cancellation / budget / fault throws propagate before anything is
  // cached, so a retry rebuilds from scratch.
  entry.table = BuildShreddedTable(view.documents, inference.schema, context);
  auto [pos, inserted] = entries_.emplace(key, std::move(entry));
  (void)inserted;
  return pos->second.table.get();
}

ShredCatalog::Stats ShredCatalog::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.last_infer_seconds = last_infer_seconds_;
  for (const auto& [key, entry] : entries_) {
    if (entry.table == nullptr) {
      ++stats.refusals;
      continue;
    }
    ++stats.tables;
    stats.columns += static_cast<int64_t>(entry.table->column_count());
    stats.rows += static_cast<int64_t>(entry.table->row_count());
    stats.bytes += entry.table->bytes();
  }
  return stats;
}

std::string ShredCatalog::StatsJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.last_infer_seconds = last_infer_seconds_;
  std::string per_table = "[";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    if (entry.table == nullptr) {
      ++stats.refusals;
      continue;
    }
    ++stats.tables;
    stats.columns += static_cast<int64_t>(entry.table->column_count());
    stats.rows += static_cast<int64_t>(entry.table->row_count());
    stats.bytes += entry.table->bytes();
    if (!first) per_table += ",";
    first = false;
    per_table += "{\"collection\":\"" + JsonEscape(entry.collection) +
                 "\",\"record\":\"" + JsonEscape(entry.record) +
                 "\",\"rows\":" + std::to_string(entry.table->row_count()) +
                 ",\"columns\":" +
                 std::to_string(entry.table->column_count()) +
                 ",\"bytes\":" + std::to_string(entry.table->bytes()) +
                 ",\"build_seconds\":" +
                 std::to_string(entry.table->build_seconds()) + "}";
  }
  per_table += "]";
  std::string json = "{";
  json += "\"tables\":" + std::to_string(stats.tables);
  json += ",\"columns\":" + std::to_string(stats.columns);
  json += ",\"rows\":" + std::to_string(stats.rows);
  json += ",\"bytes\":" + std::to_string(stats.bytes);
  json += ",\"refusals\":" + std::to_string(stats.refusals);
  json += ",\"last_infer_seconds\":" + std::to_string(stats.last_infer_seconds);
  json += ",\"per_table\":" + per_table;
  json += "}";
  return json;
}

}  // namespace xqa

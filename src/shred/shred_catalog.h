#ifndef XQA_SHRED_SHRED_CATALOG_H_
#define XQA_SHRED_SHRED_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "shred/shredded_table.h"

namespace xqa {

struct CollectionView;

/// Per-snapshot cache of shredded column tables (docs/SHREDDING.md), keyed by
/// (collection, record element). A CollectionSnapshot owns one catalog; since
/// snapshots are immutable and cached per store version, a table is built at
/// most once per corpus version and shared by every query against it.
///
/// Refusals (heterogeneous corpus, mixed content, ...) are deterministic
/// functions of the corpus, so they are negatively cached too — a query
/// pattern that keeps probing an unshreddable collection pays the inference
/// pass once, not per execution. Cancellation/budget/fault aborts propagate
/// uncached: a retry with a bigger budget may succeed.
///
/// Thread-safe; service workers race FindOrBuild on a cold snapshot and the
/// first one in builds while the rest wait (the build lock is the catalog
/// mutex — coarse, but builds are once-per-version).
class ShredCatalog {
 public:
  struct Stats {
    int64_t tables = 0;
    int64_t columns = 0;
    int64_t rows = 0;
    int64_t bytes = 0;
    int64_t refusals = 0;
    double last_infer_seconds = 0.0;
  };

  /// Returns the cached table for (`collection`, `record`) over `view`,
  /// building (inference + column materialization) on first use. Returns
  /// nullptr when inference refuses — deterministically, so the refusal is
  /// cached. `context` governs only a build actually performed by this call.
  const ShreddedTable* FindOrBuild(const std::string& collection,
                                   const std::string& record,
                                   const CollectionView& view,
                                   const ShredOptions& options,
                                   const ShredBuildContext& context);

  Stats GetStats() const;

  /// JSON object for the service metrics scrape:
  /// {"tables":N,"columns":C,"rows":R,"bytes":B,"refusals":K,
  ///  "last_infer_seconds":s,"per_table":[{...}]}.
  std::string StatsJson() const;

 private:
  struct Entry {
    std::string collection;
    std::string record;
    std::shared_ptr<const ShreddedTable> table;  ///< null for a refusal
    std::string refusal;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< key: collection \x1f record
  double last_infer_seconds_ = 0.0;
};

}  // namespace xqa

#endif  // XQA_SHRED_SHRED_CATALOG_H_

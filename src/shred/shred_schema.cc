#include "shred/shred_schema.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "base/string_util.h"
#include "xdm/datetime.h"
#include "xdm/decimal.h"

namespace xqa {

namespace {

/// Cancellation poll stride for the record loops (matches the collection
/// scan's stride, eval/collection_scan.cc).
constexpr size_t kInferPollStride = 256;

ShredFieldType DetectValueType(std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return ShredFieldType::kString;
  int64_t integer_value = 0;
  if (ParseInteger(trimmed, &integer_value)) return ShredFieldType::kInteger;
  Decimal decimal_value;
  if (Decimal::Parse(trimmed, &decimal_value)) return ShredFieldType::kDecimal;
  double double_value = 0.0;
  if (ParseDouble(trimmed, &double_value)) return ShredFieldType::kDouble;
  DateTime datetime_value;
  if (DateTime::ParseDateTime(trimmed, &datetime_value)) {
    return ShredFieldType::kDateTime;
  }
  return ShredFieldType::kString;
}

/// The lattice join: numerics widen along integer -> decimal -> double,
/// anything else degrades to string.
ShredFieldType JoinTypes(ShredFieldType a, ShredFieldType b) {
  if (a == b) return a;
  auto is_numeric = [](ShredFieldType t) {
    return t == ShredFieldType::kInteger || t == ShredFieldType::kDecimal ||
           t == ShredFieldType::kDouble;
  };
  if (is_numeric(a) && is_numeric(b)) {
    auto rank = [](ShredFieldType t) {
      return t == ShredFieldType::kInteger ? 0
             : t == ShredFieldType::kDecimal ? 1
                                             : 2;
    };
    return rank(a) >= rank(b) ? a : b;
  }
  return ShredFieldType::kString;
}

void CollectRecordsByWalk(const Node* node, std::string_view record_name,
                          std::vector<const Node*>* out) {
  if (node->kind() == NodeKind::kElement && node->name() == record_name) {
    out->push_back(node);
  }
  for (const Node* child : node->children()) {
    CollectRecordsByWalk(child, record_name, out);
  }
}

/// Per-name accumulator for one pass over the corpus.
struct NameState {
  std::string name;
  bool is_attribute = false;
  bool structured = false;  ///< saw a non-scalar occurrence somewhere
  size_t present_records = 0;
  bool has_type = false;
  ShredFieldType type = ShredFieldType::kString;
};

}  // namespace

std::string_view ShredFieldTypeName(ShredFieldType type) {
  switch (type) {
    case ShredFieldType::kString: return "xs:string";
    case ShredFieldType::kInteger: return "xs:integer";
    case ShredFieldType::kDecimal: return "xs:decimal";
    case ShredFieldType::kDouble: return "xs:double";
    case ShredFieldType::kDateTime: return "xs:dateTime";
  }
  return "?";
}

int ShredSchema::FieldIndex(std::string_view name, bool is_attribute) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].is_attribute == is_attribute && fields[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool IsScalarShapedElement(const Node* element) {
  if (element->kind() != NodeKind::kElement) return false;
  if (!element->attributes().empty()) return false;
  const std::vector<Node*>& children = element->children();
  if (children.empty()) return true;
  return children.size() == 1 && children[0]->kind() == NodeKind::kText;
}

std::string_view ScalarFieldText(const Node* field) {
  if (field->kind() == NodeKind::kAttribute) return field->content();
  const std::vector<Node*>& children = field->children();
  if (children.empty()) return std::string_view();
  return children[0]->content();
}

void CollectRecords(const Document& document, std::string_view record_name,
                    std::vector<const Node*>* out) {
  NameId id = document.LookupName(record_name);
  if (id == kNameIdAbsent) return;
  if (const std::vector<Node*>* bucket = document.ElementsWithName(id)) {
    out->insert(out->end(), bucket->begin(), bucket->end());
    return;
  }
  CollectRecordsByWalk(document.root(), record_name, out);
}

ShredInference InferShredSchema(const std::vector<DocumentPtr>& documents,
                                std::string_view record_name,
                                const ShredOptions& options,
                                const ShredBuildContext& context) {
  ShredInference result;
  result.schema.record_name = std::string(record_name);

  // Per-name state in first-appearance order (the schema's column order).
  std::vector<NameState> states;
  std::unordered_map<std::string, size_t> state_index;
  auto state_of = [&](const std::string& name,
                      bool is_attribute) -> NameState& {
    std::string key = (is_attribute ? "@" : "") + name;
    auto [it, inserted] = state_index.try_emplace(key, states.size());
    if (inserted) {
      states.push_back(NameState{name, is_attribute, false, 0, false,
                                 ShredFieldType::kString});
    }
    return states[it->second];
  };

  size_t record_count = 0;
  size_t poll = 0;
  std::vector<const Node*> records;
  // Scratch for the per-record repeated-child check: (state index, count).
  std::vector<size_t> seen_in_record;

  for (const DocumentPtr& document : documents) {
    records.clear();
    CollectRecords(*document, record_name, &records);
    for (const Node* record : records) {
      if (context.cancellation != nullptr &&
          ++poll % kInferPollStride == 0) {
        context.cancellation->Check();
      }
      ++record_count;
      seen_in_record.clear();
      for (const Node* child : record->children()) {
        switch (child->kind()) {
          case NodeKind::kText:
            if (!IsAllWhitespace(child->content())) {
              result.refusal = "mixed content in <" +
                               std::string(record_name) + "> record";
              return result;
            }
            break;
          case NodeKind::kElement: {
            NameState& state = state_of(child->name(), false);
            if (!IsScalarShapedElement(child)) {
              state.structured = true;
              break;
            }
            size_t index = &state - states.data();
            if (std::find(seen_in_record.begin(), seen_in_record.end(),
                          index) != seen_in_record.end()) {
              result.refusal = "repeated scalar child <" + child->name() +
                               "> in <" + std::string(record_name) +
                               "> record";
              return result;
            }
            seen_in_record.push_back(index);
            ++state.present_records;
            ShredFieldType value_type =
                DetectValueType(ScalarFieldText(child));
            state.type = state.has_type ? JoinTypes(state.type, value_type)
                                        : value_type;
            state.has_type = true;
            break;
          }
          default:
            break;  // comments / PIs between fields are ignored
        }
      }
      for (const Node* attribute : record->attributes()) {
        NameState& state = state_of(attribute->name(), true);
        ++state.present_records;
        ShredFieldType value_type =
            DetectValueType(attribute->content());
        state.type = state.has_type ? JoinTypes(state.type, value_type)
                                    : value_type;
        state.has_type = true;
      }
    }
  }

  result.record_count = record_count;
  if (record_count == 0) {
    result.refusal =
        "no <" + std::string(record_name) + "> records in the corpus";
    return result;
  }

  size_t present_total = 0;
  for (const NameState& state : states) {
    if (state.structured || state.present_records == 0) continue;
    ShredField field;
    field.name = state.name;
    field.is_attribute = state.is_attribute;
    field.type = state.type;
    field.nullable = state.present_records < record_count;
    result.schema.fields.push_back(std::move(field));
    present_total += state.present_records;
  }
  if (result.schema.fields.empty()) {
    result.refusal = "no scalar fields in <" + std::string(record_name) +
                     "> records";
    return result;
  }

  result.coverage =
      static_cast<double>(present_total) /
      (static_cast<double>(record_count) *
       static_cast<double>(result.schema.fields.size()));
  if (result.coverage < options.homogeneity_threshold) {
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  "field coverage %.2f below homogeneity threshold %.2f",
                  result.coverage, options.homogeneity_threshold);
    result.refusal = buffer;
    return result;
  }

  result.ok = true;
  return result;
}

}  // namespace xqa

#ifndef XQA_SHRED_SHRED_SCHEMA_H_
#define XQA_SHRED_SHRED_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/cancellation.h"
#include "base/memory_tracker.h"
#include "xml/node.h"

namespace xqa {

/// The column types the shredder detects (docs/SHREDDING.md). Detection is
/// per-value from the lexical form, joined across the corpus by the type
/// lattice: integer < decimal < double among numerics, dateTime only with
/// itself, and string as the top that absorbs every mix.
enum class ShredFieldType : uint8_t {
  kString,
  kInteger,
  kDecimal,
  kDouble,
  kDateTime,
};

/// "xs:integer"-style names for diagnostics and the metrics scrape.
std::string_view ShredFieldTypeName(ShredFieldType type);

/// One scalar field of a record: a child element (`<price>9.99</price>`) or
/// an attribute of the record element itself.
struct ShredField {
  std::string name;
  bool is_attribute = false;
  ShredFieldType type = ShredFieldType::kString;
  /// True when at least one record lacks the field (the column has nulls).
  bool nullable = false;
};

/// An inferred record schema: the record element name plus its scalar fields
/// in first-appearance order (deterministic for a given corpus order).
struct ShredSchema {
  std::string record_name;
  std::vector<ShredField> fields;

  /// Index into `fields`, or -1 when no such field exists.
  int FieldIndex(std::string_view name, bool is_attribute) const;
};

/// Inference thresholds.
struct ShredOptions {
  /// Minimum average field coverage: the sum over records of schema fields
  /// present, divided by (records x fields). A corpus below this is
  /// heterogeneous — shredding would make most columns null — and inference
  /// refuses rather than building a mostly-empty table.
  double homogeneity_threshold = 0.6;
};

/// Resource governance for a schema-inference pass or a column-table build,
/// threaded from the executing query: its cancellation token (the build
/// polls it) and its memory tracker (the build's transient charge raises
/// XQSV0004 past the budget). Both borrowed and nullable.
struct ShredBuildContext {
  const CancellationToken* cancellation = nullptr;
  MemoryTracker* memory = nullptr;
};

/// Outcome of a schema-inference pass: a schema, or a named refusal.
/// Refusals are deterministic functions of the corpus — the catalog caches
/// them, unlike cancellation/budget aborts, which may succeed on retry.
struct ShredInference {
  bool ok = false;
  std::string refusal;  ///< human-readable reason when !ok
  ShredSchema schema;
  size_t record_count = 0;
  double coverage = 0.0;  ///< average field coverage actually observed
};

/// True for the element shape a column can hold losslessly: no attributes
/// and at most one child, which must be text (so the string value is exactly
/// the single text content and dictionary-code equality coincides with
/// deep-equal for same-named fields).
bool IsScalarShapedElement(const Node* element);

/// The lexical value of a field node: attribute content, or the text of a
/// scalar-shaped element ("" for an empty element). Precondition: `field` is
/// an attribute or a scalar-shaped element.
std::string_view ScalarFieldText(const Node* field);

/// Appends every element of `document` named `record_name` in preorder —
/// the same node set, in the same order, that a `//record_name` step
/// produces within one document. Uses the element-name index when built.
void CollectRecords(const Document& document, std::string_view record_name,
                    std::vector<const Node*>* out);

/// Runs schema inference over `documents` (iterated in the given order,
/// which should be a deterministic corpus order). Refuses on: no records, a
/// record with non-whitespace text content (mixed content), a scalar child
/// name repeated within one record, no scalar fields at all, or coverage
/// below the homogeneity threshold. A child name with any structured
/// occurrence (attributes, element children) anywhere in the corpus is
/// excluded from the schema but does not refuse — those subtrees simply stay
/// DOM-only.
ShredInference InferShredSchema(const std::vector<DocumentPtr>& documents,
                                std::string_view record_name,
                                const ShredOptions& options,
                                const ShredBuildContext& context);

}  // namespace xqa

#endif  // XQA_SHRED_SHRED_SCHEMA_H_

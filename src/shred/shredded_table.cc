#include "shred/shredded_table.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "base/fault_injection.h"
#include "base/string_util.h"
#include "xdm/decimal.h"

namespace xqa {

namespace {

constexpr size_t kBuildPollStride = 256;
/// Charge granularity while building: re-point the scoped charge once per
/// this many rows so the tracker sees growth without per-row atomics.
constexpr size_t kChargeStride = 4096;

int64_t EstimateColumnBytes(const ShreddedTable::Column& column) {
  int64_t bytes = 0;
  bytes += static_cast<int64_t>(column.codes.size()) * sizeof(uint32_t);
  bytes += static_cast<int64_t>(column.nodes.size()) * sizeof(const Node*);
  bytes += static_cast<int64_t>(column.code_hashes.size()) * sizeof(size_t);
  bytes += static_cast<int64_t>(column.ints.size()) * sizeof(int64_t);
  bytes += static_cast<int64_t>(column.doubles.size()) * sizeof(double);
  bytes += static_cast<int64_t>(column.present.size()) * sizeof(uint64_t);
  for (const std::string& value : column.dict) {
    bytes += static_cast<int64_t>(value.size()) + 48;  // entry overhead
  }
  return bytes;
}

}  // namespace

std::shared_ptr<const ShreddedTable> BuildShreddedTable(
    const std::vector<DocumentPtr>& documents, const ShredSchema& schema,
    const ShredBuildContext& context) {
  auto start = std::chrono::steady_clock::now();
  auto table = std::shared_ptr<ShreddedTable>(new ShreddedTable());
  table->schema_ = schema;

  // Rows must come out in the order `collection(...)//record` yields after
  // SortDocumentOrderAndDedup: documents ascending by id, preorder within.
  std::vector<DocumentPtr> ordered = documents;
  std::sort(ordered.begin(), ordered.end(),
            [](const DocumentPtr& a, const DocumentPtr& b) {
              return a->id() < b->id();
            });

  const size_t field_count = schema.fields.size();
  table->columns_.resize(field_count);
  std::vector<std::unordered_map<std::string_view, uint32_t>> interns(
      field_count);
  for (size_t c = 0; c < field_count; ++c) {
    table->columns_[c].field = schema.fields[c];
  }

  // Transient build charge — released when this function returns; the
  // long-lived owner (the snapshot catalog) accounts the table in its gauges.
  ScopedMemoryCharge charge(context.memory);

  size_t poll = 0;
  std::vector<const Node*> records;
  for (const DocumentPtr& document : ordered) {
    XQA_FAULT_POINT("shred.column_build", ErrorCode::kXQSV0004);
    records.clear();
    CollectRecords(*document, schema.record_name, &records);
    for (const Node* record : records) {
      if (context.cancellation != nullptr &&
          ++poll % kBuildPollStride == 0) {
        context.cancellation->Check();
      }
      const size_t row = table->rows_.size();
      table->rows_.push_back(record);
      table->row_documents_.push_back(document);
      table->row_index_.emplace(record, static_cast<uint32_t>(row));

      for (size_t c = 0; c < field_count; ++c) {
        ShreddedTable::Column& column = table->columns_[c];
        const ShredField& field = column.field;

        const Node* field_node = nullptr;
        if (field.is_attribute) {
          field_node = record->FindAttribute(field.name);
        } else {
          for (const Node* child : record->children()) {
            if (child->kind() == NodeKind::kElement &&
                child->name() == field.name) {
              field_node = child;
              break;
            }
          }
        }

        if ((row & 63) == 0) column.present.push_back(0);
        column.nodes.push_back(field_node);
        if (field_node == nullptr) {
          column.codes.push_back(ShreddedTable::kNullCode);
          ++column.null_count;
          if (field.type == ShredFieldType::kInteger) {
            column.ints.push_back(0);
          } else if (field.type == ShredFieldType::kDecimal ||
                     field.type == ShredFieldType::kDouble) {
            column.doubles.push_back(0.0);
          }
          continue;
        }
        column.present[row >> 6] |= uint64_t{1} << (row & 63);

        std::string_view text = ScalarFieldText(field_node);
        auto [it, inserted] =
            interns[c].try_emplace(text, static_cast<uint32_t>(
                                             column.dict.size()));
        if (inserted) {
          // `text` points into document content, pinned by row_documents_
          // for at least the life of this local intern map.
          column.dict.emplace_back(text);
          column.code_hashes.push_back(CombineDeepHash(
              kDeepHashSeqSeed, DeepHashNode(field_node)));
        }
        const uint32_t code = it->second;
        column.codes.push_back(code);

        if (field.type == ShredFieldType::kInteger) {
          int64_t value = 0;
          ParseInteger(TrimWhitespace(text), &value);
          column.ints.push_back(value);
        } else if (field.type == ShredFieldType::kDecimal ||
                   field.type == ShredFieldType::kDouble) {
          double value = 0.0;
          Decimal decimal_value;
          if (Decimal::Parse(TrimWhitespace(text), &decimal_value)) {
            value = decimal_value.ToDouble();
          } else {
            ParseDouble(TrimWhitespace(text), &value);
          }
          column.doubles.push_back(value);
        }
      }

      if (row % kChargeStride == 0) {
        int64_t bytes = 0;
        for (const ShreddedTable::Column& column : table->columns_) {
          bytes += EstimateColumnBytes(column);
        }
        bytes += static_cast<int64_t>(table->rows_.size()) *
                 (sizeof(const Node*) + sizeof(DocumentPtr) + 48);
        charge.Reset(bytes);
      }
    }
  }

  int64_t bytes = 0;
  for (const ShreddedTable::Column& column : table->columns_) {
    bytes += EstimateColumnBytes(column);
  }
  bytes += static_cast<int64_t>(table->rows_.size()) *
           (sizeof(const Node*) + sizeof(DocumentPtr) + 48);
  charge.Reset(bytes);
  table->bytes_ = bytes;
  table->build_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return table;
}

}  // namespace xqa

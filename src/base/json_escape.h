#ifndef XQA_BASE_JSON_ESCAPE_H_
#define XQA_BASE_JSON_ESCAPE_H_

#include <string>
#include <string_view>

namespace xqa {

/// Escapes `text` for embedding inside a JSON string literal (RFC 8259):
/// backslash, double quote, and control characters below 0x20 (the common
/// ones as \b \f \n \r \t, the rest as \u00XX). Everything else — including
/// multi-byte UTF-8 — passes through unchanged. Every hand-rolled JSON
/// emitter in the tree (metrics scrapes, storage stats) must route
/// user-influenced strings such as collection names, URIs, and paths through
/// this, or a name containing a quote corrupts the whole scrape.
std::string JsonEscape(std::string_view text);

}  // namespace xqa

#endif  // XQA_BASE_JSON_ESCAPE_H_

// Sanitizer detection. ASan instrumentation multiplies stack-frame sizes,
// so recursion guards tuned for production builds overflow the real stack
// before they fire; code with such guards keys its limits off XQA_UNDER_ASAN.
#ifndef XQA_BASE_SANITIZER_H_
#define XQA_BASE_SANITIZER_H_

#if defined(__SANITIZE_ADDRESS__)  // GCC
#define XQA_UNDER_ASAN 1
#elif defined(__has_feature)  // Clang
#if __has_feature(address_sanitizer)
#define XQA_UNDER_ASAN 1
#endif
#endif

#endif  // XQA_BASE_SANITIZER_H_

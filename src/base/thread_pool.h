#ifndef XQA_BASE_THREAD_POOL_H_
#define XQA_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xqa {

/// A fixed-size worker pool shared by every query in the process (see
/// ThreadPool::Shared). Work is submitted either as fire-and-forget tasks or
/// through ParallelFor, the building block of the engine's deterministic
/// intra-query parallelism (docs/PARALLELISM.md).
///
/// ParallelFor never blocks a pool thread on another task's completion: the
/// calling thread participates as worker 0 and drains the index space itself
/// if no pool thread is free, so nested or concurrent ParallelFor calls
/// cannot deadlock the pool.
class ThreadPool {
 public:
  /// Creates `num_threads` worker threads. Zero is valid: every ParallelFor
  /// then runs inline on the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// The process-wide pool, sized to hardware_concurrency - 1 (the caller of
  /// ParallelFor is the remaining worker). Created on first use and
  /// intentionally leaked so that worker threads outlive static destruction.
  static ThreadPool& Shared();

  /// Enqueues a task for any worker thread.
  void Submit(std::function<void()> task);

  /// Runs fn(worker, index) for every index in [0, count). `worker`
  /// identifies the executing lane in [0, max_workers): a lane never runs
  /// two indexes concurrently, so per-lane scratch state (forked evaluation
  /// contexts, private stats sinks) needs no locking. The caller always
  /// participates as lane 0; at most min(max_workers, size() + 1) lanes run
  /// concurrently — on a pool with no threads the caller executes every
  /// index itself, so callers may size lanes from the *requested*
  /// parallelism and rely on the same code path (and the same result)
  /// regardless of how many threads actually exist. Indexes are claimed as
  /// contiguous morsels from an atomic cursor, so lane-to-index assignment
  /// is nondeterministic — callers must write results into per-index slots.
  ///
  /// Exceptions are deterministic: if any fn(worker, i) throws, the
  /// exception thrown for the smallest such i is rethrown on the caller
  /// after every lane has drained, exactly as serial execution would have
  /// reported it. Indexes at or above the smallest failing index may be
  /// skipped; all smaller indexes are always attempted.
  void ParallelFor(size_t count, int max_workers,
                   const std::function<void(int worker, size_t index)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace xqa

#endif  // XQA_BASE_THREAD_POOL_H_

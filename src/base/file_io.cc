#include "base/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "base/error.h"

namespace xqa {

namespace {

[[noreturn]] void ThrowIo(const std::string& what, const std::string& path) {
  ThrowError(ErrorCode::kXQSV0007,
             "storage I/O: " + what + " '" + path + "': " +
                 std::strerror(errno));
}

/// Parent directory of `path` ("." when none) — the directory whose entry
/// list must be fsynced for a rename/create in it to be durable.
std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void FsyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) ThrowIo("open directory for fsync", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) ThrowIo("fsync directory", dir);
}

void WriteAll(int fd, const char* data, size_t size, const std::string& path) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowIo("write", path);
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
}

}  // namespace

std::string ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) ThrowIo("open", path);
  std::string out;
  struct stat st;
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    out.reserve(static_cast<size_t>(st.st_size));
  }
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ThrowIo("read", path);
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

uint64_t FileSizeOf(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) ThrowIo("stat", path);
  return static_cast<uint64_t>(st.st_size);
}

void CreateDirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    ThrowError(ErrorCode::kXQSV0007, "storage I/O: create directories '" +
                                         path + "': " + ec.message());
  }
}

std::vector<std::string> ListDirectory(const std::string& path) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
    names.push_back(entry.path().filename().string());
  }
  if (ec) {
    ThrowError(ErrorCode::kXQSV0007, "storage I/O: list directory '" + path +
                                         "': " + ec.message());
  }
  std::sort(names.begin(), names.end());
  return names;
}

void RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);  // best effort; see header
}

void WriteFileDurable(const std::string& path, std::string_view data,
                      FsyncPolicy policy) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ThrowIo("create temp", tmp);
  try {
    WriteAll(fd, data.data(), data.size(), tmp);
    if (policy == FsyncPolicy::kAlways && ::fsync(fd) != 0) {
      ThrowIo("fsync", tmp);
    }
  } catch (...) {
    ::close(fd);
    RemoveFileIfExists(tmp);
    throw;
  }
  if (::close(fd) != 0) {
    RemoveFileIfExists(tmp);
    ThrowIo("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    RemoveFileIfExists(tmp);
    ThrowIo("rename", path);
  }
  if (policy == FsyncPolicy::kAlways) FsyncDirectory(ParentDir(path));
}

AppendFile::~AppendFile() { Close(); }

void AppendFile::Create(const std::string& path, std::string_view header,
                        FsyncPolicy policy) {
  Close();
  path_ = path;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) ThrowIo("create", path);
  size_ = 0;
  broken_ = false;
  Append(header, policy);
  // Make the file's existence durable too: a journal that vanishes with the
  // directory entry would silently drop every record in it.
  if (policy == FsyncPolicy::kAlways) FsyncDirectory(ParentDir(path));
}

void AppendFile::OpenTruncated(const std::string& path, uint64_t valid_size) {
  Close();
  path_ = path;
  fd_ = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd_ < 0) ThrowIo("open", path);
  if (::ftruncate(fd_, static_cast<off_t>(valid_size)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    Close();
    ThrowIo("truncate to valid prefix", path);
  }
  size_ = valid_size;
  broken_ = false;
}

void AppendFile::Append(std::string_view data, FsyncPolicy policy) {
  if (fd_ < 0 || broken_) {
    ThrowError(ErrorCode::kXQSV0007,
               "storage I/O: append to unusable journal '" + path_ + "'");
  }
  const char* p = data.data();
  size_t remaining = data.size();
  while (remaining > 0) {
    ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Roll the partial record back out so the live file never ends
      // mid-record; if that fails too, the tail is garbage — go broken.
      if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0 ||
          ::lseek(fd_, 0, SEEK_END) < 0) {
        broken_ = true;
      }
      ThrowIo("append", path_);
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  size_ += data.size();
  if (policy == FsyncPolicy::kAlways && ::fsync(fd_) != 0) {
    ThrowIo("fsync", path_);
  }
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace xqa

#include "base/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace xqa {

ThreadPool::ThreadPool(int num_threads) {
  threads_.reserve(static_cast<size_t>(std::max(num_threads, 0)));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 2;  // unknown: assume a small multicore
    return new ThreadPool(static_cast<int>(hw) - 1);
  }();
  return *pool;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, and no work left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor call. Heap-allocated and shared with the
/// enqueued lane tasks so a lane that starts after the call already returned
/// (only possible once the cursor is exhausted) still touches valid memory.
struct ForState {
  explicit ForState(size_t count) : count(count) {}

  const size_t count;
  std::atomic<size_t> cursor{0};
  /// Smallest index that has thrown so far; indexes at or above it are
  /// skipped (their outcome cannot affect the deterministic result).
  std::atomic<size_t> first_error{SIZE_MAX};

  std::mutex mutex;
  std::condition_variable done;
  int active_helpers = 0;
  std::exception_ptr error;  ///< the exception thrown at `first_error`

  void Record(size_t index, std::exception_ptr exception) {
    std::lock_guard<std::mutex> lock(mutex);
    if (index < first_error.load(std::memory_order_relaxed)) {
      first_error.store(index, std::memory_order_relaxed);
      error = std::move(exception);
    }
  }
};

void DrainLanes(ForState* state, size_t grain, int worker,
                const std::function<void(int, size_t)>& fn) {
  for (;;) {
    size_t begin = state->cursor.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= state->count) break;
    // Morsels are claimed in ascending begin order, so once a morsel starts
    // past the earliest failure every later one does too.
    if (begin >= state->first_error.load(std::memory_order_relaxed)) break;
    size_t end = std::min(begin + grain, state->count);
    for (size_t i = begin; i < end; ++i) {
      if (i >= state->first_error.load(std::memory_order_relaxed)) break;
      try {
        fn(worker, i);
      } catch (...) {
        state->Record(i, std::current_exception());
      }
    }
  }
}

}  // namespace

void ThreadPool::ParallelFor(size_t count, int max_workers,
                             const std::function<void(int, size_t)>& fn) {
  if (count == 0) return;
  // Lanes (distinct worker ids handed to `fn`) are bounded by max_workers;
  // helper tasks are additionally bounded by the pool's thread count so a
  // task never waits for a thread that does not exist. On a pool with no
  // threads the caller runs every index itself — the caller's algorithm
  // (per-lane scratch, chunked partitions) still executes unchanged, which
  // keeps parallel code paths testable on single-core hosts.
  int helpers = std::min(max_workers - 1, size());
  if (helpers <= 0) {
    // Run in place: ascending order, exceptions propagate directly (the
    // first failing index throws, matching the parallel contract).
    for (size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  int workers = helpers + 1;
  size_t grain =
      std::max<size_t>(1, count / (static_cast<size_t>(workers) * 8));
  auto state = std::make_shared<ForState>(count);
  state->active_helpers = helpers;
  for (int w = 1; w <= helpers; ++w) {
    // The lambda copies the shared state but captures `fn` by pointer: the
    // caller blocks below until every helper finishes, so `fn` stays alive.
    const auto* fn_ptr = &fn;
    Submit([state, grain, w, fn_ptr] {
      DrainLanes(state.get(), grain, w, *fn_ptr);
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->active_helpers == 0) state->done.notify_all();
    });
  }
  DrainLanes(state.get(), grain, /*worker=*/0, fn);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->active_helpers == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace xqa

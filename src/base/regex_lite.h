#ifndef XQA_BASE_REGEX_LITE_H_
#define XQA_BASE_REGEX_LITE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xqa {

namespace regex_internal {
struct Node;
}

/// A small backtracking regular-expression engine implementing the subset of
/// XML Schema / XPath regular expressions used by fn:matches, fn:replace,
/// and fn:tokenize:
///
///   literals, '.', escapes \d \D \w \W \s \S \n \r \t and \<punct>,
///   character classes [abc], [^a-z], ranges; anchors ^ $;
///   greedy quantifiers * + ? {m} {m,} {m,n}; alternation |;
///   capturing groups (...) with $1..$9 references in replacements.
///
/// Supported flags: "i" (case-insensitive), "s" (dot matches newline),
/// "q" (pattern is a literal string). Semantics are leftmost, greedy,
/// backtracking (PCRE-style) — byte-oriented, suitable for the engine's
/// ASCII-dominant workloads.
class RegexLite {
 public:
  /// Compiles a pattern; throws XQueryError(FORX0002) on syntax errors or
  /// unsupported constructs.
  static RegexLite Compile(std::string_view pattern,
                           std::string_view flags = "");

  RegexLite(RegexLite&&) noexcept;
  RegexLite& operator=(RegexLite&&) noexcept;
  ~RegexLite();

  /// True if the pattern matches anywhere in `text` (fn:matches semantics).
  bool Search(std::string_view text) const;

  /// True if the pattern matches the whole of `text`.
  bool FullMatch(std::string_view text) const;

  /// Replaces every non-overlapping match with `replacement`, expanding
  /// $1..$9 group references and the \$ / \\ escapes. Throws FORX0003 when
  /// the pattern matches the empty string (per fn:replace).
  std::string Replace(std::string_view text,
                      std::string_view replacement) const;

  /// Splits `text` at every match (fn:tokenize semantics: a leading match
  /// yields a leading empty token; no trailing empty token for a trailing
  /// match is suppressed — matches the W3C rules). Throws FORX0003 when the
  /// pattern matches the empty string.
  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  RegexLite();

  struct Match {
    size_t begin;
    size_t end;
    std::vector<std::pair<size_t, size_t>> groups;
  };

  /// Finds the leftmost match starting at or after `from`; false if none.
  bool Find(std::string_view text, size_t from, Match* match) const;

  std::unique_ptr<regex_internal::Node> root_;
  int group_count_ = 0;
  bool case_insensitive_ = false;
  bool dot_all_ = false;
};

}  // namespace xqa

#endif  // XQA_BASE_REGEX_LITE_H_

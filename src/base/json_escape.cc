#include "base/json_escape.h"

#include <cstdio>

namespace xqa {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace xqa

#ifndef XQA_BASE_FAULT_INJECTION_H_
#define XQA_BASE_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/error.h"

/// Deterministic fault injection (docs/ROBUSTNESS.md).
///
/// A fault point is a named site on a failure path — an allocation the
/// memory tracker would veto, a compile step, a document load, a service
/// enqueue — declared as
///
///   XQA_FAULT_POINT("flwor.tuple_alloc", ErrorCode::kXQSV0004);
///
/// In a normal build the macro compiles to nothing (zero instructions, zero
/// branches), so production binaries carry no trace of the framework.
/// Configuring with -DXQA_FAULTS=ON compiles the hooks in; the chaos tests
/// then run a workload once in *record* mode to discover every reachable
/// site, and re-run it once per site with that site armed, asserting the
/// typed error propagates and every invariant (tracker balance, cache
/// integrity, service liveness) holds after the unwind.
///
/// Tripping is deterministic: a site trips on its Nth hit (ArmSite), or the
/// Nth hit across all sites (ArmNth) for seeded sweeps that do not know site
/// names in advance. Thread-safe — sites are hit from service workers and
/// parallel FLWOR lanes concurrently.

#if defined(XQA_FAULTS_ENABLED)
#define XQA_FAULT_POINT(site, code) ::xqa::fault::Hit(site, code)
#else
#define XQA_FAULT_POINT(site, code) ((void)0)
#endif

namespace xqa::fault {

/// Counters for one site, reported by Sites().
struct SiteInfo {
  std::string name;
  ErrorCode code = ErrorCode::kOk;  ///< error the site raises when tripped
  uint64_t hits = 0;
  uint64_t trips = 0;
};

/// The body behind XQA_FAULT_POINT. Records the hit; throws XQueryError
/// with `code` and an "injected fault at <site>" message when this hit
/// matches the armed trigger. No-op (beyond counting) when disarmed.
void Hit(const char* site, ErrorCode code);

/// Arms `site` to trip on its `countdown`-th hit from now (1 = next hit).
void ArmSite(const std::string& site, uint64_t countdown = 1);

/// Arms the `countdown`-th hit of any site from now.
void ArmNth(uint64_t countdown);

/// Disarms everything; recording stays on.
void Disarm();

/// Clears counters and the recorded site set (and disarms).
void Reset();

/// Every site hit since the last Reset, with counters, sorted by name. This
/// is the sweep's work list: run the workload once, then iterate.
std::vector<SiteInfo> Sites();

/// Total hits / trips since the last Reset (exposed through
/// ServiceMetrics::MetricsJson as the "faults" block).
uint64_t TotalHits();
uint64_t TotalTrips();

/// True when the framework is compiled in (XQA_FAULTS=ON builds).
constexpr bool Enabled() {
#if defined(XQA_FAULTS_ENABLED)
  return true;
#else
  return false;
#endif
}

}  // namespace xqa::fault

#endif  // XQA_BASE_FAULT_INJECTION_H_

#include "base/memory_tracker.h"

#include <algorithm>

namespace xqa {

MemoryTracker::MemoryTracker(std::string label, int64_t limit_bytes,
                             MemoryTracker* parent)
    : label_(std::move(label)),
      limit_(limit_bytes > 0 ? limit_bytes : 0),
      parent_(parent) {}

MemoryTracker::~MemoryTracker() {
  // Return the whole reservation, squaring the parent ledger even when the
  // query unwound mid-charge. This is the invariant the chaos sweep asserts:
  // after a request's tracker dies, the root balance is exactly what it was
  // before the request.
  if (parent_ != nullptr) {
    parent_->Release(parent_reserved_.load(std::memory_order_relaxed));
  }
}

void MemoryTracker::ReserveFromParent(int64_t needed) {
  // Round the shortfall up to whole chunks so the parent's atomics are
  // touched once per kReservationChunk of growth, not once per charge.
  int64_t reserved = parent_reserved_.load(std::memory_order_relaxed);
  while (reserved < needed) {
    int64_t shortfall = needed - reserved;
    int64_t grab =
        ((shortfall + kReservationChunk - 1) / kReservationChunk) *
        kReservationChunk;
    if (parent_reserved_.compare_exchange_weak(reserved, reserved + grab,
                                               std::memory_order_relaxed)) {
      try {
        parent_->Charge(grab);
      } catch (...) {
        parent_reserved_.fetch_sub(grab, std::memory_order_relaxed);
        throw;
      }
      return;
    }
    // Lost the race: another lane extended the reservation; re-check.
  }
}

void MemoryTracker::Charge(int64_t bytes) {
  if (bytes <= 0) return;
  int64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ > 0 && now > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    budget_failures_.fetch_add(1, std::memory_order_relaxed);
    ThrowError(ErrorCode::kXQSV0004,
               "memory budget exceeded: '" + label_ + "' needs " +
                   std::to_string(now) + " bytes, budget is " +
                   std::to_string(limit_));
  }
  if (parent_ != nullptr &&
      now > parent_reserved_.load(std::memory_order_relaxed)) {
    try {
      ReserveFromParent(now);
    } catch (...) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      throw;
    }
  }
  // Monotonic peak (racy max is fine — relaxed CAS loop).
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Release(int64_t bytes) {
  if (bytes <= 0) return;
  int64_t before = used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (before < bytes) {
    // Over-release: clamp back to zero rather than going negative. The
    // destructor settles the parent from the reservation counter, so this
    // cannot leak ancestor budget.
    used_.fetch_add(bytes - before, std::memory_order_relaxed);
  }
  // The parent reservation is intentionally kept: requests are short-lived
  // and return it wholesale at destruction.
}

bool MemoryTracker::WouldExceed(int64_t bytes) const {
  if (limit_ > 0 && used() + bytes > limit_) return true;
  return parent_ != nullptr && parent_->WouldExceed(bytes);
}

}  // namespace xqa

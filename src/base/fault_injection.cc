#include "base/fault_injection.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>

namespace xqa::fault {

namespace {

struct SiteState {
  ErrorCode code = ErrorCode::kOk;
  uint64_t hits = 0;
  uint64_t trips = 0;
  /// 0 = disarmed; N trips on the Nth hit from arming.
  uint64_t countdown = 0;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, SiteState> sites;
  uint64_t any_countdown = 0;  ///< ArmNth trigger; 0 = disarmed
  uint64_t total_hits = 0;
  uint64_t total_trips = 0;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Fast-path gate: when nothing is armed, Hit takes one relaxed load plus
/// the (mutexed) recording bump. Armed state is rare — tests only.
std::atomic<bool> g_armed{false};

}  // namespace

void Hit(const char* site, ErrorCode code) {
  Registry& registry = GetRegistry();
  bool trip = false;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    SiteState& state = registry.sites[site];
    state.code = code;
    ++state.hits;
    ++registry.total_hits;
    if (g_armed.load(std::memory_order_relaxed)) {
      if (state.countdown > 0 && --state.countdown == 0) trip = true;
      if (registry.any_countdown > 0 && --registry.any_countdown == 0) {
        trip = true;
      }
      if (trip) {
        ++state.trips;
        ++registry.total_trips;
      }
    }
  }
  if (trip) {
    ThrowError(code, std::string("injected fault at ") + site);
  }
}

void ArmSite(const std::string& site, uint64_t countdown) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites[site].countdown = countdown;
  g_armed.store(true, std::memory_order_relaxed);
}

void ArmNth(uint64_t countdown) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.any_countdown = countdown;
  g_armed.store(true, std::memory_order_relaxed);
}

void Disarm() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& [name, state] : registry.sites) state.countdown = 0;
  registry.any_countdown = 0;
  g_armed.store(false, std::memory_order_relaxed);
}

void Reset() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites.clear();
  registry.any_countdown = 0;
  registry.total_hits = 0;
  registry.total_trips = 0;
  g_armed.store(false, std::memory_order_relaxed);
}

std::vector<SiteInfo> Sites() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<SiteInfo> out;
  out.reserve(registry.sites.size());
  for (const auto& [name, state] : registry.sites) {
    out.push_back(SiteInfo{name, state.code, state.hits, state.trips});
  }
  return out;
}

uint64_t TotalHits() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.total_hits;
}

uint64_t TotalTrips() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.total_trips;
}

}  // namespace xqa::fault

#include "base/regex_lite.h"

#include <cctype>
#include <functional>

#include "base/error.h"

namespace xqa {

namespace regex_internal {

enum class NodeType : uint8_t {
  kChar,        ///< one literal character
  kAny,         ///< '.'
  kClass,       ///< character class
  kConcat,      ///< children in sequence
  kAlternate,   ///< children as alternatives
  kRepeat,      ///< child repeated min..max (max = -1: unbounded), greedy
  kGroup,       ///< capturing group
  kAnchorStart, ///< ^
  kAnchorEnd,   ///< $
};

struct ClassRange {
  unsigned char lo;
  unsigned char hi;
};

struct Node {
  NodeType type;
  char ch = 0;                      // kChar
  bool negated = false;             // kClass
  std::vector<ClassRange> ranges;   // kClass
  std::vector<std::unique_ptr<Node>> children;
  int min = 0;                      // kRepeat
  int max = -1;                     // kRepeat
  int group_index = 0;              // kGroup
};

namespace {

using NodePtr = std::unique_ptr<Node>;

[[noreturn]] void BadPattern(const std::string& message) {
  ThrowError(ErrorCode::kFORX0002, "invalid regular expression: " + message);
}

/// Recursive-descent regex parser.
class PatternParser {
 public:
  PatternParser(std::string_view pattern, bool literal)
      : pattern_(pattern), literal_(literal) {}

  NodePtr Parse(int* group_count) {
    if (literal_) {
      auto concat = std::make_unique<Node>();
      concat->type = NodeType::kConcat;
      for (char c : pattern_) {
        auto ch = std::make_unique<Node>();
        ch->type = NodeType::kChar;
        ch->ch = c;
        concat->children.push_back(std::move(ch));
      }
      *group_count = 0;
      return concat;
    }
    NodePtr root = ParseAlternation();
    if (pos_ != pattern_.size()) BadPattern("unexpected ')'");
    *group_count = group_count_;
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pos_ < pattern_.size() ? pattern_[pos_] : '\0'; }
  char Next() { return pattern_[pos_++]; }

  NodePtr ParseAlternation() {
    NodePtr first = ParseConcat();
    if (Peek() != '|') return first;
    auto alt = std::make_unique<Node>();
    alt->type = NodeType::kAlternate;
    alt->children.push_back(std::move(first));
    while (Peek() == '|') {
      Next();
      alt->children.push_back(ParseConcat());
    }
    return alt;
  }

  NodePtr ParseConcat() {
    auto concat = std::make_unique<Node>();
    concat->type = NodeType::kConcat;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      concat->children.push_back(ParseQuantified());
    }
    return concat;
  }

  NodePtr ParseQuantified() {
    NodePtr atom = ParseAtom();
    while (!AtEnd()) {
      char c = Peek();
      int min, max;
      if (c == '*') {
        min = 0; max = -1; Next();
      } else if (c == '+') {
        min = 1; max = -1; Next();
      } else if (c == '?') {
        min = 0; max = 1; Next();
      } else if (c == '{') {
        size_t save = pos_;
        Next();
        if (!ParseBounds(&min, &max)) {
          pos_ = save;  // not a quantifier: '{' is a literal
          break;
        }
      } else {
        break;
      }
      auto repeat = std::make_unique<Node>();
      repeat->type = NodeType::kRepeat;
      repeat->min = min;
      repeat->max = max;
      repeat->children.push_back(std::move(atom));
      atom = std::move(repeat);
    }
    return atom;
  }

  bool ParseBounds(int* min, int* max) {
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    int lo = 0;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      lo = lo * 10 + (Next() - '0');
      if (lo > 10000) BadPattern("quantifier bound too large");
    }
    int hi = lo;
    if (Peek() == ',') {
      Next();
      if (Peek() == '}') {
        hi = -1;
      } else {
        hi = 0;
        while (std::isdigit(static_cast<unsigned char>(Peek()))) {
          hi = hi * 10 + (Next() - '0');
          if (hi > 10000) BadPattern("quantifier bound too large");
        }
        if (hi < lo) BadPattern("quantifier bounds out of order");
      }
    }
    if (Peek() != '}') return false;
    Next();
    *min = lo;
    *max = hi;
    return true;
  }

  NodePtr ParseAtom() {
    if (AtEnd()) BadPattern("dangling operator");
    char c = Next();
    switch (c) {
      case '(': {
        auto group = std::make_unique<Node>();
        group->type = NodeType::kGroup;
        group->group_index = ++group_count_;
        group->children.push_back(ParseAlternation());
        if (Peek() != ')') BadPattern("missing ')'");
        Next();
        return group;
      }
      case '[':
        return ParseClass();
      case '.': {
        auto any = std::make_unique<Node>();
        any->type = NodeType::kAny;
        return any;
      }
      case '^': {
        auto anchor = std::make_unique<Node>();
        anchor->type = NodeType::kAnchorStart;
        return anchor;
      }
      case '$': {
        auto anchor = std::make_unique<Node>();
        anchor->type = NodeType::kAnchorEnd;
        return anchor;
      }
      case '\\':
        return ParseEscape();
      case '*':
      case '+':
      case '?':
        BadPattern("quantifier with nothing to repeat");
      case ')':
        BadPattern("unmatched ')'");
      default: {
        auto ch = std::make_unique<Node>();
        ch->type = NodeType::kChar;
        ch->ch = c;
        return ch;
      }
    }
  }

  static void AddNamedClassRanges(char name, Node* node) {
    switch (name) {
      case 'd':
        node->ranges.push_back({'0', '9'});
        break;
      case 'w':
        node->ranges.push_back({'a', 'z'});
        node->ranges.push_back({'A', 'Z'});
        node->ranges.push_back({'0', '9'});
        node->ranges.push_back({'_', '_'});
        break;
      case 's':
        node->ranges.push_back({' ', ' '});
        node->ranges.push_back({'\t', '\t'});
        node->ranges.push_back({'\n', '\n'});
        node->ranges.push_back({'\r', '\r'});
        break;
      default:
        BadPattern("unknown class escape");
    }
  }

  NodePtr ParseEscape() {
    if (AtEnd()) BadPattern("trailing backslash");
    char c = Next();
    auto node = std::make_unique<Node>();
    switch (c) {
      case 'd': case 'w': case 's':
        node->type = NodeType::kClass;
        AddNamedClassRanges(c, node.get());
        return node;
      case 'D': case 'W': case 'S':
        node->type = NodeType::kClass;
        node->negated = true;
        AddNamedClassRanges(static_cast<char>(std::tolower(c)), node.get());
        return node;
      case 'n': node->type = NodeType::kChar; node->ch = '\n'; return node;
      case 'r': node->type = NodeType::kChar; node->ch = '\r'; return node;
      case 't': node->type = NodeType::kChar; node->ch = '\t'; return node;
      default:
        if (std::isalnum(static_cast<unsigned char>(c))) {
          BadPattern(std::string("unsupported escape \\") + c);
        }
        node->type = NodeType::kChar;
        node->ch = c;
        return node;
    }
  }

  NodePtr ParseClass() {
    auto node = std::make_unique<Node>();
    node->type = NodeType::kClass;
    if (Peek() == '^') {
      Next();
      node->negated = true;
    }
    bool first = true;
    while (true) {
      if (AtEnd()) BadPattern("unterminated character class");
      char c = Next();
      if (c == ']' && !first) break;
      first = false;
      if (c == '\\') {
        if (AtEnd()) BadPattern("trailing backslash in class");
        char e = Next();
        switch (e) {
          case 'd': case 'w': case 's':
            AddNamedClassRanges(e, node.get());
            continue;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default: c = e; break;
        }
      }
      if (Peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        Next();  // '-'
        char hi = Next();
        if (hi == '\\') {
          if (AtEnd()) BadPattern("trailing backslash in class");
          hi = Next();
        }
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(c)) {
          BadPattern("character range out of order");
        }
        node->ranges.push_back({static_cast<unsigned char>(c),
                                static_cast<unsigned char>(hi)});
      } else {
        node->ranges.push_back({static_cast<unsigned char>(c),
                                static_cast<unsigned char>(c)});
      }
    }
    return node;
  }

  std::string_view pattern_;
  bool literal_;
  size_t pos_ = 0;
  int group_count_ = 0;
};

/// Backtracking matcher over the node tree.
class Matcher {
 public:
  Matcher(const Node* root, std::string_view text, bool case_insensitive,
          bool dot_all, int group_count)
      : root_(root),
        text_(text),
        case_insensitive_(case_insensitive),
        dot_all_(dot_all),
        groups_(static_cast<size_t>(group_count) + 1,
                {std::string_view::npos, std::string_view::npos}) {}

  /// Attempts a match anchored at `start`; on success sets *end. With
  /// `require_end`, only matches consuming the whole text are accepted
  /// (the backtracking continuation keeps exploring otherwise).
  bool MatchAt(size_t start, size_t* end, bool require_end = false) {
    steps_ = 0;
    bool ok = MatchNode(root_, start, [&](size_t pos) {
      if (require_end && pos != text_.size()) return false;
      *end = pos;
      return true;
    });
    return ok;
  }

  const std::vector<std::pair<size_t, size_t>>& groups() const {
    return groups_;
  }

 private:
  using Cont = std::function<bool(size_t)>;

  char Fold(char c) const {
    return case_insensitive_
               ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
               : c;
  }

  bool MatchNode(const Node* node, size_t pos, const Cont& cont) {
    if (++steps_ > kMaxSteps) {
      ThrowError(ErrorCode::kFORX0002, "regular expression too complex");
    }
    switch (node->type) {
      case NodeType::kChar:
        if (pos < text_.size() && Fold(text_[pos]) == Fold(node->ch)) {
          return cont(pos + 1);
        }
        return false;
      case NodeType::kAny:
        if (pos < text_.size() && (dot_all_ || text_[pos] != '\n')) {
          return cont(pos + 1);
        }
        return false;
      case NodeType::kClass: {
        if (pos >= text_.size()) return false;
        unsigned char c = static_cast<unsigned char>(text_[pos]);
        unsigned char folded = case_insensitive_
            ? static_cast<unsigned char>(std::tolower(c))
            : c;
        bool in_class = false;
        for (const ClassRange& range : node->ranges) {
          if ((folded >= range.lo && folded <= range.hi) ||
              (case_insensitive_ &&
               std::toupper(folded) >= range.lo &&
               std::toupper(folded) <= range.hi)) {
            in_class = true;
            break;
          }
        }
        if (in_class != node->negated) return cont(pos + 1);
        return false;
      }
      case NodeType::kAnchorStart:
        return pos == 0 && cont(pos);
      case NodeType::kAnchorEnd:
        return pos == text_.size() && cont(pos);
      case NodeType::kConcat:
        return MatchSeq(node->children, 0, pos, cont);
      case NodeType::kAlternate:
        for (const NodePtr& child : node->children) {
          if (MatchNode(child.get(), pos, cont)) return true;
        }
        return false;
      case NodeType::kGroup: {
        size_t index = static_cast<size_t>(node->group_index);
        auto saved = groups_[index];
        size_t group_start = pos;
        bool ok = MatchNode(node->children[0].get(), pos, [&](size_t end) {
          auto inner_saved = groups_[index];
          groups_[index] = {group_start, end};
          if (cont(end)) return true;
          groups_[index] = inner_saved;
          return false;
        });
        if (!ok) groups_[index] = saved;
        return ok;
      }
      case NodeType::kRepeat:
        return MatchRepeat(node, 0, pos, cont);
    }
    return false;
  }

  bool MatchSeq(const std::vector<NodePtr>& children, size_t index, size_t pos,
                const Cont& cont) {
    if (index == children.size()) return cont(pos);
    return MatchNode(children[index].get(), pos, [&](size_t next) {
      return MatchSeq(children, index + 1, next, cont);
    });
  }

  bool MatchRepeat(const Node* node, int count, size_t pos, const Cont& cont) {
    const Node* body = node->children[0].get();
    // Greedy: try one more repetition first (guarding against empty-match
    // loops by requiring progress), then fall back to stopping here.
    if (node->max < 0 || count < node->max) {
      bool advanced = MatchNode(body, pos, [&](size_t next) {
        if (next == pos) return false;  // no progress: stop repeating
        return MatchRepeat(node, count + 1, next, cont);
      });
      if (advanced) return true;
    }
    if (count >= node->min) return cont(pos);
    return false;
  }

  static constexpr int64_t kMaxSteps = 4'000'000;

  const Node* root_;
  std::string_view text_;
  bool case_insensitive_;
  bool dot_all_;
  std::vector<std::pair<size_t, size_t>> groups_;
  int64_t steps_ = 0;
};

}  // namespace
}  // namespace regex_internal

using regex_internal::Matcher;
using regex_internal::Node;

RegexLite::RegexLite() = default;
RegexLite::RegexLite(RegexLite&&) noexcept = default;
RegexLite& RegexLite::operator=(RegexLite&&) noexcept = default;
RegexLite::~RegexLite() = default;

RegexLite RegexLite::Compile(std::string_view pattern, std::string_view flags) {
  RegexLite regex;
  bool literal = false;
  for (char flag : flags) {
    switch (flag) {
      case 'i': regex.case_insensitive_ = true; break;
      case 's': regex.dot_all_ = true; break;
      case 'q': literal = true; break;
      case 'm':  // multiline: accepted, anchors stay string-wide
        break;
      case 'x':  // extended whitespace mode is not supported
      default:
        ThrowError(ErrorCode::kFORX0002,
                   std::string("unsupported regex flag '") + flag + "'");
    }
  }
  regex_internal::PatternParser parser(pattern, literal);
  regex.root_ = parser.Parse(&regex.group_count_);
  return regex;
}

bool RegexLite::Find(std::string_view text, size_t from, Match* match) const {
  for (size_t start = from; start <= text.size(); ++start) {
    Matcher matcher(root_.get(), text, case_insensitive_, dot_all_,
                    group_count_);
    size_t end = 0;
    if (matcher.MatchAt(start, &end)) {
      match->begin = start;
      match->end = end;
      match->groups = matcher.groups();
      return true;
    }
  }
  return false;
}

bool RegexLite::Search(std::string_view text) const {
  Match match;
  return Find(text, 0, &match);
}

bool RegexLite::FullMatch(std::string_view text) const {
  Matcher matcher(root_.get(), text, case_insensitive_, dot_all_,
                  group_count_);
  size_t end = 0;
  return matcher.MatchAt(0, &end, /*require_end=*/true);
}

std::string RegexLite::Replace(std::string_view text,
                               std::string_view replacement) const {
  std::string out;
  size_t pos = 0;
  Match match;
  while (pos <= text.size() && Find(text, pos, &match)) {
    if (match.begin == match.end) {
      ThrowError(ErrorCode::kFORX0003,
                 "fn:replace: pattern matches the zero-length string");
    }
    out.append(text.substr(pos, match.begin - pos));
    // Expand $N references and escapes.
    for (size_t i = 0; i < replacement.size(); ++i) {
      char c = replacement[i];
      if (c == '\\' && i + 1 < replacement.size()) {
        out.push_back(replacement[++i]);
      } else if (c == '$' && i + 1 < replacement.size() &&
                 std::isdigit(static_cast<unsigned char>(replacement[i + 1]))) {
        size_t group = static_cast<size_t>(replacement[++i] - '0');
        if (group == 0) {
          out.append(text.substr(match.begin, match.end - match.begin));
        } else if (group < match.groups.size() &&
                   match.groups[group].first != std::string_view::npos) {
          out.append(text.substr(match.groups[group].first,
                                 match.groups[group].second -
                                     match.groups[group].first));
        }
      } else {
        out.push_back(c);
      }
    }
    pos = match.end;
  }
  out.append(text.substr(pos));
  return out;
}

std::vector<std::string> RegexLite::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  if (text.empty()) return tokens;
  size_t pos = 0;
  Match match;
  while (pos <= text.size() && Find(text, pos, &match)) {
    if (match.begin == match.end) {
      ThrowError(ErrorCode::kFORX0003,
                 "fn:tokenize: pattern matches the zero-length string");
    }
    tokens.emplace_back(text.substr(pos, match.begin - pos));
    pos = match.end;
  }
  tokens.emplace_back(text.substr(pos));
  return tokens;
}

}  // namespace xqa

#ifndef XQA_BASE_STRING_UTIL_H_
#define XQA_BASE_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xqa {

/// True for the XML whitespace characters: space, tab, CR, LF.
inline bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Removes leading and trailing XML whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// True if every character of `s` is XML whitespace (including empty).
bool IsAllWhitespace(std::string_view s);

/// Collapses runs of whitespace to single spaces and trims the ends
/// (the whitespace normalization applied by xs:token / attribute values).
std::string CollapseWhitespace(std::string_view s);

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string_view> SplitChar(std::string_view s, char delim);

/// True if `name` is a valid XML NCName (no colon).
bool IsNCName(std::string_view name);

/// True if `c` may start an NCName.
bool IsNameStartChar(char c);

/// True if `c` may continue an NCName.
bool IsNameChar(char c);

/// Formats an xs:double using XQuery's canonical rules: integral values in
/// range render without exponent or fraction ("42"), NaN/INF/-INF literally,
/// values needing an exponent use "1.234E5" form.
std::string FormatDouble(double value);

/// Formats an xs:integer.
std::string FormatInteger(int64_t value);

/// Parses an xs:integer; returns false on syntax error or overflow.
bool ParseInteger(std::string_view s, int64_t* out);

/// Parses an xs:double accepting XQuery lexical forms ("NaN", "INF", "-INF",
/// decimal and scientific notation); returns false on syntax error.
bool ParseDouble(std::string_view s, double* out);

// --- UTF-8 codepoint walking -----------------------------------------------
// Shared by every codepoint-oriented string function (fn:substring,
// fn:string-length, fn:upper-case/lower-case, fn:string-to-codepoints) so
// they agree on one decoding policy: invalid or truncated sequences decode
// as the single byte's value and consume one byte.

/// Decodes the codepoint starting at byte `*index` and advances `*index`
/// past it. Precondition: `*index < s.size()`.
uint32_t Utf8DecodeAt(std::string_view s, size_t* index);

/// Number of codepoints in `s` (equals byte length for pure ASCII).
size_t Utf8Length(std::string_view s);

/// Byte offset where 0-based codepoint index `n` starts; `s.size()` when `s`
/// has `n` or fewer codepoints. Never lands inside a multibyte sequence, so
/// slicing on these offsets cannot split a character.
size_t Utf8OffsetOf(std::string_view s, size_t n);

/// Appends the UTF-8 encoding of `code` (caller guarantees ≤ 0x10FFFF).
void Utf8Encode(uint32_t code, std::string* out);

/// Escapes text content for XML serialization (& < >).
std::string EscapeText(std::string_view s);

/// Escapes an attribute value for XML serialization (& < > ").
std::string EscapeAttribute(std::string_view s);

}  // namespace xqa

#endif  // XQA_BASE_STRING_UTIL_H_

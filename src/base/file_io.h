#ifndef XQA_BASE_FILE_IO_H_
#define XQA_BASE_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xqa {

/// When the storage layer calls fsync (docs/STORAGE.md). kAlways is the
/// durability contract — an acknowledged mutation survives a kill -9;
/// kNever trades that for speed (tests, benches, bulk seeding) while keeping
/// the same on-disk format, so recovery still works after a clean exit.
enum class FsyncPolicy : uint8_t {
  kAlways,
  kNever,
};

/// Reads the whole file into a string. Throws XQueryError(kXQSV0007) when
/// the file cannot be opened or read.
std::string ReadFileToString(const std::string& path);

/// True when `path` exists (any file type).
bool FileExists(const std::string& path);

/// Size of a regular file in bytes; throws kXQSV0007 when unreadable.
uint64_t FileSizeOf(const std::string& path);

/// mkdir -p. Throws kXQSV0007 on failure.
void CreateDirs(const std::string& path);

/// Entry names (not paths) in `path`, sorted; "." / ".." excluded. Throws
/// kXQSV0007 when the directory cannot be read.
std::vector<std::string> ListDirectory(const std::string& path);

/// Best-effort unlink; absent files and failures are ignored (used for
/// garbage collection of superseded storage files, where a leftover file is
/// harmless — recovery ignores anything the manifest does not reference).
void RemoveFileIfExists(const std::string& path);

/// The commit primitive of the storage layer: writes `data` to
/// `path + ".tmp"`, fsyncs the file (per `policy`), atomically renames it
/// over `path`, then fsyncs the containing directory so the rename itself is
/// durable. Readers therefore see either the old bytes or the new bytes,
/// never a torn file. Throws kXQSV0007 on any failure, removing the temp.
void WriteFileDurable(const std::string& path, std::string_view data,
                      FsyncPolicy policy);

/// Append-only file handle for the ingest journal. Not thread-safe — the
/// owner serializes appends (the journal mutex in DurableStore).
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Creates `path` (truncating any existing file) with `header` as its
  /// initial contents, fsyncing per `policy`. Throws kXQSV0007 on failure.
  void Create(const std::string& path, std::string_view header,
              FsyncPolicy policy);

  /// Opens an existing file for appending after truncating it to
  /// `valid_size` — recovery's torn-tail cut: bytes past the last valid
  /// record are discarded before new records go in. Throws kXQSV0007.
  void OpenTruncated(const std::string& path, uint64_t valid_size);

  /// Appends `data` as one write and fsyncs per `policy`. A short or failed
  /// write is rolled back with ftruncate so the file never ends mid-record
  /// while the process lives (a crash mid-write is the torn tail recovery
  /// handles); if even the rollback fails the handle goes broken() and every
  /// later append fails fast. Throws kXQSV0007 on failure.
  void Append(std::string_view data, FsyncPolicy policy);

  /// Bytes successfully appended (== file size while not broken).
  uint64_t size() const { return size_; }

  /// True after an append failure that could not be rolled back: the tail of
  /// the file is garbage and the journal must be rotated before reuse.
  bool broken() const { return broken_; }

  bool is_open() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
  bool broken_ = false;
  std::string path_;
};

}  // namespace xqa

#endif  // XQA_BASE_FILE_IO_H_

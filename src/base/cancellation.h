#ifndef XQA_BASE_CANCELLATION_H_
#define XQA_BASE_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "base/error.h"

namespace xqa {

/// Shared cancellation state for one query execution (docs/SERVICE.md).
/// Cancellation is cooperative: the evaluator polls the token at checkpoints
/// in the FLWOR tuple loops and path scans (DynamicContext::CheckCancel) and
/// unwinds with a dedicated service error code — XQSV0001 when the deadline
/// passed, XQSV0002 when a client called Cancel(). Because the exception
/// unwinds the whole execution, a timed-out request can never surface a
/// partial result.
///
/// Thread-safe: Cancel() and the checkpoint reads may race freely across the
/// submitting thread, the service worker, and parallel FLWOR lanes (Fork
/// shares the token by pointer). Both fields are plain atomics; a checkpoint
/// observes a cancellation after at most one poll interval.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation; checkpoints raise XQSV0002 from then on.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms the absolute deadline; checkpoints raise XQSV0001 once the steady
  /// clock passes it. May be re-armed or cleared (kNoDeadline) at any time.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Convenience: deadline = now + seconds. Non-positive values disarm.
  void SetTimeout(double seconds) {
    if (seconds <= 0) {
      deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
      return;
    }
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::nanoseconds(
                    static_cast<int64_t>(seconds * 1e9)));
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// True once the armed deadline has passed (reads the clock).
  bool DeadlineExpired() const {
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != kNoDeadline &&
           std::chrono::steady_clock::now().time_since_epoch().count() >=
               deadline;
  }

  /// Throwing checkpoint: XQSV0002 if cancelled, XQSV0001 if past the
  /// deadline, otherwise returns. Cancellation wins over expiry so an
  /// explicit Cancel() reports as a cancel even after the deadline.
  void Check() const {
    if (cancelled()) {
      ThrowError(ErrorCode::kXQSV0002, "request cancelled");
    }
    if (DeadlineExpired()) {
      ThrowError(ErrorCode::kXQSV0001, "request deadline exceeded");
    }
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  std::atomic<bool> cancelled_{false};
  /// steady_clock ticks since epoch (nanoseconds on the supported targets).
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace xqa

#endif  // XQA_BASE_CANCELLATION_H_

#ifndef XQA_BASE_MEMORY_TRACKER_H_
#define XQA_BASE_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "base/error.h"

namespace xqa {

/// Hierarchical memory accounting for query execution (docs/ROBUSTNESS.md).
///
/// One tracker sits at the service root (optionally capped by a global
/// budget); every request gets a child tracker capped by its per-request
/// budget. The evaluator charges the child at the real materialization
/// sites — FLWOR tuple generations, group-by hash tables, order-by key
/// vectors, constructed node trees, serializer output — and a charge that
/// would exceed any budget on the path to the root throws XQSV0004, which
/// unwinds exactly like a cancellation checkpoint: the whole execution is
/// discarded and no partial result escapes.
///
/// Contention model: local charges are relaxed fetch_adds on this tracker
/// only. Propagation to the parent is *chunked reservation* — a child grabs
/// kReservationChunk bytes of parent budget at a time and satisfies local
/// charges out of that reservation, so the parent's atomics are touched once
/// per chunk, not once per charge. The whole reservation returns to the
/// parent when the child is destroyed (end of request), which also makes the
/// root's balance provably return to zero after any unwind: leak detection
/// reduces to asserting root.used() == 0 between requests.
///
/// Thread-safe: parallel FLWOR lanes share the per-query tracker by pointer
/// (DynamicContext::Fork) and may charge/release concurrently.
class MemoryTracker {
 public:
  /// Parent reservation granularity. Large enough that a query touching the
  /// root pays one parent fetch_add per MiB of growth; small enough that a
  /// tight global budget (tests use a few MiB) still sheds accurately.
  static constexpr int64_t kReservationChunk = 1 << 20;  // 1 MiB

  /// `limit_bytes` == 0 means unlimited. `parent` (not owned) must outlive
  /// this tracker.
  explicit MemoryTracker(std::string label, int64_t limit_bytes = 0,
                         MemoryTracker* parent = nullptr);
  ~MemoryTracker();
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Accounts `bytes` against this tracker and (chunked) every ancestor.
  /// Throws XQSV0004 naming the first tracker whose budget the charge
  /// exceeds; the failed charge is fully rolled back before the throw.
  void Charge(int64_t bytes);

  /// Returns previously charged bytes. Never throws; over-release clamps at
  /// zero (the destructor squares the parent ledger regardless).
  void Release(int64_t bytes);

  /// Non-throwing probe used by the service's pressure gate.
  bool WouldExceed(int64_t bytes) const;

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t limit() const { return limit_; }
  const std::string& label() const { return label_; }
  MemoryTracker* parent() const { return parent_; }

  /// Cumulative XQSV0004 throws raised by charges against this tracker
  /// (children rejected by an ancestor's budget count on the ancestor).
  int64_t budget_failures() const {
    return budget_failures_.load(std::memory_order_relaxed);
  }

 private:
  /// Grows the parent reservation to cover `needed` local bytes.
  void ReserveFromParent(int64_t needed);

  const std::string label_;
  const int64_t limit_;
  MemoryTracker* const parent_;

  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
  /// Bytes of parent budget currently held by this tracker (>= used_ except
  /// transiently during a concurrent reservation race).
  std::atomic<int64_t> parent_reserved_{0};
  std::atomic<int64_t> budget_failures_{0};
};

/// RAII charge whose amount can be re-pointed as a data structure is
/// replaced generation by generation (the FLWOR tuple buffer pattern):
/// Reset(new_bytes) releases the old charge only after the new one
/// succeeded, and the destructor releases whatever is still held — including
/// during exception unwind, which is what keeps tracker balances exact under
/// fault injection.
class ScopedMemoryCharge {
 public:
  explicit ScopedMemoryCharge(MemoryTracker* tracker) : tracker_(tracker) {}
  ~ScopedMemoryCharge() { Reset(0); }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  /// Charges `bytes` and releases the previous amount. No-op when no
  /// tracker is attached.
  void Reset(int64_t bytes) {
    if (tracker_ == nullptr || bytes == held_) return;
    if (bytes > held_) {
      tracker_->Charge(bytes - held_);
    } else {
      tracker_->Release(held_ - bytes);
    }
    held_ = bytes;
  }

  /// Adds to the current charge.
  void Add(int64_t bytes) { Reset(held_ + bytes); }

  int64_t held() const { return held_; }

 private:
  MemoryTracker* tracker_;
  int64_t held_ = 0;
};

}  // namespace xqa

#endif  // XQA_BASE_MEMORY_TRACKER_H_

#ifndef XQA_BASE_CRC32C_H_
#define XQA_BASE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xqa {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected) — the checksum the
/// durable storage layer stamps on every manifest, segment block, and
/// journal record (docs/STORAGE.md). Software slicing-by-4 implementation:
/// no hardware dependency, so the on-disk format verifies identically on any
/// host; throughput (~GB/s) is far above the parse cost it protects.
///
/// Crc32c(data) == Crc32cExtend(Crc32cExtend(0, prefix), suffix) for any
/// split, so streaming writers can checksum incrementally.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

inline uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace xqa

#endif  // XQA_BASE_CRC32C_H_

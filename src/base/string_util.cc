#include "base/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace xqa {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsXmlWhitespace(s[begin])) ++begin;
  while (end > begin && IsXmlWhitespace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!IsXmlWhitespace(c)) return false;
  }
  return true;
}

std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = false;
  for (char c : TrimWhitespace(s)) {
    if (IsXmlWhitespace(c)) {
      in_space = true;
    } else {
      if (in_space && !out.empty()) out.push_back(' ');
      in_space = false;
      out.push_back(c);
    }
  }
  return out;
}

std::vector<std::string_view> SplitChar(std::string_view s, char delim) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool IsNameStartChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalpha(u) || c == '_' || u >= 0x80;
}

bool IsNameChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '_' || c == '-' || c == '.' || u >= 0x80;
}

bool IsNCName(std::string_view name) {
  if (name.empty() || !IsNameStartChar(name[0])) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!IsNameChar(name[i])) return false;
  }
  return true;
}

std::string FormatDouble(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "INF" : "-INF";
  if (value == 0) return std::signbit(value) ? "-0" : "0";
  // Integral values within +/-1e15 render as plain integers.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  // Shortest representation that round-trips.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  std::string out = buf;
  // Normalize exponent form "1e+05" -> "1.0E5".
  size_t e = out.find_first_of("eE");
  if (e != std::string::npos) {
    std::string mantissa = out.substr(0, e);
    std::string exponent = out.substr(e + 1);
    if (!exponent.empty() && exponent[0] == '+') exponent.erase(0, 1);
    // Strip leading zeros of the exponent magnitude.
    bool neg = !exponent.empty() && exponent[0] == '-';
    size_t digits = neg ? 1 : 0;
    while (digits + 1 < exponent.size() && exponent[digits] == '0') {
      exponent.erase(digits, 1);
    }
    if (mantissa.find('.') == std::string::npos) mantissa += ".0";
    out = mantissa + "E" + exponent;
  }
  return out;
}

std::string FormatInteger(int64_t value) { return std::to_string(value); }

bool ParseInteger(std::string_view s, int64_t* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  size_t i = 0;
  bool negative = false;
  if (s[0] == '+' || s[0] == '-') {
    negative = s[0] == '-';
    i = 1;
  }
  if (i == s.size()) return false;
  uint64_t magnitude = 0;
  const uint64_t limit = negative
      ? static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1
      : static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    uint64_t digit = static_cast<uint64_t>(s[i] - '0');
    if (magnitude > (limit - digit) / 10) return false;
    magnitude = magnitude * 10 + digit;
  }
  // Negate in the unsigned domain: magnitude may be 2^63 (INT64_MIN), whose
  // int64 negation is undefined. C++20 guarantees the modular conversion.
  *out = negative ? static_cast<int64_t>(0 - magnitude)
                  : static_cast<int64_t>(magnitude);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  if (s == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (s == "INF" || s == "+INF") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "-INF") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  // strtod accepts "inf"/"nan" spellings XQuery does not.
  if (std::isinf(value) && errno != ERANGE) {
    if (buf.find_first_of("iInN") != std::string::npos) return false;
  }
  if (std::isnan(value)) return false;
  *out = value;
  return true;
}

uint32_t Utf8DecodeAt(std::string_view s, size_t* index) {
  size_t i = *index;
  unsigned char c = static_cast<unsigned char>(s[i]);
  uint32_t code = c;
  size_t length = 1;
  if ((c & 0xE0) == 0xC0 && i + 1 < s.size()) {
    code = (c & 0x1F) << 6 | (s[i + 1] & 0x3F);
    length = 2;
  } else if ((c & 0xF0) == 0xE0 && i + 2 < s.size()) {
    code = (c & 0x0F) << 12 | (s[i + 1] & 0x3F) << 6 | (s[i + 2] & 0x3F);
    length = 3;
  } else if ((c & 0xF8) == 0xF0 && i + 3 < s.size()) {
    code = (c & 0x07) << 18 | (s[i + 1] & 0x3F) << 12 |
           (s[i + 2] & 0x3F) << 6 | (s[i + 3] & 0x3F);
    length = 4;
  }
  *index = i + length;
  return code;
}

size_t Utf8Length(std::string_view s) {
  size_t count = 0;
  for (size_t i = 0; i < s.size(); ++count) Utf8DecodeAt(s, &i);
  return count;
}

size_t Utf8OffsetOf(std::string_view s, size_t n) {
  size_t i = 0;
  for (size_t seen = 0; seen < n && i < s.size(); ++seen) Utf8DecodeAt(s, &i);
  return i;
}

void Utf8Encode(uint32_t code, std::string* out) {
  if (code < 0x80) {
    out->push_back(static_cast<char>(code));
  } else if (code < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (code >> 6)));
    out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
  } else if (code < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (code >> 12)));
    out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (code >> 18)));
    out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
  }
}

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace xqa

#ifndef XQA_BASE_ERROR_H_
#define XQA_BASE_ERROR_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace xqa {

/// W3C-style error codes raised by the engine. Codes beginning with XPST /
/// XQST are static (compile-time) errors, XPDY / XQDY are dynamic errors,
/// FO* are function/operator errors, and XQAG* are codes specific to the
/// analytics extensions proposed by the paper (group by / output numbering).
enum class ErrorCode : uint16_t {
  kOk = 0,

  // --- Static errors -------------------------------------------------------
  kXPST0003,  ///< grammar / syntax error
  kXPST0008,  ///< undefined variable reference
  kXPST0017,  ///< unknown function name or wrong arity
  kXPST0081,  ///< unknown namespace prefix
  kXQST0033,  ///< duplicate namespace declaration
  kXQST0034,  ///< duplicate function declaration
  kXQST0039,  ///< duplicate parameter name in a function declaration
  kXQST0049,  ///< duplicate global variable declaration
  kXQST0089,  ///< positional variable shadows the binding variable

  // Static errors introduced by the grouping extension (Section 3.2 of the
  // paper): variables bound before group by are out of scope afterwards, a
  // grouping expression may not reference another grouping variable, and a
  // FLWOR may contain at most one group by clause.
  kXQAG0001,  ///< reference to a pre-group variable after group by
  kXQAG0002,  ///< grouping expression references a sibling grouping variable
  kXQAG0003,  ///< more than one group by clause in a FLWOR expression
  kXQAG0004,  ///< duplicate grouping / nesting variable name in one clause
  kXQAG0005,  ///< "using" function is not a valid comparison function

  // --- Type errors ---------------------------------------------------------
  kXPTY0004,  ///< type mismatch (e.g. comparing xs:integer with xs:date)

  // --- Dynamic errors ------------------------------------------------------
  kXPDY0002,  ///< context item absent
  kXPDY0050,  ///< treat / context-item type mismatch
  kXQDY0025,  ///< duplicate attribute name in a constructed element
  kFOAR0001,  ///< division by zero
  kFOAR0002,  ///< numeric overflow / underflow
  kFOCA0002,  ///< invalid lexical value (casting)
  kFORG0001,  ///< invalid value for cast / constructor
  kFORG0003,  ///< zero-or-one called with a sequence of more than one item
  kFORG0004,  ///< one-or-more called with an empty sequence
  kFORG0005,  ///< exactly-one called with zero or more than one item
  kFORG0006,  ///< invalid argument type (e.g. EBV of a bad sequence)
  kFORG0008,  ///< both arguments to fn:dateTime have a timezone
  kFOTY0012,  ///< node does not have a typed value
  kFODT0001,  ///< overflow in date/time arithmetic
  kFODT0002,  ///< overflow/underflow in duration arithmetic (e.g. fn:sum)
  kFODC0002,  ///< document / collection not found
  kFORX0002,  ///< invalid regular expression
  kFORX0003,  ///< regular expression matches the zero-length string
  kFOJS0001,  ///< malformed JSON input (xqa:parse-json)

  // --- XML / input errors --------------------------------------------------
  kXMLP0001,  ///< malformed XML input

  // --- Service / resource-governance errors (docs/SERVICE.md,
  // docs/ROBUSTNESS.md) ------------------------------------------------------
  // Raised at the query-service boundary or by the resource governors rather
  // than by the language itself. XQSV0001/0002 come from the evaluator's
  // cooperative cancellation checkpoints and XQSV0004/0005 from the memory
  // and recursion governors; all four unwind the whole execution, so a
  // killed request never yields a partial result.
  kXQSV0001,  ///< request deadline exceeded
  kXQSV0002,  ///< request cancelled by the client
  kXQSV0003,  ///< admission rejected (queue full, shedding, or shutting down)
  kXQSV0004,  ///< memory budget exceeded (MemoryTracker)
  kXQSV0005,  ///< expression nesting / recursion depth limit exceeded
  kXQSV0006,  ///< named document not present in the DocumentStore
  kXQSV0007,  ///< durable storage failure (I/O error or detected corruption)
};

/// Returns the canonical name of an error code, e.g. "XPST0008".
std::string_view ErrorCodeName(ErrorCode code);

/// A position in query or document text, 1-based. line == 0 means unknown.
struct SourceLocation {
  uint32_t line = 0;
  uint32_t column = 0;
};

/// Exception carrying an XQuery error code, human-readable message, and the
/// source location where the error was detected (when known).
class XQueryError : public std::runtime_error {
 public:
  XQueryError(ErrorCode code, const std::string& message,
              SourceLocation location = {});

  ErrorCode code() const { return code_; }
  SourceLocation location() const { return location_; }

  /// "[XPST0008] line 3:14: undefined variable $x" style rendering.
  std::string FormattedMessage() const;

 private:
  ErrorCode code_;
  SourceLocation location_;
};

/// Lightweight status for the non-throwing public API boundary.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status FromException(const XQueryError& error);

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Minimal Arrow-style carrier
/// used by the Engine facade so that callers may avoid exceptions.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status(ErrorCode::kFORG0006, "Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  T value_{};
  Status status_;
};

/// Throws XQueryError with the given code and message.
[[noreturn]] void ThrowError(ErrorCode code, const std::string& message,
                             SourceLocation location = {});

}  // namespace xqa

#endif  // XQA_BASE_ERROR_H_

#include "base/error.h"

#include <sstream>

namespace xqa {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kXPST0003: return "XPST0003";
    case ErrorCode::kXPST0008: return "XPST0008";
    case ErrorCode::kXPST0017: return "XPST0017";
    case ErrorCode::kXPST0081: return "XPST0081";
    case ErrorCode::kXQST0033: return "XQST0033";
    case ErrorCode::kXQST0034: return "XQST0034";
    case ErrorCode::kXQST0039: return "XQST0039";
    case ErrorCode::kXQST0049: return "XQST0049";
    case ErrorCode::kXQST0089: return "XQST0089";
    case ErrorCode::kXQAG0001: return "XQAG0001";
    case ErrorCode::kXQAG0002: return "XQAG0002";
    case ErrorCode::kXQAG0003: return "XQAG0003";
    case ErrorCode::kXQAG0004: return "XQAG0004";
    case ErrorCode::kXQAG0005: return "XQAG0005";
    case ErrorCode::kXPTY0004: return "XPTY0004";
    case ErrorCode::kXPDY0002: return "XPDY0002";
    case ErrorCode::kXPDY0050: return "XPDY0050";
    case ErrorCode::kXQDY0025: return "XQDY0025";
    case ErrorCode::kFOAR0001: return "FOAR0001";
    case ErrorCode::kFOAR0002: return "FOAR0002";
    case ErrorCode::kFOCA0002: return "FOCA0002";
    case ErrorCode::kFORG0001: return "FORG0001";
    case ErrorCode::kFORG0003: return "FORG0003";
    case ErrorCode::kFORG0004: return "FORG0004";
    case ErrorCode::kFORG0005: return "FORG0005";
    case ErrorCode::kFORG0006: return "FORG0006";
    case ErrorCode::kFORG0008: return "FORG0008";
    case ErrorCode::kFOTY0012: return "FOTY0012";
    case ErrorCode::kFODT0001: return "FODT0001";
    case ErrorCode::kFODT0002: return "FODT0002";
    case ErrorCode::kFODC0002: return "FODC0002";
    case ErrorCode::kFORX0002: return "FORX0002";
    case ErrorCode::kFORX0003: return "FORX0003";
    case ErrorCode::kFOJS0001: return "FOJS0001";
    case ErrorCode::kXMLP0001: return "XMLP0001";
    case ErrorCode::kXQSV0001: return "XQSV0001";
    case ErrorCode::kXQSV0002: return "XQSV0002";
    case ErrorCode::kXQSV0003: return "XQSV0003";
    case ErrorCode::kXQSV0004: return "XQSV0004";
    case ErrorCode::kXQSV0005: return "XQSV0005";
    case ErrorCode::kXQSV0006: return "XQSV0006";
    case ErrorCode::kXQSV0007: return "XQSV0007";
  }
  return "UNKNOWN";
}

XQueryError::XQueryError(ErrorCode code, const std::string& message,
                         SourceLocation location)
    : std::runtime_error(message), code_(code), location_(location) {}

std::string XQueryError::FormattedMessage() const {
  std::ostringstream out;
  out << "[" << ErrorCodeName(code_) << "]";
  if (location_.line != 0) {
    out << " line " << location_.line << ":" << location_.column;
  }
  out << ": " << what();
  return out.str();
}

Status Status::FromException(const XQueryError& error) {
  return Status(error.code(), error.FormattedMessage());
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(ErrorCodeName(code_)) + ": " + message_;
}

void ThrowError(ErrorCode code, const std::string& message,
                SourceLocation location) {
  throw XQueryError(code, message, location);
}

}  // namespace xqa

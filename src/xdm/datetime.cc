#include "xdm/datetime.h"

#include <cctype>
#include <cstdio>
#include <functional>

#include "base/error.h"
#include "base/string_util.h"

namespace xqa {

namespace {

/// Cursor over a lexical form with digit-run helpers.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return pos < text.size() ? text[pos] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos;
    return true;
  }

  /// Reads exactly `count` digits into *out; false on failure.
  bool Digits(int count, int* out) {
    int value = 0;
    for (int i = 0; i < count; ++i) {
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
      value = value * 10 + (text[pos++] - '0');
    }
    *out = value;
    return true;
  }
};

bool ParseTimezone(Cursor* cursor, bool* has_tz, int* tz_minutes) {
  *has_tz = false;
  *tz_minutes = 0;
  if (cursor->AtEnd()) return true;
  if (cursor->Consume('Z')) {
    *has_tz = true;
    return cursor->AtEnd();
  }
  int sign = 0;
  if (cursor->Consume('+')) sign = 1;
  else if (cursor->Consume('-')) sign = -1;
  else return false;
  int hours, minutes;
  if (!cursor->Digits(2, &hours) || !cursor->Consume(':') ||
      !cursor->Digits(2, &minutes)) {
    return false;
  }
  if (hours > 14 || minutes > 59) return false;
  *has_tz = true;
  *tz_minutes = sign * (hours * 60 + minutes);
  return cursor->AtEnd();
}

bool ParseDatePart(Cursor* cursor, DateTime* out, int* year, int* month,
                   int* day) {
  bool negative = cursor->Consume('-');
  if (!cursor->Digits(4, year)) return false;
  if (negative) *year = -*year;
  if (!cursor->Consume('-') || !cursor->Digits(2, month)) return false;
  if (!cursor->Consume('-') || !cursor->Digits(2, day)) return false;
  if (*month < 1 || *month > 12) return false;
  if (*day < 1 || *day > DateTime::DaysInMonth(*year, *month)) return false;
  (void)out;
  return true;
}

bool ParseTimePart(Cursor* cursor, int* hour, int* minute, int* second,
                   int* millisecond) {
  if (!cursor->Digits(2, hour) || !cursor->Consume(':') ||
      !cursor->Digits(2, minute) || !cursor->Consume(':') ||
      !cursor->Digits(2, second)) {
    return false;
  }
  if (*hour > 24 || *minute > 59 || *second > 59) return false;
  if (*hour == 24 && (*minute != 0 || *second != 0)) return false;
  *millisecond = 0;
  if (cursor->Consume('.')) {
    int scale = 100;
    bool any = false;
    while (!cursor->AtEnd() &&
           std::isdigit(static_cast<unsigned char>(cursor->Peek()))) {
      int digit = cursor->text[cursor->pos++] - '0';
      if (scale > 0) {
        *millisecond += digit * scale;
        scale /= 10;
      }
      any = true;
    }
    if (!any) return false;
  }
  return true;
}

}  // namespace

bool DateTime::IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DateTime::DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

bool DateTime::ParseDateTime(std::string_view text, DateTime* out) {
  Cursor cursor{TrimWhitespace(text)};
  DateTime result;
  if (!ParseDatePart(&cursor, &result, &result.year_, &result.month_,
                     &result.day_)) {
    return false;
  }
  if (!cursor.Consume('T')) return false;
  if (!ParseTimePart(&cursor, &result.hour_, &result.minute_, &result.second_,
                     &result.millisecond_)) {
    return false;
  }
  if (!ParseTimezone(&cursor, &result.has_timezone_, &result.tz_minutes_)) {
    return false;
  }
  result.has_date_ = true;
  result.has_time_ = true;
  *out = result;
  return true;
}

bool DateTime::ParseDate(std::string_view text, DateTime* out) {
  Cursor cursor{TrimWhitespace(text)};
  DateTime result;
  if (!ParseDatePart(&cursor, &result, &result.year_, &result.month_,
                     &result.day_)) {
    return false;
  }
  if (!ParseTimezone(&cursor, &result.has_timezone_, &result.tz_minutes_)) {
    return false;
  }
  result.has_date_ = true;
  result.has_time_ = false;
  *out = result;
  return true;
}

bool DateTime::ParseTime(std::string_view text, DateTime* out) {
  Cursor cursor{TrimWhitespace(text)};
  DateTime result;
  if (!ParseTimePart(&cursor, &result.hour_, &result.minute_, &result.second_,
                     &result.millisecond_)) {
    return false;
  }
  if (!ParseTimezone(&cursor, &result.has_timezone_, &result.tz_minutes_)) {
    return false;
  }
  result.has_date_ = false;
  result.has_time_ = true;
  result.year_ = 1;
  result.month_ = 1;
  result.day_ = 1;
  *out = result;
  return true;
}

DateTime DateTime::FromComponents(int year, int month, int day, int hour,
                                  int minute, int second, int millisecond) {
  DateTime dt;
  dt.year_ = year;
  dt.month_ = month;
  dt.day_ = day;
  dt.hour_ = hour;
  dt.minute_ = minute;
  dt.second_ = second;
  dt.millisecond_ = millisecond;
  return dt;
}

std::string DateTime::ToString() const {
  char buf[64];
  std::string out;
  if (has_date_) {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year_, month_, day_);
    out += buf;
  }
  if (has_date_ && has_time_) out += 'T';
  if (has_time_) {
    std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", hour_, minute_, second_);
    out += buf;
    if (millisecond_ != 0) {
      std::snprintf(buf, sizeof(buf), ".%03d", millisecond_);
      out += buf;
    }
  }
  if (has_timezone_) {
    if (tz_minutes_ == 0) {
      out += 'Z';
    } else {
      int magnitude = tz_minutes_ < 0 ? -tz_minutes_ : tz_minutes_;
      std::snprintf(buf, sizeof(buf), "%c%02d:%02d", tz_minutes_ < 0 ? '-' : '+',
                    magnitude / 60, magnitude % 60);
      out += buf;
    }
  }
  return out;
}

int64_t DateTime::ToEpochMillis() const {
  // Days from 0001-01-01 (proleptic Gregorian, day 0).
  int64_t y = year_ - 1;
  int64_t days = y * 365 + y / 4 - y / 100 + y / 400;
  for (int m = 1; m < month_; ++m) days += DaysInMonth(year_, m);
  days += day_ - 1;
  int64_t millis = ((days * 24 + hour_) * 60 + minute_) * 60 * 1000 +
                   second_ * 1000 + millisecond_;
  if (has_timezone_) millis -= static_cast<int64_t>(tz_minutes_) * 60 * 1000;
  return millis;
}

DateTime DateTime::FromEpochMillis(int64_t millis) {
  if (millis < 0) {
    ThrowError(ErrorCode::kFODT0001, "dateTime arithmetic underflow");
  }
  int64_t day_millis = millis % (24LL * 60 * 60 * 1000);
  int64_t days = millis / (24LL * 60 * 60 * 1000);
  // Civil-from-days over the proleptic Gregorian calendar (day 0 is
  // 0001-01-01). 400-year era arithmetic.
  int64_t year = 1;
  // Fast-forward by 400-year eras (146097 days each).
  int64_t eras = days / 146097;
  year += eras * 400;
  days -= eras * 146097;
  while (true) {
    int year_days = IsLeapYear(static_cast<int>(year)) ? 366 : 365;
    if (days < year_days) break;
    days -= year_days;
    ++year;
  }
  if (year > 9999) {
    ThrowError(ErrorCode::kFODT0001, "dateTime arithmetic overflow");
  }
  int month = 1;
  while (days >= DaysInMonth(static_cast<int>(year), month)) {
    days -= DaysInMonth(static_cast<int>(year), month);
    ++month;
  }
  DateTime result;
  result.year_ = static_cast<int>(year);
  result.month_ = month;
  result.day_ = static_cast<int>(days) + 1;
  result.hour_ = static_cast<int>(day_millis / (60 * 60 * 1000));
  result.minute_ = static_cast<int>(day_millis / (60 * 1000) % 60);
  result.second_ = static_cast<int>(day_millis / 1000 % 60);
  result.millisecond_ = static_cast<int>(day_millis % 1000);
  return result;
}

DateTime DateTime::PlusMillis(int64_t millis) const {
  DateTime shifted = FromEpochMillis(ToEpochMillis() + millis);
  shifted.has_date_ = has_date_;
  shifted.has_time_ = has_time_;
  return shifted;
}

bool DateTime::ParseDayTimeDuration(std::string_view text, int64_t* millis) {
  Cursor cursor{TrimWhitespace(text)};
  bool negative = cursor.Consume('-');
  if (!cursor.Consume('P')) return false;
  int64_t total = 0;
  bool any_component = false;

  auto read_number = [&](int64_t* value, int* fraction_millis) -> bool {
    *fraction_millis = -1;
    if (cursor.AtEnd() ||
        !std::isdigit(static_cast<unsigned char>(cursor.Peek()))) {
      return false;
    }
    int64_t v = 0;
    while (!cursor.AtEnd() &&
           std::isdigit(static_cast<unsigned char>(cursor.Peek()))) {
      v = v * 10 + (cursor.text[cursor.pos++] - '0');
      if (v > 100'000'000'000LL) return false;
    }
    if (!cursor.AtEnd() && cursor.Peek() == '.') {
      ++cursor.pos;
      int scale = 100;
      int frac = 0;
      bool digits = false;
      while (!cursor.AtEnd() &&
             std::isdigit(static_cast<unsigned char>(cursor.Peek()))) {
        int digit = cursor.text[cursor.pos++] - '0';
        if (scale > 0) {
          frac += digit * scale;
          scale /= 10;
        }
        digits = true;
      }
      if (!digits) return false;
      *fraction_millis = frac;
    }
    *value = v;
    return true;
  };

  // Days part.
  if (!cursor.AtEnd() && cursor.Peek() != 'T') {
    int64_t days;
    int frac;
    if (!read_number(&days, &frac) || frac >= 0) return false;
    if (!cursor.Consume('D')) return false;
    total += days * 24 * 60 * 60 * 1000;
    any_component = true;
  }
  if (cursor.Consume('T')) {
    bool any_time = false;
    while (!cursor.AtEnd()) {
      int64_t value;
      int frac;
      if (!read_number(&value, &frac)) return false;
      if (cursor.AtEnd()) return false;
      char unit = cursor.text[cursor.pos++];
      switch (unit) {
        case 'H':
          if (frac >= 0) return false;
          total += value * 60 * 60 * 1000;
          break;
        case 'M':
          if (frac >= 0) return false;
          total += value * 60 * 1000;
          break;
        case 'S':
          total += value * 1000 + (frac >= 0 ? frac : 0);
          break;
        default:
          return false;
      }
      any_time = true;
      any_component = true;
      if (unit == 'S') break;
    }
    if (!any_time) return false;
  }
  if (!cursor.AtEnd() || !any_component) return false;
  *millis = negative ? -total : total;
  return true;
}

std::string DateTime::FormatDayTimeDuration(int64_t millis) {
  if (millis == 0) return "PT0S";
  std::string out;
  uint64_t magnitude;
  if (millis < 0) {
    out += '-';
    magnitude = ~static_cast<uint64_t>(millis) + 1;
  } else {
    magnitude = static_cast<uint64_t>(millis);
  }
  out += 'P';
  uint64_t days = magnitude / (24ULL * 60 * 60 * 1000);
  uint64_t rest = magnitude % (24ULL * 60 * 60 * 1000);
  if (days > 0) out += std::to_string(days) + "D";
  if (rest > 0) {
    out += 'T';
    uint64_t hours = rest / (60ULL * 60 * 1000);
    uint64_t minutes = rest / (60ULL * 1000) % 60;
    uint64_t seconds = rest / 1000 % 60;
    uint64_t frac = rest % 1000;
    if (hours > 0) out += std::to_string(hours) + "H";
    if (minutes > 0) out += std::to_string(minutes) + "M";
    if (seconds > 0 || frac > 0) {
      out += std::to_string(seconds);
      if (frac > 0) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), ".%03llu",
                      static_cast<unsigned long long>(frac));
        std::string fraction = buf;
        while (fraction.back() == '0') fraction.pop_back();
        out += fraction;
      }
      out += 'S';
    }
  }
  return out;
}

int DateTime::Compare(const DateTime& other) const {
  int64_t a = ToEpochMillis();
  int64_t b = other.ToEpochMillis();
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

size_t DateTime::Hash() const {
  return std::hash<int64_t>()(ToEpochMillis());
}

}  // namespace xqa

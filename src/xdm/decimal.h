#ifndef XQA_XDM_DECIMAL_H_
#define XQA_XDM_DECIMAL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace xqa {

/// Exact fixed-point decimal: value = unscaled * 10^-scale, with
/// 0 <= scale <= kMaxScale. Arithmetic uses 128-bit intermediates and throws
/// XQueryError(FOAR0002) on overflow, FOAR0001 on division by zero.
///
/// Decimals are kept normalized (no trailing fractional zeros) so that
/// equality and hashing are structural.
class Decimal {
 public:
  static constexpr int kMaxScale = 18;
  /// Division results are computed to this many fractional digits.
  static constexpr int kDivisionScale = 18;

  Decimal() : unscaled_(0), scale_(0) {}

  /// Constructs from an integer value (scale 0).
  explicit Decimal(int64_t value) : unscaled_(value), scale_(0) {}

  /// Constructs from a raw (unscaled, scale) pair and normalizes.
  static Decimal FromUnscaled(int64_t unscaled, int scale);

  /// Parses an xs:decimal lexical form ("-12.340"); returns false on error.
  static bool Parse(std::string_view text, Decimal* out);

  /// Converts from a double, rounding to at most kMaxScale fractional digits.
  /// Throws FOCA0002 for NaN/INF.
  static Decimal FromDouble(double value);

  int64_t unscaled() const { return unscaled_; }
  int scale() const { return scale_; }

  bool IsZero() const { return unscaled_ == 0; }
  bool IsNegative() const { return unscaled_ < 0; }

  double ToDouble() const;

  /// Truncates toward zero to an integer. Throws FOAR0002 if out of range.
  int64_t ToInteger() const;

  /// Canonical xs:decimal string: "12.34", "-0.5", "7".
  std::string ToString() const;

  Decimal Negate() const;
  Decimal Add(const Decimal& other) const;
  Decimal Subtract(const Decimal& other) const;
  Decimal Multiply(const Decimal& other) const;
  Decimal Divide(const Decimal& other) const;

  /// Integer division (idiv) truncating toward zero.
  int64_t IntegerDivide(const Decimal& other) const;

  /// Remainder with the sign of the dividend (mod).
  Decimal Mod(const Decimal& other) const;

  /// Three-way compare: -1, 0, +1.
  int Compare(const Decimal& other) const;

  Decimal Abs() const;
  Decimal Floor() const;
  Decimal Ceiling() const;
  /// round() per XQuery: round half toward positive infinity.
  Decimal Round() const;
  /// round-half-to-even to `precision` fractional digits.
  Decimal RoundHalfToEven(int precision) const;

  bool operator==(const Decimal& other) const {
    return unscaled_ == other.unscaled_ && scale_ == other.scale_;
  }

  size_t Hash() const;

 private:
  int64_t unscaled_;
  int scale_;

  void Normalize();
};

}  // namespace xqa

#endif  // XQA_XDM_DECIMAL_H_

#include "xdm/json.h"

#include <cstdio>
#include <string>
#include <vector>

#include "base/error.h"
#include "base/string_util.h"

namespace xqa {

namespace {

constexpr int kMaxJsonDepth = 512;

// --- Parsing (JSON text → element tree) --------------------------------------

class JsonParser {
 public:
  JsonParser(std::string_view text, Document* document)
      : text_(text), document_(document) {}

  void ParseDocument() {
    SkipWhitespace();
    Node* root = document_->CreateElement("json");
    document_->AppendChild(document_->root(), root);
    ParseValueInto(root, 0);
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after JSON value");
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    ThrowError(ErrorCode::kFOJS0001,
               "xqa:parse-json: " + what + " at offset " +
                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void ExpectLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      Fail("invalid literal");
    }
    pos_ += word.size();
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          uint32_t code = ParseHex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: the low half must follow as another \uXXXX.
            if (!Consume('\\') || !Consume('u')) {
              Fail("unpaired surrogate escape");
            }
            uint32_t low = ParseHex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              Fail("unpaired surrogate escape");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            Fail("unpaired surrogate escape");
          }
          Utf8Encode(code, &out);
          break;
        }
        default:
          Fail("invalid escape");
      }
    }
  }

  uint32_t ParseHex4() {
    if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        Fail("invalid \\u escape");
      }
    }
    return value;
  }

  /// Scans a number per the JSON grammar and returns the raw lexeme — the
  /// text node carries the feed's original spelling.
  std::string_view ParseNumberLexeme() {
    size_t start = pos_;
    Consume('-');
    if (Consume('0')) {
      // no further integer digits
    } else if (Peek() >= '1' && Peek() <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      Fail("invalid number");
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        Fail("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        Fail("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    return text_.substr(start, pos_ - start);
  }

  /// A JSON member key as an element name: ASCII NCName characters pass
  /// through, everything else sanitizes to '_' ("user.name" → "user_name");
  /// a key that is empty or starts with a non-start character (e.g. "2024")
  /// gets a leading '_'. Deterministic, so repeated keys shred into one
  /// column.
  std::string ElementNameForKey(const std::string& key) {
    std::string name;
    name.reserve(key.size() + 1);
    for (char c : key) {
      if (static_cast<unsigned char>(c) < 0x80 &&
          (name.empty() ? IsNameStartChar(c) : IsNameChar(c))) {
        name += c;
      } else if (name.empty() && static_cast<unsigned char>(c) < 0x80 &&
                 IsNameChar(c)) {
        name += '_';
        name += c;
      } else {
        name += '_';
      }
    }
    if (name.empty()) name = "_";
    return name;
  }

  void ParseValueInto(Node* element, int depth) {
    if (depth > kMaxJsonDepth) Fail("nesting exceeds the depth limit");
    SkipWhitespace();
    char c = Peek();
    switch (c) {
      case '{':
        ParseObjectInto(element, depth);
        break;
      case '[':
        ParseArrayInto(element, "item", depth);
        break;
      case '"': {
        std::string value = ParseString();
        if (!value.empty()) {
          document_->AppendChild(element, document_->CreateText(value));
        }
        break;
      }
      case 't':
        ExpectLiteral("true");
        document_->AppendChild(element, document_->CreateText("true"));
        break;
      case 'f':
        ExpectLiteral("false");
        document_->AppendChild(element, document_->CreateText("false"));
        break;
      case 'n':
        ExpectLiteral("null");
        break;  // null → empty element (a shredded null)
      default:
        document_->AppendChild(element,
                               document_->CreateText(ParseNumberLexeme()));
    }
  }

  void ParseObjectInto(Node* element, int depth) {
    Expect('{');
    SkipWhitespace();
    if (Consume('}')) return;
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      std::string name = ElementNameForKey(key);
      SkipWhitespace();
      if (Peek() == '[') {
        // "k": [...] → repeated <k> children, not <k><item>.
        ParseArrayInto(element, name, depth + 1);
      } else {
        Node* child = document_->CreateElement(name);
        document_->AppendChild(element, child);
        ParseValueInto(child, depth + 1);
      }
      SkipWhitespace();
      if (Consume(',')) continue;
      Expect('}');
      return;
    }
  }

  void ParseArrayInto(Node* element, std::string_view member_name, int depth) {
    Expect('[');
    SkipWhitespace();
    if (Consume(']')) return;
    while (true) {
      Node* member = document_->CreateElement(member_name);
      document_->AppendChild(element, member);
      ParseValueInto(member, depth + 1);
      SkipWhitespace();
      if (Consume(',')) continue;
      Expect(']');
      return;
    }
  }

  std::string_view text_;
  Document* document_;
  size_t pos_ = 0;
};

// --- Emission (XDM → JSON text) -----------------------------------------------

void AppendJsonString(std::string_view text, std::string* out) {
  *out += '"';
  for (char ch : text) {
    switch (ch) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(ch));
          *out += buffer;
        } else {
          *out += ch;
        }
    }
  }
  *out += '"';
}

/// True when `text` is exactly a JSON number — the only scalar lexemes that
/// may pass through unquoted. Stricter than XQuery's number grammar (no
/// leading '+', no leading/trailing '.', no NaN/INF).
bool IsJsonNumber(std::string_view text) {
  size_t i = 0;
  if (i < text.size() && text[i] == '-') ++i;
  if (i >= text.size()) return false;
  if (text[i] == '0') {
    ++i;
  } else if (text[i] >= '1' && text[i] <= '9') {
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') ++i;
  } else {
    return false;
  }
  if (i < text.size() && text[i] == '.') {
    ++i;
    if (i >= text.size() || text[i] < '0' || text[i] > '9') return false;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') ++i;
  }
  if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
    ++i;
    if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
    if (i >= text.size() || text[i] < '0' || text[i] > '9') return false;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') ++i;
  }
  return i == text.size();
}

void AppendScalarJson(std::string_view text, std::string* out) {
  if (text.empty()) {
    *out += "null";
  } else if (text == "true" || text == "false") {
    out->append(text);
  } else if (IsJsonNumber(text)) {
    out->append(text);
  } else {
    AppendJsonString(text, out);
  }
}

/// Emits the JSON value of an element's content: attributes as "@name"
/// members, children grouped by name (repeats → arrays); an element with
/// neither is a scalar of its text.
void AppendElementValueJson(const Node* element, std::string* out, int depth) {
  if (depth > kMaxJsonDepth) {
    ThrowError(ErrorCode::kFOJS0001,
               "xqa:xml-to-json: nesting exceeds the depth limit");
  }
  bool has_element_children = false;
  bool has_text = false;
  for (const Node* child : element->children()) {
    if (child->kind() == NodeKind::kElement) has_element_children = true;
    if (child->kind() == NodeKind::kText &&
        !IsAllWhitespace(child->content())) {
      has_text = true;
    }
  }

  if (element->attributes().empty() && !has_element_children) {
    AppendScalarJson(element->StringValue(), out);
    return;
  }
  if (has_element_children && has_text) {
    // Mixed content has no faithful JSON shape; degrade to the string-value.
    AppendJsonString(element->StringValue(), out);
    return;
  }

  *out += '{';
  bool first = true;
  for (const Node* attribute : element->attributes()) {
    if (!first) *out += ',';
    first = false;
    AppendJsonString("@" + attribute->name(), out);
    *out += ':';
    AppendScalarJson(attribute->content(), out);
  }

  // Group element children by name in first-appearance order.
  std::vector<std::pair<const std::string*, std::vector<const Node*>>> groups;
  for (const Node* child : element->children()) {
    if (child->kind() != NodeKind::kElement) continue;
    bool found = false;
    for (auto& [name, members] : groups) {
      if (*name == child->name()) {
        members.push_back(child);
        found = true;
        break;
      }
    }
    if (!found) groups.push_back({&child->name(), {child}});
  }
  for (const auto& [name, members] : groups) {
    if (!first) *out += ',';
    first = false;
    AppendJsonString(*name, out);
    *out += ':';
    if (members.size() == 1) {
      AppendElementValueJson(members[0], out, depth + 1);
    } else {
      *out += '[';
      for (size_t i = 0; i < members.size(); ++i) {
        if (i > 0) *out += ',';
        AppendElementValueJson(members[i], out, depth + 1);
      }
      *out += ']';
    }
  }
  *out += '}';
}

void AppendNodeJson(const Node* node, std::string* out) {
  switch (node->kind()) {
    case NodeKind::kDocument: {
      const Node* root_element = nullptr;
      for (const Node* child : node->children()) {
        if (child->kind() == NodeKind::kElement) {
          root_element = child;
          break;
        }
      }
      if (root_element != nullptr) {
        AppendElementValueJson(root_element, out, 0);
      } else {
        AppendScalarJson(node->StringValue(), out);
      }
      break;
    }
    case NodeKind::kElement:
      AppendElementValueJson(node, out, 0);
      break;
    case NodeKind::kAttribute:
      AppendScalarJson(node->content(), out);
      break;
    default:
      AppendJsonString(node->StringValue(), out);
  }
}

void AppendAtomicJson(const AtomicValue& value, std::string* out) {
  switch (value.type()) {
    case AtomicType::kBoolean:
      *out += value.AsBoolean() ? "true" : "false";
      break;
    case AtomicType::kInteger:
    case AtomicType::kDecimal:
      out->append(value.ToLexical());
      break;
    case AtomicType::kDouble: {
      // NaN/INF have no JSON number form; serialize as strings.
      std::string lexical = value.ToLexical();
      if (IsJsonNumber(lexical)) {
        out->append(lexical);
      } else {
        AppendJsonString(lexical, out);
      }
      break;
    }
    default:
      AppendJsonString(value.ToLexical(), out);
  }
}

}  // namespace

DocumentPtr ParseJsonDocument(std::string_view json) {
  DocumentPtr document = MakeDocument();
  JsonParser parser(json, document.get());
  parser.ParseDocument();
  document->SealOrder();
  return document;
}

std::string ItemToJson(const Item& item) {
  std::string out;
  if (item.IsNode()) {
    AppendNodeJson(item.node(), &out);
  } else {
    AppendAtomicJson(item.atomic(), &out);
  }
  return out;
}

std::string SequenceToJson(const Sequence& sequence) {
  if (sequence.empty()) return "null";
  if (sequence.size() == 1) return ItemToJson(sequence[0]);
  std::string out = "[";
  for (size_t i = 0; i < sequence.size(); ++i) {
    if (i > 0) out += ',';
    out += ItemToJson(sequence[i]);
  }
  out += ']';
  return out;
}

}  // namespace xqa

#ifndef XQA_XDM_COMPARE_H_
#define XQA_XDM_COMPARE_H_

#include <optional>

#include "xdm/item.h"

namespace xqa {

/// The six comparison operators shared by value ("eq") and general ("=")
/// comparisons.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Value comparison of two atomic values with numeric promotion.
/// untypedAtomic operands are treated as xs:string (the value-comparison
/// rule). Incomparable type combinations raise XPTY0004. NaN compares false
/// under every operator except ne.
bool ValueCompareAtomic(CompareOp op, const AtomicValue& a,
                        const AtomicValue& b);

/// Three-way comparison for order-by keys: nullopt when unordered (NaN).
/// Numeric promotion as above; untypedAtomic compares as xs:string when the
/// other side is string-like, as xs:double when the other side is numeric.
std::optional<int> ThreeWayCompareAtomic(const AtomicValue& a,
                                         const AtomicValue& b);

/// General comparison ("="-family): existential over the atomized item pairs
/// with the untypedAtomic casting rules of XPath 2.0 (untyped vs numeric →
/// double; untyped vs untyped/string → string; untyped vs other → cast to the
/// other's type).
bool GeneralCompare(CompareOp op, const Sequence& lhs, const Sequence& rhs);

/// Value comparison of two sequences that must each be empty or singleton
/// ("eq" family). Empty operand → empty result, reported as false here with
/// *empty set true (callers that need the XQuery empty semantics check it).
bool ValueCompareSequences(CompareOp op, const Sequence& lhs,
                           const Sequence& rhs, bool* empty);

}  // namespace xqa

#endif  // XQA_XDM_COMPARE_H_

#include "xdm/deep_equal.h"

#include <cmath>

namespace xqa {

namespace {

bool IsIgnoredChild(const Node* node) {
  return node->kind() == NodeKind::kComment ||
         node->kind() == NodeKind::kProcessingInstruction;
}

/// Cancellation is polled once per batch of visited nodes, keeping the
/// unpolled comparison path free of any clock reads.
constexpr uint32_t kDeepEqualPollMask = 255;

void PollCancel(const CancellationToken* token, uint32_t* polls) {
  if (token != nullptr && (++*polls & kDeepEqualPollMask) == 0) {
    token->Check();
  }
}

bool DeepEqualAtomic(const AtomicValue& a, const AtomicValue& b) {
  if (a.IsNumeric() && b.IsNumeric()) {
    if (a.type() == AtomicType::kDouble || b.type() == AtomicType::kDouble) {
      double x = a.ToDoubleValue();
      double y = b.ToDoubleValue();
      if (std::isnan(x) && std::isnan(y)) return true;  // fn:deep-equal rule
      return x == y;
    }
    Decimal x = a.type() == AtomicType::kInteger ? Decimal(a.AsInteger())
                                                 : a.AsDecimal();
    Decimal y = b.type() == AtomicType::kInteger ? Decimal(b.AsInteger())
                                                 : b.AsDecimal();
    return x.Compare(y) == 0;
  }
  if (a.IsStringLike() && b.IsStringLike()) {
    return a.AsString() == b.AsString();
  }
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case AtomicType::kBoolean:
      return a.AsBoolean() == b.AsBoolean();
    case AtomicType::kDateTime:
    case AtomicType::kDate:
    case AtomicType::kTime:
      return a.AsDateTime().Compare(b.AsDateTime()) == 0;
    case AtomicType::kQName:
      return a.AsString() == b.AsString();
    case AtomicType::kDuration:
      return a.AsDurationMillis() == b.AsDurationMillis();
    default:
      return false;
  }
}

size_t CombineHash(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t DeepHashNode(const Node* node) {
  size_t h = static_cast<size_t>(node->kind()) * 0x9e3779b97f4a7c15ULL;
  switch (node->kind()) {
    case NodeKind::kText:
      return CombineHash(h, std::hash<std::string>()(node->content()));
    case NodeKind::kAttribute:
      h = CombineHash(h, std::hash<std::string>()(node->name()));
      return CombineHash(h, std::hash<std::string>()(node->content()));
    case NodeKind::kComment:
    case NodeKind::kProcessingInstruction:
      return CombineHash(h, std::hash<std::string>()(node->content()));
    case NodeKind::kElement:
      h = CombineHash(h, std::hash<std::string>()(node->name()));
      [[fallthrough]];
    case NodeKind::kDocument: {
      // Attribute sets hash order-insensitively (XOR).
      size_t attrs = 0;
      for (const Node* attr : node->attributes()) {
        attrs ^= DeepHashNode(attr);
      }
      h = CombineHash(h, attrs);
      for (const Node* child : node->children()) {
        if (IsIgnoredChild(child)) continue;
        h = CombineHash(h, DeepHashNode(child));
      }
      return h;
    }
  }
  return h;
}

size_t DeepHashElementPrefix(const Node* elem) {
  // Mirrors the element arm of DeepHashNode up to (and including) the
  // empty attribute-set fold, so callers can append child hashes with
  // CombineDeepHash and land on the exact DeepHashNode value.
  size_t h = static_cast<size_t>(elem->kind()) * 0x9e3779b97f4a7c15ULL;
  h = CombineHash(h, std::hash<std::string>()(elem->name()));
  return CombineHash(h, /*attrs=*/0);
}

size_t CombineDeepHash(size_t seed, size_t value) {
  return CombineHash(seed, value);
}

namespace {

bool DeepEqualNodesImpl(const Node* a, const Node* b,
                        const CancellationToken* token, uint32_t* polls) {
  PollCancel(token, polls);
  if (a == b) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case NodeKind::kText:
    case NodeKind::kComment:
      return a->content() == b->content();
    case NodeKind::kProcessingInstruction:
      return a->name() == b->name() && a->content() == b->content();
    case NodeKind::kAttribute:
      return a->name() == b->name() && a->content() == b->content();
    case NodeKind::kElement:
      if (a->name() != b->name()) return false;
      if (a->attributes().size() != b->attributes().size()) return false;
      for (const Node* attr : a->attributes()) {
        const Node* other = b->FindAttribute(attr->name());
        if (other == nullptr || other->content() != attr->content()) {
          return false;
        }
      }
      [[fallthrough]];
    case NodeKind::kDocument: {
      // Compare element/text children pairwise, skipping comments and PIs.
      size_t i = 0, j = 0;
      const auto& ca = a->children();
      const auto& cb = b->children();
      while (true) {
        while (i < ca.size() && IsIgnoredChild(ca[i])) ++i;
        while (j < cb.size() && IsIgnoredChild(cb[j])) ++j;
        if (i >= ca.size() || j >= cb.size()) break;
        if (!DeepEqualNodesImpl(ca[i], cb[j], token, polls)) return false;
        ++i;
        ++j;
      }
      while (i < ca.size() && IsIgnoredChild(ca[i])) ++i;
      while (j < cb.size() && IsIgnoredChild(cb[j])) ++j;
      return i >= ca.size() && j >= cb.size();
    }
  }
  return false;
}

}  // namespace

bool DeepEqualNodes(const Node* a, const Node* b,
                    const CancellationToken* token) {
  uint32_t polls = 0;
  return DeepEqualNodesImpl(a, b, token, &polls);
}

bool DeepEqualItems(const Item& a, const Item& b,
                    const CancellationToken* token) {
  if (a.IsNode() != b.IsNode()) return false;
  if (a.IsNode()) return DeepEqualNodes(a.node(), b.node(), token);
  return DeepEqualAtomic(a.atomic(), b.atomic());
}

bool DeepEqualSequences(const Sequence& a, const Sequence& b,
                        const CancellationToken* token) {
  if (a.size() != b.size()) return false;
  uint32_t polls = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    PollCancel(token, &polls);
    if (a[i].IsNode() != b[i].IsNode()) return false;
    if (a[i].IsNode()) {
      if (!DeepEqualNodesImpl(a[i].node(), b[i].node(), token, &polls)) {
        return false;
      }
    } else if (!DeepEqualAtomic(a[i].atomic(), b[i].atomic())) {
      return false;
    }
  }
  return true;
}

size_t DeepHashItem(const Item& item) {
  if (item.IsNode()) return DeepHashNode(item.node());
  const AtomicValue& v = item.atomic();
  // NaN must hash consistently with "NaN deep-equals NaN".
  if (v.type() == AtomicType::kDouble && std::isnan(v.AsDouble())) {
    return 0x7ff8000000000000ULL;
  }
  return v.Hash();
}

size_t DeepHashSequence(const Sequence& sequence) {
  size_t h = kDeepHashSeqSeed;
  for (const Item& item : sequence) {
    h = CombineHash(h, DeepHashItem(item));
  }
  return h;
}

}  // namespace xqa

#include "xdm/atomic_value.h"

#include <cmath>
#include <functional>

#include "base/error.h"
#include "base/string_util.h"

namespace xqa {

std::string_view AtomicTypeName(AtomicType type) {
  switch (type) {
    case AtomicType::kUntypedAtomic: return "xs:untypedAtomic";
    case AtomicType::kString: return "xs:string";
    case AtomicType::kBoolean: return "xs:boolean";
    case AtomicType::kInteger: return "xs:integer";
    case AtomicType::kDecimal: return "xs:decimal";
    case AtomicType::kDouble: return "xs:double";
    case AtomicType::kDateTime: return "xs:dateTime";
    case AtomicType::kDate: return "xs:date";
    case AtomicType::kTime: return "xs:time";
    case AtomicType::kQName: return "xs:QName";
    case AtomicType::kDuration: return "xs:dayTimeDuration";
  }
  return "xs:anyAtomicType";
}

AtomicValue AtomicValue::Untyped(std::string value) {
  AtomicValue v;
  v.type_ = AtomicType::kUntypedAtomic;
  v.value_ = std::move(value);
  return v;
}

AtomicValue AtomicValue::String(std::string value) {
  AtomicValue v;
  v.type_ = AtomicType::kString;
  v.value_ = std::move(value);
  return v;
}

AtomicValue AtomicValue::Boolean(bool value) {
  AtomicValue v;
  v.type_ = AtomicType::kBoolean;
  v.value_ = value;
  return v;
}

AtomicValue AtomicValue::Integer(int64_t value) {
  AtomicValue v;
  v.type_ = AtomicType::kInteger;
  v.value_ = value;
  return v;
}

AtomicValue AtomicValue::MakeDecimal(Decimal value) {
  AtomicValue v;
  v.type_ = AtomicType::kDecimal;
  v.value_ = value;
  return v;
}

AtomicValue AtomicValue::Double(double value) {
  AtomicValue v;
  v.type_ = AtomicType::kDouble;
  v.value_ = value;
  return v;
}

AtomicValue AtomicValue::MakeDateTime(DateTime value) {
  AtomicValue v;
  v.type_ = AtomicType::kDateTime;
  v.value_ = value;
  return v;
}

AtomicValue AtomicValue::MakeDate(DateTime value) {
  AtomicValue v;
  v.type_ = AtomicType::kDate;
  v.value_ = value;
  return v;
}

AtomicValue AtomicValue::MakeTime(DateTime value) {
  AtomicValue v;
  v.type_ = AtomicType::kTime;
  v.value_ = value;
  return v;
}

AtomicValue AtomicValue::MakeDuration(int64_t millis) {
  AtomicValue v;
  v.type_ = AtomicType::kDuration;
  v.value_ = millis;
  return v;
}

AtomicValue AtomicValue::MakeQName(std::string lexical) {
  AtomicValue v;
  v.type_ = AtomicType::kQName;
  v.value_ = std::move(lexical);
  return v;
}

std::string AtomicValue::ToLexical() const {
  switch (type_) {
    case AtomicType::kUntypedAtomic:
    case AtomicType::kString:
    case AtomicType::kQName:
      return AsString();
    case AtomicType::kBoolean:
      return AsBoolean() ? "true" : "false";
    case AtomicType::kInteger:
      return FormatInteger(AsInteger());
    case AtomicType::kDecimal:
      return AsDecimal().ToString();
    case AtomicType::kDouble:
      return FormatDouble(AsDouble());
    case AtomicType::kDateTime:
    case AtomicType::kDate:
    case AtomicType::kTime:
      return AsDateTime().ToString();
    case AtomicType::kDuration:
      return DateTime::FormatDayTimeDuration(AsDurationMillis());
  }
  return {};
}

double AtomicValue::ToDoubleValue() const {
  switch (type_) {
    case AtomicType::kInteger:
      return static_cast<double>(AsInteger());
    case AtomicType::kDecimal:
      return AsDecimal().ToDouble();
    case AtomicType::kDouble:
      return AsDouble();
    case AtomicType::kUntypedAtomic: {
      double value;
      if (!ParseDouble(AsString(), &value)) {
        ThrowError(ErrorCode::kFORG0001,
                   "cannot convert '" + AsString() + "' to a number");
      }
      return value;
    }
    default:
      ThrowError(ErrorCode::kFORG0001,
                 std::string("not a numeric value: ") +
                     std::string(AtomicTypeName(type_)));
  }
}

AtomicValue AtomicValue::CastTo(AtomicType target) const {
  if (target == type_) return *this;
  const std::string lexical = ToLexical();
  auto bad_cast = [&]() -> AtomicValue {
    ThrowError(ErrorCode::kFORG0001,
               "cannot cast '" + lexical + "' (" +
                   std::string(AtomicTypeName(type_)) + ") to " +
                   std::string(AtomicTypeName(target)));
  };
  switch (target) {
    case AtomicType::kString:
      return String(lexical);
    case AtomicType::kUntypedAtomic:
      return Untyped(lexical);
    case AtomicType::kBoolean: {
      if (IsNumeric()) {
        double d = ToDoubleValue();
        return Boolean(d != 0 && !std::isnan(d));
      }
      std::string_view t = TrimWhitespace(lexical);
      if (t == "true" || t == "1") return Boolean(true);
      if (t == "false" || t == "0") return Boolean(false);
      return bad_cast();
    }
    case AtomicType::kInteger: {
      if (type_ == AtomicType::kDecimal) return Integer(AsDecimal().ToInteger());
      if (type_ == AtomicType::kDouble) {
        double d = AsDouble();
        if (std::isnan(d) || std::isinf(d)) {
          ThrowError(ErrorCode::kFOCA0002, "cannot cast NaN or INF to xs:integer");
        }
        return Integer(static_cast<int64_t>(d));
      }
      if (type_ == AtomicType::kBoolean) return Integer(AsBoolean() ? 1 : 0);
      int64_t value;
      if (!ParseInteger(lexical, &value)) return bad_cast();
      return Integer(value);
    }
    case AtomicType::kDecimal: {
      if (type_ == AtomicType::kInteger) return MakeDecimal(Decimal(AsInteger()));
      if (type_ == AtomicType::kDouble) return MakeDecimal(Decimal::FromDouble(AsDouble()));
      if (type_ == AtomicType::kBoolean) return MakeDecimal(Decimal(AsBoolean() ? 1 : 0));
      Decimal value;
      if (!Decimal::Parse(lexical, &value)) return bad_cast();
      return MakeDecimal(value);
    }
    case AtomicType::kDouble: {
      if (IsNumeric()) return Double(ToDoubleValue());
      if (type_ == AtomicType::kBoolean) return Double(AsBoolean() ? 1.0 : 0.0);
      double value;
      if (!ParseDouble(lexical, &value)) return bad_cast();
      return Double(value);
    }
    case AtomicType::kDateTime: {
      DateTime value;
      if (!DateTime::ParseDateTime(lexical, &value)) return bad_cast();
      return MakeDateTime(value);
    }
    case AtomicType::kDate: {
      if (type_ == AtomicType::kDateTime) {
        DateTime d = AsDateTime();
        DateTime date = DateTime::FromComponents(d.year(), d.month(), d.day());
        DateTime parsed;
        // Rebuild via lexical to set has_time=false cleanly.
        if (!DateTime::ParseDate(date.ToString().substr(0, 10), &parsed)) {
          return bad_cast();
        }
        return MakeDate(parsed);
      }
      DateTime value;
      if (!DateTime::ParseDate(lexical, &value)) return bad_cast();
      return MakeDate(value);
    }
    case AtomicType::kTime: {
      DateTime value;
      if (!DateTime::ParseTime(lexical, &value)) return bad_cast();
      return MakeTime(value);
    }
    case AtomicType::kQName:
      if (IsStringLike()) return MakeQName(CollapseWhitespace(lexical));
      return bad_cast();
    case AtomicType::kDuration: {
      int64_t millis;
      if (!DateTime::ParseDayTimeDuration(lexical, &millis)) return bad_cast();
      return MakeDuration(millis);
    }
  }
  return bad_cast();
}

size_t AtomicValue::Hash() const {
  switch (type_) {
    case AtomicType::kUntypedAtomic:
    case AtomicType::kString:
    case AtomicType::kQName:
      return std::hash<std::string>()(AsString());
    case AtomicType::kBoolean:
      return AsBoolean() ? 0x9e3779b9u : 0x85ebca6bu;
    case AtomicType::kInteger:
    case AtomicType::kDecimal:
    case AtomicType::kDouble: {
      // Numerically equal values of different types must hash alike.
      double d = ToDoubleValue();
      if (d == 0) d = 0;  // normalize -0.0
      return std::hash<double>()(d);
    }
    case AtomicType::kDateTime:
    case AtomicType::kDate:
    case AtomicType::kTime:
      return AsDateTime().Hash();
    case AtomicType::kDuration:
      return std::hash<int64_t>()(AsDurationMillis()) ^ 0x6475726174696f6eULL;
  }
  return 0;
}

}  // namespace xqa

#include "xdm/decimal.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>

#include "base/error.h"
#include "base/string_util.h"

namespace xqa {

namespace {

using int128 = __int128;

constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();
constexpr int64_t kInt64Min = std::numeric_limits<int64_t>::min();

int64_t CheckedNarrow(int128 value) {
  if (value > static_cast<int128>(kInt64Max) ||
      value < static_cast<int128>(kInt64Min)) {
    ThrowError(ErrorCode::kFOAR0002, "decimal overflow");
  }
  return static_cast<int64_t>(value);
}

int128 Pow10_128(int exponent) {
  int128 result = 1;
  for (int i = 0; i < exponent; ++i) result *= 10;
  return result;
}

/// Scales `value` by 10^delta, checking overflow.
int128 ScaleUp(int128 value, int delta) {
  for (int i = 0; i < delta; ++i) {
    int128 next = value * 10;
    if (next / 10 != value) ThrowError(ErrorCode::kFOAR0002, "decimal overflow");
    value = next;
  }
  return value;
}

}  // namespace

void Decimal::Normalize() {
  while (scale_ > 0 && unscaled_ % 10 == 0) {
    unscaled_ /= 10;
    --scale_;
  }
  if (unscaled_ == 0) scale_ = 0;
}

Decimal Decimal::FromUnscaled(int64_t unscaled, int scale) {
  if (scale < 0 || scale > kMaxScale) {
    ThrowError(ErrorCode::kFOAR0002, "decimal scale out of range");
  }
  Decimal d;
  d.unscaled_ = unscaled;
  d.scale_ = scale;
  d.Normalize();
  return d;
}

bool Decimal::Parse(std::string_view text, Decimal* out) {
  text = TrimWhitespace(text);
  if (text.empty()) return false;
  size_t i = 0;
  bool negative = false;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    i = 1;
  }
  int128 unscaled = 0;
  int scale = 0;
  bool seen_digit = false;
  bool seen_point = false;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c == '.') {
      if (seen_point) return false;
      seen_point = true;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    seen_digit = true;
    if (seen_point && scale >= kMaxScale) {
      // Extra fractional digits beyond the representable scale are dropped
      // (truncated); xs:decimal implementations may limit precision.
      continue;
    }
    unscaled = unscaled * 10 + (c - '0');
    if (unscaled > static_cast<int128>(kInt64Max)) return false;
    if (seen_point) ++scale;
  }
  if (!seen_digit) return false;
  Decimal d;
  d.unscaled_ = negative ? -static_cast<int64_t>(unscaled)
                         : static_cast<int64_t>(unscaled);
  d.scale_ = scale;
  d.Normalize();
  *out = d;
  return true;
}

Decimal Decimal::FromDouble(double value) {
  if (std::isnan(value) || std::isinf(value)) {
    ThrowError(ErrorCode::kFOCA0002, "cannot convert NaN or INF to xs:decimal");
  }
  // Render with enough digits and parse back; simple and round-trip safe for
  // workload-scale values.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12f", value);
  Decimal d;
  if (!Parse(buf, &d)) {
    ThrowError(ErrorCode::kFOCA0002, "double out of xs:decimal range");
  }
  return d;
}

double Decimal::ToDouble() const {
  // unscaled / 10^scale, computed as one correctly-rounded division. Repeated
  // division by 10.0 compounds rounding error (e.g. 0.007 came out one ulp
  // away from strtod("0.007"), making equal-valued decimal/double pairs
  // compare unequal and hash apart).
  if (scale_ == 0) return static_cast<double>(unscaled_);
  double divisor = 1.0;
  for (int i = 0; i < scale_; ++i) divisor *= 10.0;
  // Powers of ten through 10^22 are exact doubles; scale_ <= 18 always holds
  // for a normalized int64-backed decimal, so the single division rounds
  // correctly and agrees with strtod of the lexical form.
  return static_cast<double>(unscaled_) / divisor;
}

int64_t Decimal::ToInteger() const {
  int128 divisor = Pow10_128(scale_);
  return CheckedNarrow(static_cast<int128>(unscaled_) / divisor);
}

std::string Decimal::ToString() const {
  if (scale_ == 0) return std::to_string(unscaled_);
  bool negative = unscaled_ < 0;
  // Render magnitude via unsigned to survive INT64_MIN.
  uint64_t magnitude = negative
      ? ~static_cast<uint64_t>(unscaled_) + 1
      : static_cast<uint64_t>(unscaled_);
  std::string digits = std::to_string(magnitude);
  // Build the result front-to-back (avoids repeated inserts, and a GCC 12
  // -Wrestrict false positive on string::insert).
  std::string out;
  out.reserve(digits.size() + static_cast<size_t>(scale_) + 2);
  if (negative) out.push_back('-');
  size_t scale = static_cast<size_t>(scale_);
  if (digits.size() <= scale) {
    out.push_back('0');
    out.push_back('.');
    out.append(scale - digits.size(), '0');
    out.append(digits);
  } else {
    out.append(digits, 0, digits.size() - scale);
    out.push_back('.');
    out.append(digits, digits.size() - scale, scale);
  }
  return out;
}

Decimal Decimal::Negate() const {
  if (unscaled_ == kInt64Min) ThrowError(ErrorCode::kFOAR0002, "decimal overflow");
  Decimal d;
  d.unscaled_ = -unscaled_;
  d.scale_ = scale_;
  return d;
}

Decimal Decimal::Add(const Decimal& other) const {
  int scale = std::max(scale_, other.scale_);
  int128 a = ScaleUp(unscaled_, scale - scale_);
  int128 b = ScaleUp(other.unscaled_, scale - other.scale_);
  return FromUnscaled(CheckedNarrow(a + b), scale);
}

Decimal Decimal::Subtract(const Decimal& other) const {
  int scale = std::max(scale_, other.scale_);
  int128 a = ScaleUp(unscaled_, scale - scale_);
  int128 b = ScaleUp(other.unscaled_, scale - other.scale_);
  return FromUnscaled(CheckedNarrow(a - b), scale);
}

Decimal Decimal::Multiply(const Decimal& other) const {
  int128 product = static_cast<int128>(unscaled_) * other.unscaled_;
  int scale = scale_ + other.scale_;
  // Reduce scale if the product has trailing zeros or exceeds limits.
  while (scale > kMaxScale || product > static_cast<int128>(kInt64Max) ||
         product < static_cast<int128>(kInt64Min)) {
    if (scale == 0) ThrowError(ErrorCode::kFOAR0002, "decimal overflow");
    // Round half away from zero while reducing precision.
    int128 rem = product % 10;
    product /= 10;
    if (rem >= 5) product += 1;
    if (rem <= -5) product -= 1;
    --scale;
  }
  return FromUnscaled(static_cast<int64_t>(product), scale);
}

Decimal Decimal::Divide(const Decimal& other) const {
  if (other.IsZero()) ThrowError(ErrorCode::kFOAR0001, "division by zero");
  // Compute (a * 10^k) / b at maximal precision, then trim.
  int128 numerator = unscaled_;
  int128 denominator = other.unscaled_;
  // Result scale before adjustment: scale_ - other.scale_ + k.
  int target_scale = kDivisionScale;
  int shift = target_scale - scale_ + other.scale_;
  if (shift < 0) {
    denominator = ScaleUp(denominator, -shift);
  } else {
    numerator = ScaleUp(numerator, shift);
  }
  int128 quotient = numerator / denominator;
  int128 remainder = numerator % denominator;
  // Round half away from zero.
  int128 twice = remainder * 2;
  if (twice >= denominator || twice <= -denominator) {
    quotient += (numerator < 0) == (denominator < 0) ? 1 : -1;
  }
  int scale = target_scale;
  while (scale > kMaxScale || quotient > static_cast<int128>(kInt64Max) ||
         quotient < static_cast<int128>(kInt64Min)) {
    if (scale == 0) ThrowError(ErrorCode::kFOAR0002, "decimal overflow");
    quotient /= 10;
    --scale;
  }
  return FromUnscaled(static_cast<int64_t>(quotient), scale);
}

int64_t Decimal::IntegerDivide(const Decimal& other) const {
  if (other.IsZero()) ThrowError(ErrorCode::kFOAR0001, "integer division by zero");
  int scale = std::max(scale_, other.scale_);
  int128 a = ScaleUp(unscaled_, scale - scale_);
  int128 b = ScaleUp(other.unscaled_, scale - other.scale_);
  return CheckedNarrow(a / b);
}

Decimal Decimal::Mod(const Decimal& other) const {
  if (other.IsZero()) ThrowError(ErrorCode::kFOAR0001, "modulo by zero");
  int scale = std::max(scale_, other.scale_);
  int128 a = ScaleUp(unscaled_, scale - scale_);
  int128 b = ScaleUp(other.unscaled_, scale - other.scale_);
  return FromUnscaled(CheckedNarrow(a % b), scale);
}

int Decimal::Compare(const Decimal& other) const {
  if (scale_ == other.scale_) {
    if (unscaled_ == other.unscaled_) return 0;
    return unscaled_ < other.unscaled_ ? -1 : 1;
  }
  int scale = std::max(scale_, other.scale_);
  // Use 128-bit so scaling cannot overflow.
  int128 a = static_cast<int128>(unscaled_) * Pow10_128(scale - scale_);
  int128 b = static_cast<int128>(other.unscaled_) * Pow10_128(scale - other.scale_);
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

Decimal Decimal::Abs() const { return IsNegative() ? Negate() : *this; }

Decimal Decimal::Floor() const {
  if (scale_ == 0) return *this;
  int128 divisor = Pow10_128(scale_);
  int128 quotient = unscaled_ / divisor;
  if (unscaled_ < 0 && unscaled_ % divisor != 0) quotient -= 1;
  return Decimal(CheckedNarrow(quotient));
}

Decimal Decimal::Ceiling() const {
  if (scale_ == 0) return *this;
  int128 divisor = Pow10_128(scale_);
  int128 quotient = unscaled_ / divisor;
  if (unscaled_ > 0 && unscaled_ % divisor != 0) quotient += 1;
  return Decimal(CheckedNarrow(quotient));
}

Decimal Decimal::Round() const {
  if (scale_ == 0) return *this;
  // round(x) = floor(x + 0.5)
  return Add(FromUnscaled(5, 1)).Floor();
}

Decimal Decimal::RoundHalfToEven(int precision) const {
  if (precision < 0) precision = 0;
  if (scale_ <= precision) return *this;
  int128 divisor = Pow10_128(scale_ - precision);
  int128 quotient = unscaled_ / divisor;
  int128 remainder = unscaled_ % divisor;
  int128 twice = remainder * 2;
  if (twice > divisor || (twice == divisor && quotient % 2 != 0)) {
    quotient += 1;
  } else if (twice < -divisor || (twice == -divisor && quotient % 2 != 0)) {
    quotient -= 1;
  }
  return FromUnscaled(CheckedNarrow(quotient), precision);
}

size_t Decimal::Hash() const {
  size_t h1 = std::hash<int64_t>()(unscaled_);
  size_t h2 = std::hash<int>()(scale_);
  return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
}

}  // namespace xqa

#ifndef XQA_XDM_JSON_H_
#define XQA_XDM_JSON_H_

#include <string>
#include <string_view>

#include "xdm/item.h"
#include "xml/node.h"

namespace xqa {

/// JSON ↔ XDM interop (docs/SHREDDING.md, "analytics over feeds").
///
/// Ingest (`xqa:parse-json`): JSON text becomes a sealed document whose
/// canonical element shape the shredder can infer a schema from —
///   - the document root is `<json>`,
///   - an object member `"k": v` becomes a child element `<k>` (non-NCName
///     characters in the key sanitized to '_', an empty key to "_"), members
///     in input order,
///   - an array under key `k` becomes repeated `<k>` children; a top-level
///     array becomes repeated `<item>` children,
///   - scalars become text content carrying the ORIGINAL lexeme (numbers are
///     not reparsed/reformatted, so 1.10 stays "1.10" and the shredder's
///     type detection sees what the feed actually said),
///   - `null` becomes an empty element (a shredded null),
///   - `true`/`false` become the text "true"/"false".
///
/// Emit (`xqa:xml-to-json` / JSON result serialization): the inverse-ish
/// mapping — an element with no attributes and no element children is a
/// scalar (empty → null, "true"/"false" → booleans, strict JSON-number
/// lexemes → raw numbers, anything else → a string); attributes become
/// "@name" members; element children group by name in first-appearance
/// order, a name occurring once mapping to its value and a repeated name to
/// an array. Mixed content degrades to the string-value. NaN/INF have no
/// JSON number form and serialize as strings.

/// Parses JSON text into a sealed document. Throws FOJS0001 on malformed
/// input (syntax error, unpaired surrogate escape, trailing garbage, or
/// nesting beyond the depth guard).
DocumentPtr ParseJsonDocument(std::string_view json);

/// Serializes one item to JSON: nodes through the element mapping above,
/// atomics directly (booleans and numerics as JSON values, the rest as
/// strings).
std::string ItemToJson(const Item& item);

/// Serializes a sequence to JSON: empty → null, a singleton → its value, n
/// items → an array.
std::string SequenceToJson(const Sequence& sequence);

}  // namespace xqa

#endif  // XQA_XDM_JSON_H_

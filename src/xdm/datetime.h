#ifndef XQA_XDM_DATETIME_H_
#define XQA_XDM_DATETIME_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace xqa {

/// xs:dateTime / xs:date / xs:time value. Parsed from ISO 8601 lexical forms
/// like "2004-01-31T11:32:07", "2004-01-31T11:32:07.250-08:00", "2004-01-31",
/// "11:32:07". The component set present depends on which type parsed it;
/// has_date / has_time record that.
///
/// Timezone support: an optional offset in minutes. Comparison converts to a
/// normalized instant when both values carry timezones; values without a
/// timezone compare field-wise (the common case in analytics documents).
class DateTime {
 public:
  DateTime() = default;

  /// Parses an xs:dateTime ("YYYY-MM-DDThh:mm:ss(.fff)?(Z|±hh:mm)?").
  static bool ParseDateTime(std::string_view text, DateTime* out);
  /// Parses an xs:date ("YYYY-MM-DD(Z|±hh:mm)?").
  static bool ParseDate(std::string_view text, DateTime* out);
  /// Parses an xs:time ("hh:mm:ss(.fff)?(Z|±hh:mm)?").
  static bool ParseTime(std::string_view text, DateTime* out);

  static DateTime FromComponents(int year, int month, int day, int hour = 0,
                                 int minute = 0, int second = 0,
                                 int millisecond = 0);

  int year() const { return year_; }
  int month() const { return month_; }
  int day() const { return day_; }
  int hour() const { return hour_; }
  int minute() const { return minute_; }
  int second() const { return second_; }
  int millisecond() const { return millisecond_; }
  bool has_timezone() const { return has_timezone_; }
  int timezone_offset_minutes() const { return tz_minutes_; }
  bool has_date() const { return has_date_; }
  bool has_time() const { return has_time_; }

  /// Canonical lexical form matching the parsed shape.
  std::string ToString() const;

  /// Milliseconds since 0001-01-01T00:00:00 (proleptic Gregorian), adjusted
  /// to UTC when a timezone is present. Total order for comparison.
  int64_t ToEpochMillis() const;

  /// Three-way compare: -1, 0, +1.
  int Compare(const DateTime& other) const;

  bool operator==(const DateTime& other) const { return Compare(other) == 0; }

  size_t Hash() const;

  /// Days in the given month (1-12) of `year` (Gregorian).
  static int DaysInMonth(int year, int month);
  static bool IsLeapYear(int year);

  /// Inverse of ToEpochMillis: rebuilds the date/time components from a
  /// proleptic-Gregorian instant (no timezone). Throws FODT0001 when the
  /// instant is outside years 1..9999.
  static DateTime FromEpochMillis(int64_t millis);

  /// Returns this instant shifted by a dayTimeDuration in milliseconds,
  /// preserving the has_date/has_time shape and dropping the timezone
  /// (arithmetic is done on the normalized instant).
  DateTime PlusMillis(int64_t millis) const;

 public:
  // --- xs:dayTimeDuration helpers (stored as signed milliseconds) ----------

  /// Parses "(-)PnDTnHnMn(.nnn)S" forms ("P1D", "PT2H30M", "-PT0.5S", ...).
  static bool ParseDayTimeDuration(std::string_view text, int64_t* millis);

  /// Canonical xs:dayTimeDuration lexical form for a millisecond count.
  static std::string FormatDayTimeDuration(int64_t millis);

 private:
  int year_ = 1;
  int month_ = 1;
  int day_ = 1;
  int hour_ = 0;
  int minute_ = 0;
  int second_ = 0;
  int millisecond_ = 0;
  bool has_timezone_ = false;
  int tz_minutes_ = 0;
  bool has_date_ = true;
  bool has_time_ = true;
};

}  // namespace xqa

#endif  // XQA_XDM_DATETIME_H_

#include "xdm/sequence_ops.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "base/error.h"

namespace xqa {

AtomicValue AtomizeItem(const Item& item) {
  if (item.IsAtomic()) return item.atomic();
  return AtomicValue::Untyped(item.node()->StringValue());
}

Sequence Atomize(const Sequence& sequence) {
  Sequence out;
  out.reserve(sequence.size());
  for (const Item& item : sequence) {
    out.push_back(Item(AtomizeItem(item)));
  }
  return out;
}

bool EffectiveBooleanValue(const Sequence& sequence) {
  if (sequence.empty()) return false;
  if (sequence[0].IsNode()) return true;
  if (sequence.size() > 1) {
    ThrowError(ErrorCode::kFORG0006,
               "effective boolean value of a multi-item atomic sequence");
  }
  const AtomicValue& v = sequence[0].atomic();
  switch (v.type()) {
    case AtomicType::kBoolean:
      return v.AsBoolean();
    case AtomicType::kString:
    case AtomicType::kUntypedAtomic:
      return !v.AsString().empty();
    case AtomicType::kInteger:
      return v.AsInteger() != 0;
    case AtomicType::kDecimal:
      return !v.AsDecimal().IsZero();
    case AtomicType::kDouble: {
      double d = v.AsDouble();
      return d != 0 && !std::isnan(d);
    }
    default:
      ThrowError(ErrorCode::kFORG0006,
                 "no effective boolean value for " +
                     std::string(AtomicTypeName(v.type())));
  }
}

std::string StringValueOf(const Sequence& sequence) {
  if (sequence.empty()) return "";
  if (sequence.size() > 1) {
    ThrowError(ErrorCode::kFORG0006, "fn:string applied to a multi-item sequence");
  }
  return sequence[0].StringValue();
}

void SortDocumentOrderAndDedup(Sequence* sequence) {
  for (const Item& item : *sequence) {
    if (!item.IsNode()) {
      ThrowError(ErrorCode::kFORG0006,
                 "path step produced a non-node item");
    }
  }
  std::stable_sort(sequence->begin(), sequence->end(),
                   [](const Item& a, const Item& b) {
                     return CompareDocumentOrder(a.node(), b.node()) < 0;
                   });
  sequence->erase(std::unique(sequence->begin(), sequence->end(),
                              [](const Item& a, const Item& b) {
                                return a.node() == b.node();
                              }),
                  sequence->end());
}

void Concat(Sequence* head, const Sequence& tail) {
  head->insert(head->end(), tail.begin(), tail.end());
}

void MoveConcat(Sequence* head, Sequence&& tail) {
  if (head->empty()) {
    *head = std::move(tail);
    return;
  }
  head->insert(head->end(), std::make_move_iterator(tail.begin()),
               std::make_move_iterator(tail.end()));
  tail.clear();
}

}  // namespace xqa

#ifndef XQA_XDM_SEQUENCE_OPS_H_
#define XQA_XDM_SEQUENCE_OPS_H_

#include <string>

#include "xdm/item.h"

namespace xqa {

/// Atomizes one item: atomic values pass through; nodes yield their typed
/// value. In this schemaless engine a node's typed value is xs:untypedAtomic
/// of its string-value (the XDM rule for untyped data).
AtomicValue AtomizeItem(const Item& item);

/// fn:data — atomizes a whole sequence.
Sequence Atomize(const Sequence& sequence);

/// The effective boolean value per XPath 2.0: empty → false; first item a
/// node → true; singleton boolean/string/numeric per their rules; any other
/// sequence raises FORG0006.
bool EffectiveBooleanValue(const Sequence& sequence);

/// fn:string of a sequence that must be empty or a singleton; empty → "".
/// More than one item raises FORG0006.
std::string StringValueOf(const Sequence& sequence);

/// Sorts nodes into document order and removes duplicate identities. Raises
/// FORG0006 if the sequence contains a non-node (path steps require nodes).
void SortDocumentOrderAndDedup(Sequence* sequence);

/// Appends `tail` to `head`.
void Concat(Sequence* head, const Sequence& tail);

/// Appends `tail` to `head` by moving the items (no refcount or string
/// copies); `tail` is left empty-or-moved-from. Steals the whole buffer when
/// `head` is empty.
void MoveConcat(Sequence* head, Sequence&& tail);

}  // namespace xqa

#endif  // XQA_XDM_SEQUENCE_OPS_H_

#include "xdm/compare.h"

#include <cmath>

#include "base/error.h"
#include "xdm/sequence_ops.h"

namespace xqa {

namespace {

bool IsDateTimeLike(AtomicType type) {
  return type == AtomicType::kDateTime || type == AtomicType::kDate ||
         type == AtomicType::kTime;
}

[[noreturn]] void IncomparableError(const AtomicValue& a, const AtomicValue& b) {
  ThrowError(ErrorCode::kXPTY0004,
             "cannot compare " + std::string(AtomicTypeName(a.type())) +
                 " with " + std::string(AtomicTypeName(b.type())));
}

bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq: return cmp == 0;
    case CompareOp::kNe: return cmp != 0;
    case CompareOp::kLt: return cmp < 0;
    case CompareOp::kLe: return cmp <= 0;
    case CompareOp::kGt: return cmp > 0;
    case CompareOp::kGe: return cmp >= 0;
  }
  return false;
}

/// Three-way compare after both sides are known comparable; nullopt = NaN.
std::optional<int> CompareComparable(const AtomicValue& a,
                                     const AtomicValue& b) {
  // Numeric comparison with promotion.
  if (a.IsNumeric() && b.IsNumeric()) {
    if (a.type() == AtomicType::kDouble || b.type() == AtomicType::kDouble) {
      double x = a.ToDoubleValue();
      double y = b.ToDoubleValue();
      if (std::isnan(x) || std::isnan(y)) return std::nullopt;
      if (x == y) return 0;
      return x < y ? -1 : 1;
    }
    // integer / decimal: exact.
    Decimal x = a.type() == AtomicType::kInteger ? Decimal(a.AsInteger())
                                                 : a.AsDecimal();
    Decimal y = b.type() == AtomicType::kInteger ? Decimal(b.AsInteger())
                                                 : b.AsDecimal();
    return x.Compare(y);
  }
  if (a.IsStringLike() && b.IsStringLike()) {
    int cmp = a.AsString().compare(b.AsString());
    return cmp == 0 ? 0 : (cmp < 0 ? -1 : 1);
  }
  if (a.type() == AtomicType::kBoolean && b.type() == AtomicType::kBoolean) {
    int x = a.AsBoolean() ? 1 : 0;
    int y = b.AsBoolean() ? 1 : 0;
    return x == y ? 0 : (x < y ? -1 : 1);
  }
  if (IsDateTimeLike(a.type()) && a.type() == b.type()) {
    return a.AsDateTime().Compare(b.AsDateTime());
  }
  if (a.type() == AtomicType::kQName && b.type() == AtomicType::kQName) {
    int cmp = a.AsString().compare(b.AsString());
    return cmp == 0 ? 0 : (cmp < 0 ? -1 : 1);
  }
  if (a.type() == AtomicType::kDuration && b.type() == AtomicType::kDuration) {
    int64_t x = a.AsDurationMillis();
    int64_t y = b.AsDurationMillis();
    return x == y ? 0 : (x < y ? -1 : 1);
  }
  IncomparableError(a, b);
}

}  // namespace

bool ValueCompareAtomic(CompareOp op, const AtomicValue& a,
                        const AtomicValue& b) {
  // Value comparison treats untypedAtomic as xs:string.
  const AtomicValue* pa = &a;
  const AtomicValue* pb = &b;
  AtomicValue sa, sb;
  if (a.type() == AtomicType::kUntypedAtomic) {
    sa = AtomicValue::String(a.AsString());
    pa = &sa;
  }
  if (b.type() == AtomicType::kUntypedAtomic) {
    sb = AtomicValue::String(b.AsString());
    pb = &sb;
  }
  std::optional<int> cmp = CompareComparable(*pa, *pb);
  if (!cmp.has_value()) return op == CompareOp::kNe;  // NaN
  return ApplyOp(op, *cmp);
}

std::optional<int> ThreeWayCompareAtomic(const AtomicValue& a,
                                         const AtomicValue& b) {
  const AtomicValue* pa = &a;
  const AtomicValue* pb = &b;
  AtomicValue conv;
  if (a.type() == AtomicType::kUntypedAtomic &&
      b.type() != AtomicType::kUntypedAtomic) {
    conv = b.IsNumeric() ? a.CastTo(AtomicType::kDouble) : a.CastTo(b.type());
    pa = &conv;
  } else if (b.type() == AtomicType::kUntypedAtomic &&
             a.type() != AtomicType::kUntypedAtomic) {
    conv = a.IsNumeric() ? b.CastTo(AtomicType::kDouble) : b.CastTo(a.type());
    pb = &conv;
  } else if (a.type() == AtomicType::kUntypedAtomic &&
             b.type() == AtomicType::kUntypedAtomic) {
    int cmp = a.AsString().compare(b.AsString());
    return cmp == 0 ? 0 : (cmp < 0 ? -1 : 1);
  }
  return CompareComparable(*pa, *pb);
}

bool GeneralCompare(CompareOp op, const Sequence& lhs, const Sequence& rhs) {
  Sequence left = Atomize(lhs);
  Sequence right = Atomize(rhs);
  for (const Item& li : left) {
    for (const Item& ri : right) {
      const AtomicValue& a = li.atomic();
      const AtomicValue& b = ri.atomic();
      AtomicValue ca = a;
      AtomicValue cb = b;
      // General-comparison untyped casting rules.
      if (a.type() == AtomicType::kUntypedAtomic &&
          b.type() != AtomicType::kUntypedAtomic) {
        if (b.IsNumeric()) {
          ca = a.CastTo(AtomicType::kDouble);
        } else if (b.type() == AtomicType::kString) {
          ca = a.CastTo(AtomicType::kString);
        } else {
          ca = a.CastTo(b.type());
        }
      } else if (b.type() == AtomicType::kUntypedAtomic &&
                 a.type() != AtomicType::kUntypedAtomic) {
        if (a.IsNumeric()) {
          cb = b.CastTo(AtomicType::kDouble);
        } else if (a.type() == AtomicType::kString) {
          cb = b.CastTo(AtomicType::kString);
        } else {
          cb = b.CastTo(a.type());
        }
      }
      if (ValueCompareAtomic(op, ca, cb)) return true;
    }
  }
  return false;
}

bool ValueCompareSequences(CompareOp op, const Sequence& lhs,
                           const Sequence& rhs, bool* empty) {
  Sequence left = Atomize(lhs);
  Sequence right = Atomize(rhs);
  if (left.empty() || right.empty()) {
    *empty = true;
    return false;
  }
  *empty = false;
  if (left.size() > 1 || right.size() > 1) {
    ThrowError(ErrorCode::kXPTY0004,
               "value comparison requires singleton operands");
  }
  return ValueCompareAtomic(op, left[0].atomic(), right[0].atomic());
}

}  // namespace xqa

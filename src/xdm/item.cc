#include "xdm/item.h"

namespace xqa {

std::string Item::StringValue() const {
  if (IsNode()) return node()->StringValue();
  return atomic().ToLexical();
}

}  // namespace xqa

#ifndef XQA_XDM_DEEP_EQUAL_H_
#define XQA_XDM_DEEP_EQUAL_H_

#include <cstddef>

#include "base/cancellation.h"
#include "xdm/item.h"

namespace xqa {

// The optional cancellation token on the comparison entry points is polled
// in batches of visited nodes, so fn:deep-equal over two huge subtrees
// respects a deadline or cancel instead of running to completion. Null (the
// default) keeps the comparison entirely poll-free.

/// fn:deep-equal over two sequences: equal length and pairwise deep-equal
/// items. This is the paper's default grouping equality (Section 3.3):
/// permutations are distinct, the empty sequence is a distinct value, and
/// NaN deep-equals NaN.
bool DeepEqualSequences(const Sequence& a, const Sequence& b,
                        const CancellationToken* token = nullptr);

/// Deep equality of two items. Atomic values compare under `eq` semantics
/// (with untypedAtomic-as-string and NaN=NaN); incomparable atomic types are
/// unequal rather than an error. Nodes compare structurally: same kind and
/// name, attribute *sets* equal (order-insensitive), element/text children
/// pairwise deep-equal (comments and PIs are ignored, per fn:deep-equal).
bool DeepEqualItems(const Item& a, const Item& b,
                    const CancellationToken* token = nullptr);

/// Structural deep equality of two nodes (as used by DeepEqualItems).
bool DeepEqualNodes(const Node* a, const Node* b,
                    const CancellationToken* token = nullptr);

/// Hash consistent with DeepEqualSequences: deep-equal sequences hash to the
/// same value. Used to key hash-based grouping.
size_t DeepHashSequence(const Sequence& sequence);

/// Hash of one item consistent with DeepEqualItems.
size_t DeepHashItem(const Item& item);

/// Hash of one node consistent with DeepEqualNodes (the node arm of
/// DeepHashItem). Exposed so batched kernels can hash node spans without
/// materializing Items.
size_t DeepHashNode(const Node* node);

/// The name-dependent prefix of DeepHashNode for an attribute-free element:
/// for such an element with a single text child,
///   DeepHashNode(elem) == CombineDeepHash(DeepHashElementPrefix(elem),
///                                         DeepHashNode(text_child)).
/// Batched kernels cache the prefix per element name, so hashing a column
/// of <key>text</key> elements pays one content hash per row instead of
/// re-hashing the constant name. Precondition: elem->attributes().empty().
size_t DeepHashElementPrefix(const Node* elem);

/// The CombineHash fold used by the deep-hash chain, exposed for kernels
/// composing DeepHashElementPrefix with child hashes.
size_t CombineDeepHash(size_t seed, size_t value);

/// The per-sequence chain seed: DeepHashSequence starts here and folds each
/// item hash in order. A kernel folding DeepHashNode over a flat node span
/// from this seed reproduces DeepHashSequence of the materialized sequence
/// bit for bit.
inline constexpr size_t kDeepHashSeqSeed = 0x51ed270b76a4f1ceULL;

}  // namespace xqa

#endif  // XQA_XDM_DEEP_EQUAL_H_

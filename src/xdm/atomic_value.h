#ifndef XQA_XDM_ATOMIC_VALUE_H_
#define XQA_XDM_ATOMIC_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "xdm/datetime.h"
#include "xdm/decimal.h"

namespace xqa {

/// The atomic types implemented by the engine — the subset of XML Schema
/// types exercised by the paper's queries and workloads.
enum class AtomicType : uint8_t {
  kUntypedAtomic,  ///< untyped data from schemaless documents
  kString,
  kBoolean,
  kInteger,  ///< xs:integer (64-bit)
  kDecimal,  ///< exact fixed-point
  kDouble,
  kDateTime,
  kDate,
  kTime,
  kQName,
  kDuration,  ///< xs:dayTimeDuration (signed milliseconds)
};

/// Returns "xs:integer"-style names for diagnostics.
std::string_view AtomicTypeName(AtomicType type);

/// An atomic value: a type tag plus the value. Immutable.
class AtomicValue {
 public:
  /// Default-constructs the empty string (rarely useful; prefer factories).
  AtomicValue() : type_(AtomicType::kString), value_(std::string()) {}

  static AtomicValue Untyped(std::string value);
  static AtomicValue String(std::string value);
  static AtomicValue Boolean(bool value);
  static AtomicValue Integer(int64_t value);
  static AtomicValue MakeDecimal(Decimal value);
  static AtomicValue Double(double value);
  static AtomicValue MakeDateTime(DateTime value);
  static AtomicValue MakeDate(DateTime value);
  static AtomicValue MakeTime(DateTime value);
  static AtomicValue MakeQName(std::string lexical);
  /// xs:dayTimeDuration from a signed millisecond count.
  static AtomicValue MakeDuration(int64_t millis);

  AtomicType type() const { return type_; }

  bool IsNumeric() const {
    return type_ == AtomicType::kInteger || type_ == AtomicType::kDecimal ||
           type_ == AtomicType::kDouble;
  }

  bool IsStringLike() const {
    return type_ == AtomicType::kString || type_ == AtomicType::kUntypedAtomic;
  }

  // Accessors; each requires the matching type().
  bool AsBoolean() const { return std::get<bool>(value_); }
  int64_t AsInteger() const { return std::get<int64_t>(value_); }
  const Decimal& AsDecimal() const { return std::get<Decimal>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const DateTime& AsDateTime() const { return std::get<DateTime>(value_); }
  int64_t AsDurationMillis() const { return std::get<int64_t>(value_); }

  /// The canonical lexical form (what fn:string returns).
  std::string ToLexical() const;

  /// Numeric view with promotion (integer/decimal/double); untypedAtomic is
  /// parsed as xs:double per XPath arithmetic rules. Throws FORG0001 on
  /// non-numeric input.
  double ToDoubleValue() const;

  /// Casts to the target type following XQuery cast rules (subset). Throws
  /// FORG0001 on invalid lexical values.
  AtomicValue CastTo(AtomicType target) const;

  /// Structural hash consistent with value equality under `eq` semantics:
  /// numerically equal values of different numeric types hash identically.
  size_t Hash() const;

 private:
  AtomicType type_;
  std::variant<bool, int64_t, double, Decimal, std::string, DateTime> value_;
};

}  // namespace xqa

#endif  // XQA_XDM_ATOMIC_VALUE_H_

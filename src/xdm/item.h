#ifndef XQA_XDM_ITEM_H_
#define XQA_XDM_ITEM_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "xdm/atomic_value.h"
#include "xml/node.h"

namespace xqa {

/// A node reference: the node plus shared ownership of its document so that
/// trees constructed during evaluation outlive the expressions that built
/// them.
struct NodeRef {
  Node* node = nullptr;
  DocumentPtr document;
};

/// An XDM item: either a node or an atomic value.
class Item {
 public:
  /// Default: the atomic empty string. Prefer the factories.
  Item() : value_(AtomicValue()) {}

  explicit Item(AtomicValue atomic) : value_(std::move(atomic)) {}
  Item(Node* node, DocumentPtr document)
      : value_(NodeRef{node, std::move(document)}) {}
  explicit Item(NodeRef ref) : value_(std::move(ref)) {}

  bool IsNode() const { return std::holds_alternative<NodeRef>(value_); }
  bool IsAtomic() const { return !IsNode(); }

  /// Precondition: IsNode().
  Node* node() const { return std::get<NodeRef>(value_).node; }
  const DocumentPtr& document() const {
    return std::get<NodeRef>(value_).document;
  }
  const NodeRef& node_ref() const { return std::get<NodeRef>(value_); }

  /// Precondition: IsAtomic().
  const AtomicValue& atomic() const { return std::get<AtomicValue>(value_); }

  /// fn:string of this item: the node string-value or atomic lexical form.
  std::string StringValue() const;

 private:
  std::variant<AtomicValue, NodeRef> value_;
};

/// An XDM sequence: a flat, ordered list of items (never nested).
using Sequence = std::vector<Item>;

// Convenience factories.
inline Item MakeInteger(int64_t v) { return Item(AtomicValue::Integer(v)); }
inline Item MakeString(std::string v) {
  return Item(AtomicValue::String(std::move(v)));
}
inline Item MakeBoolean(bool v) { return Item(AtomicValue::Boolean(v)); }
inline Item MakeDouble(double v) { return Item(AtomicValue::Double(v)); }
inline Item MakeDecimalItem(Decimal v) {
  return Item(AtomicValue::MakeDecimal(v));
}
inline Item MakeUntyped(std::string v) {
  return Item(AtomicValue::Untyped(std::move(v)));
}

}  // namespace xqa

#endif  // XQA_XDM_ITEM_H_

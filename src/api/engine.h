#ifndef XQA_API_ENGINE_H_
#define XQA_API_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>

#include <vector>

#include "api/query_stats.h"
#include "base/error.h"
#include "eval/dynamic_context.h"
#include "optimizer/rewriter.h"
#include "parser/ast.h"
#include "xdm/item.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xqa {

/// Result of a profiled execution: the result sequence plus the execution
/// statistics collected while producing it.
struct ProfiledResult {
  Sequence sequence;
  QueryStats stats;
};

/// A compiled, bound (and optionally rewritten) query, ready for repeated
/// execution against documents. Thread-compatible: concurrent Execute calls
/// on one PreparedQuery are safe because each call gets its own
/// DynamicContext.
class PreparedQuery {
 public:
  /// Runs the query with `document` as the initial context item. Throws
  /// XQueryError on dynamic errors.
  Sequence Execute(const DocumentPtr& document) const;

  /// Runs the query with no context item (queries over constructed data).
  Sequence Execute() const;

  /// Runs the query with a registry of named documents for fn:doc /
  /// fn:collection; `context_document` may be null (no context item).
  Sequence Execute(const DocumentPtr& context_document,
                   const DocumentRegistry& documents) const;

  // Per-call ExecutionOptions overloads: the options apply to this execution
  // only, without touching the shared default — the form a cached, shared
  // PreparedQuery requires (src/service/plan_cache.h), since many threads
  // can execute one immutable handle with different parallelism, ablation,
  // or cancellation settings concurrently.
  Sequence Execute(const DocumentPtr& document,
                   const ExecutionOptions& options) const;
  Sequence Execute(const ExecutionOptions& options) const;
  Sequence Execute(const DocumentPtr& context_document,
                   const DocumentRegistry& documents,
                   const ExecutionOptions& options) const;

  /// Full-environment overload: nullable context document, nullable fn:doc
  /// registry, nullable collection provider (fn:collection and the
  /// partitioned FLWOR scan — docs/SERVICE.md). The other Execute overloads
  /// are shorthands for this one; the query service calls it directly with a
  /// CollectionStore snapshot, which must outlive the call.
  Sequence Execute(const DocumentPtr& context_document,
                   const DocumentRegistry* documents,
                   const CollectionProvider* collections,
                   const ExecutionOptions& options) const;

  /// Non-throwing variant.
  Result<Sequence> TryExecute(const DocumentPtr& document) const;

  /// Executes and serializes the result sequence: nodes as XML, atomic
  /// values as lexical forms, adjacent atomics separated by single spaces.
  std::string ExecuteToString(const DocumentPtr& document,
                              int indent = 0) const;

  /// Serializing execution with a document registry, so fn:doc /
  /// fn:collection queries can be rendered without hand-rolling
  /// SerializeSequence at call sites; `context_document` may be null.
  std::string ExecuteToString(const DocumentPtr& context_document,
                              const DocumentRegistry& documents,
                              int indent = 0) const;

  /// Serializing execution with per-call options (and optionally a registry).
  std::string ExecuteToString(const DocumentPtr& document,
                              const ExecutionOptions& options,
                              int indent = 0) const;
  std::string ExecuteToString(const DocumentPtr& context_document,
                              const DocumentRegistry& documents,
                              const ExecutionOptions& options,
                              int indent = 0) const;
  std::string ExecuteToString(const DocumentPtr& context_document,
                              const DocumentRegistry* documents,
                              const CollectionProvider* collections,
                              const ExecutionOptions& options,
                              int indent = 0) const;

  /// The underlying bound module (for tests / explain).
  const Module& module() const { return *module_; }

  /// Indented logical-plan rendering of the compiled query (see explain.h).
  /// When the optimizer rewrote the query, the rendering leads with a header
  /// naming every fired rule (per-rule counts) followed by the plans before
  /// and after the rewrite, each annotated with derived logical properties.
  std::string Explain() const;

  /// Runs the query with stats collection attached (per-clause cardinalities,
  /// grouping counters, wall times — see query_stats.h). Identical semantics
  /// to the matching Execute overload; only the instrumented path differs.
  ProfiledResult ExecuteProfiled(const DocumentPtr& document) const;
  ProfiledResult ExecuteProfiled() const;
  ProfiledResult ExecuteProfiled(const DocumentPtr& context_document,
                                 const DocumentRegistry& documents) const;

  // Per-call ExecutionOptions variants (see the Execute overloads above).
  ProfiledResult ExecuteProfiled(const DocumentPtr& document,
                                 const ExecutionOptions& options) const;
  ProfiledResult ExecuteProfiled(const ExecutionOptions& options) const;
  ProfiledResult ExecuteProfiled(const DocumentPtr& context_document,
                                 const DocumentRegistry& documents,
                                 const ExecutionOptions& options) const;
  ProfiledResult ExecuteProfiled(const DocumentPtr& context_document,
                                 const DocumentRegistry* documents,
                                 const CollectionProvider* collections,
                                 const ExecutionOptions& options) const;

  /// Executes the query against `document`, then renders the Explain() plan
  /// annotated with the observed per-clause cardinalities, group counts, and
  /// wall times (EXPLAIN ANALYZE). Pass null to run with no context item.
  std::string ExplainAnalyze(const DocumentPtr& document) const;

  /// Total rewrites the optimizer applied while compiling this query.
  int rewrites_applied() const { return rewrite_counts_.total(); }

  /// Per-rule breakdown of the applied rewrites.
  const RewriteCounts& rewrite_counts() const { return rewrite_counts_; }

  /// One human-readable line per applied rewrite, in application order
  /// (EXPLAIN prints these verbatim).
  const std::vector<std::string>& fired_rules() const { return fired_rules_; }

  /// Sets the default options applied by Execute* calls that take no
  /// per-call ExecutionOptions (docs/PARALLELISM.md). Serial by default.
  ///
  /// Deprecated pattern: prefer the const Execute*(..., options) overloads
  /// above — they leave the query immutable, which is what lets a plan-cache
  /// handle be shared across threads. This setter is kept for existing
  /// callers; if used, set it before sharing the query across threads
  /// (concurrent Execute calls are safe, concurrent mutation is not).
  void set_execution_options(const ExecutionOptions& options) {
    exec_options_ = options;
  }
  const ExecutionOptions& execution_options() const { return exec_options_; }

 private:
  friend class Engine;

  /// Copies the compile-time rewrite counters into `stats` so every profiled
  /// execution reports which plan it ran.
  void StampRewrites(QueryStats* stats) const;

  std::shared_ptr<Module> module_;
  RewriteCounts rewrite_counts_;
  std::vector<std::string> fired_rules_;
  std::string pre_rewrite_plan_;  ///< empty unless rewrites fired
  ExecutionOptions exec_options_;
};

/// Serializes an already-computed result sequence (same rules as
/// PreparedQuery::ExecuteToString).
std::string SerializeSequence(const Sequence& sequence, int indent = 0);

/// Full-options variant: the query service uses this to keep the output loop
/// under the request's cancellation token and memory budget (the options
/// carry both — see xml/serializer.h).
std::string SerializeSequence(const Sequence& sequence,
                              const SerializeOptions& options);

/// JSON result serialization mode (xdm/json.h): elements map to objects /
/// scalars, repeated children to arrays, the sequence itself to null / a
/// value / an array. The string counterpart of wrapping the query body in
/// xqa:xml-to-json.
std::string SerializeSequenceJson(const Sequence& sequence);

/// Compilation and execution entry point.
///
///   Engine engine;
///   DocumentPtr doc = Engine::ParseDocument("<bib>...</bib>");
///   PreparedQuery q = engine.Compile("for $b in //book ... return ...");
///   Sequence result = q.Execute(doc);
class Engine {
 public:
  struct Options {
    /// The logical rewrite layer's per-rule flags and cost-gate thresholds
    /// (optimizer/rewriter.h). The cost-gated rules — group-by extraction,
    /// predicate pushdown, order-by elimination — are on by default; every
    /// rewrite preserves results byte-for-byte, with the group-by extraction
    /// guarded at run time. Flip individual flags off to reproduce the
    /// paper's no-rewrites configuration or to ablate one rule.
    OptimizerOptions optimizer;
  };

  Engine() = default;
  explicit Engine(Options options) : options_(options) {}

  /// Parses, (optionally) rewrites, and binds a query. Throws XQueryError
  /// with a static error code on failure.
  PreparedQuery Compile(std::string_view query) const;

  /// Non-throwing variant.
  Result<PreparedQuery> TryCompile(std::string_view query) const;

  /// Parses an XML document (convenience wrapper over ParseXml).
  static DocumentPtr ParseDocument(std::string_view xml);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace xqa

#endif  // XQA_API_ENGINE_H_

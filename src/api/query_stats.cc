#include "api/query_stats.h"

#include <map>
#include <sstream>

namespace xqa {

namespace {

/// JSON-escapes the label strings (quotes/backslashes/control chars).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

ClauseStats& QueryStats::Clause(const void* flwor, int clause_index,
                                const std::string& label) {
  for (ClauseStats& clause : clauses) {
    if (clause.flwor == flwor && clause.clause_index == clause_index) {
      return clause;
    }
  }
  ClauseStats clause;
  clause.flwor = flwor;
  clause.clause_index = clause_index;
  clause.label = label;
  clauses.push_back(std::move(clause));
  return clauses.back();
}

const ClauseStats* QueryStats::FindClause(const void* flwor,
                                          int clause_index) const {
  for (const ClauseStats& clause : clauses) {
    if (clause.flwor == flwor && clause.clause_index == clause_index) {
      return &clause;
    }
  }
  return nullptr;
}

void QueryStats::MergeFrom(const QueryStats& other) {
  path_steps += other.path_steps;
  nodes_constructed += other.nodes_constructed;
  deep_equal_calls += other.deep_equal_calls;
  deep_hash_calls += other.deep_hash_calls;
  tuples_flowed += other.tuples_flowed;
  total_seconds += other.total_seconds;
  index_scans += other.index_scans;
  index_scan_nodes += other.index_scan_nodes;
  fallback_walks += other.fallback_walks;
  fallback_walk_nodes += other.fallback_walk_nodes;
  batches_emitted += other.batches_emitted;
  batch_rows_emitted += other.batch_rows_emitted;
  collection_scans += other.collection_scans;
  collection_partitions += other.collection_partitions;
  collection_docs += other.collection_docs;
  shredded_scans += other.shredded_scans;
  shredded_rows += other.shredded_rows;
  shred_fallbacks += other.shred_fallbacks;
  rewrites_groupby += other.rewrites_groupby;
  rewrites_pushdown += other.rewrites_pushdown;
  rewrites_orderby_elim += other.rewrites_orderby_elim;
  rewrites_const_fold += other.rewrites_const_fold;
  order_by_elided += other.order_by_elided;
  for (const ClauseStats& theirs : other.clauses) {
    ClauseStats& ours = Clause(theirs.flwor, theirs.clause_index, theirs.label);
    ours.executions += theirs.executions;
    ours.tuples_in += theirs.tuples_in;
    ours.tuples_out += theirs.tuples_out;
    ours.groups_formed += theirs.groups_formed;
    ours.hash_probes += theirs.hash_probes;
    ours.hash_collisions += theirs.hash_collisions;
    ours.deep_equal_calls += theirs.deep_equal_calls;
    ours.linear_scan_compares += theirs.linear_scan_compares;
    ours.implicit_rebinds += theirs.implicit_rebinds;
    ours.wall_seconds += theirs.wall_seconds;
  }
}

int64_t QueryStats::TotalGroupsFormed() const {
  int64_t total = 0;
  for (const ClauseStats& clause : clauses) total += clause.groups_formed;
  return total;
}

int64_t QueryStats::TotalHashProbes() const {
  int64_t total = 0;
  for (const ClauseStats& clause : clauses) total += clause.hash_probes;
  return total;
}

std::string QueryStats::ToJson(int indent) const {
  // Number distinct FLWOR expressions in first-execution order so the JSON
  // is stable across runs and carries no raw pointers.
  std::map<const void*, int> flwor_ids;
  for (const ClauseStats& clause : clauses) {
    flwor_ids.emplace(clause.flwor,
                      static_cast<int>(flwor_ids.size()));
  }
  std::string pad = indent > 0 ? std::string(indent, ' ') : "";
  std::string nl = indent > 0 ? "\n" : "";
  std::ostringstream out;
  out << "{" << nl;
  out << pad << "\"total_seconds\": " << total_seconds << "," << nl;
  out << pad << "\"path_steps\": " << path_steps << "," << nl;
  out << pad << "\"nodes_constructed\": " << nodes_constructed << "," << nl;
  out << pad << "\"deep_equal_calls\": " << deep_equal_calls << "," << nl;
  out << pad << "\"deep_hash_calls\": " << deep_hash_calls << "," << nl;
  out << pad << "\"tuples_flowed\": " << tuples_flowed << "," << nl;
  out << pad << "\"index_scans\": " << index_scans << "," << nl;
  out << pad << "\"index_scan_nodes\": " << index_scan_nodes << "," << nl;
  out << pad << "\"fallback_walks\": " << fallback_walks << "," << nl;
  out << pad << "\"fallback_walk_nodes\": " << fallback_walk_nodes << ","
      << nl;
  out << pad << "\"batches_emitted\": " << batches_emitted << "," << nl;
  out << pad << "\"batch_rows_emitted\": " << batch_rows_emitted << "," << nl;
  out << pad << "\"batch_fill_avg\": " << BatchFillAverage() << "," << nl;
  out << pad << "\"collection_scans\": " << collection_scans << "," << nl;
  out << pad << "\"collection_partitions\": " << collection_partitions << ","
      << nl;
  out << pad << "\"collection_docs\": " << collection_docs << "," << nl;
  out << pad << "\"shredded_scans\": " << shredded_scans << "," << nl;
  out << pad << "\"shredded_rows\": " << shredded_rows << "," << nl;
  out << pad << "\"shred_fallbacks\": " << shred_fallbacks << "," << nl;
  out << pad << "\"rewrites_groupby\": " << rewrites_groupby << "," << nl;
  out << pad << "\"rewrites_pushdown\": " << rewrites_pushdown << "," << nl;
  out << pad << "\"rewrites_orderby_elim\": " << rewrites_orderby_elim << ","
      << nl;
  out << pad << "\"rewrites_const_fold\": " << rewrites_const_fold << ","
      << nl;
  out << pad << "\"order_by_elided\": " << order_by_elided << "," << nl;
  out << pad << "\"clauses\": [" << nl;
  for (size_t i = 0; i < clauses.size(); ++i) {
    const ClauseStats& c = clauses[i];
    out << pad << pad << "{\"flwor\": " << flwor_ids[c.flwor]
        << ", \"clause\": " << c.clause_index
        << ", \"label\": \"" << JsonEscape(c.label) << "\""
        << ", \"executions\": " << c.executions
        << ", \"tuples_in\": " << c.tuples_in
        << ", \"tuples_out\": " << c.tuples_out
        << ", \"groups_formed\": " << c.groups_formed
        << ", \"hash_probes\": " << c.hash_probes
        << ", \"hash_collisions\": " << c.hash_collisions
        << ", \"deep_equal_calls\": " << c.deep_equal_calls
        << ", \"linear_scan_compares\": " << c.linear_scan_compares
        << ", \"implicit_rebinds\": " << c.implicit_rebinds
        << ", \"wall_seconds\": " << c.wall_seconds << "}"
        << (i + 1 < clauses.size() ? "," : "") << nl;
  }
  out << pad << "]" << nl;
  out << "}";
  return out.str();
}

}  // namespace xqa

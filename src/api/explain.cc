#include "api/explain.h"

#include <sstream>

namespace xqa {

namespace {

void Render(const Expr* expr, int indent, std::ostringstream* out);

std::string Pad(int indent) { return std::string(indent * 2, ' '); }

const char* AxisLabel(Axis axis) {
  switch (axis) {
    case Axis::kChild: return "child";
    case Axis::kDescendant: return "descendant";
    case Axis::kDescendantOrSelf: return "desc-or-self";
    case Axis::kAttribute: return "attribute";
    case Axis::kSelf: return "self";
    case Axis::kParent: return "parent";
    case Axis::kAncestor: return "ancestor";
    case Axis::kAncestorOrSelf: return "anc-or-self";
    case Axis::kFollowingSibling: return "following-sibling";
    case Axis::kPrecedingSibling: return "preceding-sibling";
  }
  return "?";
}

std::string TestLabel(const NodeTest& test) {
  switch (test.kind) {
    case NodeTest::Kind::kName:
      return test.name.empty() ? "*" : test.name;
    case NodeTest::Kind::kAnyKind: return "node()";
    case NodeTest::Kind::kText: return "text()";
    case NodeTest::Kind::kComment: return "comment()";
    case NodeTest::Kind::kElement: return "element(" + test.name + ")";
    case NodeTest::Kind::kAttribute: return "attribute(" + test.name + ")";
    case NodeTest::Kind::kDocument: return "document-node()";
    case NodeTest::Kind::kPi: return "processing-instruction()";
  }
  return "?";
}

/// Compact single-line summary for expressions small enough to inline.
std::string Summary(const Expr* expr) {
  if (expr == nullptr) return "()";
  std::string dumped = DumpExpr(expr);
  if (dumped.size() <= 60) return dumped;
  return dumped.substr(0, 57) + "...";
}

void RenderOrderBy(const OrderByData& order, int indent,
                   std::ostringstream* out) {
  *out << Pad(indent) << "order by" << (order.stable ? " (stable)" : "")
       << "\n";
  for (const OrderSpec& spec : order.specs) {
    *out << Pad(indent + 1) << "key " << Summary(spec.key.get())
         << (spec.descending ? " descending" : " ascending")
         << (spec.empty_greatest ? " empty greatest" : "") << "\n";
  }
}

void RenderFlwor(const FlworExpr* e, int indent, std::ostringstream* out) {
  *out << Pad(indent) << "flwor\n";
  for (const FlworClause& clause : e->clauses) {
    switch (clause.kind) {
      case ClauseKind::kFor:
        *out << Pad(indent + 1) << "for $" << clause.for_var;
        if (!clause.pos_var.empty()) *out << " at $" << clause.pos_var;
        *out << " in " << Summary(clause.for_expr.get()) << "\n";
        break;
      case ClauseKind::kLet:
        *out << Pad(indent + 1) << "let $" << clause.let_var << " := "
             << Summary(clause.let_expr.get()) << "\n";
        break;
      case ClauseKind::kWhere:
        *out << Pad(indent + 1) << "where "
             << Summary(clause.where_expr.get()) << "\n";
        break;
      case ClauseKind::kOrderBy:
        RenderOrderBy(clause.order_by, indent + 1, out);
        if (clause.order_after_group && clause.order_by.stable) {
          *out << Pad(indent + 2)
               << "(stable ignored after group by, Section 3.4.2)\n";
        }
        break;
      case ClauseKind::kCount:
        *out << Pad(indent + 1) << "count $" << clause.count_var << "\n";
        break;
      case ClauseKind::kGroupBy: {
        bool hash = true;
        for (const auto& key : clause.group_keys) {
          if (!key.using_function.empty()) hash = false;
        }
        *out << Pad(indent + 1) << "group by  ["
             << (hash ? "hash aggregation" : "linear group table")
             << (clause.xquery3_group_style
                     ? ", XQuery 3.0 dialect: implicit rebinding"
                     : "")
             << "]\n";
        for (const auto& key : clause.group_keys) {
          *out << Pad(indent + 2) << "key $" << key.var << " := "
               << Summary(key.expr.get()) << "  [";
          if (key.using_function.empty()) {
            *out << "deep-equal";
          } else {
            *out << "using " << key.using_function;
          }
          *out << "]\n";
        }
        for (const auto& nest : clause.nest_specs) {
          *out << Pad(indent + 2) << "nest $" << nest.var << " := "
               << Summary(nest.expr.get());
          if (nest.order_by.has_value()) {
            *out << "  [ordered]";
          }
          *out << "\n";
          if (nest.order_by.has_value()) {
            RenderOrderBy(*nest.order_by, indent + 3, out);
          }
        }
        break;
      }
    }
  }
  *out << Pad(indent + 1) << "return";
  if (!e->at_var.empty()) *out << " at $" << e->at_var;
  *out << "\n";
  Render(e->return_expr.get(), indent + 2, out);
}

void Render(const Expr* expr, int indent, std::ostringstream* out) {
  if (expr == nullptr) {
    *out << Pad(indent) << "()\n";
    return;
  }
  switch (expr->kind()) {
    case ExprKind::kFlwor:
      RenderFlwor(static_cast<const FlworExpr*>(expr), indent, out);
      return;
    case ExprKind::kPath: {
      const auto* e = static_cast<const PathExpr*>(expr);
      *out << Pad(indent) << "path";
      if (e->absolute) {
        *out << " /";
      } else if (e->start != nullptr) {
        *out << " " << Summary(e->start.get());
      }
      for (const PathSegment& segment : e->segments) {
        if (segment.is_expr()) {
          *out << " / (" << Summary(segment.expr.get()) << ")";
        } else {
          *out << " / " << AxisLabel(segment.step.axis)
               << "::" << TestLabel(segment.step.test);
          if (!segment.step.predicates.empty()) {
            *out << "[" << segment.step.predicates.size() << " pred]";
          }
        }
      }
      *out << "\n";
      return;
    }
    case ExprKind::kDirectConstructor: {
      const auto* e = static_cast<const DirectConstructorExpr*>(expr);
      *out << Pad(indent) << "element <" << e->name << "> ("
           << e->attributes.size() << " attrs)\n";
      for (const ConstructorContent& child : e->children) {
        if (child.expr != nullptr) Render(child.expr.get(), indent + 1, out);
      }
      return;
    }
    case ExprKind::kIf: {
      const auto* e = static_cast<const IfExpr*>(expr);
      *out << Pad(indent) << "if " << Summary(e->condition.get()) << "\n";
      Render(e->then_branch.get(), indent + 1, out);
      *out << Pad(indent) << "else\n";
      Render(e->else_branch.get(), indent + 1, out);
      return;
    }
    case ExprKind::kSequence: {
      const auto* e = static_cast<const SequenceExpr*>(expr);
      *out << Pad(indent) << "sequence (" << e->items.size() << " items)\n";
      for (const ExprPtr& item : e->items) {
        Render(item.get(), indent + 1, out);
      }
      return;
    }
    default:
      *out << Pad(indent) << Summary(expr) << "\n";
      return;
  }
}

}  // namespace

std::string ExplainExpr(const Expr* expr, int indent) {
  std::ostringstream out;
  Render(expr, indent, &out);
  return out.str();
}

std::string ExplainModule(const Module& module) {
  std::ostringstream out;
  out << "module (ordering " << (module.ordered ? "ordered" : "unordered")
      << ", " << module.variables.size() << " globals, "
      << module.functions.size() << " functions, frame "
      << module.frame_size << ")\n";
  for (const VariableDecl& decl : module.variables) {
    out << "  global $" << decl.name << "\n";
    out << ExplainExpr(decl.expr.get(), 2);
  }
  for (const FunctionDecl& fn : module.functions) {
    out << "  function " << fn.name << "#" << fn.params.size() << " (frame "
        << fn.frame_size << ")\n";
    out << ExplainExpr(fn.body.get(), 2);
  }
  out << "  body\n";
  out << ExplainExpr(module.body.get(), 2);
  return out.str();
}

}  // namespace xqa

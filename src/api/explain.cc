#include "api/explain.h"

#include <cstdio>
#include <sstream>

#include "api/query_stats.h"
#include "optimizer/logical_props.h"
#include "xdm/compare.h"

namespace xqa {

namespace {

void Render(const Expr* expr, int indent, std::ostringstream* out,
            const QueryStats* stats);

/// "  [execs=2 in=120 out=40 ... 1.234ms]" annotation for one clause's
/// observed counters; empty when stats are absent or the clause never ran.
std::string StatsSuffix(const QueryStats* stats, const FlworExpr* flwor,
                        int clause_index) {
  if (stats == nullptr) return "";
  const ClauseStats* cs = stats->FindClause(flwor, clause_index);
  if (cs == nullptr) return "  [never executed]";
  std::ostringstream out;
  out << "  [execs=" << cs->executions << " in=" << cs->tuples_in
      << " out=" << cs->tuples_out;
  if (cs->groups_formed > 0) out << " groups=" << cs->groups_formed;
  if (cs->hash_probes > 0) out << " probes=" << cs->hash_probes;
  if (cs->hash_collisions > 0) out << " collisions=" << cs->hash_collisions;
  if (cs->deep_equal_calls > 0) out << " deep-eq=" << cs->deep_equal_calls;
  if (cs->linear_scan_compares > 0) {
    out << " scan-cmp=" << cs->linear_scan_compares;
  }
  if (cs->implicit_rebinds > 0) out << " rebinds=" << cs->implicit_rebinds;
  char time_buf[32];
  std::snprintf(time_buf, sizeof(time_buf), " %.3fms",
                cs->wall_seconds * 1e3);
  out << time_buf << "]";
  return out.str();
}

std::string Pad(int indent) { return std::string(indent * 2, ' '); }

const char* CompareOpLabel(int op) {
  switch (static_cast<CompareOp>(op)) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* AxisLabel(Axis axis) {
  switch (axis) {
    case Axis::kChild: return "child";
    case Axis::kDescendant: return "descendant";
    case Axis::kDescendantOrSelf: return "desc-or-self";
    case Axis::kAttribute: return "attribute";
    case Axis::kSelf: return "self";
    case Axis::kParent: return "parent";
    case Axis::kAncestor: return "ancestor";
    case Axis::kAncestorOrSelf: return "anc-or-self";
    case Axis::kFollowingSibling: return "following-sibling";
    case Axis::kPrecedingSibling: return "preceding-sibling";
  }
  return "?";
}

std::string TestLabel(const NodeTest& test) {
  switch (test.kind) {
    case NodeTest::Kind::kName:
      return test.name.empty() ? "*" : test.name;
    case NodeTest::Kind::kAnyKind: return "node()";
    case NodeTest::Kind::kText: return "text()";
    case NodeTest::Kind::kComment: return "comment()";
    case NodeTest::Kind::kElement: return "element(" + test.name + ")";
    case NodeTest::Kind::kAttribute: return "attribute(" + test.name + ")";
    case NodeTest::Kind::kDocument: return "document-node()";
    case NodeTest::Kind::kPi: return "processing-instruction()";
  }
  return "?";
}

/// Domains render as one-line summaries (DumpExpr), which elide the pushed
/// value filter; append it explicitly so EXPLAIN shows what pushdown did.
void AppendPushedFilters(const Expr* expr, std::ostringstream* out) {
  if (expr == nullptr || expr->kind() != ExprKind::kPath) return;
  for (const PathSegment& segment :
       static_cast<const PathExpr*>(expr)->segments) {
    if (segment.is_expr() || segment.step.pushed_filter == nullptr) continue;
    const PushedValueFilter& filter = *segment.step.pushed_filter;
    *out << "  [pushed: " << TestLabel(filter.child) << " "
         << CompareOpLabel(filter.op) << " " << filter.literal.ToLexical()
         << "]";
  }
}

/// Compact single-line summary for expressions small enough to inline.
std::string Summary(const Expr* expr) {
  if (expr == nullptr) return "()";
  std::string dumped = DumpExpr(expr);
  if (dumped.size() <= 60) return dumped;
  return dumped.substr(0, 57) + "...";
}

void RenderOrderBy(const OrderByData& order, int indent,
                   std::ostringstream* out, const std::string& suffix) {
  *out << Pad(indent) << "order by" << (order.stable ? " (stable)" : "")
       << suffix << "\n";
  for (const OrderSpec& spec : order.specs) {
    *out << Pad(indent + 1) << "key " << Summary(spec.key.get())
         << (spec.descending ? " descending" : " ascending")
         << (spec.empty_greatest ? " empty greatest" : "") << "\n";
  }
}

void RenderFlwor(const FlworExpr* e, int indent, std::ostringstream* out,
                 const QueryStats* stats) {
  *out << Pad(indent) << "flwor\n";
  for (size_t clause_index = 0; clause_index < e->clauses.size();
       ++clause_index) {
    const FlworClause& clause = e->clauses[clause_index];
    std::string suffix =
        StatsSuffix(stats, e, static_cast<int>(clause_index));
    switch (clause.kind) {
      case ClauseKind::kFor:
        *out << Pad(indent + 1) << "for $" << clause.for_var;
        if (!clause.pos_var.empty()) *out << " at $" << clause.pos_var;
        *out << " in " << Summary(clause.for_expr.get());
        AppendPushedFilters(clause.for_expr.get(), out);
        if (clause.shred_candidate) {
          *out << "  [shred candidate: collection("
               << (clause.shred_collection.empty()
                       ? ""
                       : "'" + clause.shred_collection + "'")
               << ")//" << clause.shred_record << "]";
        }
        *out << "  {" << DescribeProps(DeriveProps(clause.for_expr.get()))
             << "}" << suffix << "\n";
        break;
      case ClauseKind::kLet:
        *out << Pad(indent + 1) << "let $" << clause.let_var << " := "
             << Summary(clause.let_expr.get()) << suffix << "\n";
        break;
      case ClauseKind::kWhere:
        *out << Pad(indent + 1) << "where "
             << Summary(clause.where_expr.get()) << suffix << "\n";
        break;
      case ClauseKind::kOrderBy:
        RenderOrderBy(clause.order_by, indent + 1, out, suffix);
        if (clause.order_after_group && clause.order_by.stable) {
          *out << Pad(indent + 2)
               << "(stable ignored after group by, Section 3.4.2)\n";
        }
        break;
      case ClauseKind::kCount:
        *out << Pad(indent + 1) << "count $" << clause.count_var << suffix
             << "\n";
        break;
      case ClauseKind::kGroupBy: {
        bool hash = true;
        for (const auto& key : clause.group_keys) {
          if (!key.using_function.empty()) hash = false;
        }
        *out << Pad(indent + 1) << "group by  ["
             << (hash ? "hash aggregation" : "linear group table")
             << (clause.xquery3_group_style
                     ? ", XQuery 3.0 dialect: implicit rebinding"
                     : "")
             << "]" << suffix << "\n";
        for (const auto& key : clause.group_keys) {
          *out << Pad(indent + 2) << "key $" << key.var << " := "
               << Summary(key.expr.get()) << "  [";
          if (key.using_function.empty()) {
            *out << "deep-equal";
          } else {
            *out << "using " << key.using_function;
          }
          *out << "]\n";
        }
        for (const auto& nest : clause.nest_specs) {
          *out << Pad(indent + 2) << "nest $" << nest.var << " := "
               << Summary(nest.expr.get());
          if (nest.order_by.has_value()) {
            *out << "  [ordered]";
          }
          *out << "\n";
          if (nest.order_by.has_value()) {
            RenderOrderBy(*nest.order_by, indent + 3, out, "");
          }
        }
        break;
      }
    }
  }
  *out << Pad(indent + 1) << "return";
  if (!e->at_var.empty()) *out << " at $" << e->at_var;
  *out << StatsSuffix(stats, e, ClauseStats::kReturnClause) << "\n";
  Render(e->return_expr.get(), indent + 2, out, stats);
}

void Render(const Expr* expr, int indent, std::ostringstream* out,
            const QueryStats* stats) {
  if (expr == nullptr) {
    *out << Pad(indent) << "()\n";
    return;
  }
  switch (expr->kind()) {
    case ExprKind::kFlwor:
      RenderFlwor(static_cast<const FlworExpr*>(expr), indent, out, stats);
      return;
    case ExprKind::kPath: {
      const auto* e = static_cast<const PathExpr*>(expr);
      *out << Pad(indent) << "path";
      if (e->absolute) {
        *out << " /";
      } else if (e->start != nullptr) {
        *out << " " << Summary(e->start.get());
      }
      for (const PathSegment& segment : e->segments) {
        if (segment.is_expr()) {
          *out << " / (" << Summary(segment.expr.get()) << ")";
        } else {
          *out << " / " << AxisLabel(segment.step.axis)
               << "::" << TestLabel(segment.step.test);
          if (segment.step.pushed_filter != nullptr) {
            const PushedValueFilter& filter = *segment.step.pushed_filter;
            *out << "[pushed: " << TestLabel(filter.child) << " "
                 << CompareOpLabel(filter.op) << " "
                 << filter.literal.ToLexical() << "]";
          }
          if (!segment.step.predicates.empty()) {
            *out << "[" << segment.step.predicates.size() << " pred]";
          }
        }
      }
      *out << "\n";
      return;
    }
    case ExprKind::kDirectConstructor: {
      const auto* e = static_cast<const DirectConstructorExpr*>(expr);
      *out << Pad(indent) << "element <" << e->name << "> ("
           << e->attributes.size() << " attrs)\n";
      for (const ConstructorContent& child : e->children) {
        if (child.expr != nullptr) {
          Render(child.expr.get(), indent + 1, out, stats);
        }
      }
      return;
    }
    case ExprKind::kIf: {
      const auto* e = static_cast<const IfExpr*>(expr);
      *out << Pad(indent) << "if " << Summary(e->condition.get()) << "\n";
      Render(e->then_branch.get(), indent + 1, out, stats);
      *out << Pad(indent) << "else\n";
      Render(e->else_branch.get(), indent + 1, out, stats);
      return;
    }
    case ExprKind::kSequence: {
      const auto* e = static_cast<const SequenceExpr*>(expr);
      *out << Pad(indent) << "sequence (" << e->items.size() << " items)\n";
      for (const ExprPtr& item : e->items) {
        Render(item.get(), indent + 1, out, stats);
      }
      return;
    }
    default:
      *out << Pad(indent) << Summary(expr) << "\n";
      return;
  }
}

std::string ExplainModuleImpl(const Module& module, const QueryStats* stats) {
  std::ostringstream out;
  out << "module (ordering " << (module.ordered ? "ordered" : "unordered")
      << ", " << module.variables.size() << " globals, "
      << module.functions.size() << " functions, frame "
      << module.frame_size << ")\n";
  for (const VariableDecl& decl : module.variables) {
    out << "  global $" << decl.name << "\n";
    Render(decl.expr.get(), 2, &out, stats);
  }
  for (const FunctionDecl& fn : module.functions) {
    out << "  function " << fn.name << "#" << fn.params.size() << " (frame "
        << fn.frame_size << ")\n";
    Render(fn.body.get(), 2, &out, stats);
  }
  out << "  body\n";
  Render(module.body.get(), 2, &out, stats);
  if (stats != nullptr) {
    char time_buf[32];
    std::snprintf(time_buf, sizeof(time_buf), "%.3fms",
                  stats->total_seconds * 1e3);
    out << "observed: total " << time_buf << ", tuples "
        << stats->tuples_flowed << ", path steps " << stats->path_steps
        << ", index scans " << stats->index_scans << " ("
        << stats->index_scan_nodes << " nodes), fallback walks "
        << stats->fallback_walks << " (" << stats->fallback_walk_nodes
        << " nodes), nodes constructed " << stats->nodes_constructed
        << ", deep-equal " << stats->deep_equal_calls << ", deep-hash "
        << stats->deep_hash_calls;
    if (stats->batches_emitted > 0) {
      char fill_buf[32];
      std::snprintf(fill_buf, sizeof(fill_buf), "%.1f",
                    stats->BatchFillAverage());
      out << ", batches " << stats->batches_emitted << " (fill avg "
          << fill_buf << ")";
    }
    if (stats->collection_scans > 0) {
      out << ", collection scans " << stats->collection_scans << " ("
          << stats->collection_partitions << " partitions, "
          << stats->collection_docs << " docs)";
    }
    if (stats->shredded_scans > 0) {
      out << ", shredded scans " << stats->shredded_scans << " ("
          << stats->shredded_rows << " rows)";
    }
    if (stats->shred_fallbacks > 0) {
      out << ", shred fallbacks " << stats->shred_fallbacks;
    }
    if (stats->order_by_elided > 0) {
      out << ", order-by elided " << stats->order_by_elided;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace

std::string ExplainExpr(const Expr* expr, int indent) {
  std::ostringstream out;
  Render(expr, indent, &out, nullptr);
  return out.str();
}

std::string ExplainModule(const Module& module) {
  return ExplainModuleImpl(module, nullptr);
}

std::string ExplainAnalyzeModule(const Module& module,
                                 const QueryStats& stats) {
  return ExplainModuleImpl(module, &stats);
}

}  // namespace xqa

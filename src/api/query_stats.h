#ifndef XQA_API_QUERY_STATS_H_
#define XQA_API_QUERY_STATS_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>

namespace xqa {

/// Counters for one FLWOR clause (or the return clause) of one FLWOR
/// expression, aggregated over every execution of that clause. A nested
/// FLWOR that runs once per outer tuple accumulates into a single entry
/// with `executions` recording how many times the clause ran.
struct ClauseStats {
  /// The owning FlworExpr, as an opaque identity (AST pointers are stable
  /// for the lifetime of a PreparedQuery). Never dereferenced.
  const void* flwor = nullptr;
  /// Index into FlworExpr::clauses; kReturnClause for the return clause.
  int clause_index = 0;
  static constexpr int kReturnClause = -1;

  std::string label;       ///< "for $x", "group by", "where", "return", ...
  int64_t executions = 0;  ///< times this clause processed a tuple stream
  int64_t tuples_in = 0;   ///< tuples entering the clause (summed)
  int64_t tuples_out = 0;  ///< tuples leaving the clause (summed)

  // Group-by only.
  int64_t groups_formed = 0;    ///< groups in the output stream
  int64_t hash_probes = 0;      ///< candidate groups inspected in hash buckets
  int64_t hash_collisions = 0;  ///< probes whose keys were not equal
  int64_t deep_equal_calls = 0; ///< key comparisons via deep-equal
  int64_t linear_scan_compares = 0;  ///< `using`-equality group-table compares
  int64_t implicit_rebinds = 0; ///< XQuery 3.0 merged sequences materialized

  double wall_seconds = 0.0;  ///< monotonic wall time spent in the clause
};

/// Execution statistics for one query run, collected when the query is
/// executed through PreparedQuery::ExecuteProfiled (or ExplainAnalyze).
///
/// Collection is opt-in: plain Execute leaves DynamicContext::stats null and
/// every hook in the evaluator reduces to an inlined null-pointer test, so
/// the unprofiled hot path stays unchanged (verified by bench_micro).
class QueryStats {
 public:
  // --- whole-query counters ----------------------------------------------
  int64_t path_steps = 0;        ///< axis/filter segment applications
  int64_t nodes_constructed = 0; ///< element/attribute/text nodes built
  int64_t deep_equal_calls = 0;  ///< deep-equal invocations (grouping keys)
  int64_t deep_hash_calls = 0;   ///< deep-hash invocations (grouping keys)
  int64_t tuples_flowed = 0;     ///< tuples leaving any FLWOR clause
  double total_seconds = 0.0;    ///< wall time of the whole execution

  // Structural-index counters (docs/INDEXES.md). A descendant step applied
  // to one context node is either answered by the element-name index (an
  // index scan: a binary-search range over the name's preorder bucket) or
  // walks the subtree (a fallback walk). Comparing `index_scan_nodes`
  // against `fallback_walk_nodes` for the same query under the
  // use_structural_index ablation quantifies the nodes-visited saving.
  int64_t index_scans = 0;         ///< descendant steps answered by the index
  int64_t index_scan_nodes = 0;    ///< nodes emitted by index range scans
  int64_t fallback_walks = 0;      ///< descendant steps that walked the subtree
  int64_t fallback_walk_nodes = 0; ///< nodes visited by walking steps

  // Batched-execution counters (docs/VECTORIZATION.md). Each columnar tuple
  // morsel leaving a FLWOR clause counts as one emitted batch;
  // `batch_rows_emitted / batches_emitted` is the average batch fill. Zero
  // under the scalar ablation (use_batched_execution = false).
  int64_t batches_emitted = 0;     ///< tuple batches leaving any FLWOR clause
  int64_t batch_rows_emitted = 0;  ///< rows carried by those batches

  // Partitioned-collection counters (docs/SERVICE.md). A `for $d in
  // collection(...)` whose domain resolves against a CollectionProvider runs
  // as a partitioned scan: one scan per resolved call, fanning the view's
  // shard partitions across the morsel pool. All three are functions of the
  // corpus and the query alone — identical at any thread count and under
  // either FLWOR engine (the scan-or-not decision never consults
  // num_threads).
  int64_t collection_scans = 0;       ///< partitioned collection() domains run
  int64_t collection_partitions = 0;  ///< shard partitions those scans covered
  int64_t collection_docs = 0;        ///< documents those scans emitted

  // Shredded-scan counters (docs/SHREDDING.md). A `for $x in
  // collection(...)//rec` the optimizer marked either runs off the
  // snapshot's column table (a shredded scan — zero DOM navigation in the
  // domain) or falls back to the DOM path when no table covers it. Functions
  // of corpus + query + the use_shredded_scan flag only — identical at any
  // thread count.
  int64_t shredded_scans = 0;   ///< marked domains served from a column table
  int64_t shredded_rows = 0;    ///< record rows those scans emitted
  int64_t shred_fallbacks = 0;  ///< marked domains that fell back to the DOM

  // Logical-rewrite counters (docs/OPTIMIZER.md). The rewrites_* fields are
  // compile-time stamps: PreparedQuery copies its per-rule RewriteCounts
  // into every profiled run so a stats dump records which plan it measured
  // (worker-lane sinks start zeroed, so MergeFrom never double-counts them).
  // `order_by_elided` is the runtime side of order-by elimination: each
  // execution of a FLWOR whose order-by clause the optimizer removed bumps
  // it by the number of elided clauses, under either FLWOR engine.
  int64_t rewrites_groupby = 0;       ///< group-by extractions in the plan
  int64_t rewrites_pushdown = 0;      ///< where clauses pushed into paths
  int64_t rewrites_orderby_elim = 0;  ///< order-by clauses removed (compile)
  int64_t rewrites_const_fold = 0;    ///< constants folded in the plan
  int64_t order_by_elided = 0;        ///< elided sorts skipped at run time

  /// Average rows per emitted batch; 0.0 when no batches were emitted.
  double BatchFillAverage() const {
    return batches_emitted > 0
               ? static_cast<double>(batch_rows_emitted) /
                     static_cast<double>(batches_emitted)
               : 0.0;
  }

  /// Per-clause counters in first-execution order. A deque, not a vector:
  /// the evaluator holds ClauseStats* across nested evaluation (an outer
  /// return clause's entry outlives the inner FLWOR's first registration),
  /// so growth must not invalidate references.
  std::deque<ClauseStats> clauses;

  /// The entry for (flwor, clause_index), created (with `label`) on first
  /// use. Only called when stats collection is active. The returned
  /// reference stays valid as the deque grows.
  ClauseStats& Clause(const void* flwor, int clause_index,
                      const std::string& label);

  /// Lookup without creation; null when the clause never executed.
  const ClauseStats* FindClause(const void* flwor, int clause_index) const;

  /// Accumulates another run's counters into this one, matching clause
  /// entries by (flwor, clause_index) and creating missing ones. Used at the
  /// barrier of a parallel FLWOR section to fold each worker's private sink
  /// into the caller's stats (docs/PARALLELISM.md): counters are exact sums;
  /// per-clause wall_seconds of nested clauses become summed-across-workers
  /// CPU time rather than elapsed wall time.
  void MergeFrom(const QueryStats& other);

  /// Sum of a counter over every clause of every FLWOR, for coarse asserts.
  int64_t TotalGroupsFormed() const;
  int64_t TotalHashProbes() const;

  /// Machine-readable JSON rendering (the BENCH_*.json "stats" object; see
  /// docs/OBSERVABILITY.md for the schema). Distinct FLWOR expressions are
  /// numbered in first-execution order rather than exposing pointers.
  std::string ToJson(int indent = 0) const;
};

/// RAII accumulator for a wall-clock interval; a no-op when `sink` is null,
/// so timed scopes cost nothing unless stats are attached.
class StatsTimer {
 public:
  explicit StatsTimer(double* sink) : sink_(sink) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~StatsTimer() {
    if (sink_ != nullptr) {
      *sink_ += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    }
  }
  StatsTimer(const StatsTimer&) = delete;
  StatsTimer& operator=(const StatsTimer&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xqa

#endif  // XQA_API_QUERY_STATS_H_

#ifndef XQA_API_EXPLAIN_H_
#define XQA_API_EXPLAIN_H_

#include <string>

#include "parser/ast.h"

namespace xqa {

/// Renders a bound module as an indented logical plan, one clause/operator
/// per line — the tuple-stream view of Section 3.1:
///
///   flwor
///     for $b in path(desc-or-self::node()/child::book)
///     group by
///       key $p := path($b/child::publisher)   [deep-equal]
///       nest $netprices := arith(-)
///     return
///       element group ...
///
/// Intended for debugging, tests, and the engine's explain output.
std::string ExplainModule(const Module& module);

/// Renders one expression subtree (used by ExplainModule and tests).
std::string ExplainExpr(const Expr* expr, int indent = 0);

class QueryStats;

/// EXPLAIN ANALYZE: the ExplainModule plan annotated with observed per-clause
/// cardinalities, group counts, and wall times from a profiled execution
/// (PreparedQuery::ExplainAnalyze runs the query and calls this).
std::string ExplainAnalyzeModule(const Module& module, const QueryStats& stats);

}  // namespace xqa

#endif  // XQA_API_EXPLAIN_H_

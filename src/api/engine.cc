#include "api/engine.h"

#include "api/explain.h"
#include "binder/binder.h"
#include "eval/evaluator.h"
#include "optimizer/rewriter.h"
#include "parser/parser.h"
#include "xdm/json.h"
#include "xml/serializer.h"

namespace xqa {

namespace {

Sequence Run(const Module& module, const ExecutionOptions& exec, Focus focus,
             const DocumentRegistry* documents = nullptr,
             const CollectionProvider* collections = nullptr) {
  DynamicContext context;
  context.documents = documents;
  context.collections = collections;
  context.exec = exec;
  Evaluator evaluator(&module);
  return evaluator.EvaluateQuery(&context, focus);
}

ProfiledResult RunProfiled(const Module& module, const ExecutionOptions& exec,
                           Focus focus,
                           const DocumentRegistry* documents = nullptr,
                           const CollectionProvider* collections = nullptr) {
  ProfiledResult result;
  DynamicContext context;
  context.documents = documents;
  context.collections = collections;
  context.exec = exec;
  context.stats = &result.stats;
  Evaluator evaluator(&module);
  {
    StatsTimer total(&result.stats.total_seconds);
    result.sequence = evaluator.EvaluateQuery(&context, focus);
  }
  return result;
}

Focus DocumentFocus(const DocumentPtr& document) {
  Focus focus;
  focus.valid = true;
  focus.item = Item(document->root(), document);
  focus.position = 1;
  focus.size = 1;
  return focus;
}

}  // namespace

Sequence PreparedQuery::Execute(const DocumentPtr& document) const {
  return Run(*module_, exec_options_, DocumentFocus(document));
}

Sequence PreparedQuery::Execute() const {
  return Run(*module_, exec_options_, Focus{});
}

Sequence PreparedQuery::Execute(const DocumentPtr& context_document,
                                const DocumentRegistry& documents) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  return Run(*module_, exec_options_, focus, &documents);
}

Sequence PreparedQuery::Execute(const DocumentPtr& document,
                                const ExecutionOptions& options) const {
  return Run(*module_, options, DocumentFocus(document));
}

Sequence PreparedQuery::Execute(const ExecutionOptions& options) const {
  return Run(*module_, options, Focus{});
}

Sequence PreparedQuery::Execute(const DocumentPtr& context_document,
                                const DocumentRegistry& documents,
                                const ExecutionOptions& options) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  return Run(*module_, options, focus, &documents);
}

Sequence PreparedQuery::Execute(const DocumentPtr& context_document,
                                const DocumentRegistry* documents,
                                const CollectionProvider* collections,
                                const ExecutionOptions& options) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  return Run(*module_, options, focus, documents, collections);
}

Result<Sequence> PreparedQuery::TryExecute(const DocumentPtr& document) const {
  try {
    return Execute(document);
  } catch (const XQueryError& error) {
    return Status::FromException(error);
  }
}

std::string SerializeSequence(const Sequence& sequence, int indent) {
  SerializeOptions options;
  options.indent = indent;
  return SerializeSequence(sequence, options);
}

std::string SerializeSequence(const Sequence& sequence,
                              const SerializeOptions& options) {
  std::string out;
  bool prev_atomic = false;
  for (const Item& item : sequence) {
    if (options.cancellation != nullptr) options.cancellation->Check();
    if (item.IsNode()) {
      if (!out.empty() && options.indent > 0) out += '\n';
      out += SerializeNode(item.node(), options);
      prev_atomic = false;
    } else {
      if (prev_atomic) out += ' ';
      out += item.atomic().ToLexical();
      prev_atomic = true;
    }
  }
  return out;
}

std::string SerializeSequenceJson(const Sequence& sequence) {
  return SequenceToJson(sequence);
}

std::string PreparedQuery::ExecuteToString(const DocumentPtr& document,
                                           int indent) const {
  return SerializeSequence(Execute(document), indent);
}

std::string PreparedQuery::ExecuteToString(const DocumentPtr& context_document,
                                           const DocumentRegistry& documents,
                                           int indent) const {
  return SerializeSequence(Execute(context_document, documents), indent);
}

std::string PreparedQuery::ExecuteToString(const DocumentPtr& document,
                                           const ExecutionOptions& options,
                                           int indent) const {
  return SerializeSequence(Execute(document, options), indent);
}

std::string PreparedQuery::ExecuteToString(const DocumentPtr& context_document,
                                           const DocumentRegistry& documents,
                                           const ExecutionOptions& options,
                                           int indent) const {
  return SerializeSequence(Execute(context_document, documents, options),
                           indent);
}

std::string PreparedQuery::ExecuteToString(const DocumentPtr& context_document,
                                           const DocumentRegistry* documents,
                                           const CollectionProvider* collections,
                                           const ExecutionOptions& options,
                                           int indent) const {
  return SerializeSequence(
      Execute(context_document, documents, collections, options), indent);
}

namespace {

std::string OptimizerHeader(const RewriteCounts& counts,
                            const std::vector<std::string>& fired) {
  std::string out = "optimizer: " + std::to_string(counts.total()) +
                    " rewrites (groupby=" +
                    std::to_string(counts.groupby_extracted) +
                    " pushdown=" + std::to_string(counts.predicates_pushed) +
                    " orderby-elim=" +
                    std::to_string(counts.order_by_eliminated) +
                    " const-fold=" + std::to_string(counts.constants_folded) +
                    " shred-mark=" +
                    std::to_string(counts.shredded_scans_marked) + ")\n";
  for (const std::string& rule : fired) {
    out += "  - " + rule + "\n";
  }
  return out;
}

}  // namespace

std::string PreparedQuery::Explain() const {
  if (rewrite_counts_.total() == 0) return ExplainModule(*module_);
  std::string out = OptimizerHeader(rewrite_counts_, fired_rules_);
  out += "plan before rewrite:\n";
  out += pre_rewrite_plan_;
  out += "plan after rewrite:\n";
  out += ExplainModule(*module_);
  return out;
}

void PreparedQuery::StampRewrites(QueryStats* stats) const {
  stats->rewrites_groupby = rewrite_counts_.groupby_extracted;
  stats->rewrites_pushdown = rewrite_counts_.predicates_pushed;
  stats->rewrites_orderby_elim = rewrite_counts_.order_by_eliminated;
  stats->rewrites_const_fold = rewrite_counts_.constants_folded;
}

ProfiledResult PreparedQuery::ExecuteProfiled(
    const DocumentPtr& document) const {
  ProfiledResult result =
      RunProfiled(*module_, exec_options_, DocumentFocus(document));
  StampRewrites(&result.stats);
  return result;
}

ProfiledResult PreparedQuery::ExecuteProfiled() const {
  ProfiledResult result = RunProfiled(*module_, exec_options_, Focus{});
  StampRewrites(&result.stats);
  return result;
}

ProfiledResult PreparedQuery::ExecuteProfiled(
    const DocumentPtr& context_document,
    const DocumentRegistry& documents) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  ProfiledResult result =
      RunProfiled(*module_, exec_options_, focus, &documents);
  StampRewrites(&result.stats);
  return result;
}

ProfiledResult PreparedQuery::ExecuteProfiled(
    const DocumentPtr& document, const ExecutionOptions& options) const {
  ProfiledResult result =
      RunProfiled(*module_, options, DocumentFocus(document));
  StampRewrites(&result.stats);
  return result;
}

ProfiledResult PreparedQuery::ExecuteProfiled(
    const ExecutionOptions& options) const {
  ProfiledResult result = RunProfiled(*module_, options, Focus{});
  StampRewrites(&result.stats);
  return result;
}

ProfiledResult PreparedQuery::ExecuteProfiled(
    const DocumentPtr& context_document, const DocumentRegistry& documents,
    const ExecutionOptions& options) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  ProfiledResult result = RunProfiled(*module_, options, focus, &documents);
  StampRewrites(&result.stats);
  return result;
}

ProfiledResult PreparedQuery::ExecuteProfiled(
    const DocumentPtr& context_document, const DocumentRegistry* documents,
    const CollectionProvider* collections,
    const ExecutionOptions& options) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  ProfiledResult result =
      RunProfiled(*module_, options, focus, documents, collections);
  StampRewrites(&result.stats);
  return result;
}

std::string PreparedQuery::ExplainAnalyze(const DocumentPtr& document) const {
  Focus focus = document != nullptr ? DocumentFocus(document) : Focus{};
  ProfiledResult profiled = RunProfiled(*module_, exec_options_, focus);
  StampRewrites(&profiled.stats);
  std::string out;
  if (rewrite_counts_.total() > 0) {
    out = OptimizerHeader(rewrite_counts_, fired_rules_);
  }
  out += ExplainAnalyzeModule(*module_, profiled.stats);
  return out;
}

PreparedQuery Engine::Compile(std::string_view query) const {
  PreparedQuery prepared;
  prepared.module_ = ParseQuery(query);
  prepared.rewrite_counts_ = OptimizeModule(
      prepared.module_.get(), options_.optimizer, &prepared.fired_rules_);
  if (prepared.rewrite_counts_.total() > 0) {
    // Re-parse to render the pre-rewrite plan; paying the parse again only
    // when a rewrite actually fired keeps the common compile path flat.
    prepared.pre_rewrite_plan_ = ExplainModule(*ParseQuery(query));
  }
  BindModule(prepared.module_.get());
  return prepared;
}

Result<PreparedQuery> Engine::TryCompile(std::string_view query) const {
  try {
    return Compile(query);
  } catch (const XQueryError& error) {
    return Status::FromException(error);
  }
}

DocumentPtr Engine::ParseDocument(std::string_view xml) {
  return ParseXml(xml);
}

}  // namespace xqa

#include "api/engine.h"

#include "api/explain.h"
#include "binder/binder.h"
#include "eval/evaluator.h"
#include "optimizer/rewriter.h"
#include "parser/parser.h"
#include "xml/serializer.h"

namespace xqa {

namespace {

Sequence Run(const Module& module, const ExecutionOptions& exec, Focus focus,
             const DocumentRegistry* documents = nullptr,
             const CollectionProvider* collections = nullptr) {
  DynamicContext context;
  context.documents = documents;
  context.collections = collections;
  context.exec = exec;
  Evaluator evaluator(&module);
  return evaluator.EvaluateQuery(&context, focus);
}

ProfiledResult RunProfiled(const Module& module, const ExecutionOptions& exec,
                           Focus focus,
                           const DocumentRegistry* documents = nullptr,
                           const CollectionProvider* collections = nullptr) {
  ProfiledResult result;
  DynamicContext context;
  context.documents = documents;
  context.collections = collections;
  context.exec = exec;
  context.stats = &result.stats;
  Evaluator evaluator(&module);
  {
    StatsTimer total(&result.stats.total_seconds);
    result.sequence = evaluator.EvaluateQuery(&context, focus);
  }
  return result;
}

Focus DocumentFocus(const DocumentPtr& document) {
  Focus focus;
  focus.valid = true;
  focus.item = Item(document->root(), document);
  focus.position = 1;
  focus.size = 1;
  return focus;
}

}  // namespace

Sequence PreparedQuery::Execute(const DocumentPtr& document) const {
  return Run(*module_, exec_options_, DocumentFocus(document));
}

Sequence PreparedQuery::Execute() const {
  return Run(*module_, exec_options_, Focus{});
}

Sequence PreparedQuery::Execute(const DocumentPtr& context_document,
                                const DocumentRegistry& documents) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  return Run(*module_, exec_options_, focus, &documents);
}

Sequence PreparedQuery::Execute(const DocumentPtr& document,
                                const ExecutionOptions& options) const {
  return Run(*module_, options, DocumentFocus(document));
}

Sequence PreparedQuery::Execute(const ExecutionOptions& options) const {
  return Run(*module_, options, Focus{});
}

Sequence PreparedQuery::Execute(const DocumentPtr& context_document,
                                const DocumentRegistry& documents,
                                const ExecutionOptions& options) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  return Run(*module_, options, focus, &documents);
}

Sequence PreparedQuery::Execute(const DocumentPtr& context_document,
                                const DocumentRegistry* documents,
                                const CollectionProvider* collections,
                                const ExecutionOptions& options) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  return Run(*module_, options, focus, documents, collections);
}

Result<Sequence> PreparedQuery::TryExecute(const DocumentPtr& document) const {
  try {
    return Execute(document);
  } catch (const XQueryError& error) {
    return Status::FromException(error);
  }
}

std::string SerializeSequence(const Sequence& sequence, int indent) {
  SerializeOptions options;
  options.indent = indent;
  return SerializeSequence(sequence, options);
}

std::string SerializeSequence(const Sequence& sequence,
                              const SerializeOptions& options) {
  std::string out;
  bool prev_atomic = false;
  for (const Item& item : sequence) {
    if (options.cancellation != nullptr) options.cancellation->Check();
    if (item.IsNode()) {
      if (!out.empty() && options.indent > 0) out += '\n';
      out += SerializeNode(item.node(), options);
      prev_atomic = false;
    } else {
      if (prev_atomic) out += ' ';
      out += item.atomic().ToLexical();
      prev_atomic = true;
    }
  }
  return out;
}

std::string PreparedQuery::ExecuteToString(const DocumentPtr& document,
                                           int indent) const {
  return SerializeSequence(Execute(document), indent);
}

std::string PreparedQuery::ExecuteToString(const DocumentPtr& context_document,
                                           const DocumentRegistry& documents,
                                           int indent) const {
  return SerializeSequence(Execute(context_document, documents), indent);
}

std::string PreparedQuery::ExecuteToString(const DocumentPtr& document,
                                           const ExecutionOptions& options,
                                           int indent) const {
  return SerializeSequence(Execute(document, options), indent);
}

std::string PreparedQuery::ExecuteToString(const DocumentPtr& context_document,
                                           const DocumentRegistry& documents,
                                           const ExecutionOptions& options,
                                           int indent) const {
  return SerializeSequence(Execute(context_document, documents, options),
                           indent);
}

std::string PreparedQuery::ExecuteToString(const DocumentPtr& context_document,
                                           const DocumentRegistry* documents,
                                           const CollectionProvider* collections,
                                           const ExecutionOptions& options,
                                           int indent) const {
  return SerializeSequence(
      Execute(context_document, documents, collections, options), indent);
}

std::string PreparedQuery::Explain() const { return ExplainModule(*module_); }

ProfiledResult PreparedQuery::ExecuteProfiled(
    const DocumentPtr& document) const {
  return RunProfiled(*module_, exec_options_, DocumentFocus(document));
}

ProfiledResult PreparedQuery::ExecuteProfiled() const {
  return RunProfiled(*module_, exec_options_, Focus{});
}

ProfiledResult PreparedQuery::ExecuteProfiled(
    const DocumentPtr& context_document,
    const DocumentRegistry& documents) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  return RunProfiled(*module_, exec_options_, focus, &documents);
}

ProfiledResult PreparedQuery::ExecuteProfiled(
    const DocumentPtr& document, const ExecutionOptions& options) const {
  return RunProfiled(*module_, options, DocumentFocus(document));
}

ProfiledResult PreparedQuery::ExecuteProfiled(
    const ExecutionOptions& options) const {
  return RunProfiled(*module_, options, Focus{});
}

ProfiledResult PreparedQuery::ExecuteProfiled(
    const DocumentPtr& context_document, const DocumentRegistry& documents,
    const ExecutionOptions& options) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  return RunProfiled(*module_, options, focus, &documents);
}

ProfiledResult PreparedQuery::ExecuteProfiled(
    const DocumentPtr& context_document, const DocumentRegistry* documents,
    const CollectionProvider* collections,
    const ExecutionOptions& options) const {
  Focus focus =
      context_document != nullptr ? DocumentFocus(context_document) : Focus{};
  return RunProfiled(*module_, options, focus, documents, collections);
}

std::string PreparedQuery::ExplainAnalyze(const DocumentPtr& document) const {
  Focus focus = document != nullptr ? DocumentFocus(document) : Focus{};
  ProfiledResult profiled = RunProfiled(*module_, exec_options_, focus);
  return ExplainAnalyzeModule(*module_, profiled.stats);
}

PreparedQuery Engine::Compile(std::string_view query) const {
  PreparedQuery prepared;
  prepared.module_ = ParseQuery(query);
  if (options_.enable_groupby_rewrite || options_.enable_constant_folding) {
    OptimizerOptions optimizer_options;
    optimizer_options.detect_groupby_patterns = options_.enable_groupby_rewrite;
    optimizer_options.fold_constants = options_.enable_constant_folding;
    prepared.rewrites_applied_ =
        OptimizeModule(prepared.module_.get(), optimizer_options);
  }
  BindModule(prepared.module_.get());
  return prepared;
}

Result<PreparedQuery> Engine::TryCompile(std::string_view query) const {
  try {
    return Compile(query);
  } catch (const XQueryError& error) {
    return Status::FromException(error);
  }
}

DocumentPtr Engine::ParseDocument(std::string_view xml) {
  return ParseXml(xml);
}

}  // namespace xqa

#include "eval/collection_scan.h"

#include <atomic>
#include <memory>
#include <vector>

#include "api/query_stats.h"
#include "base/fault_injection.h"
#include "base/memory_tracker.h"
#include "base/thread_pool.h"
#include "eval/flwor_internal.h"
#include "functions/function_registry.h"
#include "shred/shredded_table.h"
#include "xdm/compare.h"

namespace xqa {

namespace {

/// Cancellation poll stride inside one partition: a cancelled scan over a
/// million-document shard aborts within a few hundred emissions instead of
/// finishing the partition.
constexpr size_t kScanPollStride = 256;

}  // namespace

const CollectionView* ResolveCollectionScan(const Expr* for_expr,
                                            DynamicContext* context) {
  if (context->collections == nullptr || for_expr == nullptr) return nullptr;
  if (for_expr->kind() != ExprKind::kFunctionCall) return nullptr;
  const auto* call = static_cast<const FunctionCallExpr*>(for_expr);
  if (call->builtin_id < 0) return nullptr;
  if (BuiltinFunctions()[static_cast<size_t>(call->builtin_id)].name !=
      "collection") {
    return nullptr;
  }
  if (call->args.empty()) {
    return context->collections->DefaultCollection();
  }
  if (call->args.size() != 1 ||
      call->args[0]->kind() != ExprKind::kLiteral) {
    return nullptr;
  }
  const auto* literal = static_cast<const LiteralExpr*>(call->args[0].get());
  if (literal->value.type() != AtomicType::kString) return nullptr;
  return context->collections->FindCollection(literal->value.AsString());
}

Sequence PartitionedCollectionScan(const CollectionView& view,
                                   DynamicContext* context) {
  const size_t total = view.documents.size();
  const size_t partitions = view.partition_count();
  QueryStats* stats = context->stats;
  if (stats != nullptr) {
    ++stats->collection_scans;
    stats->collection_partitions += static_cast<int64_t>(partitions);
    // collection_docs is counted per partition by whichever lane emits it
    // and folded back through the stats merge — the total is the view's
    // document count either way, but routing it through the lane sinks keeps
    // the counter exact if a partition fails mid-scan.
  }
  context->CheckCancel();

  // The whole domain buffer is charged up front — its size is known exactly,
  // so an over-budget scan trips XQSV0004 here, before any materialization,
  // identically at every thread count. The charge is dropped when the scan
  // returns; the for-clause boundary then accounts the materialized tuples
  // like any other generation.
  ScopedMemoryCharge domain_charge(context->exec.memory);
  domain_charge.Reset(static_cast<int64_t>(
      total * sizeof(Item) + sizeof(Sequence)));

  Sequence domain(total);
  if (total == 0) return domain;

  // Emits one partition's documents into the shared output. Each partition
  // passes the doc.load fault site — a partitioned scan is `partitions`
  // loads, and a chaos run must be able to fail any one of them — and polls
  // cancellation on entry plus every kScanPollStride documents.
  auto scan_partition = [&](DynamicContext* ctx, size_t p) {
    ctx->CheckCancel();
    XQA_FAULT_POINT("doc.load", ErrorCode::kFODC0002);
    size_t begin = 0;
    size_t end = total;
    if (view.partition_offsets.size() > 1) {
      begin = view.partition_offsets[p];
      end = view.partition_offsets[p + 1];
    }
    for (size_t i = begin; i < end; ++i) {
      if ((i - begin) % kScanPollStride == 0) ctx->CheckCancel();
      const DocumentPtr& doc = view.documents[i];
      domain[i] = Item(doc->root(), doc);
    }
    if (ctx->stats != nullptr) {
      ctx->stats->collection_docs += static_cast<int64_t>(end - begin);
    }
  };

  const int workers = flwor_detail::PlanWorkers(context->exec, total);
  if (workers > 1 && partitions > 1) {
    // The engines' Lanes discipline: one forked context per lane, each with
    // a private stats sink, merged in lane order at the barrier. ParallelFor
    // rethrows the lowest-index partition's error after draining, so the
    // failing configuration reports the same error at any thread count.
    std::vector<std::unique_ptr<DynamicContext>> lanes;
    std::vector<QueryStats> lane_stats;
    lanes.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) lanes.push_back(context->Fork());
    if (stats != nullptr) {
      lane_stats.resize(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        lanes[static_cast<size_t>(w)]->stats =
            &lane_stats[static_cast<size_t>(w)];
      }
    }
    ThreadPool::Shared().ParallelFor(
        partitions, workers, [&](int w, size_t p) {
          scan_partition(lanes[static_cast<size_t>(w)].get(), p);
        });
    if (stats != nullptr) {
      for (QueryStats& worker_stats : lane_stats) {
        stats->MergeFrom(worker_stats);
      }
    }
  } else {
    for (size_t p = 0; p < partitions; ++p) {
      scan_partition(context, p);
    }
  }
  return domain;
}

bool ShredCoversStep(const ShreddedTable& table, const PathStep& step) {
  if (step.pushed_filter == nullptr) return true;
  const PushedValueFilter& filter = *step.pushed_filter;
  if (filter.child.kind != NodeTest::Kind::kName) return false;
  if (filter.child.name.empty() || filter.child.name == "*") return false;
  return table.schema().FieldIndex(filter.child.name, false) >= 0;
}

Sequence ShreddedScanRows(const ShreddedTable& table,
                          const PathStep* record_step,
                          DynamicContext* context) {
  context->CheckCancel();

  const size_t rows = table.row_count();
  const PushedValueFilter* filter =
      record_step != nullptr ? record_step->pushed_filter.get() : nullptr;

  // With a pushed filter the verdict depends only on the field's lexical
  // value, so it is computed once per dictionary code — the columnar saving —
  // via the same general comparison the DOM path applies to the atomized
  // child. Codes are in first-occurrence (row) order, so a comparison error
  // fires on the same value, hence with the same message, as the DOM scan's
  // first failing record.
  const ShreddedTable::Column* filter_column = nullptr;
  std::vector<char> verdicts;
  if (filter != nullptr) {
    int col = table.schema().FieldIndex(filter->child.name, false);
    filter_column = &table.column(static_cast<size_t>(col));
    Sequence literal_seq{Item(filter->literal)};
    verdicts.reserve(filter_column->dict.size());
    for (const std::string& lexical : filter_column->dict) {
      Sequence lhs{MakeUntyped(lexical)};
      verdicts.push_back(GeneralCompare(static_cast<CompareOp>(filter->op),
                                        lhs, literal_seq)
                             ? 1
                             : 0);
    }
  }

  size_t emit_count = rows;
  if (filter_column != nullptr) {
    emit_count = 0;
    for (size_t row = 0; row < rows; ++row) {
      if ((row % kScanPollStride) == 0) context->CheckCancel();
      uint32_t code = filter_column->codes[row];
      if (code != ShreddedTable::kNullCode && verdicts[code] != 0) {
        ++emit_count;
      }
    }
  }

  QueryStats* stats = context->stats;
  if (stats != nullptr) {
    ++stats->shredded_scans;
    stats->shredded_rows += static_cast<int64_t>(emit_count);
  }

  // Same discipline as the partitioned scan: the output buffer's exact size
  // is known before materialization, so an over-budget scan fails here with
  // XQSV0004 and nothing built. The charge drops when the scan returns; the
  // for-clause boundary accounts the tuples it keeps.
  XQA_FAULT_POINT("shred.scan_alloc", ErrorCode::kXQSV0004);
  ScopedMemoryCharge domain_charge(context->exec.memory);
  domain_charge.Reset(
      static_cast<int64_t>(emit_count * sizeof(Item) + sizeof(Sequence)));

  Sequence domain;
  domain.reserve(emit_count);
  for (size_t row = 0; row < rows; ++row) {
    if ((row % kScanPollStride) == 0) context->CheckCancel();
    if (filter_column != nullptr) {
      uint32_t code = filter_column->codes[row];
      if (code == ShreddedTable::kNullCode || verdicts[code] == 0) continue;
    }
    domain.emplace_back(const_cast<Node*>(table.record(row)),
                        table.record_document(row));
  }
  return domain;
}

}  // namespace xqa

#include "eval/evaluator.h"

#include "api/query_stats.h"
#include "base/error.h"
#include "base/fault_injection.h"
#include "base/string_util.h"
#include "xdm/sequence_ops.h"

namespace xqa {

namespace {

/// Shallow per-node cost estimate for memory accounting: the Node object
/// plus a small allowance for its name/text payload and child-pointer slot.
constexpr int64_t kConstructedNodeBytes =
    static_cast<int64_t>(sizeof(Node)) + 32;

/// Credits a freshly constructed tree to the stats sink, if any, and charges
/// it against the execution's memory budget. Every constructor seals its
/// document before this runs, so the subtree size (attributes included) is
/// just the preorder span — no walk. Constructed trees escape into the query
/// result, so the charge has no matching release here; the per-query tracker
/// settles the balance when the execution ends.
void RecordConstructed(DynamicContext* context, const Node* root) {
  // A free-standing attribute (computed attribute constructor) hangs off
  // no element, so SealOrder never spans it; it is exactly one node.
  int64_t span =
      static_cast<int64_t>(root->subtree_end() - root->order_index());
  if (span <= 0) span = 1;
  if (context->stats != nullptr) {
    context->stats->nodes_constructed += span;
  }
  if (context->exec.memory != nullptr) {
    XQA_FAULT_POINT("construct.node_alloc", ErrorCode::kXQSV0004);
    context->ChargeMemory(span * kConstructedNodeBytes);
  }
}

/// Builds the string value of an attribute from its parts: literal text is
/// appended verbatim; each enclosed expression contributes its atomized
/// items' lexical forms joined by single spaces.
std::string BuildAttributeValue(Evaluator* evaluator,
                                const std::vector<ConstructorContent>& parts,
                                DynamicContext* context) {
  std::string value;
  for (const ConstructorContent& part : parts) {
    if (part.expr == nullptr) {
      value += part.text;
      continue;
    }
    Sequence items = Atomize(evaluator->Evaluate(part.expr.get(), context));
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) value += ' ';
      value += items[i].atomic().ToLexical();
    }
  }
  return value;
}

/// Copies evaluated content items into `parent`. Adjacent atomic values from
/// one expression result are joined with a single space into one text node;
/// node items are deep-copied (XQuery element construction copies content).
void AppendContentSequence(const Sequence& items, Document* doc, Node* parent,
                           SourceLocation loc) {
  std::string pending_text;
  bool prev_atomic = false;
  auto flush = [&]() {
    if (!pending_text.empty()) {
      doc->AppendChild(parent, doc->CreateText(pending_text));
      pending_text.clear();
    }
  };
  for (const Item& item : items) {
    if (item.IsAtomic()) {
      if (prev_atomic) pending_text += ' ';
      pending_text += item.atomic().ToLexical();
      prev_atomic = true;
      continue;
    }
    prev_atomic = false;
    flush();
    const Node* source = item.node();
    if (source->kind() == NodeKind::kDocument) {
      // A document node contributes its children.
      for (const Node* child : source->children()) {
        doc->AppendChild(parent, doc->ImportNode(child));
      }
      continue;
    }
    if (source->kind() == NodeKind::kAttribute) {
      if (!parent->children().empty()) {
        ThrowError(ErrorCode::kXQDY0025,
                   "attribute node after non-attribute content", loc);
      }
      if (!doc->AppendAttribute(parent, doc->ImportNode(source))) {
        ThrowError(ErrorCode::kXQDY0025,
                   "duplicate attribute '" + source->name() + "'", loc);
      }
      continue;
    }
    doc->AppendChild(parent, doc->ImportNode(source));
  }
  flush();
}

}  // namespace

Sequence Evaluator::EvalConstructor(const DirectConstructorExpr* expr,
                                    DynamicContext* context) {
  // Each outermost constructor builds a fresh tree; nested constructors in
  // content are evaluated as expressions and their results copied in.
  DocumentPtr doc = MakeDocument();
  Node* element = doc->CreateElement(expr->name);
  doc->AppendChild(doc->root(), element);

  for (const DirectConstructorExpr::Attribute& attr : expr->attributes) {
    std::string value = BuildAttributeValue(this, attr.parts, context);
    if (!doc->AppendAttribute(element, doc->CreateAttribute(attr.name, value))) {
      ThrowError(ErrorCode::kXQDY0025, "duplicate attribute '" + attr.name + "'",
                 expr->location());
    }
  }

  for (const ConstructorContent& child : expr->children) {
    if (child.expr != nullptr) {
      Sequence items = Evaluate(child.expr.get(), context);
      AppendContentSequence(items, doc.get(), element, expr->location());
    } else if (child.is_comment) {
      doc->AppendChild(element, doc->CreateComment(child.text));
    } else {
      doc->AppendChild(element, doc->CreateText(child.text));
    }
  }

  doc->SealOrder();
  RecordConstructed(context, element);
  return {Item(element, doc)};
}

Sequence Evaluator::EvalComputedConstructor(const ComputedConstructorExpr* expr,
                                            DynamicContext* context) {
  using Kind = ComputedConstructorExpr::Kind;

  // Resolve the (possibly computed) name for element / attribute.
  std::string name = expr->name;
  if (expr->name_expr != nullptr) {
    Sequence value = Atomize(Evaluate(expr->name_expr.get(), context));
    if (value.size() != 1) {
      ThrowError(ErrorCode::kXPTY0004,
                 "computed constructor name must be a single value",
                 expr->location());
    }
    name = CollapseWhitespace(value[0].atomic().ToLexical());
    if (!IsNCName(name) && name.find(':') == std::string::npos) {
      ThrowError(ErrorCode::kFORG0001,
                 "'" + name + "' is not a valid element/attribute name",
                 expr->location());
    }
  }

  Sequence content;
  if (expr->content != nullptr) {
    content = Evaluate(expr->content.get(), context);
  }

  DocumentPtr doc = MakeDocument();
  switch (expr->constructor_kind) {
    case Kind::kElement: {
      Node* element = doc->CreateElement(name);
      doc->AppendChild(doc->root(), element);
      AppendContentSequence(content, doc.get(), element, expr->location());
      doc->SealOrder();
      RecordConstructed(context, element);
      return {Item(element, doc)};
    }
    case Kind::kAttribute: {
      // Attribute value: atomized items joined by single spaces.
      Sequence atomized = Atomize(content);
      std::string value;
      for (size_t i = 0; i < atomized.size(); ++i) {
        if (i > 0) value += ' ';
        value += atomized[i].atomic().ToLexical();
      }
      Node* attribute = doc->CreateAttribute(name, value);
      doc->SealOrder();
      RecordConstructed(context, attribute);
      return {Item(attribute, doc)};
    }
    case Kind::kText: {
      Sequence atomized = Atomize(content);
      if (atomized.empty()) return {};  // text {()} constructs no node
      std::string value;
      for (size_t i = 0; i < atomized.size(); ++i) {
        if (i > 0) value += ' ';
        value += atomized[i].atomic().ToLexical();
      }
      Node* text = doc->CreateText(value);
      doc->AppendChild(doc->root(), text);
      doc->SealOrder();
      RecordConstructed(context, text);
      return {Item(text, doc)};
    }
    case Kind::kComment: {
      Sequence atomized = Atomize(content);
      std::string value;
      for (size_t i = 0; i < atomized.size(); ++i) {
        if (i > 0) value += ' ';
        value += atomized[i].atomic().ToLexical();
      }
      Node* comment = doc->CreateComment(value);
      doc->AppendChild(doc->root(), comment);
      doc->SealOrder();
      RecordConstructed(context, comment);
      return {Item(comment, doc)};
    }
    case Kind::kDocument: {
      AppendContentSequence(content, doc.get(), doc->root(), expr->location());
      doc->SealOrder();
      RecordConstructed(context, doc->root());
      return {Item(doc->root(), doc)};
    }
  }
  return {};
}

}  // namespace xqa

#ifndef XQA_EVAL_FLWOR_INTERNAL_H_
#define XQA_EVAL_FLWOR_INTERNAL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/error.h"
#include "base/thread_pool.h"
#include "eval/dynamic_context.h"
#include "parser/ast.h"
#include "xdm/compare.h"
#include "xdm/item.h"

namespace xqa {
namespace flwor_detail {

/// Machinery shared by the scalar FLWOR engine (flwor.cc) and the batched
/// engine (flwor_batch.cc). Both engines must agree exactly on ordering
/// semantics, hash values, group formation order, and error wording — the
/// batched-identity ablation asserts byte-identical output — so everything
/// either engine uses to make one of those decisions lives here, once.

/// Comparison class of a non-empty order-by key (after the untypedAtomic →
/// xs:string cast). Keys order only against keys of the same class; mixing
/// classes is XPTY0004, detected before any sort runs.
enum class KeyClass : uint8_t {
  kNumeric,
  kString,
  kBoolean,
  kDateTime,
  kDate,
  kTime,
  kDuration,
  kQName,
};

/// An evaluated order-by key: empty sequence or a single atomic value, with
/// its comparison class and NaN-ness resolved at evaluation time so the sort
/// comparator itself can never hit an unordered or throwing case.
struct SortKey {
  bool empty = true;
  bool nan = false;
  KeyClass cls = KeyClass::kString;
  AtomicValue value;
};

inline bool IsNaN(const AtomicValue& v) {
  return v.type() == AtomicType::kDouble && std::isnan(v.AsDouble());
}

inline KeyClass ClassifyOrderKey(const AtomicValue& v) {
  switch (v.type()) {
    case AtomicType::kInteger:
    case AtomicType::kDecimal:
    case AtomicType::kDouble:
      return KeyClass::kNumeric;
    case AtomicType::kString:
    case AtomicType::kUntypedAtomic:
      return KeyClass::kString;
    case AtomicType::kBoolean:
      return KeyClass::kBoolean;
    case AtomicType::kDateTime:
      return KeyClass::kDateTime;
    case AtomicType::kDate:
      return KeyClass::kDate;
    case AtomicType::kTime:
      return KeyClass::kTime;
    case AtomicType::kDuration:
      return KeyClass::kDuration;
    case AtomicType::kQName:
      return KeyClass::kQName;
  }
  return KeyClass::kString;
}

/// Enforces that all non-empty keys of each order spec share one comparison
/// class. CompareSortKeys must be a strict weak ordering for
/// std::stable_sort, so incomparable keys (string vs number, ...) raise
/// XPTY0004 here — at the first offending tuple in input order, identically
/// in serial and parallel runs — never from inside the sort.
inline void ValidateOrderKeys(
    size_t rows, size_t num_specs,
    const std::function<const SortKey&(size_t, size_t)>& at,
    SourceLocation location) {
  for (size_t s = 0; s < num_specs; ++s) {
    const SortKey* reference = nullptr;
    for (size_t i = 0; i < rows; ++i) {
      const SortKey& key = at(i, s);
      if (key.empty) continue;
      if (reference == nullptr) {
        reference = &key;
      } else if (key.cls != reference->cls) {
        ThrowError(ErrorCode::kXPTY0004,
                   "order by keys are not mutually comparable: " +
                       std::string(AtomicTypeName(reference->value.type())) +
                       " vs " + std::string(AtomicTypeName(key.value.type())),
                   location);
      }
    }
  }
}

/// Three-way comparison of two sort keys under one order spec, including
/// direction and empty-ordering. All NaN/incomparable outcomes route through
/// the pre-computed `nan` flag: NaN sorts together, below all other values.
/// Keys were validated mutually comparable before any sort, so
/// ThreeWayCompareAtomic always yields a value here; a defensive 0 keeps the
/// comparator a strict weak ordering regardless.
inline int CompareSortKeys(const SortKey& a, const SortKey& b,
                           const OrderSpec& spec) {
  if (a.empty && b.empty) return 0;
  if (a.empty) return spec.empty_greatest ? 1 : -1;
  if (b.empty) return spec.empty_greatest ? -1 : 1;
  int cmp;
  if (a.nan || b.nan) {
    cmp = a.nan && b.nan ? 0 : (a.nan ? -1 : 1);
  } else {
    cmp = ThreeWayCompareAtomic(a.value, b.value).value_or(0);
  }
  return spec.descending ? -cmp : cmp;
}

inline size_t CombineHash(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash seeds for the two group-by dialects. Distinct seeds keep the two
/// dialects' bucket layouts independent; both engines must use the same seed
/// per dialect so parallel chunk merges agree with serial formation.
constexpr size_t kSeed3 = 0xa0761d6478bd642fULL;
constexpr size_t kSeedPaper = 0xc2b2ae3d27d4eb4fULL;

/// Display label for a clause's ClauseStats / ExplainAnalyze entry.
inline std::string ClauseLabel(const FlworClause& clause) {
  switch (clause.kind) {
    case ClauseKind::kFor: return "for $" + clause.for_var;
    case ClauseKind::kLet: return "let $" + clause.let_var;
    case ClauseKind::kWhere: return "where";
    case ClauseKind::kCount: return "count $" + clause.count_var;
    case ClauseKind::kOrderBy: return "order by";
    case ClauseKind::kGroupBy: return "group by";
  }
  return "?";
}

/// One group of the hash-grouping paths (either dialect): representative key
/// values plus member tuple indexes in input order.
struct HashGroup {
  std::vector<Sequence> keys;
  std::vector<size_t> members;
};

/// A worker-private group found while scanning one contiguous tuple chunk.
struct PartialGroup {
  std::vector<Sequence> keys;
  size_t hash = 0;
  std::vector<size_t> members;  ///< ascending within the chunk
};

/// One chunk's partial hash table: groups in first-member order plus the
/// hash buckets indexing them.
struct GroupPartition {
  std::vector<PartialGroup> groups;
  std::unordered_map<size_t, std::vector<size_t>> buckets;
};

/// Re-charge cadence for the incremental group-formation accounting: the
/// group table is re-estimated every kGroupChargeStride input tuples, so a
/// group-by with millions of distinct keys trips its budget mid-formation
/// instead of after the table is already resident.
constexpr size_t kGroupChargeStride = 4096;

inline int64_t EstimateGroupBytes(const std::vector<HashGroup>& groups) {
  int64_t bytes =
      static_cast<int64_t>(groups.size() * (sizeof(HashGroup) + 64));
  for (const HashGroup& group : groups) {
    bytes += static_cast<int64_t>(group.members.size() * sizeof(size_t));
    for (const Sequence& key : group.keys) {
      bytes += static_cast<int64_t>(sizeof(Sequence) +
                                    key.size() * sizeof(Item));
    }
  }
  return bytes;
}

/// Cancellation poll stride inside sort comparators: a timed-out
/// million-key order-by aborts within ~1k comparisons instead of running
/// the full O(n log n) sort to completion.
constexpr uint32_t kSortPollMask = 1023;

/// Streams below this size run serially: forking contexts and scheduling
/// morsels costs more than the work saves.
constexpr size_t kMinParallelTuples = 32;

/// Lane count for a parallel section over `count` items; 1 = serial. Lanes
/// come from the requested num_threads, not from the pool size: ParallelFor
/// multiplexes lanes onto however many threads exist, so the parallel
/// algorithm (and its deterministic result) is a function of the options
/// alone, never of the host's core count.
inline int PlanWorkers(const ExecutionOptions& exec, size_t count) {
  int requested = exec.num_threads;
  if (requested == 0) requested = ThreadPool::Shared().size() + 1;
  if (requested <= 1 || count < kMinParallelTuples) return 1;
  int workers = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(requested), count / (kMinParallelTuples / 2)));
  return std::max(workers, 1);
}

}  // namespace flwor_detail
}  // namespace xqa

#endif  // XQA_EVAL_FLWOR_INTERNAL_H_

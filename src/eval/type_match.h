#ifndef XQA_EVAL_TYPE_MATCH_H_
#define XQA_EVAL_TYPE_MATCH_H_

#include "parser/ast.h"
#include "xdm/item.h"

namespace xqa {

/// True when `item` matches the item-type component of `type`. Atomic types
/// honor the built-in derivation used by the engine (xs:integer is a
/// subtype of xs:decimal); node kinds match by kind and (optionally) name.
bool MatchesItemType(const Item& item, const SeqType& type);

/// True when the whole sequence matches `type`: the occurrence indicator is
/// checked first, then every item.
bool MatchesSeqType(const Sequence& sequence, const SeqType& type);

/// Applies the XQuery function conversion rules to an argument against a
/// declared parameter type:
///  - for atomic expected types, the argument is atomized, untypedAtomic
///    items are cast to the expected type, and numeric values are promoted
///    (integer -> decimal -> double);
///  - cardinality is enforced per the occurrence indicator;
///  - node/item expected types are checked without conversion.
/// Throws XPTY0004 when the converted value does not match.
Sequence ApplyFunctionConversion(Sequence argument, const SeqType& type,
                                 const std::string& context_name);

}  // namespace xqa

#endif  // XQA_EVAL_TYPE_MATCH_H_

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "api/query_stats.h"
#include "base/error.h"
#include "eval/evaluator.h"
#include "functions/function_registry.h"
#include "xdm/compare.h"
#include "xdm/deep_equal.h"
#include "xdm/sequence_ops.h"

namespace xqa {

namespace {

/// One tuple of the FLWOR tuple stream: values for the variables bound so
/// far, parallel to the pipeline's bound-slot list.
using Tuple = std::vector<Sequence>;

/// An evaluated order-by key: empty sequence or a single atomic value.
struct SortKey {
  bool empty = true;
  AtomicValue value;
};

bool IsNaN(const AtomicValue& v) {
  return v.type() == AtomicType::kDouble && std::isnan(v.AsDouble());
}

/// Three-way comparison of two sort keys under one order spec, including
/// direction and empty-ordering. NaN sorts together, below all other values.
int CompareSortKeys(const SortKey& a, const SortKey& b, const OrderSpec& spec) {
  if (a.empty && b.empty) return 0;
  if (a.empty) return spec.empty_greatest ? 1 : -1;
  if (b.empty) return spec.empty_greatest ? -1 : 1;
  int cmp;
  bool a_nan = IsNaN(a.value);
  bool b_nan = IsNaN(b.value);
  if (a_nan || b_nan) {
    cmp = a_nan && b_nan ? 0 : (a_nan ? -1 : 1);
  } else {
    std::optional<int> three_way = ThreeWayCompareAtomic(a.value, b.value);
    cmp = three_way.value_or(0);
  }
  return spec.descending ? -cmp : cmp;
}

size_t CombineHash(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Display label for a clause's ClauseStats / ExplainAnalyze entry.
std::string ClauseLabel(const FlworClause& clause) {
  switch (clause.kind) {
    case ClauseKind::kFor: return "for $" + clause.for_var;
    case ClauseKind::kLet: return "let $" + clause.let_var;
    case ClauseKind::kWhere: return "where";
    case ClauseKind::kCount: return "count $" + clause.count_var;
    case ClauseKind::kOrderBy: return "order by";
    case ClauseKind::kGroupBy: return "group by";
  }
  return "?";
}

}  // namespace

Sequence Evaluator::EvalFlwor(const FlworExpr* expr, DynamicContext* context) {
  // Slots bound so far in this FLWOR, parallel to each tuple's entries.
  std::vector<int> bound_slots;
  std::vector<Tuple> tuples;
  tuples.emplace_back();  // the initial single empty tuple

  auto load_tuple = [&](const Tuple& tuple) {
    for (size_t i = 0; i < bound_slots.size(); ++i) {
      context->Slot(bound_slots[i]) = tuple[i];
    }
  };

  // Evaluates one order-by key for the currently loaded tuple.
  auto eval_sort_key = [&](const OrderSpec& spec) {
    SortKey key;
    Sequence value = Atomize(Evaluate(spec.key.get(), context));
    if (value.size() > 1) {
      ThrowError(ErrorCode::kXPTY0004,
                 "order by key must be an empty or singleton sequence",
                 expr->location());
    }
    if (!value.empty()) {
      key.empty = false;
      key.value = value[0].atomic();
    }
    return key;
  };

  // True when the `using` equality function accepts (a, b).
  auto equal_under = [&](const FlworClause::GroupKey& group_key,
                         const Sequence& a, const Sequence& b) {
    if (group_key.using_function.empty()) {
      return DeepEqualSequences(a, b);
    }
    std::vector<Sequence> args = {a, b};
    Sequence result;
    if (group_key.using_user_fn_index >= 0) {
      result = CallUserFunction(group_key.using_user_fn_index, std::move(args),
                                context);
    } else {
      EvalContext eval_context{*context, *this};
      result = BuiltinFunctions()[group_key.using_builtin_id].fn(eval_context,
                                                                 args);
    }
    return EffectiveBooleanValue(result);
  };

  QueryStats* stats = context->stats;
  for (size_t clause_index = 0; clause_index < expr->clauses.size();
       ++clause_index) {
    const FlworClause& clause = expr->clauses[clause_index];
    ClauseStats* cs = nullptr;
    if (stats != nullptr) {
      cs = &stats->Clause(expr, static_cast<int>(clause_index),
                          ClauseLabel(clause));
      ++cs->executions;
      cs->tuples_in += static_cast<int64_t>(tuples.size());
    }
    StatsTimer timer(cs != nullptr ? &cs->wall_seconds : nullptr);
    switch (clause.kind) {
      case ClauseKind::kFor: {
        std::vector<Tuple> next;
        for (const Tuple& tuple : tuples) {
          load_tuple(tuple);
          Sequence domain = Evaluate(clause.for_expr.get(), context);
          for (size_t i = 0; i < domain.size(); ++i) {
            Tuple extended = tuple;
            extended.push_back(Sequence{domain[i]});
            if (clause.pos_slot >= 0) {
              extended.push_back(
                  Sequence{MakeInteger(static_cast<int64_t>(i + 1))});
            }
            next.push_back(std::move(extended));
          }
        }
        bound_slots.push_back(clause.for_slot);
        if (clause.pos_slot >= 0) bound_slots.push_back(clause.pos_slot);
        tuples = std::move(next);
        break;
      }

      case ClauseKind::kLet: {
        for (Tuple& tuple : tuples) {
          load_tuple(tuple);
          tuple.push_back(Evaluate(clause.let_expr.get(), context));
        }
        bound_slots.push_back(clause.let_slot);
        break;
      }

      case ClauseKind::kWhere: {
        std::vector<Tuple> next;
        next.reserve(tuples.size());
        for (Tuple& tuple : tuples) {
          load_tuple(tuple);
          if (EffectiveBooleanValue(
                  Evaluate(clause.where_expr.get(), context))) {
            next.push_back(std::move(tuple));
          }
        }
        tuples = std::move(next);
        break;
      }

      case ClauseKind::kCount: {
        // XQuery 3.0 count clause: 1-based position in the current stream.
        for (size_t i = 0; i < tuples.size(); ++i) {
          tuples[i].push_back(
              Sequence{MakeInteger(static_cast<int64_t>(i + 1))});
        }
        bound_slots.push_back(clause.count_slot);
        break;
      }

      case ClauseKind::kOrderBy: {
        // Evaluate all keys per tuple, then stable-sort an index vector.
        std::vector<std::vector<SortKey>> keys(tuples.size());
        for (size_t i = 0; i < tuples.size(); ++i) {
          load_tuple(tuples[i]);
          keys[i].reserve(clause.order_by.specs.size());
          for (const OrderSpec& spec : clause.order_by.specs) {
            keys[i].push_back(eval_sort_key(spec));
          }
        }
        std::vector<size_t> order(tuples.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                           for (size_t s = 0; s < clause.order_by.specs.size();
                                ++s) {
                             int cmp = CompareSortKeys(
                                 keys[a][s], keys[b][s],
                                 clause.order_by.specs[s]);
                             if (cmp != 0) return cmp < 0;
                           }
                           return false;
                         });
        std::vector<Tuple> next;
        next.reserve(tuples.size());
        for (size_t index : order) next.push_back(std::move(tuples[index]));
        tuples = std::move(next);
        break;
      }

      case ClauseKind::kGroupBy: {
        if (clause.xquery3_group_style) {
          // --- XQuery 3.0 dialect ------------------------------------------
          // Keys: atomized singletons compared under eq-like deep-equal.
          // Every currently bound variable is implicitly rebound to the
          // concatenation of its values over the group's tuples.
          struct Group3 {
            std::vector<Sequence> keys;
            std::vector<size_t> members;
          };
          std::vector<Group3> groups;
          std::unordered_map<size_t, std::vector<size_t>> buckets;
          for (size_t ti = 0; ti < tuples.size(); ++ti) {
            load_tuple(tuples[ti]);
            std::vector<Sequence> keys;
            keys.reserve(clause.group_keys.size());
            for (const auto& group_key : clause.group_keys) {
              Sequence value =
                  Atomize(Evaluate(group_key.expr.get(), context));
              if (value.size() > 1) {
                ThrowError(ErrorCode::kXPTY0004,
                           "XQuery 3.0 group by key must be an empty or "
                           "singleton atomic value",
                           expr->location());
              }
              keys.push_back(std::move(value));
            }
            size_t hash = 0xa0761d6478bd642fULL;
            for (const Sequence& key : keys) {
              hash = CombineHash(hash, DeepHashSequence(key));
            }
            if (cs != nullptr) {
              stats->deep_hash_calls += static_cast<int64_t>(keys.size());
            }
            std::vector<size_t>& bucket = buckets[hash];
            size_t group_index = SIZE_MAX;
            for (size_t candidate : bucket) {
              bool all_equal = true;
              for (size_t k = 0; k < keys.size(); ++k) {
                if (cs != nullptr) {
                  ++cs->deep_equal_calls;
                  ++stats->deep_equal_calls;
                }
                if (!DeepEqualSequences(groups[candidate].keys[k], keys[k])) {
                  all_equal = false;
                  break;
                }
              }
              if (cs != nullptr) {
                ++cs->hash_probes;
                if (!all_equal) ++cs->hash_collisions;
              }
              if (all_equal) {
                group_index = candidate;
                break;
              }
            }
            if (group_index == SIZE_MAX) {
              group_index = groups.size();
              bucket.push_back(group_index);
              groups.push_back(Group3{std::move(keys), {}});
            }
            groups[group_index].members.push_back(ti);
          }

          // Slots rebound by a grouping key take the key binding only: a bare
          // "group by $x" reuses $x's slot, and materializing the implicit
          // concatenation for it as well would leave two entries fighting for
          // one slot (with the stale merged sequence visible to later clauses
          // depending on load order). The key wins; merged sequences are
          // built only for genuinely non-grouping variables.
          std::vector<bool> slot_is_key(bound_slots.size(), false);
          for (size_t s = 0; s < bound_slots.size(); ++s) {
            for (const auto& key : clause.group_keys) {
              if (key.slot == bound_slots[s]) {
                slot_is_key[s] = true;
                break;
              }
            }
          }
          std::vector<Tuple> next;
          next.reserve(groups.size());
          for (const Group3& group : groups) {
            Tuple out_tuple;
            out_tuple.reserve(bound_slots.size() + clause.group_keys.size());
            // Implicit rebinding: concatenate each non-key slot's values.
            for (size_t s = 0; s < bound_slots.size(); ++s) {
              if (slot_is_key[s]) continue;
              Sequence merged;
              for (size_t member : group.members) {
                Concat(&merged, tuples[member][s]);
              }
              if (cs != nullptr) ++cs->implicit_rebinds;
              out_tuple.push_back(std::move(merged));
            }
            for (const Sequence& key : group.keys) {
              out_tuple.push_back(key);
            }
            next.push_back(std::move(out_tuple));
          }
          std::vector<int> remaining_slots;
          remaining_slots.reserve(bound_slots.size() +
                                  clause.group_keys.size());
          for (size_t s = 0; s < bound_slots.size(); ++s) {
            if (!slot_is_key[s]) remaining_slots.push_back(bound_slots[s]);
          }
          for (const auto& key : clause.group_keys) {
            remaining_slots.push_back(key.slot);
          }
          bound_slots = std::move(remaining_slots);
          if (cs != nullptr) {
            cs->groups_formed += static_cast<int64_t>(groups.size());
          }
          tuples = std::move(next);
          break;
        }

        // --- Group formation (paper dialect) --------------------------------
        struct Group {
          std::vector<Sequence> keys;  ///< representative key values
          std::vector<size_t> members; ///< input tuple indexes, input order
        };
        std::vector<Group> groups;
        bool custom_equality = false;
        for (const auto& key : clause.group_keys) {
          if (!key.using_function.empty()) custom_equality = true;
        }
        // Hash buckets (default deep-equal path only).
        std::unordered_map<size_t, std::vector<size_t>> buckets;

        std::vector<std::vector<Sequence>> tuple_keys(tuples.size());
        for (size_t ti = 0; ti < tuples.size(); ++ti) {
          load_tuple(tuples[ti]);
          std::vector<Sequence>& keys = tuple_keys[ti];
          keys.reserve(clause.group_keys.size());
          for (const auto& group_key : clause.group_keys) {
            keys.push_back(Evaluate(group_key.expr.get(), context));
          }

          size_t group_index = SIZE_MAX;
          if (!custom_equality) {
            size_t hash = 0xc2b2ae3d27d4eb4fULL;
            for (const Sequence& key : keys) {
              hash = CombineHash(hash, DeepHashSequence(key));
            }
            if (cs != nullptr) {
              stats->deep_hash_calls += static_cast<int64_t>(keys.size());
            }
            std::vector<size_t>& bucket = buckets[hash];
            for (size_t candidate : bucket) {
              bool all_equal = true;
              for (size_t k = 0; k < keys.size(); ++k) {
                if (cs != nullptr) {
                  ++cs->deep_equal_calls;
                  ++stats->deep_equal_calls;
                }
                if (!DeepEqualSequences(groups[candidate].keys[k], keys[k])) {
                  all_equal = false;
                  break;
                }
              }
              if (cs != nullptr) {
                ++cs->hash_probes;
                if (!all_equal) ++cs->hash_collisions;
              }
              if (all_equal) {
                group_index = candidate;
                break;
              }
            }
            if (group_index == SIZE_MAX) {
              group_index = groups.size();
              bucket.push_back(group_index);
              groups.push_back(Group{std::move(keys), {}});
            }
          } else {
            // Custom `using` equality: linear scan over the group table (the
            // user function need not be hashable).
            for (size_t candidate = 0; candidate < groups.size(); ++candidate) {
              bool all_equal = true;
              for (size_t k = 0; k < keys.size(); ++k) {
                if (cs != nullptr) ++cs->linear_scan_compares;
                if (!equal_under(clause.group_keys[k],
                                 groups[candidate].keys[k], keys[k])) {
                  all_equal = false;
                  break;
                }
              }
              if (all_equal) {
                group_index = candidate;
                break;
              }
            }
            if (group_index == SIZE_MAX) {
              group_index = groups.size();
              groups.push_back(Group{std::move(keys), {}});
            }
          }
          groups[group_index].members.push_back(ti);
        }
        if (cs != nullptr) {
          cs->groups_formed += static_cast<int64_t>(groups.size());
        }

        // --- Output tuple construction --------------------------------------
        // Each group yields one tuple: grouping variables bound to the
        // representative key values, nesting variables to the concatenation
        // of the nesting expression over the group's member tuples — in input
        // order, or per the nest's own order by (whose scope is the input
        // tuple stream, Section 3.4.1).
        std::vector<Tuple> next;
        next.reserve(groups.size());
        for (const Group& group : groups) {
          Tuple out_tuple;
          out_tuple.reserve(clause.group_keys.size() +
                            clause.nest_specs.size());
          for (const Sequence& key : group.keys) {
            out_tuple.push_back(key);
          }
          for (const auto& nest : clause.nest_specs) {
            Sequence nested;
            if (!nest.order_by.has_value()) {
              for (size_t member : group.members) {
                load_tuple(tuples[member]);
                Concat(&nested, Evaluate(nest.expr.get(), context));
              }
            } else {
              struct MemberValue {
                std::vector<SortKey> keys;
                Sequence value;
              };
              std::vector<MemberValue> values;
              values.reserve(group.members.size());
              for (size_t member : group.members) {
                load_tuple(tuples[member]);
                MemberValue mv;
                for (const OrderSpec& spec : nest.order_by->specs) {
                  mv.keys.push_back(eval_sort_key(spec));
                }
                mv.value = Evaluate(nest.expr.get(), context);
                values.push_back(std::move(mv));
              }
              std::vector<size_t> order(values.size());
              for (size_t i = 0; i < order.size(); ++i) order[i] = i;
              std::stable_sort(
                  order.begin(), order.end(), [&](size_t a, size_t b) {
                    for (size_t s = 0; s < nest.order_by->specs.size(); ++s) {
                      int cmp = CompareSortKeys(values[a].keys[s],
                                                values[b].keys[s],
                                                nest.order_by->specs[s]);
                      if (cmp != 0) return cmp < 0;
                    }
                    return false;
                  });
              for (size_t index : order) {
                Concat(&nested, values[index].value);
              }
            }
            out_tuple.push_back(std::move(nested));
          }
          next.push_back(std::move(out_tuple));
        }

        // Rebind: only grouping and nesting variables remain (Section 3.2).
        bound_slots.clear();
        for (const auto& key : clause.group_keys) {
          bound_slots.push_back(key.slot);
        }
        for (const auto& nest : clause.nest_specs) {
          bound_slots.push_back(nest.slot);
        }
        tuples = std::move(next);
        break;
      }
    }
    if (cs != nullptr) {
      cs->tuples_out += static_cast<int64_t>(tuples.size());
      stats->tuples_flowed += static_cast<int64_t>(tuples.size());
    }
  }

  // Return clause, with the paper's output-numbering extension: the `at`
  // variable is bound to the ordinal of each return-clause execution (i.e.
  // output order, after any order by).
  ClauseStats* return_cs = nullptr;
  if (stats != nullptr) {
    return_cs = &stats->Clause(expr, ClauseStats::kReturnClause, "return");
    ++return_cs->executions;
    return_cs->tuples_in += static_cast<int64_t>(tuples.size());
  }
  StatsTimer return_timer(return_cs != nullptr ? &return_cs->wall_seconds
                                               : nullptr);
  Sequence result;
  int64_t ordinal = 0;
  for (const Tuple& tuple : tuples) {
    load_tuple(tuple);
    if (expr->at_slot >= 0) {
      context->Slot(expr->at_slot) = Sequence{MakeInteger(++ordinal)};
    }
    Concat(&result, Evaluate(expr->return_expr.get(), context));
  }
  if (return_cs != nullptr) {
    return_cs->tuples_out += static_cast<int64_t>(result.size());
  }
  return result;
}

}  // namespace xqa

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "api/query_stats.h"
#include "base/error.h"
#include "base/fault_injection.h"
#include "base/memory_tracker.h"
#include "base/thread_pool.h"
#include "eval/collection_scan.h"
#include "eval/evaluator.h"
#include "eval/flwor_internal.h"
#include "functions/function_registry.h"
#include "xdm/compare.h"
#include "xdm/deep_equal.h"
#include "xdm/sequence_ops.h"

namespace xqa {

using namespace flwor_detail;

namespace {

/// One tuple of the FLWOR tuple stream: values for the variables bound so
/// far, parallel to the pipeline's bound-slot list.
using Tuple = std::vector<Sequence>;

/// Shallow byte estimate of a live tuple stream: vector headers plus item
/// slots. Strings and node trees are charged where they are built (the
/// constructors and string builders), so this deliberately counts structure,
/// not payload — cheap enough to recompute once per clause, and it tracks
/// exactly the buffers the FLWOR pipeline owns. Only runs when a memory
/// tracker is attached.
int64_t EstimateTupleBytes(const std::vector<Tuple>& tuples) {
  int64_t items = 0;
  for (const Tuple& tuple : tuples) {
    for (const Sequence& sequence : tuple) {
      items += static_cast<int64_t>(sequence.size());
    }
  }
  int64_t slots = tuples.empty()
                      ? 0
                      : static_cast<int64_t>(tuples.size()) *
                            static_cast<int64_t>(tuples.front().size());
  return static_cast<int64_t>(tuples.size() * sizeof(Tuple)) +
         slots * static_cast<int64_t>(sizeof(Sequence)) +
         items * static_cast<int64_t>(sizeof(Item));
}

}  // namespace

Sequence Evaluator::EvalFlwor(const FlworExpr* expr, DynamicContext* context) {
  // Order-by clauses the optimizer removed (optimizer/orderby_elim.h) are
  // sorts this execution skips; surfaced here, ahead of the engine dispatch,
  // so the counter is identical under the scalar and batched engines.
  if (context->stats != nullptr && expr->elided_order_by > 0) {
    context->stats->order_by_elided += expr->elided_order_by;
  }
  // The batched (vectorized) engine handles every FLWOR when enabled; the
  // scalar pipeline below is kept verbatim as the ablation baseline
  // (docs/VECTORIZATION.md) and must produce byte-identical results.
  if (context->exec.use_batched_execution) {
    return EvalFlworBatched(expr, context);
  }
  // Slots bound so far in this FLWOR, parallel to each tuple's entries.
  std::vector<int> bound_slots;
  std::vector<Tuple> tuples;
  tuples.emplace_back();  // the initial single empty tuple

  // Live charge for the tuple stream, re-pointed as each clause replaces the
  // generation; the destructor releases it on success and on unwind alike,
  // so the tracker balance stays exact under cancellation and faults.
  MemoryTracker* memory = context->exec.memory;
  ScopedMemoryCharge tuples_charge(memory);

  auto load_tuple_into = [&](DynamicContext* ctx, const Tuple& tuple) {
    for (size_t i = 0; i < bound_slots.size(); ++i) {
      ctx->Slot(bound_slots[i]) = tuple[i];
    }
  };
  auto load_tuple = [&](const Tuple& tuple) { load_tuple_into(context, tuple); };

  // Evaluates one order-by key for the tuple currently loaded into `ctx`.
  auto eval_sort_key = [&](const OrderSpec& spec, DynamicContext* ctx) {
    SortKey key;
    Sequence value = Atomize(Evaluate(spec.key.get(), ctx));
    if (value.size() > 1) {
      ThrowError(ErrorCode::kXPTY0004,
                 "order by key must be an empty or singleton sequence",
                 expr->location());
    }
    if (!value.empty()) {
      key.empty = false;
      AtomicValue v = value[0].atomic();
      // XQuery ordering rule: untypedAtomic key values are cast to xs:string.
      if (v.type() == AtomicType::kUntypedAtomic) {
        v = v.CastTo(AtomicType::kString);
      }
      key.nan = IsNaN(v);
      key.cls = ClassifyOrderKey(v);
      key.value = std::move(v);
    }
    return key;
  };

  // True when the `using` equality function accepts (a, b).
  auto equal_under = [&](const FlworClause::GroupKey& group_key,
                         const Sequence& a, const Sequence& b) {
    if (group_key.using_function.empty()) {
      return DeepEqualSequences(a, b);
    }
    std::vector<Sequence> args = {a, b};
    Sequence result;
    if (group_key.using_user_fn_index >= 0) {
      result = CallUserFunction(group_key.using_user_fn_index, std::move(args),
                                context);
    } else {
      EvalContext eval_context{*context, *this};
      result = BuiltinFunctions()[group_key.using_builtin_id].fn(eval_context,
                                                                 args);
    }
    return EffectiveBooleanValue(result);
  };

  QueryStats* stats = context->stats;

  // --- Parallel-section machinery ------------------------------------------
  // Each section forks one worker context per lane (the caller participates
  // as lane 0 but also through a fork, so its own slots stay untouched) and
  // gives each lane a private stats sink, merged at the barrier.
  struct Lanes {
    std::vector<std::unique_ptr<DynamicContext>> ctx;
    std::vector<QueryStats> stats;
  };
  auto make_lanes = [&](int workers) {
    Lanes lanes;
    lanes.ctx.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) lanes.ctx.push_back(context->Fork());
    if (stats != nullptr) {
      lanes.stats.resize(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        lanes.ctx[static_cast<size_t>(w)]->stats =
            &lanes.stats[static_cast<size_t>(w)];
      }
    }
    return lanes;
  };
  auto merge_lanes = [&](Lanes& lanes) {
    if (stats == nullptr) return;
    for (QueryStats& worker_stats : lanes.stats) {
      stats->MergeFrom(worker_stats);
    }
  };

  for (size_t clause_index = 0; clause_index < expr->clauses.size();
       ++clause_index) {
    const FlworClause& clause = expr->clauses[clause_index];
    context->CheckCancel();
    ClauseStats* cs = nullptr;
    if (stats != nullptr) {
      cs = &stats->Clause(expr, static_cast<int>(clause_index),
                          ClauseLabel(clause));
      ++cs->executions;
      cs->tuples_in += static_cast<int64_t>(tuples.size());
    }
    StatsTimer timer(cs != nullptr ? &cs->wall_seconds : nullptr);

    // Deterministic parallel group formation (both dialects): contiguous
    // chunks → per-worker partial hash tables → serial merge in ascending
    // chunk order. Within a chunk, partial groups are in first-member order,
    // so global group creation order equals first-occurrence order over the
    // whole input — exactly the serial table's order — and concatenating
    // member lists chunk by chunk reproduces input order within each group.
    auto form_groups_parallel =
        [&](int workers, size_t hash_seed,
            const std::function<std::vector<Sequence>(DynamicContext*)>&
                eval_keys) -> std::vector<HashGroup> {
      const size_t count = tuples.size();
      const size_t lanes_count = static_cast<size_t>(workers);
      Lanes lanes = make_lanes(workers);
      std::vector<GroupPartition> partitions(lanes_count);
      std::string label = ClauseLabel(clause);
      ThreadPool::Shared().ParallelFor(
          lanes_count, workers, [&](int w, size_t chunk) {
            DynamicContext* ctx = lanes.ctx[static_cast<size_t>(w)].get();
            QueryStats* ws = ctx->stats;
            ClauseStats* wcs =
                ws != nullptr
                    ? &ws->Clause(expr, static_cast<int>(clause_index), label)
                    : nullptr;
            GroupPartition& part = partitions[chunk];
            size_t begin = chunk * count / lanes_count;
            size_t end = (chunk + 1) * count / lanes_count;
            for (size_t ti = begin; ti < end; ++ti) {
              ctx->CheckCancel();
              load_tuple_into(ctx, tuples[ti]);
              std::vector<Sequence> keys = eval_keys(ctx);
              size_t hash = hash_seed;
              for (const Sequence& key : keys) {
                hash = CombineHash(hash, DeepHashSequence(key));
              }
              if (ws != nullptr) {
                ws->deep_hash_calls += static_cast<int64_t>(keys.size());
              }
              std::vector<size_t>& bucket = part.buckets[hash];
              size_t group_index = SIZE_MAX;
              for (size_t candidate : bucket) {
                bool all_equal = true;
                for (size_t k = 0; k < keys.size(); ++k) {
                  if (wcs != nullptr) {
                    ++wcs->deep_equal_calls;
                    ++ws->deep_equal_calls;
                  }
                  if (!DeepEqualSequences(part.groups[candidate].keys[k],
                                          keys[k])) {
                    all_equal = false;
                    break;
                  }
                }
                if (wcs != nullptr) {
                  ++wcs->hash_probes;
                  if (!all_equal) ++wcs->hash_collisions;
                }
                if (all_equal) {
                  group_index = candidate;
                  break;
                }
              }
              if (group_index == SIZE_MAX) {
                group_index = part.groups.size();
                bucket.push_back(group_index);
                part.groups.push_back(PartialGroup{std::move(keys), hash, {}});
              }
              part.groups[group_index].members.push_back(ti);
            }
          });
      merge_lanes(lanes);

      std::vector<HashGroup> groups;
      std::unordered_map<size_t, std::vector<size_t>> buckets;
      for (GroupPartition& part : partitions) {
        for (PartialGroup& partial : part.groups) {
          std::vector<size_t>& bucket = buckets[partial.hash];
          size_t group_index = SIZE_MAX;
          for (size_t candidate : bucket) {
            bool all_equal = true;
            for (size_t k = 0; k < partial.keys.size(); ++k) {
              if (cs != nullptr) {
                ++cs->deep_equal_calls;
                ++stats->deep_equal_calls;
              }
              if (!DeepEqualSequences(groups[candidate].keys[k],
                                      partial.keys[k])) {
                all_equal = false;
                break;
              }
            }
            if (cs != nullptr) {
              ++cs->hash_probes;
              if (!all_equal) ++cs->hash_collisions;
            }
            if (all_equal) {
              group_index = candidate;
              break;
            }
          }
          if (group_index == SIZE_MAX) {
            bucket.push_back(groups.size());
            groups.push_back(
                HashGroup{std::move(partial.keys), std::move(partial.members)});
          } else {
            std::vector<size_t>& members = groups[group_index].members;
            members.insert(members.end(), partial.members.begin(),
                           partial.members.end());
          }
        }
      }
      return groups;
    };

    switch (clause.kind) {
      case ClauseKind::kFor: {
        // Phase 1: each tuple's binding domain (parallel across tuples).
        std::vector<Sequence> domains(tuples.size());
        // A single-tuple stream whose domain is a provider-resolved
        // collection() call runs as a partitioned scan: the shard partitions
        // fan across the morsel pool instead of the (one-element) tuple
        // loop. The resolution consults only the AST and the provider, so
        // the batched engine takes the same branch (its row count at this
        // clause equals the tuple count here) and the result stays
        // byte-identical across the whole ablation grid.
        const CollectionView* collection_scan =
            tuples.size() == 1
                ? ResolveCollectionScan(clause.for_expr.get(), context)
                : nullptr;
        const int domain_workers = PlanWorkers(context->exec, tuples.size());
        if (collection_scan != nullptr) {
          domains[0] = PartitionedCollectionScan(*collection_scan, context);
        } else if (domain_workers > 1) {
          Lanes lanes = make_lanes(domain_workers);
          ThreadPool::Shared().ParallelFor(
              tuples.size(), domain_workers, [&](int w, size_t ti) {
                DynamicContext* ctx = lanes.ctx[static_cast<size_t>(w)].get();
                ctx->CheckCancel();
                load_tuple_into(ctx, tuples[ti]);
                domains[ti] = Evaluate(clause.for_expr.get(), ctx);
              });
          merge_lanes(lanes);
        } else {
          for (size_t ti = 0; ti < tuples.size(); ++ti) {
            context->CheckCancel();
            load_tuple(tuples[ti]);
            domains[ti] = Evaluate(clause.for_expr.get(), context);
          }
        }

        // Phase 2: materialize the extended tuples at precomputed offsets.
        // Pure data movement — no evaluation — so lanes need no contexts.
        std::vector<size_t> offsets(tuples.size() + 1, 0);
        for (size_t ti = 0; ti < tuples.size(); ++ti) {
          offsets[ti + 1] = offsets[ti] + domains[ti].size();
        }
        std::vector<Tuple> next(offsets.back());
        auto materialize = [&](size_t ti, size_t i) {
          Tuple& out = next[offsets[ti] + i];
          const Tuple& base = tuples[ti];
          out.reserve(base.size() + (clause.pos_slot >= 0 ? 2 : 1));
          out.insert(out.end(), base.begin(), base.end());
          out.push_back(Sequence{domains[ti][i]});
          if (clause.pos_slot >= 0) {
            out.push_back(Sequence{MakeInteger(static_cast<int64_t>(i + 1))});
          }
        };
        const int fill_workers = PlanWorkers(context->exec, next.size());
        if (fill_workers > 1) {
          ThreadPool::Shared().ParallelFor(
              next.size(), fill_workers, [&](int, size_t j) {
                size_t ti = static_cast<size_t>(
                                std::upper_bound(offsets.begin(), offsets.end(),
                                                 j) -
                                offsets.begin()) -
                            1;
                materialize(ti, j - offsets[ti]);
              });
        } else {
          for (size_t ti = 0; ti < tuples.size(); ++ti) {
            for (size_t i = 0; i < domains[ti].size(); ++i) {
              materialize(ti, i);
            }
          }
        }
        bound_slots.push_back(clause.for_slot);
        if (clause.pos_slot >= 0) bound_slots.push_back(clause.pos_slot);
        tuples = std::move(next);
        break;
      }

      case ClauseKind::kLet: {
        for (Tuple& tuple : tuples) {
          context->CheckCancel();
          load_tuple(tuple);
          tuple.push_back(Evaluate(clause.let_expr.get(), context));
        }
        bound_slots.push_back(clause.let_slot);
        break;
      }

      case ClauseKind::kWhere: {
        const int workers = PlanWorkers(context->exec, tuples.size());
        std::vector<Tuple> next;
        next.reserve(tuples.size());
        if (workers > 1) {
          // Parallel predicate evaluation into per-tuple flags, then a
          // serial compaction that preserves input order.
          Lanes lanes = make_lanes(workers);
          std::vector<uint8_t> keep(tuples.size(), 0);
          ThreadPool::Shared().ParallelFor(
              tuples.size(), workers, [&](int w, size_t ti) {
                DynamicContext* ctx = lanes.ctx[static_cast<size_t>(w)].get();
                ctx->CheckCancel();
                load_tuple_into(ctx, tuples[ti]);
                keep[ti] = EffectiveBooleanValue(
                               Evaluate(clause.where_expr.get(), ctx))
                               ? 1
                               : 0;
              });
          merge_lanes(lanes);
          for (size_t ti = 0; ti < tuples.size(); ++ti) {
            if (keep[ti] != 0) next.push_back(std::move(tuples[ti]));
          }
        } else {
          for (Tuple& tuple : tuples) {
            context->CheckCancel();
            load_tuple(tuple);
            if (EffectiveBooleanValue(
                    Evaluate(clause.where_expr.get(), context))) {
              next.push_back(std::move(tuple));
            }
          }
        }
        tuples = std::move(next);
        break;
      }

      case ClauseKind::kCount: {
        // XQuery 3.0 count clause: 1-based position in the current stream.
        for (size_t i = 0; i < tuples.size(); ++i) {
          tuples[i].push_back(
              Sequence{MakeInteger(static_cast<int64_t>(i + 1))});
        }
        bound_slots.push_back(clause.count_slot);
        break;
      }

      case ClauseKind::kOrderBy: {
        // Evaluate all keys per tuple (in parallel when enabled), validate
        // comparability, then stable-sort an index vector serially.
        const std::vector<OrderSpec>& specs = clause.order_by.specs;
        std::vector<std::vector<SortKey>> keys(tuples.size());
        const int workers = PlanWorkers(context->exec, tuples.size());
        if (workers > 1) {
          Lanes lanes = make_lanes(workers);
          ThreadPool::Shared().ParallelFor(
              tuples.size(), workers, [&](int w, size_t ti) {
                DynamicContext* ctx = lanes.ctx[static_cast<size_t>(w)].get();
                ctx->CheckCancel();
                load_tuple_into(ctx, tuples[ti]);
                keys[ti].reserve(specs.size());
                for (const OrderSpec& spec : specs) {
                  keys[ti].push_back(eval_sort_key(spec, ctx));
                }
              });
          merge_lanes(lanes);
        } else {
          for (size_t i = 0; i < tuples.size(); ++i) {
            context->CheckCancel();
            load_tuple(tuples[i]);
            keys[i].reserve(specs.size());
            for (const OrderSpec& spec : specs) {
              keys[i].push_back(eval_sort_key(spec, context));
            }
          }
        }
        // The key vectors are the clause's own materialization: charge them
        // before validation/sort, released when the clause scope ends (the
        // sorted tuples themselves are charged at the clause boundary).
        ScopedMemoryCharge keys_charge(memory);
        if (memory != nullptr) {
          XQA_FAULT_POINT("flwor.sort_keys", ErrorCode::kXQSV0004);
          keys_charge.Reset(static_cast<int64_t>(
              tuples.size() * (sizeof(std::vector<SortKey>) +
                               specs.size() * sizeof(SortKey))));
        }
        ValidateOrderKeys(
            keys.size(), specs.size(),
            [&](size_t i, size_t s) -> const SortKey& { return keys[i][s]; },
            expr->location());
        std::vector<size_t> order(tuples.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        // The comparator polls cancellation in batches so a timed-out sort
        // of millions of keys aborts promptly; it sorts plain indexes, so an
        // unwinding exception cannot corrupt the tuple stream.
        uint32_t comparisons = 0;
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                           if ((++comparisons & kSortPollMask) == 0) {
                             context->CheckCancel();
                           }
                           for (size_t s = 0; s < specs.size(); ++s) {
                             int cmp = CompareSortKeys(keys[a][s], keys[b][s],
                                                       specs[s]);
                             if (cmp != 0) return cmp < 0;
                           }
                           return false;
                         });
        std::vector<Tuple> next;
        next.reserve(tuples.size());
        for (size_t index : order) next.push_back(std::move(tuples[index]));
        tuples = std::move(next);
        break;
      }

      case ClauseKind::kGroupBy: {
        if (clause.xquery3_group_style) {
          // --- XQuery 3.0 dialect ------------------------------------------
          // Keys: atomized singletons compared under eq-like deep-equal.
          // Every currently bound variable is implicitly rebound to the
          // concatenation of its values over the group's tuples.
          auto eval_keys3 = [&](DynamicContext* ctx) {
            std::vector<Sequence> keys;
            keys.reserve(clause.group_keys.size());
            for (const auto& group_key : clause.group_keys) {
              Sequence value = Atomize(Evaluate(group_key.expr.get(), ctx));
              if (value.size() > 1) {
                ThrowError(ErrorCode::kXPTY0004,
                           "XQuery 3.0 group by key must be an empty or "
                           "singleton atomic value",
                           expr->location());
              }
              keys.push_back(std::move(value));
            }
            return keys;
          };
          std::vector<HashGroup> groups;
          // Charged incrementally during formation so a high-cardinality
          // group-by trips the budget mid-build, not after the table exists.
          ScopedMemoryCharge group_charge(memory);
          const int workers = PlanWorkers(context->exec, tuples.size());
          if (workers > 1) {
            groups = form_groups_parallel(workers, kSeed3, eval_keys3);
          } else {
            std::unordered_map<size_t, std::vector<size_t>> buckets;
            for (size_t ti = 0; ti < tuples.size(); ++ti) {
              context->CheckCancel();
              load_tuple(tuples[ti]);
              std::vector<Sequence> keys = eval_keys3(context);
              size_t hash = kSeed3;
              for (const Sequence& key : keys) {
                hash = CombineHash(hash, DeepHashSequence(key));
              }
              if (cs != nullptr) {
                stats->deep_hash_calls += static_cast<int64_t>(keys.size());
              }
              std::vector<size_t>& bucket = buckets[hash];
              size_t group_index = SIZE_MAX;
              for (size_t candidate : bucket) {
                bool all_equal = true;
                for (size_t k = 0; k < keys.size(); ++k) {
                  if (cs != nullptr) {
                    ++cs->deep_equal_calls;
                    ++stats->deep_equal_calls;
                  }
                  if (!DeepEqualSequences(groups[candidate].keys[k],
                                          keys[k])) {
                    all_equal = false;
                    break;
                  }
                }
                if (cs != nullptr) {
                  ++cs->hash_probes;
                  if (!all_equal) ++cs->hash_collisions;
                }
                if (all_equal) {
                  group_index = candidate;
                  break;
                }
              }
              if (group_index == SIZE_MAX) {
                group_index = groups.size();
                bucket.push_back(group_index);
                groups.push_back(HashGroup{std::move(keys), {}});
              }
              groups[group_index].members.push_back(ti);
              if (memory != nullptr && (ti % kGroupChargeStride) == 0) {
                group_charge.Reset(EstimateGroupBytes(groups));
              }
            }
          }
          if (memory != nullptr) {
            XQA_FAULT_POINT("flwor.group_alloc", ErrorCode::kXQSV0004);
            group_charge.Reset(EstimateGroupBytes(groups));
          }

          // Slots rebound by a grouping key take the key binding only: a bare
          // "group by $x" reuses $x's slot, and materializing the implicit
          // concatenation for it as well would leave two entries fighting for
          // one slot (with the stale merged sequence visible to later clauses
          // depending on load order). The key wins; merged sequences are
          // built only for genuinely non-grouping variables.
          std::vector<bool> slot_is_key(bound_slots.size(), false);
          for (size_t s = 0; s < bound_slots.size(); ++s) {
            for (const auto& key : clause.group_keys) {
              if (key.slot == bound_slots[s]) {
                slot_is_key[s] = true;
                break;
              }
            }
          }
          std::vector<Tuple> next;
          next.reserve(groups.size());
          for (const HashGroup& group : groups) {
            Tuple out_tuple;
            out_tuple.reserve(bound_slots.size() + clause.group_keys.size());
            // Implicit rebinding: concatenate each non-key slot's values.
            for (size_t s = 0; s < bound_slots.size(); ++s) {
              if (slot_is_key[s]) continue;
              Sequence merged;
              for (size_t member : group.members) {
                Concat(&merged, tuples[member][s]);
              }
              if (cs != nullptr) ++cs->implicit_rebinds;
              out_tuple.push_back(std::move(merged));
            }
            for (const Sequence& key : group.keys) {
              out_tuple.push_back(key);
            }
            next.push_back(std::move(out_tuple));
          }
          std::vector<int> remaining_slots;
          remaining_slots.reserve(bound_slots.size() +
                                  clause.group_keys.size());
          for (size_t s = 0; s < bound_slots.size(); ++s) {
            if (!slot_is_key[s]) remaining_slots.push_back(bound_slots[s]);
          }
          for (const auto& key : clause.group_keys) {
            remaining_slots.push_back(key.slot);
          }
          bound_slots = std::move(remaining_slots);
          if (cs != nullptr) {
            cs->groups_formed += static_cast<int64_t>(groups.size());
          }
          tuples = std::move(next);
          break;
        }

        // --- Group formation (paper dialect) --------------------------------
        std::vector<HashGroup> groups;
        ScopedMemoryCharge group_charge(memory);
        bool custom_equality = false;
        for (const auto& key : clause.group_keys) {
          if (!key.using_function.empty()) custom_equality = true;
        }
        auto eval_keys = [&](DynamicContext* ctx) {
          std::vector<Sequence> keys;
          keys.reserve(clause.group_keys.size());
          for (const auto& group_key : clause.group_keys) {
            keys.push_back(Evaluate(group_key.expr.get(), ctx));
          }
          return keys;
        };
        // Custom `using` equality runs serially: the user function evaluates
        // on the caller's context and need not be hashable.
        const int workers =
            custom_equality ? 1 : PlanWorkers(context->exec, tuples.size());
        if (workers > 1) {
          groups = form_groups_parallel(workers, kSeedPaper, eval_keys);
        } else {
          // Hash buckets (default deep-equal path only).
          std::unordered_map<size_t, std::vector<size_t>> buckets;
          for (size_t ti = 0; ti < tuples.size(); ++ti) {
            context->CheckCancel();
            load_tuple(tuples[ti]);
            std::vector<Sequence> keys = eval_keys(context);

            size_t group_index = SIZE_MAX;
            if (!custom_equality) {
              size_t hash = kSeedPaper;
              for (const Sequence& key : keys) {
                hash = CombineHash(hash, DeepHashSequence(key));
              }
              if (cs != nullptr) {
                stats->deep_hash_calls += static_cast<int64_t>(keys.size());
              }
              std::vector<size_t>& bucket = buckets[hash];
              for (size_t candidate : bucket) {
                bool all_equal = true;
                for (size_t k = 0; k < keys.size(); ++k) {
                  if (cs != nullptr) {
                    ++cs->deep_equal_calls;
                    ++stats->deep_equal_calls;
                  }
                  if (!DeepEqualSequences(groups[candidate].keys[k],
                                          keys[k])) {
                    all_equal = false;
                    break;
                  }
                }
                if (cs != nullptr) {
                  ++cs->hash_probes;
                  if (!all_equal) ++cs->hash_collisions;
                }
                if (all_equal) {
                  group_index = candidate;
                  break;
                }
              }
              if (group_index == SIZE_MAX) {
                group_index = groups.size();
                bucket.push_back(group_index);
                groups.push_back(HashGroup{std::move(keys), {}});
              }
            } else {
              // Custom `using` equality: linear scan over the group table
              // (the user function need not be hashable).
              for (size_t candidate = 0; candidate < groups.size();
                   ++candidate) {
                bool all_equal = true;
                for (size_t k = 0; k < keys.size(); ++k) {
                  if (cs != nullptr) ++cs->linear_scan_compares;
                  if (!equal_under(clause.group_keys[k],
                                   groups[candidate].keys[k], keys[k])) {
                    all_equal = false;
                    break;
                  }
                }
                if (all_equal) {
                  group_index = candidate;
                  break;
                }
              }
              if (group_index == SIZE_MAX) {
                group_index = groups.size();
                groups.push_back(HashGroup{std::move(keys), {}});
              }
            }
            groups[group_index].members.push_back(ti);
            if (memory != nullptr && (ti % kGroupChargeStride) == 0) {
              group_charge.Reset(EstimateGroupBytes(groups));
            }
          }
        }
        if (memory != nullptr) {
          XQA_FAULT_POINT("flwor.group_alloc", ErrorCode::kXQSV0004);
          group_charge.Reset(EstimateGroupBytes(groups));
        }
        if (cs != nullptr) {
          cs->groups_formed += static_cast<int64_t>(groups.size());
        }

        // --- Output tuple construction --------------------------------------
        // Each group yields one tuple: grouping variables bound to the
        // representative key values, nesting variables to the concatenation
        // of the nesting expression over the group's member tuples — in input
        // order, or per the nest's own order by (whose scope is the input
        // tuple stream, Section 3.4.1).
        bool any_nest_order = false;
        for (const auto& nest : clause.nest_specs) {
          if (nest.order_by.has_value()) any_nest_order = true;
        }
        std::vector<Tuple> next;
        // Groups are independent, so construction parallelizes over groups;
        // `nest ... order by` keeps the serial path (its keys evaluate in
        // per-tuple scope and sort per group — cheap relative to formation).
        const int out_workers =
            any_nest_order || groups.size() < 2
                ? 1
                : PlanWorkers(context->exec, tuples.size());
        if (out_workers > 1) {
          next.resize(groups.size());
          Lanes lanes = make_lanes(out_workers);
          ThreadPool::Shared().ParallelFor(
              groups.size(), out_workers, [&](int w, size_t gi) {
                DynamicContext* ctx = lanes.ctx[static_cast<size_t>(w)].get();
                ctx->CheckCancel();
                const HashGroup& group = groups[gi];
                Tuple out_tuple;
                out_tuple.reserve(clause.group_keys.size() +
                                  clause.nest_specs.size());
                for (const Sequence& key : group.keys) {
                  out_tuple.push_back(key);
                }
                for (const auto& nest : clause.nest_specs) {
                  Sequence nested;
                  for (size_t member : group.members) {
                    load_tuple_into(ctx, tuples[member]);
                    Concat(&nested, Evaluate(nest.expr.get(), ctx));
                  }
                  out_tuple.push_back(std::move(nested));
                }
                next[gi] = std::move(out_tuple);
              });
          merge_lanes(lanes);
        } else {
          next.reserve(groups.size());
          for (const HashGroup& group : groups) {
            context->CheckCancel();
            Tuple out_tuple;
            out_tuple.reserve(clause.group_keys.size() +
                              clause.nest_specs.size());
            for (const Sequence& key : group.keys) {
              out_tuple.push_back(key);
            }
            for (const auto& nest : clause.nest_specs) {
              Sequence nested;
              if (!nest.order_by.has_value()) {
                for (size_t member : group.members) {
                  load_tuple(tuples[member]);
                  Concat(&nested, Evaluate(nest.expr.get(), context));
                }
              } else {
                struct MemberValue {
                  std::vector<SortKey> keys;
                  Sequence value;
                };
                std::vector<MemberValue> values;
                values.reserve(group.members.size());
                for (size_t member : group.members) {
                  load_tuple(tuples[member]);
                  MemberValue mv;
                  for (const OrderSpec& spec : nest.order_by->specs) {
                    mv.keys.push_back(eval_sort_key(spec, context));
                  }
                  mv.value = Evaluate(nest.expr.get(), context);
                  values.push_back(std::move(mv));
                }
                ValidateOrderKeys(
                    values.size(), nest.order_by->specs.size(),
                    [&](size_t i, size_t s) -> const SortKey& {
                      return values[i].keys[s];
                    },
                    expr->location());
                std::vector<size_t> order(values.size());
                for (size_t i = 0; i < order.size(); ++i) order[i] = i;
                uint32_t comparisons = 0;
                std::stable_sort(
                    order.begin(), order.end(), [&](size_t a, size_t b) {
                      if ((++comparisons & kSortPollMask) == 0) {
                        context->CheckCancel();
                      }
                      for (size_t s = 0; s < nest.order_by->specs.size();
                           ++s) {
                        int cmp = CompareSortKeys(values[a].keys[s],
                                                  values[b].keys[s],
                                                  nest.order_by->specs[s]);
                        if (cmp != 0) return cmp < 0;
                      }
                      return false;
                    });
                for (size_t index : order) {
                  Concat(&nested, values[index].value);
                }
              }
              out_tuple.push_back(std::move(nested));
            }
            next.push_back(std::move(out_tuple));
          }
        }

        // Rebind: only grouping and nesting variables remain (Section 3.2).
        bound_slots.clear();
        for (const auto& key : clause.group_keys) {
          bound_slots.push_back(key.slot);
        }
        for (const auto& nest : clause.nest_specs) {
          bound_slots.push_back(nest.slot);
        }
        tuples = std::move(next);
        break;
      }
    }
    // Budget checkpoint: account the new generation before the next clause
    // consumes it. One shallow walk per clause, only when tracking is on.
    if (memory != nullptr) {
      XQA_FAULT_POINT("flwor.tuple_alloc", ErrorCode::kXQSV0004);
      tuples_charge.Reset(EstimateTupleBytes(tuples));
    }
    if (cs != nullptr) {
      cs->tuples_out += static_cast<int64_t>(tuples.size());
      stats->tuples_flowed += static_cast<int64_t>(tuples.size());
    }
  }

  // Return clause, with the paper's output-numbering extension: the `at`
  // variable is bound to the ordinal of each return-clause execution (i.e.
  // output order, after any order by).
  ClauseStats* return_cs = nullptr;
  if (stats != nullptr) {
    return_cs = &stats->Clause(expr, ClauseStats::kReturnClause, "return");
    ++return_cs->executions;
    return_cs->tuples_in += static_cast<int64_t>(tuples.size());
  }
  StatsTimer return_timer(return_cs != nullptr ? &return_cs->wall_seconds
                                               : nullptr);
  Sequence result;
  int64_t ordinal = 0;
  // The result escapes this evaluation, so its growth is charged without a
  // matching release here; the per-query tracker settles the balance when the
  // execution ends. Charged incrementally so an unbounded return sequence
  // trips the budget while being built.
  size_t charged_items = 0;
  for (const Tuple& tuple : tuples) {
    context->CheckCancel();
    load_tuple(tuple);
    if (expr->at_slot >= 0) {
      context->Slot(expr->at_slot) = Sequence{MakeInteger(++ordinal)};
    }
    Concat(&result, Evaluate(expr->return_expr.get(), context));
    if (memory != nullptr && result.size() - charged_items >= kGroupChargeStride) {
      XQA_FAULT_POINT("flwor.result_alloc", ErrorCode::kXQSV0004);
      memory->Charge(
          static_cast<int64_t>((result.size() - charged_items) * sizeof(Item)));
      charged_items = result.size();
    }
  }
  if (memory != nullptr && result.size() > charged_items) {
    memory->Charge(
        static_cast<int64_t>((result.size() - charged_items) * sizeof(Item)));
  }
  if (return_cs != nullptr) {
    return_cs->tuples_out += static_cast<int64_t>(result.size());
  }
  return result;
}

}  // namespace xqa

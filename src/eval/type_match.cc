#include "eval/type_match.h"

#include "base/error.h"
#include "xdm/sequence_ops.h"

namespace xqa {

namespace {

bool MatchesAtomicType(const AtomicValue& value, AtomicType expected) {
  if (value.type() == expected) return true;
  // Built-in derivation: xs:integer is derived from xs:decimal.
  if (expected == AtomicType::kDecimal &&
      value.type() == AtomicType::kInteger) {
    return true;
  }
  return false;
}

bool NameMatches(const std::string& test_name, const std::string& node_name) {
  return test_name.empty() || test_name == "*" || test_name == node_name;
}

}  // namespace

bool MatchesItemType(const Item& item, const SeqType& type) {
  switch (type.item_kind) {
    case SeqType::ItemKind::kItem:
      return true;
    case SeqType::ItemKind::kNode:
      return item.IsNode();
    case SeqType::ItemKind::kElement:
      return item.IsNode() && item.node()->kind() == NodeKind::kElement &&
             NameMatches(type.name, item.node()->name());
    case SeqType::ItemKind::kAttribute:
      return item.IsNode() && item.node()->kind() == NodeKind::kAttribute &&
             NameMatches(type.name, item.node()->name());
    case SeqType::ItemKind::kText:
      return item.IsNode() && item.node()->kind() == NodeKind::kText;
    case SeqType::ItemKind::kDocument:
      return item.IsNode() && item.node()->kind() == NodeKind::kDocument;
    case SeqType::ItemKind::kAtomic:
      return item.IsAtomic() &&
             MatchesAtomicType(item.atomic(), type.atomic_type);
  }
  return false;
}

bool MatchesSeqType(const Sequence& sequence, const SeqType& type) {
  switch (type.occurrence) {
    case SeqType::Occurrence::kOne:
      if (sequence.size() != 1) return false;
      break;
    case SeqType::Occurrence::kOptional:
      if (sequence.size() > 1) return false;
      break;
    case SeqType::Occurrence::kPlus:
      if (sequence.empty()) return false;
      break;
    case SeqType::Occurrence::kStar:
      break;
  }
  for (const Item& item : sequence) {
    if (!MatchesItemType(item, type)) return false;
  }
  return true;
}

Sequence ApplyFunctionConversion(Sequence argument, const SeqType& type,
                                 const std::string& context_name) {
  Sequence converted;
  if (type.item_kind == SeqType::ItemKind::kAtomic) {
    converted = Atomize(argument);
    for (Item& item : converted) {
      const AtomicValue& value = item.atomic();
      if (MatchesAtomicType(value, type.atomic_type)) continue;
      if (value.type() == AtomicType::kUntypedAtomic) {
        item = Item(value.CastTo(type.atomic_type));
        continue;
      }
      // Numeric promotion: integer -> decimal -> double.
      if (type.atomic_type == AtomicType::kDouble && value.IsNumeric()) {
        item = Item(AtomicValue::Double(value.ToDoubleValue()));
        continue;
      }
      if (type.atomic_type == AtomicType::kDecimal &&
          value.type() == AtomicType::kInteger) {
        item = Item(AtomicValue::MakeDecimal(Decimal(value.AsInteger())));
        continue;
      }
      ThrowError(ErrorCode::kXPTY0004,
                 context_name + ": expected " +
                     std::string(AtomicTypeName(type.atomic_type)) + ", got " +
                     std::string(AtomicTypeName(value.type())));
    }
  } else {
    converted = std::move(argument);
  }
  if (!MatchesSeqType(converted, type)) {
    ThrowError(ErrorCode::kXPTY0004,
               context_name + ": value does not match the declared type");
  }
  return converted;
}

}  // namespace xqa

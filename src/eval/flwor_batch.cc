#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/query_stats.h"
#include "base/error.h"
#include "base/fault_injection.h"
#include "base/memory_tracker.h"
#include "base/thread_pool.h"
#include "eval/collection_scan.h"
#include "eval/evaluator.h"
#include "eval/flwor_internal.h"
#include "eval/path_step.h"
#include "functions/function_registry.h"
#include "shred/shredded_table.h"
#include "xdm/deep_equal.h"
#include "xdm/sequence_ops.h"

namespace xqa {

using namespace flwor_detail;
using namespace path_detail;

namespace {

/// The batched (vectorized) FLWOR engine, docs/VECTORIZATION.md. The tuple
/// stream is stored as columns of slot values instead of row tuples, clause
/// work proceeds in fixed-size morsels of kBatchRows rows, and the common
/// clause-expression shapes (a bound-variable reference, or a predicate-free
/// child/attribute path from one) run through dedicated kernels that bypass
/// the generic tree-walking evaluator. Rows are still visited in input
/// order, hashes are computed once per row with the shared seeds, and group
/// formation keeps first-occurrence order, so results, typed errors, and the
/// comparable QueryStats counters are identical to the scalar pipeline in
/// flwor.cc at every thread count — the property the batched-identity
/// ablation asserts.

/// Rows per processing morsel. Batches are dense: every batch a clause
/// processes is full except possibly the last one of the stream.
constexpr size_t kBatchRows = 1024;

/// The tuple stream in columnar form: one vector of per-row Sequences per
/// bound variable, all of length `rows`. The initial stream is the FLWOR's
/// single empty tuple — zero columns, one row — so `rows` is tracked
/// explicitly rather than derived from a column.
struct ColumnStream {
  std::vector<int> slots;                   ///< bound slot per column
  std::vector<std::vector<Sequence>> cols;  ///< cols[c][row]
  size_t rows = 0;

  int ColumnOf(int slot) const {
    for (size_t c = 0; c < slots.size(); ++c) {
      if (slots[c] == slot) return static_cast<int>(c);
    }
    return -1;
  }
};

/// Shallow byte estimate of the live stream. Deliberately the same formula
/// as the scalar engine's EstimateTupleBytes — per-row header plus Sequence
/// slots plus items — so a memory budget trips at the same stream size under
/// either engine and the budget ablation stays comparable.
int64_t EstimateStreamBytes(const ColumnStream& stream) {
  int64_t items = 0;
  for (const std::vector<Sequence>& col : stream.cols) {
    for (const Sequence& sequence : col) {
      items += static_cast<int64_t>(sequence.size());
    }
  }
  int64_t slots = static_cast<int64_t>(stream.rows) *
                  static_cast<int64_t>(stream.cols.size());
  return static_cast<int64_t>(stream.rows * sizeof(std::vector<Sequence>)) +
         slots * static_cast<int64_t>(sizeof(Sequence)) +
         items * static_cast<int64_t>(sizeof(Item));
}

/// A clause expression of the shape `$var/child::a/.../@b`: a non-global
/// variable reference start followed only by predicate-free child/attribute
/// axis steps with the standard node tests. Such keys dominate analytics
/// workloads (group keys, for domains, nest bodies), and evaluating them
/// needs neither slot loading nor the generic evaluator.
struct SimplePathPlan {
  const PathExpr* path = nullptr;
  struct Step {
    Axis axis;
    const NodeTest* test;
  };
  std::vector<Step> steps;
};

/// How a clause expression is evaluated per row.
struct ExprPlan {
  enum class Mode {
    kGeneric,     ///< swap the row into the slots, run Evaluate
    kColumn,      ///< a bound-variable reference: read the column directly
    kSimplePath,  ///< simple path from a bound variable: run the kernel
  };
  Mode mode = Mode::kGeneric;
  int slot = -1;  ///< kColumn / kSimplePath: the VarRef slot
  int col = -1;   ///< column index of `slot`, or -1 (read the live slot)
  SimplePathPlan path;
};

/// Classifies `expr` against the current bound-column set. kColumn and
/// kSimplePath avoid slot loading entirely when the start variable is a
/// stream column; a start variable bound outside this FLWOR (col == -1)
/// still skips the generic evaluator by reading the live slot.
ExprPlan PlanClauseExpr(const Expr* expr, const ColumnStream& stream) {
  ExprPlan plan;
  if (expr == nullptr) return plan;
  if (expr->kind() == ExprKind::kVarRef) {
    const auto* var = static_cast<const VarRefExpr*>(expr);
    if (var->is_global) return plan;
    plan.slot = var->slot;
    plan.col = stream.ColumnOf(var->slot);
    plan.mode = ExprPlan::Mode::kColumn;
    return plan;
  }
  if (expr->kind() != ExprKind::kPath) return plan;
  const auto* path = static_cast<const PathExpr*>(expr);
  if (path->absolute || path->start == nullptr ||
      path->start->kind() != ExprKind::kVarRef) {
    return plan;
  }
  const auto* var = static_cast<const VarRefExpr*>(path->start.get());
  if (var->is_global) return plan;
  for (const PathSegment& segment : path->segments) {
    if (segment.is_expr()) return plan;
    if (segment.step.axis != Axis::kChild &&
        segment.step.axis != Axis::kAttribute) {
      return plan;
    }
    if (!segment.step.predicates.empty()) return plan;
    // A pushed value filter needs the full EvalPath machinery; literal
    // pushes carry no predicates, so without this check the kernel would
    // silently skip the filter.
    if (segment.step.pushed_filter != nullptr) return plan;
    plan.path.steps.push_back(
        SimplePathPlan::Step{segment.step.axis, &segment.step.test});
  }
  plan.path.path = path;
  plan.slot = var->slot;
  plan.col = stream.ColumnOf(var->slot);
  plan.mode = ExprPlan::Mode::kSimplePath;
  return plan;
}

/// The simple-path kernel: applies the planned steps to one row's start
/// value. Mirrors EvalPath exactly for this shape — path_steps counts one
/// application per context item per step, an atomic context item raises the
/// same XPTY0004 at the path's location, and child/attribute results are in
/// document order by construction so no normalization sort runs (the same
/// InDocumentOrderByConstruction rule the generic evaluator applies).
Sequence EvalSimplePathRow(const SimplePathPlan& plan, const Sequence& start,
                           DynamicContext* context) {
  QueryStats* stats = context->stats;
  Sequence current;
  const Sequence* input = &start;
  for (const SimplePathPlan::Step& step : plan.steps) {
    if (stats != nullptr) {
      stats->path_steps += static_cast<int64_t>(input->size());
    }
    Sequence output;
    for (const Item& item : *input) {
      context->CheckCancel();
      if (!item.IsNode()) {
        ThrowError(ErrorCode::kXPTY0004,
                   "a path step was applied to an atomic value",
                   plan.path->location());
      }
      Node* node = item.node();
      const DocumentPtr& doc = item.document();
      NameId test_id = TestNameId(*step.test, *doc);
      if (step.axis == Axis::kChild) {
        EmitChildMatches(node, *step.test, test_id, doc, &output);
      } else {
        EmitAttributeMatches(node, *step.test, test_id, doc, &output);
      }
    }
    current = std::move(output);
    input = &current;
  }
  if (input == &start) return start;
  return current;
}

/// Per-key shredded-column binding (docs/SHREDDING.md): set when the key is
/// a single-step child/attribute path from a slot whose binding domain came
/// from a shredded scan and the step names a schema field of that table. For
/// such a key the step's matches are exactly the table's column entry — the
/// field node, or nothing when the row's field is null — so the kernel reads
/// the precomputed dictionary code and its deep hash instead of walking
/// children and hashing per row.
struct ShredKeyPlan {
  const ShreddedTable* table = nullptr;
  int column = -1;
};

/// Batched evaluation of one group-by clause's key expressions over a
/// morsel. The dominant key shapes never materialize per-row Sequences:
///
/// - a single predicate-free child/attribute step from a stream column is
///   walked at the node level into one flat reusable span buffer — no Item
///   construction, no refcount traffic, no allocation per row;
/// - a bound-variable key hashes and compares the column value in place;
/// - everything else (and the XQuery 3.0 atomize-and-check rule) falls back
///   to a caller-supplied per-row evaluator into reusable scratch.
///
/// Hashes fold DeepHashNode over the spans from kDeepHashSeqSeed, so every
/// key hashes bit-identically to DeepHashSequence of its materialized value
/// — bucket layout, probe order, and therefore first-seen group order are
/// unchanged from the row-at-a-time form. Keys are materialized into owned
/// Sequences only when a row founds a new group. Rows are evaluated in row
/// order, keys in key order within a row, so the first typed error (path
/// step over an atomic, XQuery 3.0 non-singleton key) is the same tuple's in
/// both engines.
class GroupKeyBatch {
 public:
  /// Evaluates key `k` of row `row` the generic way (swap-loaded Evaluate,
  /// plus any dialect rule such as atomize-and-check).
  using GenericKeyFn =
      std::function<Sequence(size_t row, size_t k, DynamicContext* ctx)>;

  GroupKeyBatch(const ColumnStream& stream,
                const std::vector<ExprPlan>& plans, bool generic_only,
                const GenericKeyFn& generic,
                const std::vector<ShredKeyPlan>& shred = {})
      : stream_(stream), plans_(plans), generic_(generic), shred_(shred) {
    kinds_.reserve(plans.size());
    for (size_t k = 0; k < plans.size(); ++k) {
      const ExprPlan& plan = plans[k];
      if (!generic_only && plan.mode == ExprPlan::Mode::kColumn &&
          plan.col >= 0) {
        kinds_.push_back(Kind::kColumn);
      } else if (!generic_only &&
                 plan.mode == ExprPlan::Mode::kSimplePath && plan.col >= 0 &&
                 plan.path.steps.size() == 1) {
        // A shredded binding upgrades the span walk to a column read; rows
        // whose slot value turns out not to be a table record (never the
        // case for a shredded domain, but defended anyway) degrade to the
        // span walk per row, which hashes and compares identically.
        if (k < shred_.size() && shred_[k].table != nullptr) {
          kinds_.push_back(Kind::kShredField);
          any_shred_ = true;
        } else {
          kinds_.push_back(Kind::kNodeSpan);
        }
        any_span_ = true;
      } else {
        kinds_.push_back(Kind::kGeneric);
        any_generic_ = true;
      }
    }
    name_cache_.resize(plans.size());
  }

  size_t nkeys() const { return plans_.size(); }

  /// Evaluates all keys of rows [begin, begin + fill), row-major.
  void EvalMorsel(size_t begin, size_t fill, DynamicContext* ctx) {
    begin_ = begin;
    const size_t nk = plans_.size();
    QueryStats* stats = ctx->stats;
    if (any_span_) {
      nodes_.clear();
      spans_.assign(fill * nk, {0, 0});
    }
    if (any_shred_) {
      shred_rows_.assign(fill * nk, -1);
    }
    if (any_generic_) {
      scratch_.assign(fill * nk, {});
    }
    for (size_t i = 0; i < fill; ++i) {
      ctx->CheckCancel();
      for (size_t k = 0; k < nk; ++k) {
        switch (kinds_[k]) {
          case Kind::kColumn:
            break;
          case Kind::kNodeSpan:
            WalkSpan(i, k, ctx, stats);
            break;
          case Kind::kShredField: {
            // Column read: the row's record resolves to a table row, whose
            // dictionary code carries the key's value and hash. No child
            // scan, no name match, no per-row hashing.
            const Sequence& start = ColumnValue(i, k);
            int table_row = -1;
            if (start.size() == 1 && start[0].IsNode()) {
              table_row = shred_[k].table->RowOf(start[0].node());
            }
            shred_rows_[i * nk + k] = table_row;
            if (table_row < 0) WalkSpan(i, k, ctx, stats);
            break;
          }
          case Kind::kGeneric:
            scratch_[i * nk + k] = generic_(begin + i, k, ctx);
            break;
        }
      }
    }
  }

  /// Whole-row hash: seed folded with each key's DeepHashSequence value.
  size_t HashRow(size_t i, size_t hash_seed) {
    size_t hash = hash_seed;
    const size_t nk = plans_.size();
    for (size_t k = 0; k < nk; ++k) {
      size_t key_hash = kDeepHashSeqSeed;
      switch (kinds_[k]) {
        case Kind::kColumn:
          key_hash = DeepHashSequence(ColumnValue(i, k));
          break;
        case Kind::kNodeSpan:
          key_hash = SpanKeyHash(i, k);
          break;
        case Kind::kShredField: {
          const int table_row = shred_rows_[i * nk + k];
          if (table_row < 0) {
            key_hash = SpanKeyHash(i, k);
            break;
          }
          // code_hashes holds CombineDeepHash(kDeepHashSeqSeed,
          // DeepHashNode(field)) — exactly the singleton-span fold above —
          // and a null field is the empty key sequence, whose hash is the
          // chain seed. Bucket layout is therefore identical to the DOM
          // kernels', which is what keeps parallel chunk merges and the
          // scalar-identity ablation consistent.
          const ShreddedTable::Column& column =
              shred_[k].table->column(static_cast<size_t>(shred_[k].column));
          const uint32_t code = column.codes[static_cast<size_t>(table_row)];
          key_hash = code == ShreddedTable::kNullCode
                         ? ShreddedTable::kNullKeyHash
                         : column.code_hashes[code];
          break;
        }
        case Kind::kGeneric:
          key_hash = DeepHashSequence(scratch_[i * nk + k]);
          break;
      }
      hash = CombineHash(hash, key_hash);
    }
    return hash;
  }

  /// Deep-equality of row `i`'s key `k` against a stored group key.
  bool EqualKey(size_t i, size_t k, const Sequence& stored) const {
    switch (kinds_[k]) {
      case Kind::kColumn:
        return DeepEqualSequences(stored, ColumnValue(i, k));
      case Kind::kNodeSpan:
        return SpanEqualKey(i, k, stored);
      case Kind::kShredField: {
        const int table_row = shred_rows_[i * plans_.size() + k];
        if (table_row < 0) return SpanEqualKey(i, k, stored);
        const ShreddedTable::Column& column =
            shred_[k].table->column(static_cast<size_t>(shred_[k].column));
        const uint32_t code = column.codes[static_cast<size_t>(table_row)];
        if (code == ShreddedTable::kNullCode) return stored.empty();
        if (stored.size() != 1 || !stored[0].IsNode()) return false;
        return EqualShredNode(stored[0].node(), column, code,
                              static_cast<size_t>(table_row));
      }
      case Kind::kGeneric:
        break;
    }
    return DeepEqualSequences(stored, scratch_[i * plans_.size() + k]);
  }

  /// Materializes row `i`'s keys as owned Sequences (a new group's
  /// representative). Called at most once per row.
  std::vector<Sequence> TakeRow(size_t i) {
    const size_t nk = plans_.size();
    std::vector<Sequence> keys;
    keys.reserve(nk);
    for (size_t k = 0; k < nk; ++k) {
      switch (kinds_[k]) {
        case Kind::kColumn:
          keys.push_back(ColumnValue(i, k));
          break;
        case Kind::kNodeSpan:
          keys.push_back(SpanTakeKey(i, k));
          break;
        case Kind::kShredField: {
          const int table_row = shred_rows_[i * nk + k];
          if (table_row < 0) {
            keys.push_back(SpanTakeKey(i, k));
            break;
          }
          // The representative key is the field *node* (pinned by the
          // table), not a typed value — serialization of the group key must
          // stay byte-identical to the DOM path's.
          const ShreddedTable::Column& column =
              shred_[k].table->column(static_cast<size_t>(shred_[k].column));
          const size_t row = static_cast<size_t>(table_row);
          Sequence value;
          if (column.codes[row] != ShreddedTable::kNullCode) {
            value.push_back(Item(const_cast<Node*>(column.nodes[row]),
                                 shred_[k].table->record_document(row)));
          }
          keys.push_back(std::move(value));
          break;
        }
        case Kind::kGeneric:
          keys.push_back(std::move(scratch_[i * nk + k]));
          break;
      }
    }
    return keys;
  }

 private:
  enum class Kind : uint8_t { kColumn, kNodeSpan, kShredField, kGeneric };
  /// A matched node plus its owner's DocumentPtr (borrowed from the stream
  /// column item, which outlives the morsel).
  struct NodeRef {
    Node* node;
    const DocumentPtr* doc;
  };
  using Span = std::pair<uint32_t, uint32_t>;

  const Sequence& ColumnValue(size_t i, size_t k) const {
    return stream_.cols[static_cast<size_t>(plans_[k].col)][begin_ + i];
  }

  /// The kNodeSpan hash arm, shared with kShredField's per-row degradation:
  /// DeepHashNode folded over the span from the chain seed.
  size_t SpanKeyHash(size_t i, size_t k) {
    const Span span = spans_[i * plans_.size() + k];
    size_t key_hash = kDeepHashSeqSeed;
    for (uint32_t j = span.first; j < span.second; ++j) {
      key_hash = CombineHash(key_hash, HashSpanNode(nodes_[j], k));
    }
    return key_hash;
  }

  /// The kNodeSpan equality arm (shared with kShredField's degradation).
  bool SpanEqualKey(size_t i, size_t k, const Sequence& stored) const {
    const Span span = spans_[i * plans_.size() + k];
    const size_t n = span.second - span.first;
    if (stored.size() != n) return false;
    for (size_t j = 0; j < n; ++j) {
      if (!stored[j].IsNode() ||
          !EqualSpanNodes(stored[j], nodes_[span.first + j])) {
        return false;
      }
    }
    return true;
  }

  /// The kNodeSpan materialization arm (shared with kShredField's
  /// degradation).
  Sequence SpanTakeKey(size_t i, size_t k) {
    const Span span = spans_[i * plans_.size() + k];
    Sequence value;
    value.reserve(span.second - span.first);
    for (uint32_t j = span.first; j < span.second; ++j) {
      value.push_back(Item(nodes_[j].node, *nodes_[j].doc));
    }
    return value;
  }

  /// Deep-equality of a stored key node against table row `row`'s field in
  /// `column`, decided on the dictionary lexical when the stored node has the
  /// conforming scalar shape — no recursion, no per-probe string-value
  /// materialization. A stored node of any other shape (possible only via
  /// the defensive span degradation) falls back to the full comparison.
  static bool EqualShredNode(const Node* stored,
                             const ShreddedTable::Column& column,
                             uint32_t code, size_t row) {
    const Node* field = column.nodes[row];
    if (stored == field) return true;
    const std::string& lexical = column.dict[code];
    if (column.field.is_attribute) {
      if (stored->kind() == NodeKind::kAttribute) {
        return stored->name() == column.field.name &&
               stored->content() == lexical;
      }
    } else if (stored->kind() == NodeKind::kElement &&
               stored->attributes().empty()) {
      const auto& children = stored->children();
      if (children.size() == 1 && children[0]->kind() == NodeKind::kText) {
        return stored->name() == column.field.name &&
               children[0]->content() == lexical;
      }
      if (children.empty()) {
        return stored->name() == column.field.name && lexical.empty();
      }
    }
    return DeepEqualNodes(stored, field);
  }

  /// DeepHashNode with the name prefix cached across a span column: group-by
  /// keys are typically runs of like-named `<key>text</key>` elements, for
  /// which only the text content varies row to row. Bit-identical to
  /// DeepHashNode (the prefix identity is documented on
  /// DeepHashElementPrefix), so bucket layout matches the scalar engine.
  size_t HashSpanNode(const NodeRef& ref, size_t k) {
    const Node* node = ref.node;
    const auto& children = node->children();
    if (node->kind() == NodeKind::kElement && node->attributes().empty() &&
        children.size() == 1 && children[0]->kind() == NodeKind::kText) {
      NameCache& cache = name_cache_[k];
      if (cache.hash_doc != ref.doc->get() ||
          cache.hash_id != node->name_id()) {
        cache.hash_doc = ref.doc->get();
        cache.hash_id = node->name_id();
        cache.hash_prefix = DeepHashElementPrefix(node);
      }
      return CombineDeepHash(cache.hash_prefix, DeepHashNode(children[0]));
    }
    return DeepHashNode(node);
  }

  /// DeepEqualNodes with a short-circuit for the same hot shape: same
  /// document (so interned name ids are comparable), attribute-free, single
  /// text child — decided on (name id, text content) without recursing.
  static bool EqualSpanNodes(const Item& stored, const NodeRef& ref) {
    const Node* a = stored.node();
    const Node* b = ref.node;
    if (a == b) return true;
    if (a->kind() == NodeKind::kElement && b->kind() == NodeKind::kElement &&
        stored.document().get() == ref.doc->get()) {
      if (a->name_id() != b->name_id()) return false;
      const auto& ca = a->children();
      const auto& cb = b->children();
      if (a->attributes().empty() && b->attributes().empty() &&
          ca.size() == 1 && cb.size() == 1 &&
          ca[0]->kind() == NodeKind::kText &&
          cb[0]->kind() == NodeKind::kText) {
        return ca[0]->content() == cb[0]->content();
      }
    }
    return DeepEqualNodes(a, b);
  }

  /// The single-step node-span walker: EvalSimplePathRow's semantics (step
  /// accounting, XPTY0004 wording, document-order emission) without Items.
  void WalkSpan(size_t i, size_t k, DynamicContext* ctx, QueryStats* stats) {
    const ExprPlan& plan = plans_[k];
    const SimplePathPlan::Step& step = plan.path.steps[0];
    const Sequence& start = ColumnValue(i, k);
    if (stats != nullptr) {
      stats->path_steps += static_cast<int64_t>(start.size());
    }
    const uint32_t span_begin = static_cast<uint32_t>(nodes_.size());
    for (const Item& item : start) {
      ctx->CheckCancel();
      if (!item.IsNode()) {
        ThrowError(ErrorCode::kXPTY0004,
                   "a path step was applied to an atomic value",
                   plan.path.path->location());
      }
      Node* node = item.node();
      const DocumentPtr& doc = item.document();
      NameCache& cache = name_cache_[k];
      if (cache.doc != doc.get()) {
        cache.doc = doc.get();
        cache.id = TestNameId(*step.test, *doc);
        cache.bucket = nullptr;
        cache.indexed_empty = false;
        cache.cursor = 0;
        cache.last_target = 0;
        // A named element test over an indexed document answers the child
        // step from the per-name bucket (same rule as path.cc's
        // TryIndexedDescendants), so the walk below touches only matching
        // nodes instead of streaming every child of every row.
        if (ctx->exec.use_structural_index &&
            (step.test->kind == NodeTest::Kind::kName ||
             step.test->kind == NodeTest::Kind::kElement) &&
            cache.id != kNameIdAny && doc->has_element_index()) {
          if (cache.id == kNameIdAbsent) {
            cache.indexed_empty = true;  // name occurs nowhere: empty scan
          } else {
            cache.bucket = doc->ElementsWithName(cache.id);
          }
        }
      }
      if (step.axis == Axis::kChild) {
        if (cache.indexed_empty) {
          if (stats != nullptr) ++stats->index_scans;
        } else if (cache.bucket != nullptr) {
          // Matches inside the subtree span, already in document order; the
          // parent filter narrows the descendant range to direct children.
          // The lower bound for [order_index + 1, subtree_end) resumes from
          // the previous row's cursor (rows are in document order, so the
          // bound is monotone in the row), degrading to a binary search only
          // when row order regresses.
          const std::vector<Node*>& bucket = *cache.bucket;
          const uint32_t target = node->order_index() + 1;
          size_t lo = cache.cursor;
          if (target < cache.last_target) {
            auto by_order = [](const Node* n, uint32_t index) {
              return n->order_index() < index;
            };
            lo = static_cast<size_t>(
                std::lower_bound(bucket.begin(), bucket.end(), target,
                                 by_order) -
                bucket.begin());
          } else {
            while (lo < bucket.size() &&
                   bucket[lo]->order_index() < target) {
              ++lo;
            }
          }
          cache.cursor = lo;
          cache.last_target = target;
          size_t hi = lo;
          const uint32_t end = node->subtree_end();
          while (hi < bucket.size() && bucket[hi]->order_index() < end) {
            if (bucket[hi]->parent() == node) {
              nodes_.push_back(NodeRef{bucket[hi], &doc});
            }
            ++hi;
          }
          if (stats != nullptr) {
            ++stats->index_scans;
            stats->index_scan_nodes += static_cast<int64_t>(hi - lo);
          }
        } else {
          for (Node* child : node->children()) {
            if (MatchesTest(child, *step.test, Axis::kChild, cache.id)) {
              nodes_.push_back(NodeRef{child, &doc});
            }
          }
        }
      } else if (node->kind() == NodeKind::kElement) {
        for (Node* attr : node->attributes()) {
          if (MatchesTest(attr, *step.test, Axis::kAttribute, cache.id)) {
            nodes_.push_back(NodeRef{attr, &doc});
          }
        }
      }
    }
    spans_[i * plans_.size() + k] =
        Span{span_begin, static_cast<uint32_t>(nodes_.size())};
  }

  struct NameCache {
    const Document* doc = nullptr;
    NameId id = kNameIdAny;
    const std::vector<Node*>* bucket = nullptr;  ///< per-name element index
    bool indexed_empty = false;  ///< indexed doc, name never interned
    // Monotonic bucket cursor: FLWOR rows arrive in document order, so the
    // per-row lower bound only ever moves right; the cursor resumes the scan
    // where the previous row's began, falling back to a fresh binary search
    // if row order regresses (e.g. after an order by).
    size_t cursor = 0;
    uint32_t last_target = 0;
    // Cached DeepHashElementPrefix for the current (document, name) of the
    // hashed span nodes — constant across a column of like-named elements.
    const Document* hash_doc = nullptr;
    NameId hash_id = kNameIdAbsent;
    size_t hash_prefix = 0;
  };

  const ColumnStream& stream_;
  const std::vector<ExprPlan>& plans_;
  const GenericKeyFn& generic_;
  std::vector<ShredKeyPlan> shred_;  ///< per-key shredded bindings (may be {})
  std::vector<Kind> kinds_;
  bool any_span_ = false;
  bool any_shred_ = false;
  bool any_generic_ = false;
  std::vector<NameCache> name_cache_;
  size_t begin_ = 0;
  std::vector<NodeRef> nodes_;    ///< flat span storage, reused per morsel
  std::vector<Span> spans_;       ///< spans_[i * nkeys + k] into nodes_
  std::vector<int> shred_rows_;   ///< shred_rows_[i * nkeys + k], -1 = walk
  std::vector<Sequence> scratch_;  ///< generic key values, reused per morsel
};

}  // namespace

Sequence Evaluator::EvalFlworBatched(const FlworExpr* expr,
                                     DynamicContext* context) {
  ColumnStream stream;
  stream.rows = 1;  // the initial single empty tuple

  MemoryTracker* memory = context->exec.memory;
  ScopedMemoryCharge stream_charge(memory);
  QueryStats* stats = context->stats;

  // Slots whose binding domain came from a shredded scan, mapped to the
  // backing column table (docs/SHREDDING.md). Where/order-by/count preserve
  // the invariant that such a column holds singleton record items; group-by
  // consumes the bindings for its key kernels and then clears them — its
  // output columns hold group keys and concatenations, not records.
  std::unordered_map<int, const ShreddedTable*> shred_tables;

  // Swaps row `row`'s column values into (or back out of) `ctx`'s slots.
  // Safe because the binder allocates slots monotonically and never reuses
  // one within a frame: no clause expression can write a slot this FLWOR has
  // bound, so the swapped-in Sequences come back untouched. Symmetric — call
  // once to load, once to restore — and it never copies a sequence, which is
  // what the scalar engine pays per tuple per bound variable.
  auto swap_row = [&](DynamicContext* ctx, size_t row) {
    for (size_t c = 0; c < stream.slots.size(); ++c) {
      std::swap(ctx->Slot(stream.slots[c]), stream.cols[c][row]);
    }
  };

  // Evaluates a planned clause expression for one row on `ctx`.
  auto eval_row = [&](const ExprPlan& plan, const Expr* e, size_t row,
                      DynamicContext* ctx) -> Sequence {
    switch (plan.mode) {
      case ExprPlan::Mode::kColumn:
        return plan.col >= 0 ? stream.cols[static_cast<size_t>(plan.col)][row]
                             : ctx->Slot(plan.slot);
      case ExprPlan::Mode::kSimplePath:
        return EvalSimplePathRow(
            plan.path,
            plan.col >= 0 ? stream.cols[static_cast<size_t>(plan.col)][row]
                          : ctx->Slot(plan.slot),
            ctx);
      case ExprPlan::Mode::kGeneric:
        break;
    }
    swap_row(ctx, row);
    Sequence result;
    try {
      result = Evaluate(e, ctx);
    } catch (...) {
      swap_row(ctx, row);
      throw;
    }
    swap_row(ctx, row);
    return result;
  };

  // Builds a SortKey from an already-evaluated order-by key value; identical
  // rules (and error wording) to the scalar engine's eval_sort_key.
  auto make_sort_key = [&](Sequence value) {
    SortKey key;
    if (value.size() > 1) {
      ThrowError(ErrorCode::kXPTY0004,
                 "order by key must be an empty or singleton sequence",
                 expr->location());
    }
    if (!value.empty()) {
      key.empty = false;
      AtomicValue v = value[0].atomic();
      if (v.type() == AtomicType::kUntypedAtomic) {
        v = v.CastTo(AtomicType::kString);
      }
      key.nan = IsNaN(v);
      key.cls = ClassifyOrderKey(v);
      key.value = std::move(v);
    }
    return key;
  };

  // True when the `using` equality function accepts (a, b).
  auto equal_under = [&](const FlworClause::GroupKey& group_key,
                         const Sequence& a, const Sequence& b) {
    if (group_key.using_function.empty()) {
      return DeepEqualSequences(a, b);
    }
    std::vector<Sequence> args = {a, b};
    Sequence result;
    if (group_key.using_user_fn_index >= 0) {
      result = CallUserFunction(group_key.using_user_fn_index, std::move(args),
                                context);
    } else {
      EvalContext eval_context{*context, *this};
      result = BuiltinFunctions()[group_key.using_builtin_id].fn(eval_context,
                                                                 args);
    }
    return EffectiveBooleanValue(result);
  };

  // Per-clause batch accounting: every started morsel counts as one batch.
  // Batches are dense, so the fill average only dips below kBatchRows on the
  // final partial batch of each clause.
  auto note_batches = [&](size_t rows) {
    if (stats == nullptr) return;
    stats->batches_emitted +=
        static_cast<int64_t>((rows + kBatchRows - 1) / kBatchRows);
    stats->batch_rows_emitted += static_cast<int64_t>(rows);
  };

  // --- Parallel-section machinery (same shape as the scalar engine) --------
  struct Lanes {
    std::vector<std::unique_ptr<DynamicContext>> ctx;
    std::vector<QueryStats> stats;
  };
  auto make_lanes = [&](int workers) {
    Lanes lanes;
    lanes.ctx.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) lanes.ctx.push_back(context->Fork());
    if (stats != nullptr) {
      lanes.stats.resize(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        lanes.ctx[static_cast<size_t>(w)]->stats =
            &lanes.stats[static_cast<size_t>(w)];
      }
    }
    return lanes;
  };
  auto merge_lanes = [&](Lanes& lanes) {
    if (stats == nullptr) return;
    for (QueryStats& worker_stats : lanes.stats) {
      stats->MergeFrom(worker_stats);
    }
  };

  for (size_t clause_index = 0; clause_index < expr->clauses.size();
       ++clause_index) {
    const FlworClause& clause = expr->clauses[clause_index];
    context->CheckCancel();
    ClauseStats* cs = nullptr;
    if (stats != nullptr) {
      cs = &stats->Clause(expr, static_cast<int>(clause_index),
                          ClauseLabel(clause));
      ++cs->executions;
      cs->tuples_in += static_cast<int64_t>(stream.rows);
    }
    StatsTimer timer(cs != nullptr ? &cs->wall_seconds : nullptr);

    // Deterministic parallel group formation: contiguous chunks → per-worker
    // partial hash tables (keys and hashes computed batch-at-a-time) →
    // serial merge in ascending chunk order. Identical group order and
    // per-row hash counts to the scalar engine's form_groups_parallel.
    auto form_groups_parallel =
        [&](int workers, size_t hash_seed,
            const std::vector<ExprPlan>& key_plans, bool generic_only,
            const GroupKeyBatch::GenericKeyFn& generic_key,
            const std::vector<ShredKeyPlan>& shred_plans)
        -> std::vector<HashGroup> {
      const size_t count = stream.rows;
      const size_t lanes_count = static_cast<size_t>(workers);
      Lanes lanes = make_lanes(workers);
      std::vector<GroupPartition> partitions(lanes_count);
      std::string label = ClauseLabel(clause);
      ThreadPool::Shared().ParallelFor(
          lanes_count, workers, [&](int w, size_t chunk) {
            DynamicContext* ctx = lanes.ctx[static_cast<size_t>(w)].get();
            QueryStats* ws = ctx->stats;
            ClauseStats* wcs =
                ws != nullptr
                    ? &ws->Clause(expr, static_cast<int>(clause_index), label)
                    : nullptr;
            GroupPartition& part = partitions[chunk];
            size_t begin = chunk * count / lanes_count;
            size_t end = (chunk + 1) * count / lanes_count;
            GroupKeyBatch key_batch(stream, key_plans, generic_only,
                                    generic_key, shred_plans);
            const size_t nk = key_batch.nkeys();
            std::vector<size_t> batch_hash;
            for (size_t batch = begin; batch < end; batch += kBatchRows) {
              size_t batch_end = std::min(end, batch + kBatchRows);
              size_t fill = batch_end - batch;
              // Phase A: keys and hashes for the whole morsel.
              key_batch.EvalMorsel(batch, fill, ctx);
              batch_hash.assign(fill, 0);
              for (size_t i = 0; i < fill; ++i) {
                batch_hash[i] = key_batch.HashRow(i, hash_seed);
                if (ws != nullptr) {
                  ws->deep_hash_calls += static_cast<int64_t>(nk);
                }
              }
              // Phase B: probe the partial table for the whole morsel.
              for (size_t i = 0; i < fill; ++i) {
                std::vector<size_t>& bucket = part.buckets[batch_hash[i]];
                size_t group_index = SIZE_MAX;
                for (size_t candidate : bucket) {
                  bool all_equal = true;
                  for (size_t k = 0; k < nk; ++k) {
                    if (wcs != nullptr) {
                      ++wcs->deep_equal_calls;
                      ++ws->deep_equal_calls;
                    }
                    if (!key_batch.EqualKey(
                            i, k, part.groups[candidate].keys[k])) {
                      all_equal = false;
                      break;
                    }
                  }
                  if (wcs != nullptr) {
                    ++wcs->hash_probes;
                    if (!all_equal) ++wcs->hash_collisions;
                  }
                  if (all_equal) {
                    group_index = candidate;
                    break;
                  }
                }
                if (group_index == SIZE_MAX) {
                  group_index = part.groups.size();
                  bucket.push_back(group_index);
                  part.groups.push_back(
                      PartialGroup{key_batch.TakeRow(i), batch_hash[i], {}});
                }
                part.groups[group_index].members.push_back(batch + i);
              }
            }
          });
      merge_lanes(lanes);

      std::vector<HashGroup> groups;
      std::unordered_map<size_t, std::vector<size_t>> buckets;
      for (GroupPartition& part : partitions) {
        for (PartialGroup& partial : part.groups) {
          std::vector<size_t>& bucket = buckets[partial.hash];
          size_t group_index = SIZE_MAX;
          for (size_t candidate : bucket) {
            bool all_equal = true;
            for (size_t k = 0; k < partial.keys.size(); ++k) {
              if (cs != nullptr) {
                ++cs->deep_equal_calls;
                ++stats->deep_equal_calls;
              }
              if (!DeepEqualSequences(groups[candidate].keys[k],
                                      partial.keys[k])) {
                all_equal = false;
                break;
              }
            }
            if (cs != nullptr) {
              ++cs->hash_probes;
              if (!all_equal) ++cs->hash_collisions;
            }
            if (all_equal) {
              group_index = candidate;
              break;
            }
          }
          if (group_index == SIZE_MAX) {
            bucket.push_back(groups.size());
            groups.push_back(
                HashGroup{std::move(partial.keys), std::move(partial.members)});
          } else {
            std::vector<size_t>& members = groups[group_index].members;
            members.insert(members.end(), partial.members.begin(),
                           partial.members.end());
          }
        }
      }
      return groups;
    };

    // Serial batched group formation: morsel-at-a-time key evaluation and
    // hashing (phase A), then a probe pass over the morsel (phase B), with
    // one memory recharge per morsel instead of a row-count stride.
    auto form_groups_serial =
        [&](size_t hash_seed, ScopedMemoryCharge* group_charge,
            const std::vector<ExprPlan>& key_plans, bool generic_only,
            const GroupKeyBatch::GenericKeyFn& generic_key,
            const std::vector<ShredKeyPlan>& shred_plans)
        -> std::vector<HashGroup> {
      std::vector<HashGroup> groups;
      std::unordered_map<size_t, std::vector<size_t>> buckets;
      GroupKeyBatch key_batch(stream, key_plans, generic_only, generic_key,
                              shred_plans);
      const size_t nk = key_batch.nkeys();
      std::vector<size_t> batch_hash;
      for (size_t batch = 0; batch < stream.rows; batch += kBatchRows) {
        size_t batch_end = std::min(stream.rows, batch + kBatchRows);
        size_t fill = batch_end - batch;
        key_batch.EvalMorsel(batch, fill, context);
        batch_hash.assign(fill, 0);
        for (size_t i = 0; i < fill; ++i) {
          batch_hash[i] = key_batch.HashRow(i, hash_seed);
          if (cs != nullptr) {
            stats->deep_hash_calls += static_cast<int64_t>(nk);
          }
        }
        for (size_t i = 0; i < fill; ++i) {
          std::vector<size_t>& bucket = buckets[batch_hash[i]];
          size_t group_index = SIZE_MAX;
          for (size_t candidate : bucket) {
            bool all_equal = true;
            for (size_t k = 0; k < nk; ++k) {
              if (cs != nullptr) {
                ++cs->deep_equal_calls;
                ++stats->deep_equal_calls;
              }
              if (!key_batch.EqualKey(i, k, groups[candidate].keys[k])) {
                all_equal = false;
                break;
              }
            }
            if (cs != nullptr) {
              ++cs->hash_probes;
              if (!all_equal) ++cs->hash_collisions;
            }
            if (all_equal) {
              group_index = candidate;
              break;
            }
          }
          if (group_index == SIZE_MAX) {
            group_index = groups.size();
            bucket.push_back(group_index);
            groups.push_back(HashGroup{key_batch.TakeRow(i), {}});
          }
          groups[group_index].members.push_back(batch + i);
        }
        if (memory != nullptr) {
          group_charge->Reset(EstimateGroupBytes(groups));
        }
      }
      return groups;
    };

    switch (clause.kind) {
      case ClauseKind::kFor: {
        // Phase 1: each input row's binding domain.
        std::vector<Sequence> domains(stream.rows);
        // Partitioned collection() scan for a single-row stream — the same
        // condition, resolution, and scan the scalar engine uses (see
        // flwor.cc), so both engines take or skip the scan identically.
        const CollectionView* collection_scan =
            stream.rows == 1
                ? ResolveCollectionScan(clause.for_expr.get(), context)
                : nullptr;
        // Shredded scan substitution: an optimizer-marked
        // `collection(...)//rec` domain reads the column table instead of
        // navigating DOM — when the provider has (or can infer and build) a
        // conforming table and any pushed filter names a schema field. Every
        // other outcome falls back to the DOM path below, byte-identically,
        // and is counted as a shred fallback.
        const ShreddedTable* shred_table = nullptr;
        const PathStep* shred_record_step = nullptr;
        if (clause.shred_candidate && stream.rows == 1 &&
            context->exec.use_shredded_scan &&
            context->collections != nullptr &&
            clause.for_expr->kind() == ExprKind::kPath) {
          const auto* path =
              static_cast<const PathExpr*>(clause.for_expr.get());
          if (path->segments.size() == 2 && !path->segments[1].is_expr()) {
            ShredBuildContext build_context{context->exec.cancellation,
                                            context->exec.memory};
            const ShreddedTable* table = context->collections->FindShreddedTable(
                clause.shred_collection, clause.shred_record, build_context);
            if (table != nullptr &&
                ShredCoversStep(*table, path->segments[1].step)) {
              shred_table = table;
              shred_record_step = &path->segments[1].step;
            } else if (stats != nullptr) {
              ++stats->shred_fallbacks;
            }
          }
        }
        const ExprPlan plan = PlanClauseExpr(clause.for_expr.get(), stream);
        const int domain_workers = PlanWorkers(context->exec, stream.rows);
        if (shred_table != nullptr) {
          domains[0] =
              ShreddedScanRows(*shred_table, shred_record_step, context);
          shred_tables[clause.for_slot] = shred_table;
        } else if (collection_scan != nullptr) {
          domains[0] = PartitionedCollectionScan(*collection_scan, context);
        } else if (domain_workers > 1) {
          Lanes lanes = make_lanes(domain_workers);
          ThreadPool::Shared().ParallelFor(
              stream.rows, domain_workers, [&](int w, size_t row) {
                DynamicContext* ctx = lanes.ctx[static_cast<size_t>(w)].get();
                ctx->CheckCancel();
                domains[row] =
                    eval_row(plan, clause.for_expr.get(), row, ctx);
              });
          merge_lanes(lanes);
        } else {
          for (size_t row = 0; row < stream.rows; ++row) {
            context->CheckCancel();
            domains[row] = eval_row(plan, clause.for_expr.get(), row, context);
          }
        }

        // Phase 2: columnar materialization at precomputed offsets. Existing
        // columns replicate their row value across the row's fan-out; the new
        // column holds the domain items as singletons. Every output vector is
        // sized up front — no per-row reallocation.
        std::vector<size_t> offsets(stream.rows + 1, 0);
        for (size_t row = 0; row < stream.rows; ++row) {
          offsets[row + 1] = offsets[row] + domains[row].size();
        }
        const size_t total = offsets.back();
        for (std::vector<Sequence>& col : stream.cols) {
          context->CheckCancel();
          std::vector<Sequence> next(total);
          for (size_t row = 0; row < stream.rows; ++row) {
            size_t fan = domains[row].size();
            if (fan == 0) continue;
            // The last copy of a row's value can be a move.
            for (size_t i = 0; i + 1 < fan; ++i) {
              next[offsets[row] + i] = col[row];
            }
            next[offsets[row] + fan - 1] = std::move(col[row]);
          }
          col = std::move(next);
        }
        std::vector<Sequence> var_col(total);
        for (size_t row = 0; row < stream.rows; ++row) {
          for (size_t i = 0; i < domains[row].size(); ++i) {
            Sequence single;
            single.reserve(1);
            single.push_back(std::move(domains[row][i]));
            var_col[offsets[row] + i] = std::move(single);
          }
        }
        stream.cols.push_back(std::move(var_col));
        stream.slots.push_back(clause.for_slot);
        if (clause.pos_slot >= 0) {
          std::vector<Sequence> pos_col(total);
          for (size_t row = 0; row < stream.rows; ++row) {
            for (size_t i = 0; i < domains[row].size(); ++i) {
              pos_col[offsets[row] + i] =
                  Sequence{MakeInteger(static_cast<int64_t>(i + 1))};
            }
          }
          stream.cols.push_back(std::move(pos_col));
          stream.slots.push_back(clause.pos_slot);
        }
        stream.rows = total;
        break;
      }

      case ClauseKind::kLet: {
        const ExprPlan plan = PlanClauseExpr(clause.let_expr.get(), stream);
        std::vector<Sequence> col(stream.rows);
        for (size_t row = 0; row < stream.rows; ++row) {
          context->CheckCancel();
          col[row] = eval_row(plan, clause.let_expr.get(), row, context);
        }
        stream.cols.push_back(std::move(col));
        stream.slots.push_back(clause.let_slot);
        break;
      }

      case ClauseKind::kWhere: {
        const ExprPlan plan = PlanClauseExpr(clause.where_expr.get(), stream);
        std::vector<uint8_t> keep(stream.rows, 0);
        const int workers = PlanWorkers(context->exec, stream.rows);
        if (workers > 1) {
          Lanes lanes = make_lanes(workers);
          ThreadPool::Shared().ParallelFor(
              stream.rows, workers, [&](int w, size_t row) {
                DynamicContext* ctx = lanes.ctx[static_cast<size_t>(w)].get();
                ctx->CheckCancel();
                keep[row] = EffectiveBooleanValue(eval_row(
                                plan, clause.where_expr.get(), row, ctx))
                                ? 1
                                : 0;
              });
          merge_lanes(lanes);
        } else {
          for (size_t row = 0; row < stream.rows; ++row) {
            context->CheckCancel();
            keep[row] = EffectiveBooleanValue(eval_row(
                            plan, clause.where_expr.get(), row, context))
                            ? 1
                            : 0;
          }
        }
        // Serial order-preserving compaction of the selection vector.
        std::vector<size_t> selection;
        selection.reserve(stream.rows);
        for (size_t row = 0; row < stream.rows; ++row) {
          if (keep[row] != 0) selection.push_back(row);
        }
        for (std::vector<Sequence>& col : stream.cols) {
          std::vector<Sequence> next(selection.size());
          for (size_t j = 0; j < selection.size(); ++j) {
            next[j] = std::move(col[selection[j]]);
          }
          col = std::move(next);
        }
        stream.rows = selection.size();
        break;
      }

      case ClauseKind::kCount: {
        std::vector<Sequence> col(stream.rows);
        for (size_t row = 0; row < stream.rows; ++row) {
          col[row] = Sequence{MakeInteger(static_cast<int64_t>(row + 1))};
        }
        stream.cols.push_back(std::move(col));
        stream.slots.push_back(clause.count_slot);
        break;
      }

      case ClauseKind::kOrderBy: {
        const std::vector<OrderSpec>& specs = clause.order_by.specs;
        const size_t nspecs = specs.size();
        // Per-spec expression plans; the key columns are a flat rows×specs
        // vector rather than one small vector per row.
        std::vector<ExprPlan> plans;
        plans.reserve(nspecs);
        for (const OrderSpec& spec : specs) {
          plans.push_back(PlanClauseExpr(spec.key.get(), stream));
        }
        std::vector<SortKey> keys(stream.rows * nspecs);
        auto eval_keys_for_row = [&](size_t row, DynamicContext* ctx) {
          for (size_t s = 0; s < nspecs; ++s) {
            keys[row * nspecs + s] = make_sort_key(
                Atomize(eval_row(plans[s], specs[s].key.get(), row, ctx)));
          }
        };
        const int workers = PlanWorkers(context->exec, stream.rows);
        if (workers > 1) {
          Lanes lanes = make_lanes(workers);
          ThreadPool::Shared().ParallelFor(
              stream.rows, workers, [&](int w, size_t row) {
                DynamicContext* ctx = lanes.ctx[static_cast<size_t>(w)].get();
                ctx->CheckCancel();
                eval_keys_for_row(row, ctx);
              });
          merge_lanes(lanes);
        } else {
          for (size_t row = 0; row < stream.rows; ++row) {
            context->CheckCancel();
            eval_keys_for_row(row, context);
          }
        }
        ScopedMemoryCharge keys_charge(memory);
        if (memory != nullptr) {
          XQA_FAULT_POINT("flwor.sort_keys", ErrorCode::kXQSV0004);
          keys_charge.Reset(static_cast<int64_t>(
              stream.rows * (sizeof(std::vector<SortKey>) +
                             nspecs * sizeof(SortKey))));
        }
        ValidateOrderKeys(
            stream.rows, nspecs,
            [&](size_t i, size_t s) -> const SortKey& {
              return keys[i * nspecs + s];
            },
            expr->location());
        std::vector<size_t> order(stream.rows);
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        uint32_t comparisons = 0;
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                           if ((++comparisons & kSortPollMask) == 0) {
                             context->CheckCancel();
                           }
                           for (size_t s = 0; s < nspecs; ++s) {
                             int cmp = CompareSortKeys(keys[a * nspecs + s],
                                                       keys[b * nspecs + s],
                                                       specs[s]);
                             if (cmp != 0) return cmp < 0;
                           }
                           return false;
                         });
        for (std::vector<Sequence>& col : stream.cols) {
          std::vector<Sequence> next(stream.rows);
          for (size_t j = 0; j < stream.rows; ++j) {
            next[j] = std::move(col[order[j]]);
          }
          col = std::move(next);
        }
        break;
      }

      case ClauseKind::kGroupBy: {
        // Per-key expression plans (shared by both dialects).
        std::vector<ExprPlan> key_plans;
        key_plans.reserve(clause.group_keys.size());
        for (const auto& group_key : clause.group_keys) {
          key_plans.push_back(PlanClauseExpr(group_key.expr.get(), stream));
        }

        // Per-key shredded-column bindings: a single-step child/attribute
        // key from a shredded-scan slot that names a schema field reads the
        // column's dictionary codes instead of walking the DOM. Conformance
        // guarantees the step's matches are exactly the column entry: a
        // schema field name is never structured and never repeated within a
        // record (either would have excluded it or refused the schema).
        // XQuery 3.0 group-by atomizes every key (generic_only), so the
        // bindings are inert there by construction.
        std::vector<ShredKeyPlan> shred_plans(key_plans.size());
        for (size_t k = 0; k < key_plans.size(); ++k) {
          const ExprPlan& plan = key_plans[k];
          if (plan.mode != ExprPlan::Mode::kSimplePath || plan.col < 0 ||
              plan.path.steps.size() != 1) {
            continue;
          }
          auto bound = shred_tables.find(plan.slot);
          if (bound == shred_tables.end()) continue;
          const SimplePathPlan::Step& step = plan.path.steps[0];
          if (step.test->kind != NodeTest::Kind::kName ||
              step.test->name.empty() || step.test->name == "*") {
            continue;
          }
          const bool is_attribute = step.axis == Axis::kAttribute;
          int field = bound->second->schema().FieldIndex(step.test->name,
                                                         is_attribute);
          if (field < 0) continue;
          shred_plans[k] = ShredKeyPlan{bound->second, field};
        }

        if (clause.xquery3_group_style) {
          // --- XQuery 3.0 dialect ------------------------------------------
          // Atomization makes every key generic: the dialect's own rule runs
          // per row through the GroupKeyBatch generic hook.
          GroupKeyBatch::GenericKeyFn eval_key3 =
              [&](size_t row, size_t k, DynamicContext* ctx) {
                Sequence value = Atomize(eval_row(
                    key_plans[k], clause.group_keys[k].expr.get(), row, ctx));
                if (value.size() > 1) {
                  ThrowError(ErrorCode::kXPTY0004,
                             "XQuery 3.0 group by key must be an empty or "
                             "singleton atomic value",
                             expr->location());
                }
                return value;
              };
          std::vector<HashGroup> groups;
          ScopedMemoryCharge group_charge(memory);
          const int workers = PlanWorkers(context->exec, stream.rows);
          if (workers > 1) {
            groups = form_groups_parallel(workers, kSeed3, key_plans,
                                          /*generic_only=*/true, eval_key3,
                                          shred_plans);
          } else {
            groups = form_groups_serial(kSeed3, &group_charge, key_plans,
                                        /*generic_only=*/true, eval_key3,
                                        shred_plans);
          }
          if (memory != nullptr) {
            XQA_FAULT_POINT("flwor.group_alloc", ErrorCode::kXQSV0004);
            group_charge.Reset(EstimateGroupBytes(groups));
          }

          // Implicit rebinding, columnar: each non-key column is replaced by
          // per-group concatenations of its member values — direct column
          // reads, no expression evaluation and no slot loading. Key-rebound
          // slots take the key binding only (same rule and ordering as the
          // scalar engine).
          std::vector<bool> col_is_key(stream.cols.size(), false);
          for (size_t c = 0; c < stream.slots.size(); ++c) {
            for (const auto& key : clause.group_keys) {
              if (key.slot == stream.slots[c]) {
                col_is_key[c] = true;
                break;
              }
            }
          }
          std::vector<std::vector<Sequence>> next_cols;
          std::vector<int> next_slots;
          next_cols.reserve(stream.cols.size() + clause.group_keys.size());
          for (size_t c = 0; c < stream.cols.size(); ++c) {
            if (col_is_key[c]) continue;
            std::vector<Sequence> merged_col(groups.size());
            for (size_t gi = 0; gi < groups.size(); ++gi) {
              Sequence merged;
              for (size_t member : groups[gi].members) {
                Concat(&merged, stream.cols[c][member]);
              }
              if (cs != nullptr) ++cs->implicit_rebinds;
              merged_col[gi] = std::move(merged);
            }
            next_cols.push_back(std::move(merged_col));
            next_slots.push_back(stream.slots[c]);
          }
          for (size_t k = 0; k < clause.group_keys.size(); ++k) {
            std::vector<Sequence> key_col(groups.size());
            for (size_t gi = 0; gi < groups.size(); ++gi) {
              key_col[gi] = groups[gi].keys[k];
            }
            next_cols.push_back(std::move(key_col));
            next_slots.push_back(clause.group_keys[k].slot);
          }
          if (cs != nullptr) {
            cs->groups_formed += static_cast<int64_t>(groups.size());
          }
          stream.cols = std::move(next_cols);
          stream.slots = std::move(next_slots);
          stream.rows = groups.size();
          shred_tables.clear();
          break;
        }

        // --- Paper dialect -------------------------------------------------
        std::vector<HashGroup> groups;
        ScopedMemoryCharge group_charge(memory);
        bool custom_equality = false;
        for (const auto& key : clause.group_keys) {
          if (!key.using_function.empty()) custom_equality = true;
        }
        GroupKeyBatch::GenericKeyFn eval_key =
            [&](size_t row, size_t k, DynamicContext* ctx) {
              return eval_row(key_plans[k], clause.group_keys[k].expr.get(),
                              row, ctx);
            };
        auto eval_keys = [&](size_t row, DynamicContext* ctx) {
          std::vector<Sequence> keys;
          keys.reserve(clause.group_keys.size());
          for (size_t k = 0; k < clause.group_keys.size(); ++k) {
            keys.push_back(eval_key(row, k, ctx));
          }
          return keys;
        };
        const int workers =
            custom_equality ? 1 : PlanWorkers(context->exec, stream.rows);
        if (workers > 1) {
          groups = form_groups_parallel(workers, kSeedPaper, key_plans,
                                        /*generic_only=*/false, eval_key,
                                        shred_plans);
        } else if (!custom_equality) {
          groups = form_groups_serial(kSeedPaper, &group_charge, key_plans,
                                      /*generic_only=*/false, eval_key,
                                      shred_plans);
        } else {
          // Custom `using` equality: serial linear scan over the group table
          // (the user function need not be hashable). Row-at-a-time — the
          // user function sees the caller's context, exactly as in the
          // scalar engine.
          for (size_t row = 0; row < stream.rows; ++row) {
            context->CheckCancel();
            std::vector<Sequence> keys = eval_keys(row, context);
            size_t group_index = SIZE_MAX;
            for (size_t candidate = 0; candidate < groups.size();
                 ++candidate) {
              bool all_equal = true;
              for (size_t k = 0; k < keys.size(); ++k) {
                if (cs != nullptr) ++cs->linear_scan_compares;
                if (!equal_under(clause.group_keys[k],
                                 groups[candidate].keys[k], keys[k])) {
                  all_equal = false;
                  break;
                }
              }
              if (all_equal) {
                group_index = candidate;
                break;
              }
            }
            if (group_index == SIZE_MAX) {
              group_index = groups.size();
              groups.push_back(HashGroup{std::move(keys), {}});
            }
            groups[group_index].members.push_back(row);
            if (memory != nullptr && (row % kGroupChargeStride) == 0) {
              group_charge.Reset(EstimateGroupBytes(groups));
            }
          }
        }
        if (memory != nullptr) {
          XQA_FAULT_POINT("flwor.group_alloc", ErrorCode::kXQSV0004);
          group_charge.Reset(EstimateGroupBytes(groups));
        }
        if (cs != nullptr) {
          cs->groups_formed += static_cast<int64_t>(groups.size());
        }

        // --- Output construction, columnar ---------------------------------
        // Key columns come straight from the group table. Nest columns
        // evaluate the nest body per member: a bound-variable nest (`nest $d
        // := $item`) concatenates column values directly, a simple-path nest
        // runs the kernel, anything else falls back to swap-loaded Evaluate.
        std::vector<ExprPlan> nest_plans;
        nest_plans.reserve(clause.nest_specs.size());
        bool any_nest_order = false;
        for (const auto& nest : clause.nest_specs) {
          nest_plans.push_back(PlanClauseExpr(nest.expr.get(), stream));
          if (nest.order_by.has_value()) any_nest_order = true;
        }
        std::vector<std::vector<Sequence>> next_cols(
            clause.group_keys.size() + clause.nest_specs.size());
        for (size_t k = 0; k < clause.group_keys.size(); ++k) {
          std::vector<Sequence> key_col(groups.size());
          for (size_t gi = 0; gi < groups.size(); ++gi) {
            key_col[gi] = groups[gi].keys[k];
          }
          next_cols[k] = std::move(key_col);
        }
        for (auto& col : next_cols) {
          if (col.empty()) col.resize(groups.size());
        }

        // One group's nest value under spec `ni`, members in input order or
        // per the nest's own order by.
        auto build_nest = [&](size_t ni, const HashGroup& group,
                              DynamicContext* ctx) {
          const auto& nest = clause.nest_specs[ni];
          Sequence nested;
          if (!nest.order_by.has_value()) {
            const ExprPlan& plan = nest_plans[ni];
            if (plan.mode == ExprPlan::Mode::kColumn && plan.col >= 0) {
              // Bound-variable nest (`nest $item into $d`): concatenate the
              // column values directly — one sized append instead of a
              // per-member temporary copy. The column is only read (another
              // nest spec may read it too).
              const std::vector<Sequence>& col =
                  stream.cols[static_cast<size_t>(plan.col)];
              size_t total = 0;
              for (size_t member : group.members) {
                total += col[member].size();
              }
              nested.reserve(total);
              for (size_t member : group.members) {
                Concat(&nested, col[member]);
              }
              return nested;
            }
            for (size_t member : group.members) {
              Concat(&nested,
                     eval_row(plan, nest.expr.get(), member, ctx));
            }
            return nested;
          }
          struct MemberValue {
            std::vector<SortKey> keys;
            Sequence value;
          };
          std::vector<ExprPlan> spec_plans;
          spec_plans.reserve(nest.order_by->specs.size());
          for (const OrderSpec& spec : nest.order_by->specs) {
            spec_plans.push_back(PlanClauseExpr(spec.key.get(), stream));
          }
          std::vector<MemberValue> values;
          values.reserve(group.members.size());
          for (size_t member : group.members) {
            MemberValue mv;
            for (size_t s = 0; s < nest.order_by->specs.size(); ++s) {
              mv.keys.push_back(make_sort_key(Atomize(eval_row(
                  spec_plans[s], nest.order_by->specs[s].key.get(), member,
                  ctx))));
            }
            mv.value = eval_row(nest_plans[ni], nest.expr.get(), member, ctx);
            values.push_back(std::move(mv));
          }
          ValidateOrderKeys(
              values.size(), nest.order_by->specs.size(),
              [&](size_t i, size_t s) -> const SortKey& {
                return values[i].keys[s];
              },
              expr->location());
          std::vector<size_t> order(values.size());
          for (size_t i = 0; i < order.size(); ++i) order[i] = i;
          uint32_t comparisons = 0;
          std::stable_sort(order.begin(), order.end(),
                           [&](size_t a, size_t b) {
                             if ((++comparisons & kSortPollMask) == 0) {
                               ctx->CheckCancel();
                             }
                             for (size_t s = 0;
                                  s < nest.order_by->specs.size(); ++s) {
                               int cmp = CompareSortKeys(
                                   values[a].keys[s], values[b].keys[s],
                                   nest.order_by->specs[s]);
                               if (cmp != 0) return cmp < 0;
                             }
                             return false;
                           });
          for (size_t index : order) Concat(&nested, values[index].value);
          return nested;
        };

        const int out_workers =
            any_nest_order || groups.size() < 2
                ? 1
                : PlanWorkers(context->exec, stream.rows);
        if (out_workers > 1) {
          Lanes lanes = make_lanes(out_workers);
          ThreadPool::Shared().ParallelFor(
              groups.size(), out_workers, [&](int w, size_t gi) {
                DynamicContext* ctx = lanes.ctx[static_cast<size_t>(w)].get();
                ctx->CheckCancel();
                for (size_t ni = 0; ni < clause.nest_specs.size(); ++ni) {
                  next_cols[clause.group_keys.size() + ni][gi] =
                      build_nest(ni, groups[gi], ctx);
                }
              });
          merge_lanes(lanes);
        } else {
          for (size_t gi = 0; gi < groups.size(); ++gi) {
            context->CheckCancel();
            for (size_t ni = 0; ni < clause.nest_specs.size(); ++ni) {
              next_cols[clause.group_keys.size() + ni][gi] =
                  build_nest(ni, groups[gi], context);
            }
          }
        }

        std::vector<int> next_slots;
        next_slots.reserve(clause.group_keys.size() +
                           clause.nest_specs.size());
        for (const auto& key : clause.group_keys) {
          next_slots.push_back(key.slot);
        }
        for (const auto& nest : clause.nest_specs) {
          next_slots.push_back(nest.slot);
        }
        stream.cols = std::move(next_cols);
        stream.slots = std::move(next_slots);
        stream.rows = groups.size();
        shred_tables.clear();
        break;
      }
    }
    // Budget checkpoint at the clause boundary, as in the scalar engine.
    if (memory != nullptr) {
      XQA_FAULT_POINT("flwor.tuple_alloc", ErrorCode::kXQSV0004);
      stream_charge.Reset(EstimateStreamBytes(stream));
    }
    if (cs != nullptr) {
      cs->tuples_out += static_cast<int64_t>(stream.rows);
      stats->tuples_flowed += static_cast<int64_t>(stream.rows);
    }
    note_batches(stream.rows);
  }

  // Return clause, with the paper's output-numbering extension (`at`).
  ClauseStats* return_cs = nullptr;
  if (stats != nullptr) {
    return_cs = &stats->Clause(expr, ClauseStats::kReturnClause, "return");
    ++return_cs->executions;
    return_cs->tuples_in += static_cast<int64_t>(stream.rows);
  }
  StatsTimer return_timer(return_cs != nullptr ? &return_cs->wall_seconds
                                               : nullptr);
  const ExprPlan return_plan =
      PlanClauseExpr(expr->return_expr.get(), stream);
  Sequence result;
  int64_t ordinal = 0;
  size_t charged_items = 0;
  for (size_t row = 0; row < stream.rows; ++row) {
    context->CheckCancel();
    if (expr->at_slot >= 0) {
      context->Slot(expr->at_slot) = Sequence{MakeInteger(++ordinal)};
    }
    Concat(&result,
           eval_row(return_plan, expr->return_expr.get(), row, context));
    if (memory != nullptr &&
        result.size() - charged_items >= kGroupChargeStride) {
      XQA_FAULT_POINT("flwor.result_alloc", ErrorCode::kXQSV0004);
      memory->Charge(static_cast<int64_t>((result.size() - charged_items) *
                                          sizeof(Item)));
      charged_items = result.size();
    }
  }
  if (memory != nullptr && result.size() > charged_items) {
    memory->Charge(static_cast<int64_t>((result.size() - charged_items) *
                                        sizeof(Item)));
  }
  if (return_cs != nullptr) {
    return_cs->tuples_out += static_cast<int64_t>(result.size());
  }
  note_batches(stream.rows);
  return result;
}

}  // namespace xqa

#include <algorithm>
#include <cstdint>
#include <vector>

#include "eval/evaluator.h"

#include "api/query_stats.h"
#include "base/error.h"
#include "eval/path_step.h"
#include "xdm/compare.h"
#include "xdm/sequence_ops.h"

namespace xqa {

using namespace path_detail;

namespace {

/// Evaluates a pushed value filter (optimizer/pushdown.h) against one
/// candidate node: general comparison of the node's matching children
/// against the literal, exactly the semantics of the original
/// `where $v/c <op> literal`. Nodes without a matching child compare false
/// (empty sequence), just as the where clause would.
bool PassesPushedFilter(Node* node, const PushedValueFilter& filter,
                        NameId child_id, const Sequence& literal_seq,
                        const DocumentPtr& doc) {
  Sequence children;
  EmitChildMatches(node, filter.child, child_id, doc, &children);
  return GeneralCompare(static_cast<CompareOp>(filter.op), children,
                        literal_seq);
}

/// Attempts to answer descendant::T for one context node from the document's
/// element-name index: the matches are exactly the slice of T's preorder-
/// sorted bucket whose order indexes fall in the node's subtree span, found
/// by binary search and emitted already in document order. Returns true when
/// the step was fully answered (possibly with zero matches); false means the
/// caller must walk the subtree.
/// When `filter` is non-null it is applied inside the scan, so only passing
/// nodes are emitted and `index_scan_nodes` counts post-filter emissions —
/// the counter difference against an unfiltered run is the saving.
bool TryIndexedDescendants(Node* node, const NodeTest& test, NameId test_id,
                           const PushedValueFilter* filter,
                           const DocumentPtr& doc, DynamicContext* context,
                           Sequence* out) {
  if (!context->exec.use_structural_index) return false;
  if (test.kind != NodeTest::Kind::kName &&
      test.kind != NodeTest::Kind::kElement) {
    return false;
  }
  if (test_id == kNameIdAny) return false;  // wildcard: every element; walk
  const Document* document = doc.get();
  if (document == nullptr || !document->has_element_index()) return false;
  if (test_id != kNameIdAbsent) {
    const std::vector<Node*>* bucket = document->ElementsWithName(test_id);
    if (bucket == nullptr) return false;
    // Descendants strictly follow the context node in preorder, and the
    // subtree span is half-open, so the match range is [order+1, end).
    auto by_order = [](const Node* n, uint32_t index) {
      return n->order_index() < index;
    };
    auto lo = std::lower_bound(bucket->begin(), bucket->end(),
                               node->order_index() + 1, by_order);
    auto hi = std::lower_bound(lo, bucket->end(), node->subtree_end(),
                               by_order);
    int64_t emitted = 0;
    if (lo != hi) {
      // One checkpoint per range scan: the scan itself is a tight memcpy-like
      // loop, and the caller already checkpoints once per context node.
      context->CheckCancel();
      BorrowedEmitter emitter(doc, out);
      if (filter == nullptr) {
        emitter.EmitRange(&*lo, &*lo + (hi - lo));
        emitted = static_cast<int64_t>(hi - lo);
      } else {
        NameId child_id = TestNameId(filter->child, *document);
        Sequence literal_seq;
        literal_seq.push_back(Item(filter->literal));
        for (auto it = lo; it != hi; ++it) {
          if (PassesPushedFilter(*it, *filter, child_id, literal_seq, doc)) {
            emitter.Emit(*it);
            ++emitted;
          }
        }
      }
    }
    if (context->stats != nullptr) {
      context->stats->index_scan_nodes += emitted;
    }
  }
  // kNameIdAbsent: the name occurs nowhere in the document, an empty scan.
  if (context->stats != nullptr) ++context->stats->index_scans;
  return true;
}

/// Walking fallback for descendant steps: explicit-stack preorder so deep
/// documents cannot overflow the C++ stack.
void CollectDescendants(Node* node, const NodeTest& test, Axis axis,
                        NameId test_id, const DocumentPtr& doc,
                        DynamicContext* context, Sequence* out) {
  BorrowedEmitter emitter(doc, out);
  if (node->document()->sealed()) {
    // Matches can't exceed the subtree span; surplus is returned at scope
    // exit.
    emitter.Reserve(node->subtree_end() - node->order_index());
  }
  int64_t visited = 0;
  std::vector<Node*> stack(node->children().rbegin(),
                           node->children().rend());
  while (!stack.empty()) {
    context->CheckCancel();
    Node* current = stack.back();
    stack.pop_back();
    ++visited;
    if (MatchesTest(current, test, axis, test_id)) emitter.Emit(current);
    const std::vector<Node*>& children = current->children();
    stack.insert(stack.end(), children.rbegin(), children.rend());
  }
  if (context->stats != nullptr) {
    ++context->stats->fallback_walks;
    context->stats->fallback_walk_nodes += visited;
  }
}

/// Applies one axis step (without predicates) to a single context node,
/// appending matches to `out` in axis order. A pushed value filter (null for
/// most steps) is applied inside the element-name index scan when the step
/// is answered by the index, and over the appended tail otherwise, so every
/// axis honors it before predicates run.
void ApplyAxis(const Item& context_item, Axis axis, const NodeTest& test,
               const PushedValueFilter* filter, DynamicContext* context,
               SourceLocation loc, Sequence* out) {
  context->CheckCancel();
  if (!context_item.IsNode()) {
    ThrowError(ErrorCode::kXPTY0004,
               "a path step was applied to an atomic value", loc);
  }
  Node* node = context_item.node();
  const DocumentPtr& doc = context_item.document();
  NameId test_id = TestNameId(test, *doc);
  size_t before = out->size();
  bool filtered_in_scan = false;
  switch (axis) {
    case Axis::kChild:
      EmitChildMatches(node, test, test_id, doc, out);
      break;
    case Axis::kDescendant:
      if (TryIndexedDescendants(node, test, test_id, filter, doc, context,
                                out)) {
        filtered_in_scan = filter != nullptr;
      } else {
        CollectDescendants(node, test, axis, test_id, doc, context, out);
      }
      break;
    case Axis::kDescendantOrSelf:
      if (MatchesTest(node, test, axis, test_id)) {
        out->push_back(Item(node, doc));
      }
      // The self node bypasses the scan, so the tail filter below handles
      // this axis uniformly.
      if (!TryIndexedDescendants(node, test, test_id, /*filter=*/nullptr, doc,
                                 context, out)) {
        CollectDescendants(node, test, axis, test_id, doc, context, out);
      }
      break;
    case Axis::kAttribute:
      EmitAttributeMatches(node, test, test_id, doc, out);
      break;
    case Axis::kSelf:
      if (MatchesTest(node, test, axis, test_id)) {
        out->push_back(Item(node, doc));
      }
      break;
    case Axis::kParent:
      if (node->parent() != nullptr &&
          MatchesTest(node->parent(), test, axis, test_id)) {
        out->push_back(Item(node->parent(), doc));
      }
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      Node* current = axis == Axis::kAncestor ? node->parent() : node;
      // Nearest-first order (the reverse-axis order used for positional
      // predicates).
      while (current != nullptr) {
        if (MatchesTest(current, test, axis, test_id)) {
          out->push_back(Item(current, doc));
        }
        current = current->parent();
      }
      break;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      Node* parent = node->parent();
      if (parent == nullptr || node->kind() == NodeKind::kAttribute) break;
      const std::vector<Node*>& siblings = parent->children();
      size_t self_index = 0;
      while (self_index < siblings.size() && siblings[self_index] != node) {
        ++self_index;
      }
      if (axis == Axis::kFollowingSibling) {
        for (size_t i = self_index + 1; i < siblings.size(); ++i) {
          if (MatchesTest(siblings[i], test, axis, test_id)) {
            out->push_back(Item(siblings[i], doc));
          }
        }
      } else {
        // Nearest-first for the reverse axis.
        for (size_t i = self_index; i-- > 0;) {
          if (MatchesTest(siblings[i], test, axis, test_id)) {
            out->push_back(Item(siblings[i], doc));
          }
        }
      }
      break;
    }
  }
  if (filter != nullptr && !filtered_in_scan && out->size() > before) {
    NameId child_id = TestNameId(filter->child, *doc);
    Sequence literal_seq;
    literal_seq.push_back(Item(filter->literal));
    size_t write = before;
    for (size_t i = before; i < out->size(); ++i) {
      if (PassesPushedFilter((*out)[i].node(), *filter, child_id, literal_seq,
                             (*out)[i].document())) {
        if (write != i) (*out)[write] = std::move((*out)[i]);
        ++write;
      }
    }
    out->resize(write);
  }
}

bool IsReverseAxis(Axis axis) {
  return axis == Axis::kParent || axis == Axis::kAncestor ||
         axis == Axis::kAncestorOrSelf || axis == Axis::kPrecedingSibling;
}

/// True when an axis step's combined result is guaranteed to already be in
/// document order with no duplicate identities, so the normalization sort
/// can be skipped. Child/attribute/self steps from a sorted, deduplicated
/// context are sorted and disjoint; descendant steps are too when there is
/// at most one context node (nested contexts could otherwise overlap).
bool InDocumentOrderByConstruction(const PathSegment& segment,
                                   size_t context_count) {
  if (segment.is_expr()) return false;  // arbitrary expressions: normalize
  switch (segment.step.axis) {
    case Axis::kChild:
    case Axis::kAttribute:
    case Axis::kSelf:
      return true;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kFollowingSibling:
      return context_count <= 1;
    default:
      return false;
  }
}

}  // namespace

Sequence Evaluator::EvalPath(const PathExpr* expr, DynamicContext* context) {
  Sequence current;
  if (expr->absolute) {
    if (!context->focus.valid || !context->focus.item.IsNode()) {
      ThrowError(ErrorCode::kXPDY0002,
                 "absolute path requires a node context item",
                 expr->location());
    }
    const NodeRef& ref = context->focus.item.node_ref();
    current.push_back(Item(ref.document->root(), ref.document));
  } else if (expr->start != nullptr) {
    current = Evaluate(expr->start.get(), context);
  } else {
    if (!context->focus.valid) {
      ThrowError(ErrorCode::kXPDY0002, "context item is absent",
                 expr->location());
    }
    current.push_back(context->focus.item);
  }

  for (size_t seg_index = 0; seg_index < expr->segments.size(); ++seg_index) {
    const PathSegment& segment = expr->segments[seg_index];
    bool last = seg_index + 1 == expr->segments.size();
    Sequence output;
    if (context->stats != nullptr) {
      // One "step" per context item the segment is applied to (a fused "//T"
      // counts once).
      context->stats->path_steps += static_cast<int64_t>(current.size());
    }

    // Fusion: descendant-or-self::node()/child::T (the expansion of "//T")
    // evaluates as descendant::T, avoiding materializing every node. Only
    // valid when T carries no predicates: a positional predicate on T must
    // see per-parent positions, which the fused step would collapse. The
    // fused step reuses the child step's own NodeTest so its name-id cache
    // persists across executions.
    if (!segment.is_expr() && segment.step.axis == Axis::kDescendantOrSelf &&
        segment.step.test.kind == NodeTest::Kind::kAnyKind &&
        segment.step.predicates.empty() && !last) {
      const PathSegment& next = expr->segments[seg_index + 1];
      if (!next.is_expr() && next.step.axis == Axis::kChild &&
          next.step.predicates.empty()) {
        for (const Item& item : current) {
          ApplyAxis(item, Axis::kDescendant, next.step.test,
                    next.step.pushed_filter.get(), context, expr->location(),
                    &output);
        }
        ++seg_index;
        last = seg_index + 1 == expr->segments.size();
        if (current.size() > 1) {
          SortDocumentOrderAndDedup(&output);
        }
        current = std::move(output);
        continue;
      }
    }

    if (segment.is_expr()) {
      // Filter-expression segment: evaluate once per context item with focus.
      FocusGuard guard(context);
      int64_t size = static_cast<int64_t>(current.size());
      for (size_t i = 0; i < current.size(); ++i) {
        context->focus.valid = true;
        context->focus.item = current[i];
        context->focus.position = static_cast<int64_t>(i + 1);
        context->focus.size = size;
        MoveConcat(&output, Evaluate(segment.expr.get(), context));
      }
    } else if (segment.step.predicates.empty() &&
               !IsReverseAxis(segment.step.axis)) {
      // Forward axis without predicates: emit straight into the segment
      // output, no per-context-node scratch sequence.
      for (const Item& item : current) {
        ApplyAxis(item, segment.step.axis, segment.step.test,
                  segment.step.pushed_filter.get(), context, expr->location(),
                  &output);
      }
    } else {
      // Axis step: per context node, then predicates in axis order.
      for (const Item& item : current) {
        Sequence matched;
        ApplyAxis(item, segment.step.axis, segment.step.test,
                  segment.step.pushed_filter.get(), context, expr->location(),
                  &matched);
        for (const ExprPtr& predicate : segment.step.predicates) {
          matched = ApplyPredicate(std::move(matched), predicate.get(),
                                   context);
        }
        // Reverse axes yield nearest-first order for predicates; convert to
        // document order for the result contribution.
        if (IsReverseAxis(segment.step.axis) && matched.size() > 1) {
          std::reverse(matched.begin(), matched.end());
        }
        MoveConcat(&output, std::move(matched));
      }
    }

    // Classify the segment result.
    bool any_node = false;
    bool any_atomic = false;
    for (const Item& item : output) {
      (item.IsNode() ? any_node : any_atomic) = true;
    }
    if (any_node && any_atomic) {
      ThrowError(ErrorCode::kXPTY0004,
                 "path step mixes nodes and atomic values", expr->location());
    }
    if (any_atomic && !last) {
      ThrowError(ErrorCode::kXPTY0004,
                 "intermediate path step produced atomic values",
                 expr->location());
    }
    if (any_node && !InDocumentOrderByConstruction(segment, current.size())) {
      // Multiple context nodes or non-forward navigation can break document
      // order; normalize (also removes duplicate identities).
      SortDocumentOrderAndDedup(&output);
    }
    current = std::move(output);
  }
  return current;
}

}  // namespace xqa

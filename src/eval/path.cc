#include <algorithm>

#include "eval/evaluator.h"

#include "api/query_stats.h"
#include "base/error.h"
#include "xdm/sequence_ops.h"

namespace xqa {

namespace {

/// True when `node` matches the test given the step's principal node kind
/// (attributes for the attribute axis, elements otherwise).
bool MatchesTest(const Node* node, const NodeTest& test, Axis axis) {
  switch (test.kind) {
    case NodeTest::Kind::kName: {
      NodeKind principal = axis == Axis::kAttribute ? NodeKind::kAttribute
                                                    : NodeKind::kElement;
      if (node->kind() != principal) return false;
      return test.name == "*" || node->name() == test.name;
    }
    case NodeTest::Kind::kAnyKind:
      return true;
    case NodeTest::Kind::kText:
      return node->kind() == NodeKind::kText;
    case NodeTest::Kind::kComment:
      return node->kind() == NodeKind::kComment;
    case NodeTest::Kind::kElement:
      return node->kind() == NodeKind::kElement &&
             (test.name.empty() || test.name == "*" ||
              node->name() == test.name);
    case NodeTest::Kind::kAttribute:
      return node->kind() == NodeKind::kAttribute &&
             (test.name.empty() || test.name == "*" ||
              node->name() == test.name);
    case NodeTest::Kind::kDocument:
      return node->kind() == NodeKind::kDocument;
    case NodeTest::Kind::kPi:
      return node->kind() == NodeKind::kProcessingInstruction &&
             (test.name.empty() || node->name() == test.name);
  }
  return false;
}

void CollectDescendants(Node* node, const NodeTest& test, Axis axis,
                        const DocumentPtr& doc, Sequence* out) {
  for (Node* child : node->children()) {
    if (MatchesTest(child, test, axis)) out->push_back(Item(child, doc));
    CollectDescendants(child, test, axis, doc, out);
  }
}

/// Applies one axis step (without predicates) to a single context node,
/// returning matches in axis order.
Sequence ApplyAxis(const Item& context_item, const PathStep& step,
                   SourceLocation loc) {
  if (!context_item.IsNode()) {
    ThrowError(ErrorCode::kXPTY0004,
               "a path step was applied to an atomic value", loc);
  }
  Node* node = context_item.node();
  const DocumentPtr& doc = context_item.document();
  Sequence out;
  switch (step.axis) {
    case Axis::kChild:
      for (Node* child : node->children()) {
        if (MatchesTest(child, step.test, step.axis)) {
          out.push_back(Item(child, doc));
        }
      }
      break;
    case Axis::kDescendant:
      CollectDescendants(node, step.test, step.axis, doc, &out);
      break;
    case Axis::kDescendantOrSelf:
      if (MatchesTest(node, step.test, step.axis)) {
        out.push_back(Item(node, doc));
      }
      CollectDescendants(node, step.test, step.axis, doc, &out);
      break;
    case Axis::kAttribute:
      if (node->kind() == NodeKind::kElement) {
        for (Node* attr : node->attributes()) {
          if (MatchesTest(attr, step.test, step.axis)) {
            out.push_back(Item(attr, doc));
          }
        }
      }
      break;
    case Axis::kSelf:
      if (MatchesTest(node, step.test, step.axis)) {
        out.push_back(Item(node, doc));
      }
      break;
    case Axis::kParent:
      if (node->parent() != nullptr &&
          MatchesTest(node->parent(), step.test, step.axis)) {
        out.push_back(Item(node->parent(), doc));
      }
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      Node* current =
          step.axis == Axis::kAncestor ? node->parent() : node;
      // Nearest-first order (the reverse-axis order used for positional
      // predicates).
      while (current != nullptr) {
        if (MatchesTest(current, step.test, step.axis)) {
          out.push_back(Item(current, doc));
        }
        current = current->parent();
      }
      break;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      Node* parent = node->parent();
      if (parent == nullptr || node->kind() == NodeKind::kAttribute) break;
      const std::vector<Node*>& siblings = parent->children();
      size_t self_index = 0;
      while (self_index < siblings.size() && siblings[self_index] != node) {
        ++self_index;
      }
      if (step.axis == Axis::kFollowingSibling) {
        for (size_t i = self_index + 1; i < siblings.size(); ++i) {
          if (MatchesTest(siblings[i], step.test, step.axis)) {
            out.push_back(Item(siblings[i], doc));
          }
        }
      } else {
        // Nearest-first for the reverse axis.
        for (size_t i = self_index; i-- > 0;) {
          if (MatchesTest(siblings[i], step.test, step.axis)) {
            out.push_back(Item(siblings[i], doc));
          }
        }
      }
      break;
    }
  }
  return out;
}

bool IsReverseAxis(Axis axis) {
  return axis == Axis::kParent || axis == Axis::kAncestor ||
         axis == Axis::kAncestorOrSelf || axis == Axis::kPrecedingSibling;
}

/// True when an axis step's combined result is guaranteed to already be in
/// document order with no duplicate identities, so the normalization sort
/// can be skipped. Child/attribute/self steps from a sorted, deduplicated
/// context are sorted and disjoint; descendant steps are too when there is
/// at most one context node (nested contexts could otherwise overlap).
bool InDocumentOrderByConstruction(const PathSegment& segment,
                                   size_t context_count) {
  if (segment.is_expr()) return false;  // arbitrary expressions: normalize
  switch (segment.step.axis) {
    case Axis::kChild:
    case Axis::kAttribute:
    case Axis::kSelf:
      return true;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kFollowingSibling:
      return context_count <= 1;
    default:
      return false;
  }
}

}  // namespace

Sequence Evaluator::EvalPath(const PathExpr* expr, DynamicContext* context) {
  Sequence current;
  if (expr->absolute) {
    if (!context->focus.valid || !context->focus.item.IsNode()) {
      ThrowError(ErrorCode::kXPDY0002,
                 "absolute path requires a node context item",
                 expr->location());
    }
    const NodeRef& ref = context->focus.item.node_ref();
    current.push_back(Item(ref.document->root(), ref.document));
  } else if (expr->start != nullptr) {
    current = Evaluate(expr->start.get(), context);
  } else {
    if (!context->focus.valid) {
      ThrowError(ErrorCode::kXPDY0002, "context item is absent",
                 expr->location());
    }
    current.push_back(context->focus.item);
  }

  for (size_t seg_index = 0; seg_index < expr->segments.size(); ++seg_index) {
    const PathSegment& segment = expr->segments[seg_index];
    bool last = seg_index + 1 == expr->segments.size();
    Sequence output;
    if (context->stats != nullptr) {
      // One "step" per context item the segment is applied to (a fused "//T"
      // counts once).
      context->stats->path_steps += static_cast<int64_t>(current.size());
    }

    // Fusion: descendant-or-self::node()/child::T (the expansion of "//T")
    // evaluates as descendant::T, avoiding materializing every node. Only
    // valid when T carries no predicates: a positional predicate on T must
    // see per-parent positions, which the fused step would collapse.
    if (!segment.is_expr() && segment.step.axis == Axis::kDescendantOrSelf &&
        segment.step.test.kind == NodeTest::Kind::kAnyKind &&
        segment.step.predicates.empty() && !last) {
      const PathSegment& next = expr->segments[seg_index + 1];
      if (!next.is_expr() && next.step.axis == Axis::kChild &&
          next.step.predicates.empty()) {
        PathStep fused;
        fused.axis = Axis::kDescendant;
        fused.test = next.step.test;
        for (const Item& item : current) {
          Concat(&output, ApplyAxis(item, fused, expr->location()));
        }
        ++seg_index;
        last = seg_index + 1 == expr->segments.size();
        if (current.size() > 1) {
          SortDocumentOrderAndDedup(&output);
        }
        current = std::move(output);
        continue;
      }
    }

    if (segment.is_expr()) {
      // Filter-expression segment: evaluate once per context item with focus.
      FocusGuard guard(context);
      int64_t size = static_cast<int64_t>(current.size());
      for (size_t i = 0; i < current.size(); ++i) {
        context->focus.valid = true;
        context->focus.item = current[i];
        context->focus.position = static_cast<int64_t>(i + 1);
        context->focus.size = size;
        Concat(&output, Evaluate(segment.expr.get(), context));
      }
    } else {
      // Axis step: per context node, then predicates in axis order.
      for (const Item& item : current) {
        Sequence matched = ApplyAxis(item, segment.step, expr->location());
        for (const ExprPtr& predicate : segment.step.predicates) {
          matched = ApplyPredicate(std::move(matched), predicate.get(), context);
        }
        // Reverse axes yield nearest-first order for predicates; convert to
        // document order for the result contribution.
        if (IsReverseAxis(segment.step.axis) && matched.size() > 1) {
          std::reverse(matched.begin(), matched.end());
        }
        Concat(&output, matched);
      }
    }

    // Classify the segment result.
    bool any_node = false;
    bool any_atomic = false;
    for (const Item& item : output) {
      (item.IsNode() ? any_node : any_atomic) = true;
    }
    if (any_node && any_atomic) {
      ThrowError(ErrorCode::kXPTY0004,
                 "path step mixes nodes and atomic values", expr->location());
    }
    if (any_atomic && !last) {
      ThrowError(ErrorCode::kXPTY0004,
                 "intermediate path step produced atomic values",
                 expr->location());
    }
    if (any_node && !InDocumentOrderByConstruction(segment, current.size())) {
      // Multiple context nodes or non-forward navigation can break document
      // order; normalize (also removes duplicate identities).
      SortDocumentOrderAndDedup(&output);
    }
    current = std::move(output);
  }
  return current;
}

}  // namespace xqa

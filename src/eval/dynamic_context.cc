#include "eval/dynamic_context.h"

#include "base/error.h"

namespace xqa {

void DynamicContext::PushFrame(size_t size) {
  if (frames_.size() >= static_cast<size_t>(kMaxRecursionDepth)) {
    ThrowError(ErrorCode::kFORG0006, "frame stack overflow");
  }
  frames_.emplace_back(size);
}

void DynamicContext::PopFrame() { frames_.pop_back(); }

}  // namespace xqa

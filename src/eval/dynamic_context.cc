#include "eval/dynamic_context.h"

#include "base/error.h"

namespace xqa {

void DynamicContext::PushFrame(size_t size) {
  if (frames_.size() >= static_cast<size_t>(kMaxRecursionDepth)) {
    ThrowError(ErrorCode::kFORG0006, "frame stack overflow");
  }
  frames_.emplace_back(size);
}

void DynamicContext::PopFrame() { frames_.pop_back(); }

std::unique_ptr<DynamicContext> DynamicContext::Fork() const {
  auto fork = std::make_unique<DynamicContext>();
  fork->globals = globals;
  fork->documents = documents;
  fork->collections = collections;
  fork->focus = focus;
  fork->recursion_depth = recursion_depth;
  // num_threads stays at the serial default (workers never re-enter the
  // pool), but the index ablation switch must carry over so indexed and
  // fallback runs stay comparable at any thread count, and the cancellation
  // token is shared so every lane of a parallel section observes a deadline
  // or cancel at its next checkpoint.
  fork->exec.use_structural_index = exec.use_structural_index;
  fork->exec.use_batched_execution = exec.use_batched_execution;
  fork->exec.cancellation = exec.cancellation;
  // The memory tracker is shared too (it is thread-safe): every lane's
  // materialization counts against the same per-query budget.
  fork->exec.memory = exec.memory;
  fork->eval_depth = eval_depth;
  if (!frames_.empty()) fork->frames_.push_back(frames_.back());
  return fork;
}

}  // namespace xqa

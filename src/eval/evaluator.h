#ifndef XQA_EVAL_EVALUATOR_H_
#define XQA_EVAL_EVALUATOR_H_

#include <vector>

#include "eval/dynamic_context.h"
#include "parser/ast.h"

namespace xqa {

/// Tree-walking evaluator over a bound Module. The FLWOR pipeline follows
/// the paper's tuple-stream model: each clause maps a vector of tuples to a
/// vector of tuples; group by performs hash aggregation keyed by
/// deep-equal-consistent hashes (or a linear group table under a custom
/// `using` equality function).
class Evaluator {
 public:
  explicit Evaluator(const Module* module) : module_(module) {}

  /// Evaluates the whole query: global variables first, then the body.
  /// `context_item` (usually a document) seeds the initial focus; pass an
  /// invalid Focus for queries that do not touch the context item.
  Sequence EvaluateQuery(DynamicContext* context, Focus initial_focus);

  /// Evaluates one expression in the current context.
  Sequence Evaluate(const Expr* expr, DynamicContext* context);

  /// Invokes a user-declared function with pre-evaluated arguments.
  Sequence CallUserFunction(int index, std::vector<Sequence> args,
                            DynamicContext* context);

  const Module* module() const { return module_; }

 private:
  // evaluator.cc
  Sequence EvalArithmetic(const ArithmeticExpr* expr, DynamicContext* context);
  Sequence EvalComparison(const ComparisonExpr* expr, DynamicContext* context);
  Sequence EvalQuantified(const QuantifiedExpr* expr, DynamicContext* context);
  Sequence EvalRange(const RangeExpr* expr, DynamicContext* context);
  Sequence EvalFilter(const FilterExpr* expr, DynamicContext* context);
  Sequence EvalFunctionCall(const FunctionCallExpr* expr,
                            DynamicContext* context);

  /// Applies one predicate list to a sequence with XPath focus semantics
  /// (numeric predicate = positional). Shared by filters and path steps.
  Sequence ApplyPredicate(Sequence input, const Expr* predicate,
                          DynamicContext* context);

  // flwor.cc — the scalar tuple-at-a-time pipeline, kept as the ablation
  // baseline for the batched engine (docs/VECTORIZATION.md).
  Sequence EvalFlwor(const FlworExpr* expr, DynamicContext* context);

  // flwor_batch.cc — the batched (vectorized) engine: columnar tuple
  // morsels, batched slot loading, simple-path key kernels, per-batch
  // group-by probing. Dispatched from EvalFlwor when
  // ExecutionOptions::use_batched_execution is set; results are
  // byte-identical to the scalar pipeline at every thread count.
  Sequence EvalFlworBatched(const FlworExpr* expr, DynamicContext* context);

  // path.cc
  Sequence EvalPath(const PathExpr* expr, DynamicContext* context);

  // construct.cc
  Sequence EvalConstructor(const DirectConstructorExpr* expr,
                           DynamicContext* context);
  Sequence EvalComputedConstructor(const ComputedConstructorExpr* expr,
                                   DynamicContext* context);

  // evaluator.cc
  Sequence EvalTypeOp(const TypeOpExpr* expr, DynamicContext* context);

  const Module* module_;
};

}  // namespace xqa

#endif  // XQA_EVAL_EVALUATOR_H_

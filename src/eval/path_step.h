#ifndef XQA_EVAL_PATH_STEP_H_
#define XQA_EVAL_PATH_STEP_H_

#include <cstdint>

#include "parser/ast.h"
#include "xdm/item.h"
#include "xml/node.h"

namespace xqa {
namespace path_detail {

/// Node-test matching and batch-friendly node emission, shared by the
/// generic path evaluator (path.cc) and the batched FLWOR engine's
/// simple-path kernels (flwor_batch.cc). Both must agree exactly on match
/// semantics — the batched-identity ablation asserts byte-identical results —
/// so the single definition lives here.

/// Resolves a name test to `doc`'s interned id: kNameIdAny for wildcards,
/// kNameIdAbsent when the name was never interned (the test can match
/// nothing in this document). Cached in the test's atomic word keyed by
/// document id, so a step applied to many nodes of one document pays the
/// hash lookup once; documents with ids above 2^32-1 bypass the cache.
inline NameId ResolveTestNameId(const NodeTest& test, const Document& doc) {
  // processing-instruction("*") means a PI literally named "*"; everywhere
  // else "*" is the any-name wildcard.
  if (test.name.empty() ||
      (test.name == "*" && test.kind != NodeTest::Kind::kPi)) {
    return kNameIdAny;
  }
  uint64_t doc_id = doc.id();
  if (doc_id > 0xFFFFFFFFull) return doc.LookupName(test.name);
  uint64_t cached = test.name_id_cache.load(std::memory_order_relaxed);
  if ((cached >> 32) == doc_id) return static_cast<NameId>(cached);
  NameId id = doc.LookupName(test.name);
  test.name_id_cache.store((doc_id << 32) | id, std::memory_order_relaxed);
  return id;
}

/// The resolved id MatchesTest needs for `test` against nodes of `doc`;
/// kNameIdAny when the test kind carries no name constraint.
inline NameId TestNameId(const NodeTest& test, const Document& doc) {
  switch (test.kind) {
    case NodeTest::Kind::kName:
    case NodeTest::Kind::kElement:
    case NodeTest::Kind::kAttribute:
    case NodeTest::Kind::kPi:
      return ResolveTestNameId(test, doc);
    default:
      return kNameIdAny;
  }
}

/// True when `node` matches the test given the step's principal node kind
/// (attributes for the attribute axis, elements otherwise). `test_id` is the
/// test's name resolved against the node's document (TestNameId), making the
/// name comparison an integer compare. Named kinds always carry a real
/// interned id, so kNameIdAbsent correctly matches nothing.
inline bool MatchesTest(const Node* node, const NodeTest& test, Axis axis,
                        NameId test_id) {
  switch (test.kind) {
    case NodeTest::Kind::kName: {
      NodeKind principal = axis == Axis::kAttribute ? NodeKind::kAttribute
                                                    : NodeKind::kElement;
      if (node->kind() != principal) return false;
      return test_id == kNameIdAny || node->name_id() == test_id;
    }
    case NodeTest::Kind::kAnyKind:
      return true;
    case NodeTest::Kind::kText:
      return node->kind() == NodeKind::kText;
    case NodeTest::Kind::kComment:
      return node->kind() == NodeKind::kComment;
    case NodeTest::Kind::kElement:
      return node->kind() == NodeKind::kElement &&
             (test_id == kNameIdAny || node->name_id() == test_id);
    case NodeTest::Kind::kAttribute:
      return node->kind() == NodeKind::kAttribute &&
             (test_id == kNameIdAny || node->name_id() == test_id);
    case NodeTest::Kind::kDocument:
      return node->kind() == NodeKind::kDocument;
    case NodeTest::Kind::kPi:
      return node->kind() == NodeKind::kProcessingInstruction &&
             (test_id == kNameIdAny || node->name_id() == test_id);
  }
  return false;
}

/// Emits node items that all share one document while paying refcount
/// traffic once per batch instead of once per item: Reserve(n) performs a
/// single AddRefs(n), each Emit adopts one pre-paid reference, and the
/// destructor returns the unused remainder. References are paid before any
/// adopted handle exists, so early exits and exceptions can never underflow
/// the count. Emits beyond the reservation fall back to owned copies.
class BorrowedEmitter {
 public:
  BorrowedEmitter(const DocumentPtr& doc, Sequence* out)
      : doc_(doc.get()), out_(out) {}
  ~BorrowedEmitter() {
    if (reserved_ > emitted_) doc_->ReleaseRefs(reserved_ - emitted_);
  }
  BorrowedEmitter(const BorrowedEmitter&) = delete;
  BorrowedEmitter& operator=(const BorrowedEmitter&) = delete;

  void Reserve(uint64_t count) {
    if (count > 0) doc_->AddRefs(count);
    reserved_ += count;
  }

  void Emit(Node* node) {
    if (emitted_ < reserved_) {
      ++emitted_;
      out_->push_back(Item(node, DocumentPtr::Adopt(doc_)));
    } else {
      out_->push_back(Item(node, DocumentPtr(doc_)));
    }
  }

  /// Emits a contiguous run of nodes (an index range scan) in one call:
  /// one AddRefs, one Sequence capacity reservation, then a tight append
  /// loop. Equivalent to Reserve(end - begin) followed by Emit per node.
  void EmitRange(Node* const* begin, Node* const* end) {
    if (begin == end) return;
    uint64_t count = static_cast<uint64_t>(end - begin);
    Reserve(count);
    out_->reserve(out_->size() + static_cast<size_t>(count));
    for (Node* const* it = begin; it != end; ++it) {
      ++emitted_;
      out_->push_back(Item(*it, DocumentPtr::Adopt(doc_)));
    }
  }

 private:
  Document* doc_;
  Sequence* out_;
  uint64_t reserved_ = 0;
  uint64_t emitted_ = 0;
};

/// Appends `node`'s children matching the step test to `out` in document
/// order — the inner loop of both engines' child steps. One refcount batch
/// per call.
inline void EmitChildMatches(Node* node, const NodeTest& test, NameId test_id,
                             const DocumentPtr& doc, Sequence* out) {
  const std::vector<Node*>& children = node->children();
  if (children.empty()) return;
  BorrowedEmitter emitter(doc, out);
  emitter.Reserve(children.size());
  for (Node* child : children) {
    if (MatchesTest(child, test, Axis::kChild, test_id)) emitter.Emit(child);
  }
}

/// Attribute-axis counterpart of EmitChildMatches.
inline void EmitAttributeMatches(Node* node, const NodeTest& test,
                                 NameId test_id, const DocumentPtr& doc,
                                 Sequence* out) {
  if (node->kind() != NodeKind::kElement) return;
  const std::vector<Node*>& attributes = node->attributes();
  if (attributes.empty()) return;
  BorrowedEmitter emitter(doc, out);
  emitter.Reserve(attributes.size());
  for (Node* attr : attributes) {
    if (MatchesTest(attr, test, Axis::kAttribute, test_id)) emitter.Emit(attr);
  }
}

}  // namespace path_detail
}  // namespace xqa

#endif  // XQA_EVAL_PATH_STEP_H_

#ifndef XQA_EVAL_COLLECTION_SCAN_H_
#define XQA_EVAL_COLLECTION_SCAN_H_

#include "eval/dynamic_context.h"
#include "parser/ast.h"
#include "xdm/item.h"

namespace xqa {

/// Statically resolves a FLWOR for-clause domain expression to a collection
/// view eligible for the partitioned scan (docs/SERVICE.md): the expression
/// must be a direct call to fn:collection with zero arguments or a single
/// string-literal argument, and the context must carry a CollectionProvider
/// that resolves the name. Returns null otherwise — including for a name the
/// provider does not know — so the generic evaluation path runs and raises
/// exactly the error fn:collection would.
///
/// The decision depends only on the AST shape and the provider, never on
/// thread count or engine, which is what lets both engines take the scan at
/// every point of the ablation grid or neither at any. Restricting the
/// argument to a literal means the scan never evaluates the argument
/// expression itself, so no side effects (stats, faults, errors) can
/// diverge between the scan and the generic path.
const CollectionView* ResolveCollectionScan(const Expr* for_expr,
                                            DynamicContext* context);

/// Materializes `view`'s documents as a for-clause binding domain — one item
/// per document, in the view's canonical partition-major order — fanning the
/// partitions across the shared morsel pool with the engines' established
/// discipline: lanes from PlanWorkers (a function of the options alone),
/// per-lane forked contexts with private QueryStats sinks merged in lane
/// order at the barrier, lowest-index-error-wins on failure. Each partition
/// passes the `doc.load` fault site and a cancellation checkpoint before
/// emitting (plus a checkpoint every 256 documents inside large partitions),
/// and the whole output buffer is charged against the execution's memory
/// budget before any partition runs, so an over-budget scan fails with
/// XQSV0004 without materializing.
///
/// The caller's stats (when attached) record one collection scan, the view's
/// partition count, and the document total — all independent of thread
/// count.
Sequence PartitionedCollectionScan(const CollectionView& view,
                                   DynamicContext* context);

}  // namespace xqa

#endif  // XQA_EVAL_COLLECTION_SCAN_H_

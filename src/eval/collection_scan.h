#ifndef XQA_EVAL_COLLECTION_SCAN_H_
#define XQA_EVAL_COLLECTION_SCAN_H_

#include "eval/dynamic_context.h"
#include "parser/ast.h"
#include "xdm/item.h"

namespace xqa {

/// Statically resolves a FLWOR for-clause domain expression to a collection
/// view eligible for the partitioned scan (docs/SERVICE.md): the expression
/// must be a direct call to fn:collection with zero arguments or a single
/// string-literal argument, and the context must carry a CollectionProvider
/// that resolves the name. Returns null otherwise — including for a name the
/// provider does not know — so the generic evaluation path runs and raises
/// exactly the error fn:collection would.
///
/// The decision depends only on the AST shape and the provider, never on
/// thread count or engine, which is what lets both engines take the scan at
/// every point of the ablation grid or neither at any. Restricting the
/// argument to a literal means the scan never evaluates the argument
/// expression itself, so no side effects (stats, faults, errors) can
/// diverge between the scan and the generic path.
const CollectionView* ResolveCollectionScan(const Expr* for_expr,
                                            DynamicContext* context);

/// Materializes `view`'s documents as a for-clause binding domain — one item
/// per document, in the view's canonical partition-major order — fanning the
/// partitions across the shared morsel pool with the engines' established
/// discipline: lanes from PlanWorkers (a function of the options alone),
/// per-lane forked contexts with private QueryStats sinks merged in lane
/// order at the barrier, lowest-index-error-wins on failure. Each partition
/// passes the `doc.load` fault site and a cancellation checkpoint before
/// emitting (plus a checkpoint every 256 documents inside large partitions),
/// and the whole output buffer is charged against the execution's memory
/// budget before any partition runs, so an over-budget scan fails with
/// XQSV0004 without materializing.
///
/// The caller's stats (when attached) record one collection scan, the view's
/// partition count, and the document total — all independent of thread
/// count.
Sequence PartitionedCollectionScan(const CollectionView& view,
                                   DynamicContext* context);

class ShreddedTable;

/// True when a shredded table can answer `step`'s pushed value filter (or the
/// step has none): the filter must name a schema *element* field, so the
/// per-row verdict reduces to a general comparison of the field's lexical
/// dictionary value against the literal — exactly what the DOM path computes
/// by atomizing the matching child. A filter on a name the schema excluded
/// (structured somewhere, or simply absent) is not covered; the caller falls
/// back to the DOM scan.
bool ShredCoversStep(const ShreddedTable& table, const PathStep& step);

/// Emits `collection(...)//record` as a binding domain straight from the
/// column table — one item per record row, in table order (documents
/// ascending by id, preorder within each), which is byte-identical to what
/// the DOM path produces after cross-document sorting. When `record_step`
/// carries a pushed value filter (covered per ShredCoversStep), verdicts are
/// computed once per dictionary code and rows are filtered without touching
/// the DOM; null rows (absent field) compare like the empty child sequence —
/// excluded.
///
/// Mirrors PartitionedCollectionScan's governance: cancellation checkpoint on
/// entry plus every 256 rows, the output buffer charged up front (XQSV0004
/// past the budget, identically at every thread count), and the
/// `shred.scan_alloc` fault site before materialization. The caller's stats
/// record one shredded scan and the emitted row count.
Sequence ShreddedScanRows(const ShreddedTable& table,
                          const PathStep* record_step,
                          DynamicContext* context);

}  // namespace xqa

#endif  // XQA_EVAL_COLLECTION_SCAN_H_

#ifndef XQA_EVAL_DYNAMIC_CONTEXT_H_
#define XQA_EVAL_DYNAMIC_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/cancellation.h"
#include "base/memory_tracker.h"
#include "base/sanitizer.h"
#include "xdm/item.h"

namespace xqa {

class QueryStats;
class ShreddedTable;
struct ShredBuildContext;

/// Documents addressable by fn:doc / fn:collection, keyed by URI.
using DocumentRegistry = std::map<std::string, DocumentPtr>;

/// One named collection, frozen for the duration of a query: the member
/// documents in canonical order plus the partition boundaries a partitioned
/// `for $d in collection(...)` scan fans across the morsel pool
/// (docs/SERVICE.md).
///
/// Canonical order is partition-major — partition 0's documents (URI-sorted
/// within the partition), then partition 1's, ... — a function of corpus
/// content and partition count only, never of thread count. Every consumer
/// (the generic fn:collection body, the partitioned FLWOR scan at any lane
/// count, either engine) iterates `documents` in this one order, which is
/// what keeps results byte-identical across the whole ablation grid.
struct CollectionView {
  /// Member documents, partition-major. All sealed; readable without
  /// synchronization from any number of lanes.
  std::vector<DocumentPtr> documents;

  /// Offsets into `documents`, one per partition plus a trailing
  /// `documents.size()`. Empty means a single implicit partition.
  std::vector<size_t> partition_offsets;

  size_t partition_count() const {
    return partition_offsets.size() > 1 ? partition_offsets.size() - 1
                                        : (documents.empty() ? 0 : 1);
  }
};

/// Read-only source of collections for fn:collection and the partitioned
/// FLWOR scan. Implemented by the service layer's CollectionStore snapshot;
/// the eval layer only ever sees this interface (the dependency points
/// service → eval, never back). Implementations must be safe for concurrent
/// lookups and must keep the returned views alive for the provider's own
/// lifetime — DynamicContext holds a borrowed pointer for one execution.
class CollectionProvider {
 public:
  virtual ~CollectionProvider() = default;

  /// The collection published under `name`; null when absent (the caller
  /// decides whether that is FODC0002 or a registry fallback).
  virtual const CollectionView* FindCollection(
      const std::string& name) const = 0;

  /// The default collection — fn:collection() / fn:collection(()) resolve
  /// here. May be null (no default defined).
  virtual const CollectionView* DefaultCollection() const = 0;

  /// The shredded column table for `record` elements of `collection` (""
  /// names the default collection), built and cached on first use
  /// (docs/SHREDDING.md). Null when the provider does not shred or schema
  /// inference refuses the corpus — the caller falls back to the DOM path.
  /// `context` governs a build this call performs (cancellation polls,
  /// transient memory charge); a cancellation/budget abort propagates as the
  /// usual typed error. The default implementation never shreds.
  virtual const ShreddedTable* FindShreddedTable(
      const std::string& collection, const std::string& record,
      const ShredBuildContext& context) const {
    (void)collection;
    (void)record;
    (void)context;
    return nullptr;
  }
};

/// Intra-query parallelism knobs (docs/PARALLELISM.md). The default is fully
/// serial execution; num_threads > 1 enables deterministic morsel
/// parallelism in the FLWOR hot paths (group-by, order-by, where), with
/// results byte-identical to the serial engine.
struct ExecutionOptions {
  /// Worker threads per parallel section, including the calling thread.
  /// 1 (default) = serial; 0 = one per hardware thread. Capped by the shared
  /// pool size.
  int num_threads = 1;

  /// Consult the per-document structural indexes (docs/INDEXES.md) in path
  /// steps. On by default; turning it off forces the walking fallback for
  /// every step — used by the bench_path ablation and the index-equivalence
  /// tests, which assert byte-identical results either way.
  bool use_structural_index = true;

  /// Run FLWOR expressions through the batched (vectorized) engine
  /// (docs/VECTORIZATION.md): columnar tuple morsels, batched slot loading,
  /// simple-path kernels, and per-batch group-by probing. On by default;
  /// turning it off forces the scalar tuple-at-a-time pipeline — the
  /// ablation the batched-identity tests and bench_table1/bench_scaling use
  /// to prove byte-identical results and measure the step change.
  bool use_batched_execution = true;

  /// Let the batched engine replace optimizer-marked `collection(...)//rec`
  /// scans with shredded column-table reads (docs/SHREDDING.md). On by
  /// default; turning it off forces the DOM path for every scan — the
  /// bench_shred ablation and the shred parity tests use it to prove
  /// byte-identical results. No effect on the scalar engine, which never
  /// shreds.
  bool use_shredded_scan = true;

  /// Cooperative cancellation / deadline token for this execution
  /// (docs/SERVICE.md). Not owned; must outlive the Execute call. Null (the
  /// default) disables the checkpoints entirely, so executions outside the
  /// query service pay only a pointer test. Excluded from the plan cache's
  /// options fingerprint — it is runtime state, not configuration.
  const CancellationToken* cancellation = nullptr;

  /// Memory accounting for this execution (docs/ROBUSTNESS.md). Not owned;
  /// must outlive the Execute call. Null (the default) disables accounting —
  /// every charge site reduces to a pointer test. Shared by parallel lanes
  /// through DynamicContext::Fork. Excluded from the plan cache fingerprint
  /// for the same reason as `cancellation`.
  MemoryTracker* memory = nullptr;
};

/// The focus of evaluation: context item, position, and size (".",
/// fn:position(), fn:last()).
struct Focus {
  bool valid = false;
  Item item;
  int64_t position = 0;
  int64_t size = 0;
};

/// Runtime state for one query execution: global variable values, a stack of
/// variable frames (one per active user-function call, plus the main frame),
/// and the current focus.
class DynamicContext {
 public:
  DynamicContext() = default;
  DynamicContext(const DynamicContext&) = delete;
  DynamicContext& operator=(const DynamicContext&) = delete;

  /// Values of prolog-declared global variables, indexed by VariableDecl slot.
  std::vector<Sequence> globals;

  /// The current (innermost) frame.
  Sequence& Slot(int slot) { return frames_.back()[slot]; }

  void PushFrame(size_t size);
  void PopFrame();
  size_t FrameDepth() const { return frames_.size(); }

  /// Clones this context for a worker thread of a parallel FLWOR section:
  /// shares documents and copies globals (both read-only while the query
  /// body runs), copies the focus and the innermost frame (clause
  /// expressions only reach local slots of the current frame), and leaves
  /// `stats` null for the caller to attach a private sink. The fork's
  /// ExecutionOptions are the serial default so workers never re-enter the
  /// pool themselves.
  std::unique_ptr<DynamicContext> Fork() const;

  Focus focus;

  /// Documents available to fn:doc / fn:collection; may be null.
  const DocumentRegistry* documents = nullptr;

  /// Collections available to fn:collection and the partitioned FLWOR scan;
  /// may be null (fn:collection then falls back to `documents`). Borrowed —
  /// the caller (typically a CollectionStore snapshot held by the query
  /// service) must outlive the execution.
  const CollectionProvider* collections = nullptr;

  /// Parallelism settings for this execution (serial by default).
  ExecutionOptions exec;

  /// Cooperative cancellation checkpoint, cheap enough for per-tuple and
  /// per-node call sites in the FLWOR pipeline and path scans: the cancel
  /// flag (one relaxed load) is read on every call, the deadline clock only
  /// every kCancelPollStride calls. Throws XQSV0001/XQSV0002 via the token.
  void CheckCancel() {
    const CancellationToken* token = exec.cancellation;
    if (token == nullptr) return;
    if (token->cancelled() ||
        (++cancel_poll_ % kCancelPollStride == 0 && token->DeadlineExpired())) {
      token->Check();
    }
  }
  static constexpr uint32_t kCancelPollStride = 64;

  /// Execution-stats sink; null (the default) disables collection, reducing
  /// every instrumentation hook to an inlined null test (see query_stats.h).
  QueryStats* stats = nullptr;

  /// Charges `bytes` against this execution's memory tracker, raising
  /// XQSV0004 past the budget. One pointer test when accounting is off.
  void ChargeMemory(int64_t bytes) {
    if (exec.memory != nullptr) exec.memory->Charge(bytes);
  }
  void ReleaseMemory(int64_t bytes) {
    if (exec.memory != nullptr) exec.memory->Release(bytes);
  }

  /// Guards against runaway recursion in user-defined functions. The limit
  /// must trip before the C++ call stack runs out; sanitizer builds have
  /// much larger frames, so they get a tighter bound (the clean FORG0006
  /// beats a stack-overflow abort).
  int recursion_depth = 0;
#if defined(XQA_UNDER_ASAN)
  static constexpr int kMaxRecursionDepth = 256;
#else
  static constexpr int kMaxRecursionDepth = 2048;
#endif

  /// Expression-tree evaluation depth (every Evaluator::Evaluate frame, not
  /// just user-function calls — a deeply right-nested path or arithmetic
  /// chain recurses without ever calling a function). The guard raises a
  /// clean XQSV0005 where an unguarded build would overflow the C++ stack.
  /// The parser enforces the same bound on the AST it builds, so this trips
  /// only for depth manufactured at runtime.
  int eval_depth = 0;
#if defined(XQA_UNDER_ASAN)
  static constexpr int kMaxEvalDepth = 512;
#else
  static constexpr int kMaxEvalDepth = 4096;
#endif

 private:
  std::vector<std::vector<Sequence>> frames_;
  uint32_t cancel_poll_ = 0;
};

/// RAII depth guard for Evaluator::Evaluate; throws XQSV0005 past the bound.
class EvalDepthGuard {
 public:
  explicit EvalDepthGuard(DynamicContext* context) : context_(context) {
    if (++context_->eval_depth > DynamicContext::kMaxEvalDepth) {
      --context_->eval_depth;
      ThrowError(ErrorCode::kXQSV0005,
                 "expression nesting exceeds the evaluation depth limit (" +
                     std::to_string(DynamicContext::kMaxEvalDepth) + ")");
    }
  }
  ~EvalDepthGuard() { --context_->eval_depth; }
  EvalDepthGuard(const EvalDepthGuard&) = delete;
  EvalDepthGuard& operator=(const EvalDepthGuard&) = delete;

 private:
  DynamicContext* context_;
};

/// RAII focus save/restore.
class FocusGuard {
 public:
  explicit FocusGuard(DynamicContext* context)
      : context_(context), saved_(context->focus) {}
  ~FocusGuard() { context_->focus = saved_; }
  FocusGuard(const FocusGuard&) = delete;
  FocusGuard& operator=(const FocusGuard&) = delete;

 private:
  DynamicContext* context_;
  Focus saved_;
};

}  // namespace xqa

#endif  // XQA_EVAL_DYNAMIC_CONTEXT_H_

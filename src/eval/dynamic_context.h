#ifndef XQA_EVAL_DYNAMIC_CONTEXT_H_
#define XQA_EVAL_DYNAMIC_CONTEXT_H_

#include <map>
#include <string>
#include <vector>

#include "xdm/item.h"

namespace xqa {

/// Documents addressable by fn:doc / fn:collection, keyed by URI.
using DocumentRegistry = std::map<std::string, DocumentPtr>;

/// The focus of evaluation: context item, position, and size (".",
/// fn:position(), fn:last()).
struct Focus {
  bool valid = false;
  Item item;
  int64_t position = 0;
  int64_t size = 0;
};

/// Runtime state for one query execution: global variable values, a stack of
/// variable frames (one per active user-function call, plus the main frame),
/// and the current focus.
class DynamicContext {
 public:
  DynamicContext() = default;
  DynamicContext(const DynamicContext&) = delete;
  DynamicContext& operator=(const DynamicContext&) = delete;

  /// Values of prolog-declared global variables, indexed by VariableDecl slot.
  std::vector<Sequence> globals;

  /// The current (innermost) frame.
  Sequence& Slot(int slot) { return frames_.back()[slot]; }

  void PushFrame(size_t size);
  void PopFrame();
  size_t FrameDepth() const { return frames_.size(); }

  Focus focus;

  /// Documents available to fn:doc / fn:collection; may be null.
  const DocumentRegistry* documents = nullptr;

  /// Guards against runaway recursion in user-defined functions.
  int recursion_depth = 0;
  static constexpr int kMaxRecursionDepth = 2048;

 private:
  std::vector<std::vector<Sequence>> frames_;
};

/// RAII focus save/restore.
class FocusGuard {
 public:
  explicit FocusGuard(DynamicContext* context)
      : context_(context), saved_(context->focus) {}
  ~FocusGuard() { context_->focus = saved_; }
  FocusGuard(const FocusGuard&) = delete;
  FocusGuard& operator=(const FocusGuard&) = delete;

 private:
  DynamicContext* context_;
  Focus saved_;
};

}  // namespace xqa

#endif  // XQA_EVAL_DYNAMIC_CONTEXT_H_

#include "eval/evaluator.h"

#include <cmath>
#include <functional>

#include "base/error.h"
#include "eval/type_match.h"
#include "functions/function_registry.h"
#include "xdm/compare.h"
#include "xdm/sequence_ops.h"

namespace xqa {

Sequence Evaluator::EvaluateQuery(DynamicContext* context, Focus initial_focus) {
  context->globals.assign(module_->variables.size(), Sequence{});
  context->PushFrame(module_->frame_size);
  context->focus = initial_focus;
  struct FramePopper {
    DynamicContext* context;
    ~FramePopper() { context->PopFrame(); }
  } popper{context};
  for (const VariableDecl& decl : module_->variables) {
    context->globals[decl.slot] = Evaluate(decl.expr.get(), context);
  }
  return Evaluate(module_->body.get(), context);
}

Sequence Evaluator::Evaluate(const Expr* expr, DynamicContext* context) {
  // Depth governor: expression nesting is bounded so a hostile query raises
  // a clean XQSV0005 instead of overflowing the C++ stack (two integer ops
  // per frame when the guard does not trip).
  EvalDepthGuard depth_guard(context);
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return {Item(static_cast<const LiteralExpr*>(expr)->value)};
    case ExprKind::kVarRef: {
      const auto* e = static_cast<const VarRefExpr*>(expr);
      if (e->is_global) return context->globals[e->slot];
      return context->Slot(e->slot);
    }
    case ExprKind::kContextItem: {
      if (!context->focus.valid) {
        ThrowError(ErrorCode::kXPDY0002, "context item is absent",
                   expr->location());
      }
      return {context->focus.item};
    }
    case ExprKind::kSequence: {
      const auto* e = static_cast<const SequenceExpr*>(expr);
      Sequence result;
      for (const ExprPtr& item : e->items) {
        Concat(&result, Evaluate(item.get(), context));
      }
      return result;
    }
    case ExprKind::kRange:
      return EvalRange(static_cast<const RangeExpr*>(expr), context);
    case ExprKind::kArithmetic:
      return EvalArithmetic(static_cast<const ArithmeticExpr*>(expr), context);
    case ExprKind::kUnary: {
      const auto* e = static_cast<const UnaryExpr*>(expr);
      Sequence operand = Atomize(Evaluate(e->operand.get(), context));
      if (operand.empty()) return {};
      if (operand.size() > 1) {
        ThrowError(ErrorCode::kXPTY0004, "unary operand must be a singleton",
                   e->location());
      }
      AtomicValue v = operand[0].atomic();
      if (v.type() == AtomicType::kUntypedAtomic) {
        v = AtomicValue::Double(v.ToDoubleValue());
      }
      if (!e->negate) return {Item(v)};
      switch (v.type()) {
        case AtomicType::kInteger:
          return {MakeInteger(-v.AsInteger())};
        case AtomicType::kDecimal:
          return {MakeDecimalItem(v.AsDecimal().Negate())};
        case AtomicType::kDouble:
          return {MakeDouble(-v.AsDouble())};
        default:
          ThrowError(ErrorCode::kXPTY0004,
                     "unary minus requires a numeric operand", e->location());
      }
    }
    case ExprKind::kComparison:
      return EvalComparison(static_cast<const ComparisonExpr*>(expr), context);
    case ExprKind::kLogical: {
      const auto* e = static_cast<const LogicalExpr*>(expr);
      bool lhs = EffectiveBooleanValue(Evaluate(e->lhs.get(), context));
      if (e->op == LogicalOp::kAnd) {
        if (!lhs) return {MakeBoolean(false)};
        return {MakeBoolean(
            EffectiveBooleanValue(Evaluate(e->rhs.get(), context)))};
      }
      if (lhs) return {MakeBoolean(true)};
      return {MakeBoolean(
          EffectiveBooleanValue(Evaluate(e->rhs.get(), context)))};
    }
    case ExprKind::kIf: {
      const auto* e = static_cast<const IfExpr*>(expr);
      bool condition =
          EffectiveBooleanValue(Evaluate(e->condition.get(), context));
      return Evaluate(condition ? e->then_branch.get() : e->else_branch.get(),
                      context);
    }
    case ExprKind::kQuantified:
      return EvalQuantified(static_cast<const QuantifiedExpr*>(expr), context);
    case ExprKind::kPath:
      return EvalPath(static_cast<const PathExpr*>(expr), context);
    case ExprKind::kFilter:
      return EvalFilter(static_cast<const FilterExpr*>(expr), context);
    case ExprKind::kFunctionCall:
      return EvalFunctionCall(static_cast<const FunctionCallExpr*>(expr),
                              context);
    case ExprKind::kFlwor:
      return EvalFlwor(static_cast<const FlworExpr*>(expr), context);
    case ExprKind::kDirectConstructor:
      return EvalConstructor(static_cast<const DirectConstructorExpr*>(expr),
                             context);
    case ExprKind::kComputedConstructor:
      return EvalComputedConstructor(
          static_cast<const ComputedConstructorExpr*>(expr), context);
    case ExprKind::kTypeOp:
      return EvalTypeOp(static_cast<const TypeOpExpr*>(expr), context);
    case ExprKind::kTypeswitch: {
      const auto* e = static_cast<const TypeswitchExpr*>(expr);
      Sequence operand = Evaluate(e->operand.get(), context);
      for (const TypeswitchExpr::CaseClause& clause : e->cases) {
        if (MatchesSeqType(operand, clause.type)) {
          if (clause.slot >= 0) context->Slot(clause.slot) = operand;
          return Evaluate(clause.result.get(), context);
        }
      }
      if (e->default_slot >= 0) {
        context->Slot(e->default_slot) = std::move(operand);
      }
      return Evaluate(e->default_result.get(), context);
    }
    default:
      ThrowError(ErrorCode::kXPST0003, "unsupported expression kind",
                 expr->location());
  }
}

namespace {

/// Prepares one arithmetic operand: atomize, require empty-or-singleton,
/// promote untypedAtomic to xs:double.
bool PrepareArithOperand(Sequence raw, SourceLocation loc, AtomicValue* out) {
  Sequence seq = Atomize(std::move(raw));
  if (seq.empty()) return false;
  if (seq.size() > 1) {
    ThrowError(ErrorCode::kXPTY0004,
               "arithmetic operand must be a singleton sequence", loc);
  }
  AtomicValue v = seq[0].atomic();
  if (v.type() == AtomicType::kUntypedAtomic) {
    v = AtomicValue::Double(v.ToDoubleValue());
  }
  bool temporal = v.type() == AtomicType::kDateTime ||
                  v.type() == AtomicType::kDate ||
                  v.type() == AtomicType::kTime ||
                  v.type() == AtomicType::kDuration;
  if (!v.IsNumeric() && !temporal) {
    ThrowError(ErrorCode::kXPTY0004,
               "arithmetic requires numeric or date/time operands, got " +
                   std::string(AtomicTypeName(v.type())),
               loc);
  }
  return (*out = v, true);
}

Item IntegerArith(ArithOp op, int64_t a, int64_t b, SourceLocation loc) {
  int64_t result = 0;
  bool overflow = false;
  switch (op) {
    case ArithOp::kAdd:
      overflow = __builtin_add_overflow(a, b, &result);
      break;
    case ArithOp::kSubtract:
      overflow = __builtin_sub_overflow(a, b, &result);
      break;
    case ArithOp::kMultiply:
      overflow = __builtin_mul_overflow(a, b, &result);
      break;
    case ArithOp::kIntegerDivide:
      if (b == 0) ThrowError(ErrorCode::kFOAR0001, "integer division by zero", loc);
      if (a == INT64_MIN && b == -1) {
        ThrowError(ErrorCode::kFOAR0002, "integer overflow", loc);
      }
      result = a / b;
      break;
    case ArithOp::kModulo:
      if (b == 0) ThrowError(ErrorCode::kFOAR0001, "modulo by zero", loc);
      if (a == INT64_MIN && b == -1) {
        result = 0;
      } else {
        result = a % b;
      }
      break;
    case ArithOp::kDivide:
      // Handled by the caller (integer div yields xs:decimal).
      break;
  }
  if (overflow) ThrowError(ErrorCode::kFOAR0002, "integer overflow", loc);
  return MakeInteger(result);
}

double DoubleArith(ArithOp op, double a, double b) {
  switch (op) {
    case ArithOp::kAdd: return a + b;
    case ArithOp::kSubtract: return a - b;
    case ArithOp::kMultiply: return a * b;
    case ArithOp::kDivide: return a / b;  // IEEE semantics: INF / NaN
    default: return 0;
  }
}

}  // namespace

namespace {

bool IsDateTimeLike(AtomicType type) {
  return type == AtomicType::kDateTime || type == AtomicType::kDate ||
         type == AtomicType::kTime;
}

/// Date/time/duration arithmetic (XPath operator set, dayTimeDuration only):
///   dateTime - dateTime -> duration      dateTime ± duration -> dateTime
///   duration ± duration -> duration      duration * number   -> duration
///   duration div number -> duration      duration div duration -> decimal
/// Returns nullopt when neither operand is temporal (plain numeric path).
std::optional<Item> TemporalArith(ArithOp op, const AtomicValue& a,
                                  const AtomicValue& b, SourceLocation loc) {
  bool a_temporal = IsDateTimeLike(a.type()) || a.type() == AtomicType::kDuration;
  bool b_temporal = IsDateTimeLike(b.type()) || b.type() == AtomicType::kDuration;
  if (!a_temporal && !b_temporal) return std::nullopt;

  auto fail = [&]() -> std::optional<Item> {
    ThrowError(ErrorCode::kXPTY0004,
               std::string("invalid operand types for date/time arithmetic: ") +
                   std::string(AtomicTypeName(a.type())) + " and " +
                   std::string(AtomicTypeName(b.type())),
               loc);
  };

  if (IsDateTimeLike(a.type())) {
    if (op == ArithOp::kSubtract && a.type() == b.type()) {
      return Item(AtomicValue::MakeDuration(a.AsDateTime().ToEpochMillis() -
                                            b.AsDateTime().ToEpochMillis()));
    }
    if (b.type() == AtomicType::kDuration &&
        (op == ArithOp::kAdd || op == ArithOp::kSubtract)) {
      int64_t delta = op == ArithOp::kAdd ? b.AsDurationMillis()
                                          : -b.AsDurationMillis();
      DateTime shifted = a.AsDateTime().PlusMillis(delta);
      switch (a.type()) {
        case AtomicType::kDateTime:
          return Item(AtomicValue::MakeDateTime(shifted));
        case AtomicType::kDate:
          return Item(AtomicValue::MakeDate(shifted));
        default:
          return Item(AtomicValue::MakeTime(shifted));
      }
    }
    return fail();
  }

  // a is a duration.
  if (b.type() == AtomicType::kDuration) {
    switch (op) {
      case ArithOp::kAdd:
        return Item(AtomicValue::MakeDuration(a.AsDurationMillis() +
                                              b.AsDurationMillis()));
      case ArithOp::kSubtract:
        return Item(AtomicValue::MakeDuration(a.AsDurationMillis() -
                                              b.AsDurationMillis()));
      case ArithOp::kDivide: {
        if (b.AsDurationMillis() == 0) {
          ThrowError(ErrorCode::kFOAR0001, "duration division by zero", loc);
        }
        Decimal x(a.AsDurationMillis());
        Decimal y(b.AsDurationMillis());
        return Item(AtomicValue::MakeDecimal(x.Divide(y)));
      }
      default:
        return fail();
    }
  }
  if (IsDateTimeLike(b.type()) && op == ArithOp::kAdd) {
    // duration + dateTime: commute.
    return TemporalArith(op, b, a, loc);
  }
  if (b.IsNumeric() &&
      (op == ArithOp::kMultiply || op == ArithOp::kDivide)) {
    double factor = b.ToDoubleValue();
    if (std::isnan(factor)) {
      ThrowError(ErrorCode::kFOCA0002, "duration scaled by NaN", loc);
    }
    if (op == ArithOp::kDivide) {
      if (factor == 0) {
        ThrowError(ErrorCode::kFOAR0001, "duration division by zero", loc);
      }
      factor = 1.0 / factor;
    }
    double scaled = static_cast<double>(a.AsDurationMillis()) * factor;
    if (std::isnan(scaled) || std::isinf(scaled) || std::fabs(scaled) > 9e15) {
      ThrowError(ErrorCode::kFODT0001, "duration arithmetic overflow", loc);
    }
    return Item(AtomicValue::MakeDuration(
        static_cast<int64_t>(std::llround(scaled))));
  }
  return fail();
}

}  // namespace

Sequence Evaluator::EvalArithmetic(const ArithmeticExpr* expr,
                                   DynamicContext* context) {
  AtomicValue a, b;
  if (!PrepareArithOperand(Evaluate(expr->lhs.get(), context),
                           expr->location(), &a)) {
    return {};
  }
  if (!PrepareArithOperand(Evaluate(expr->rhs.get(), context),
                           expr->location(), &b)) {
    return {};
  }
  std::optional<Item> temporal =
      TemporalArith(expr->op, a, b, expr->location());
  if (temporal.has_value()) return {*temporal};

  // Promotion: double > decimal > integer.
  if (a.type() == AtomicType::kDouble || b.type() == AtomicType::kDouble) {
    double x = a.ToDoubleValue();
    double y = b.ToDoubleValue();
    if (expr->op == ArithOp::kIntegerDivide) {
      if (y == 0) {
        ThrowError(ErrorCode::kFOAR0001, "integer division by zero",
                   expr->location());
      }
      double q = std::trunc(x / y);
      if (std::isnan(q) || std::isinf(q)) {
        ThrowError(ErrorCode::kFOAR0002, "idiv result out of range",
                   expr->location());
      }
      return {MakeInteger(static_cast<int64_t>(q))};
    }
    if (expr->op == ArithOp::kModulo) {
      return {MakeDouble(std::fmod(x, y))};
    }
    return {MakeDouble(DoubleArith(expr->op, x, y))};
  }

  if (a.type() == AtomicType::kDecimal || b.type() == AtomicType::kDecimal ||
      expr->op == ArithOp::kDivide) {
    Decimal x = a.type() == AtomicType::kDecimal ? a.AsDecimal()
                                                 : Decimal(a.AsInteger());
    Decimal y = b.type() == AtomicType::kDecimal ? b.AsDecimal()
                                                 : Decimal(b.AsInteger());
    switch (expr->op) {
      case ArithOp::kAdd: return {MakeDecimalItem(x.Add(y))};
      case ArithOp::kSubtract: return {MakeDecimalItem(x.Subtract(y))};
      case ArithOp::kMultiply: return {MakeDecimalItem(x.Multiply(y))};
      case ArithOp::kDivide: return {MakeDecimalItem(x.Divide(y))};
      case ArithOp::kIntegerDivide: return {MakeInteger(x.IntegerDivide(y))};
      case ArithOp::kModulo: return {MakeDecimalItem(x.Mod(y))};
    }
  }

  return {IntegerArith(expr->op, a.AsInteger(), b.AsInteger(),
                       expr->location())};
}

Sequence Evaluator::EvalComparison(const ComparisonExpr* expr,
                                   DynamicContext* context) {
  Sequence lhs = Evaluate(expr->lhs.get(), context);
  Sequence rhs = Evaluate(expr->rhs.get(), context);
  switch (expr->comparison_kind) {
    case ComparisonKind::kGeneral:
      return {MakeBoolean(
          GeneralCompare(static_cast<CompareOp>(expr->op), lhs, rhs))};
    case ComparisonKind::kValue: {
      bool empty = false;
      bool result = ValueCompareSequences(static_cast<CompareOp>(expr->op),
                                          lhs, rhs, &empty);
      if (empty) return {};
      return {MakeBoolean(result)};
    }
    case ComparisonKind::kNodeIs: {
      if (lhs.empty() || rhs.empty()) return {};
      if (lhs.size() > 1 || rhs.size() > 1 || !lhs[0].IsNode() ||
          !rhs[0].IsNode()) {
        ThrowError(ErrorCode::kXPTY0004, "'is' requires singleton nodes",
                   expr->location());
      }
      return {MakeBoolean(lhs[0].node() == rhs[0].node())};
    }
  }
  return {};
}

Sequence Evaluator::EvalRange(const RangeExpr* expr, DynamicContext* context) {
  auto bound = [&](const Expr* e) -> std::optional<int64_t> {
    Sequence seq = Atomize(Evaluate(e, context));
    if (seq.empty()) return std::nullopt;
    if (seq.size() > 1) {
      ThrowError(ErrorCode::kXPTY0004, "range bound must be a singleton",
                 expr->location());
    }
    return seq[0].atomic().CastTo(AtomicType::kInteger).AsInteger();
  };
  std::optional<int64_t> lo = bound(expr->lo.get());
  std::optional<int64_t> hi = bound(expr->hi.get());
  if (!lo.has_value() || !hi.has_value() || *lo > *hi) return {};
  if (*hi - *lo > 100'000'000) {
    ThrowError(ErrorCode::kFOAR0002, "range too large", expr->location());
  }
  Sequence result;
  result.reserve(static_cast<size_t>(*hi - *lo + 1));
  for (int64_t i = *lo; i <= *hi; ++i) {
    result.push_back(MakeInteger(i));
  }
  return result;
}

Sequence Evaluator::EvalQuantified(const QuantifiedExpr* expr,
                                   DynamicContext* context) {
  // Depth-first over the binding tuples; short-circuits.
  bool every = expr->every;
  std::vector<Sequence> domains(expr->bindings.size());
  std::vector<size_t> index(expr->bindings.size(), 0);

  // Recursive lambda over binding position.
  std::function<bool(size_t)> recurse = [&](size_t depth) -> bool {
    if (depth == expr->bindings.size()) {
      bool satisfied =
          EffectiveBooleanValue(Evaluate(expr->satisfies.get(), context));
      return satisfied;
    }
    const auto& binding = expr->bindings[depth];
    Sequence domain = Evaluate(binding.expr.get(), context);
    for (const Item& item : domain) {
      context->Slot(binding.slot) = {item};
      bool result = recurse(depth + 1);
      if (every && !result) return false;
      if (!every && result) return true;
    }
    return every;
  };
  return {MakeBoolean(recurse(0))};
}

Sequence Evaluator::ApplyPredicate(Sequence input, const Expr* predicate,
                                   DynamicContext* context) {
  Sequence output;
  FocusGuard guard(context);
  int64_t size = static_cast<int64_t>(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    context->focus.valid = true;
    context->focus.item = input[i];
    context->focus.position = static_cast<int64_t>(i + 1);
    context->focus.size = size;
    Sequence value = Evaluate(predicate, context);
    bool keep;
    if (value.size() == 1 && value[0].IsAtomic() &&
        value[0].atomic().IsNumeric()) {
      keep = value[0].atomic().ToDoubleValue() ==
             static_cast<double>(context->focus.position);
    } else {
      keep = EffectiveBooleanValue(value);
    }
    if (keep) output.push_back(input[i]);
  }
  return output;
}

Sequence Evaluator::EvalFilter(const FilterExpr* expr, DynamicContext* context) {
  Sequence current = Evaluate(expr->primary.get(), context);
  for (const ExprPtr& predicate : expr->predicates) {
    current = ApplyPredicate(std::move(current), predicate.get(), context);
  }
  return current;
}

Sequence Evaluator::EvalFunctionCall(const FunctionCallExpr* expr,
                                     DynamicContext* context) {
  std::vector<Sequence> args;
  args.reserve(expr->args.size());
  for (const ExprPtr& arg : expr->args) {
    args.push_back(Evaluate(arg.get(), context));
  }
  if (expr->user_fn_index >= 0) {
    return CallUserFunction(expr->user_fn_index, std::move(args), context);
  }
  EvalContext eval_context{*context, *this};
  return BuiltinFunctions()[expr->builtin_id].fn(eval_context, args);
}

Sequence Evaluator::EvalTypeOp(const TypeOpExpr* expr,
                               DynamicContext* context) {
  Sequence operand = Evaluate(expr->operand.get(), context);
  switch (expr->op) {
    case TypeOpKind::kInstanceOf:
      return {MakeBoolean(MatchesSeqType(operand, expr->type))};
    case TypeOpKind::kTreatAs:
      if (!MatchesSeqType(operand, expr->type)) {
        ThrowError(ErrorCode::kXPDY0050,
                   "treat as: value does not match the required type",
                   expr->location());
      }
      return operand;
    case TypeOpKind::kCastAs:
    case TypeOpKind::kCastableAs: {
      bool castable_probe = expr->op == TypeOpKind::kCastableAs;
      Sequence atomized = Atomize(operand);
      if (atomized.empty()) {
        bool optional = expr->type.occurrence == SeqType::Occurrence::kOptional;
        if (castable_probe) return {MakeBoolean(optional)};
        if (optional) return {};
        ThrowError(ErrorCode::kXPTY0004,
                   "cast as: empty sequence for a non-optional type",
                   expr->location());
      }
      if (atomized.size() > 1) {
        if (castable_probe) return {MakeBoolean(false)};
        ThrowError(ErrorCode::kXPTY0004,
                   "cast as: more than one item", expr->location());
      }
      if (castable_probe) {
        try {
          (void)atomized[0].atomic().CastTo(expr->type.atomic_type);
          return {MakeBoolean(true)};
        } catch (const XQueryError&) {
          return {MakeBoolean(false)};
        }
      }
      return {Item(atomized[0].atomic().CastTo(expr->type.atomic_type))};
    }
  }
  return {};
}

Sequence Evaluator::CallUserFunction(int index, std::vector<Sequence> args,
                                     DynamicContext* context) {
  const FunctionDecl& fn = module_->functions[index];
  // Function conversion rules on each declared parameter type.
  for (size_t i = 0; i < fn.params.size(); ++i) {
    args[i] = ApplyFunctionConversion(std::move(args[i]), fn.params[i].type,
                                      fn.name + " $" + fn.params[i].name);
  }
  if (++context->recursion_depth > DynamicContext::kMaxRecursionDepth) {
    --context->recursion_depth;
    ThrowError(ErrorCode::kFORG0006,
               "recursion limit exceeded in " + fn.name, fn.location);
  }
  context->PushFrame(fn.frame_size);
  // Function bodies do not inherit the caller's focus.
  Focus saved_focus = context->focus;
  context->focus = Focus{};
  for (size_t i = 0; i < fn.params.size(); ++i) {
    context->Slot(fn.params[i].slot) = std::move(args[i]);
  }
  Sequence result;
  try {
    result = Evaluate(fn.body.get(), context);
  } catch (...) {
    context->focus = saved_focus;
    context->PopFrame();
    --context->recursion_depth;
    throw;
  }
  context->focus = saved_focus;
  context->PopFrame();
  --context->recursion_depth;
  return result;
}

}  // namespace xqa

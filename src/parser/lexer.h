#ifndef XQA_PARSER_LEXER_H_
#define XQA_PARSER_LEXER_H_

#include <string>
#include <string_view>

#include "base/error.h"

namespace xqa {

enum class TokenKind : uint8_t {
  kEof,
  kIntegerLiteral,
  kDecimalLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kName,      ///< NCName or prefixed QName; text holds the full lexical form
  kVariable,  ///< $name; text holds the name without '$'
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kAssign,  ///< :=
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kSlashSlash,
  kAt,
  kDot,
  kDotDot,
  kVBar,
  kColonColon,
  kQuestion,
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  ///< names, variables, and decoded string literals
  SourceLocation location;
};

/// Hand-written lexer with one-token lookahead plus a raw-character mode used
/// by the parser for direct element constructors (XQuery requires lexical
/// mode switching inside constructors). Raw-mode reads and token reads share
/// one cursor, so the parser can interleave them: consume '<' as a token,
/// read the tag name raw, parse an enclosed expression back in token mode...
class Lexer {
 public:
  explicit Lexer(std::string_view text);

  /// The next token without consuming it.
  const Token& Peek();

  /// The token after the next one (two-token lookahead), without consuming.
  const Token& Peek2();

  /// Three-token lookahead (used for computed-constructor disambiguation).
  const Token& Peek3();

  /// Consumes and returns the next token.
  Token Next();

  /// Throws XPST0003 with the current location.
  [[noreturn]] void Fail(const std::string& message) const;

  SourceLocation CurrentLocation() const {
    return {cursor_.line, cursor_.column};
  }

  // --- Raw mode -------------------------------------------------------------
  // Raw reads start exactly after the last consumed token (any peeked token
  // is discarded — peeking never advances the cursor).

  bool RawAtEnd();
  char RawPeek(size_t offset = 0);
  char RawNext();
  /// Consumes XML whitespace characters.
  void RawSkipWhitespace();
  /// Reads an XML name (NCName or prefixed); fails on malformed input.
  std::string RawName();

 private:
  struct Cursor {
    size_t pos = 0;
    uint32_t line = 1;
    uint32_t column = 1;
  };

  void DropPeeked() {
    has_peeked_ = false;
    has_peeked2_ = false;
    has_peeked3_ = false;
  }
  char CharAt(size_t pos) const {
    return pos < text_.size() ? text_[pos] : '\0';
  }
  void AdvanceChar(Cursor* cursor) const;
  void SkipWhitespaceAndComments(Cursor* cursor) const;
  Token LexToken(Cursor* cursor) const;
  std::string LexStringLiteral(Cursor* cursor) const;

  std::string_view text_;
  Cursor cursor_;

  bool has_peeked_ = false;
  Token peeked_;
  Cursor peek_end_;
  bool has_peeked2_ = false;
  Token peeked2_;
  Cursor peek2_end_;
  bool has_peeked3_ = false;
  Token peeked3_;
};

}  // namespace xqa

#endif  // XQA_PARSER_LEXER_H_

#include "parser/lexer.h"

#include <cctype>

#include "base/string_util.h"

namespace xqa {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIntegerLiteral: return "integer literal";
    case TokenKind::kDecimalLiteral: return "decimal literal";
    case TokenKind::kDoubleLiteral: return "double literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kName: return "name";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kSlashSlash: return "'//'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kVBar: return "'|'";
    case TokenKind::kColonColon: return "'::'";
    case TokenKind::kQuestion: return "'?'";
  }
  return "token";
}

Lexer::Lexer(std::string_view text) : text_(text) {}

void Lexer::AdvanceChar(Cursor* cursor) const {
  if (cursor->pos >= text_.size()) return;
  if (text_[cursor->pos] == '\n') {
    ++cursor->line;
    cursor->column = 1;
  } else {
    ++cursor->column;
  }
  ++cursor->pos;
}

void Lexer::SkipWhitespaceAndComments(Cursor* cursor) const {
  while (cursor->pos < text_.size()) {
    char c = text_[cursor->pos];
    if (IsXmlWhitespace(c)) {
      AdvanceChar(cursor);
      continue;
    }
    // XQuery comments "(: ... :)" nest.
    if (c == '(' && CharAt(cursor->pos + 1) == ':') {
      int depth = 0;
      while (cursor->pos < text_.size()) {
        if (text_[cursor->pos] == '(' && CharAt(cursor->pos + 1) == ':') {
          ++depth;
          AdvanceChar(cursor);
          AdvanceChar(cursor);
        } else if (text_[cursor->pos] == ':' && CharAt(cursor->pos + 1) == ')') {
          --depth;
          AdvanceChar(cursor);
          AdvanceChar(cursor);
          if (depth == 0) break;
        } else {
          AdvanceChar(cursor);
        }
      }
      if (depth != 0) {
        ThrowError(ErrorCode::kXPST0003, "unterminated comment",
                   {cursor->line, cursor->column});
      }
      continue;
    }
    break;
  }
}

std::string Lexer::LexStringLiteral(Cursor* cursor) const {
  char quote = text_[cursor->pos];
  AdvanceChar(cursor);
  std::string value;
  while (true) {
    if (cursor->pos >= text_.size()) {
      ThrowError(ErrorCode::kXPST0003, "unterminated string literal",
                 {cursor->line, cursor->column});
    }
    char c = text_[cursor->pos];
    if (c == quote) {
      AdvanceChar(cursor);
      // Doubled quote escapes the quote character.
      if (CharAt(cursor->pos) == quote) {
        value.push_back(quote);
        AdvanceChar(cursor);
        continue;
      }
      return value;
    }
    if (c == '&') {
      // Predefined entity / character references.
      size_t start = cursor->pos;
      AdvanceChar(cursor);
      std::string entity;
      while (cursor->pos < text_.size() && text_[cursor->pos] != ';' &&
             entity.size() < 12) {
        entity.push_back(text_[cursor->pos]);
        AdvanceChar(cursor);
      }
      if (CharAt(cursor->pos) != ';') {
        ThrowError(ErrorCode::kXPST0003, "bad entity reference",
                   {cursor->line, cursor->column});
      }
      AdvanceChar(cursor);
      if (entity == "lt") value.push_back('<');
      else if (entity == "gt") value.push_back('>');
      else if (entity == "amp") value.push_back('&');
      else if (entity == "quot") value.push_back('"');
      else if (entity == "apos") value.push_back('\'');
      else if (!entity.empty() && entity[0] == '#') {
        int base = 10;
        size_t i = 1;
        if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
          base = 16;
          i = 2;
        }
        uint32_t code = 0;
        for (; i < entity.size(); ++i) {
          code = code * base;
          char d = entity[i];
          if (d >= '0' && d <= '9') code += d - '0';
          else if (base == 16 && d >= 'a' && d <= 'f') code += d - 'a' + 10;
          else if (base == 16 && d >= 'A' && d <= 'F') code += d - 'A' + 10;
          else ThrowError(ErrorCode::kXPST0003, "bad character reference",
                          {cursor->line, cursor->column});
        }
        // Append as UTF-8.
        if (code < 0x80) {
          value.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          value.push_back(static_cast<char>(0xC0 | (code >> 6)));
          value.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          value.push_back(static_cast<char>(0xE0 | (code >> 12)));
          value.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          value.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        ThrowError(ErrorCode::kXPST0003, "unknown entity &" + entity + ";",
                   {cursor->line, cursor->column});
      }
      (void)start;
      continue;
    }
    value.push_back(c);
    AdvanceChar(cursor);
  }
}

Token Lexer::LexToken(Cursor* cursor) const {
  SkipWhitespaceAndComments(cursor);
  Token token;
  token.location = {cursor->line, cursor->column};
  if (cursor->pos >= text_.size()) {
    token.kind = TokenKind::kEof;
    return token;
  }
  char c = text_[cursor->pos];

  // Numeric literals. ".5" is decimal; "." and ".." are punctuation.
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(CharAt(cursor->pos + 1))))) {
    std::string number;
    bool has_point = false;
    bool has_exponent = false;
    while (cursor->pos < text_.size()) {
      char d = text_[cursor->pos];
      if (std::isdigit(static_cast<unsigned char>(d))) {
        number.push_back(d);
        AdvanceChar(cursor);
      } else if (d == '.' && !has_point && !has_exponent) {
        // ".." after digits is a separate token (e.g. "1..3" is invalid
        // anyway; don't consume).
        if (CharAt(cursor->pos + 1) == '.') break;
        has_point = true;
        number.push_back(d);
        AdvanceChar(cursor);
      } else if ((d == 'e' || d == 'E') && !has_exponent) {
        char next = CharAt(cursor->pos + 1);
        char next2 = CharAt(cursor->pos + 2);
        if (std::isdigit(static_cast<unsigned char>(next)) ||
            ((next == '+' || next == '-') &&
             std::isdigit(static_cast<unsigned char>(next2)))) {
          has_exponent = true;
          number.push_back(d);
          AdvanceChar(cursor);
          if (text_[cursor->pos] == '+' || text_[cursor->pos] == '-') {
            number.push_back(text_[cursor->pos]);
            AdvanceChar(cursor);
          }
        } else {
          break;
        }
      } else {
        break;
      }
    }
    token.kind = has_exponent ? TokenKind::kDoubleLiteral
                 : has_point  ? TokenKind::kDecimalLiteral
                              : TokenKind::kIntegerLiteral;
    token.text = std::move(number);
    return token;
  }

  if (c == '"' || c == '\'') {
    token.kind = TokenKind::kStringLiteral;
    token.text = LexStringLiteral(cursor);
    return token;
  }

  if (c == '$') {
    AdvanceChar(cursor);
    if (cursor->pos >= text_.size() || !IsNameStartChar(text_[cursor->pos])) {
      ThrowError(ErrorCode::kXPST0003, "expected a variable name after '$'",
                 {cursor->line, cursor->column});
    }
    std::string name;
    while (cursor->pos < text_.size() &&
           (IsNameChar(text_[cursor->pos]) || text_[cursor->pos] == ':')) {
      // A single ':' may join prefix:local; "::" never appears in names.
      if (text_[cursor->pos] == ':' && CharAt(cursor->pos + 1) == ':') break;
      name.push_back(text_[cursor->pos]);
      AdvanceChar(cursor);
    }
    token.kind = TokenKind::kVariable;
    token.text = std::move(name);
    return token;
  }

  if (IsNameStartChar(c)) {
    std::string name;
    while (cursor->pos < text_.size() && IsNameChar(text_[cursor->pos])) {
      name.push_back(text_[cursor->pos]);
      AdvanceChar(cursor);
    }
    // QName: prefix ':' local (but not "::" which is an axis separator, and
    // not ":=" which is an assignment).
    if (CharAt(cursor->pos) == ':' && IsNameStartChar(CharAt(cursor->pos + 1)) &&
        CharAt(cursor->pos + 1) != ':') {
      name.push_back(':');
      AdvanceChar(cursor);
      while (cursor->pos < text_.size() && IsNameChar(text_[cursor->pos])) {
        name.push_back(text_[cursor->pos]);
        AdvanceChar(cursor);
      }
    }
    token.kind = TokenKind::kName;
    token.text = std::move(name);
    return token;
  }

  auto two = [&](char second) { return CharAt(cursor->pos + 1) == second; };
  switch (c) {
    case '(': AdvanceChar(cursor); token.kind = TokenKind::kLParen; return token;
    case ')': AdvanceChar(cursor); token.kind = TokenKind::kRParen; return token;
    case '[': AdvanceChar(cursor); token.kind = TokenKind::kLBracket; return token;
    case ']': AdvanceChar(cursor); token.kind = TokenKind::kRBracket; return token;
    case '{': AdvanceChar(cursor); token.kind = TokenKind::kLBrace; return token;
    case '}': AdvanceChar(cursor); token.kind = TokenKind::kRBrace; return token;
    case ',': AdvanceChar(cursor); token.kind = TokenKind::kComma; return token;
    case ';': AdvanceChar(cursor); token.kind = TokenKind::kSemicolon; return token;
    case '?': AdvanceChar(cursor); token.kind = TokenKind::kQuestion; return token;
    case '@': AdvanceChar(cursor); token.kind = TokenKind::kAt; return token;
    case '|': AdvanceChar(cursor); token.kind = TokenKind::kVBar; return token;
    case '+': AdvanceChar(cursor); token.kind = TokenKind::kPlus; return token;
    case '-': AdvanceChar(cursor); token.kind = TokenKind::kMinus; return token;
    case '*': AdvanceChar(cursor); token.kind = TokenKind::kStar; return token;
    case '=': AdvanceChar(cursor); token.kind = TokenKind::kEq; return token;
    case '!':
      if (two('=')) {
        AdvanceChar(cursor);
        AdvanceChar(cursor);
        token.kind = TokenKind::kNeq;
        return token;
      }
      break;
    case '<':
      AdvanceChar(cursor);
      if (CharAt(cursor->pos) == '=') {
        AdvanceChar(cursor);
        token.kind = TokenKind::kLe;
      } else {
        token.kind = TokenKind::kLt;
      }
      return token;
    case '>':
      AdvanceChar(cursor);
      if (CharAt(cursor->pos) == '=') {
        AdvanceChar(cursor);
        token.kind = TokenKind::kGe;
      } else {
        token.kind = TokenKind::kGt;
      }
      return token;
    case '/':
      AdvanceChar(cursor);
      if (CharAt(cursor->pos) == '/') {
        AdvanceChar(cursor);
        token.kind = TokenKind::kSlashSlash;
      } else {
        token.kind = TokenKind::kSlash;
      }
      return token;
    case '.':
      AdvanceChar(cursor);
      if (CharAt(cursor->pos) == '.') {
        AdvanceChar(cursor);
        token.kind = TokenKind::kDotDot;
      } else {
        token.kind = TokenKind::kDot;
      }
      return token;
    case ':':
      AdvanceChar(cursor);
      if (CharAt(cursor->pos) == '=') {
        AdvanceChar(cursor);
        token.kind = TokenKind::kAssign;
        return token;
      }
      if (CharAt(cursor->pos) == ':') {
        AdvanceChar(cursor);
        token.kind = TokenKind::kColonColon;
        return token;
      }
      break;
    default:
      break;
  }
  ThrowError(ErrorCode::kXPST0003,
             std::string("unexpected character '") + c + "'",
             {cursor->line, cursor->column});
}

const Token& Lexer::Peek() {
  if (!has_peeked_) {
    Cursor end = cursor_;
    peeked_ = LexToken(&end);
    peek_end_ = end;
    has_peeked_ = true;
  }
  return peeked_;
}

const Token& Lexer::Peek2() {
  Peek();
  if (!has_peeked2_) {
    Cursor end = peek_end_;
    peeked2_ = LexToken(&end);
    peek2_end_ = end;
    has_peeked2_ = true;
  }
  return peeked2_;
}

const Token& Lexer::Peek3() {
  Peek2();
  if (!has_peeked3_) {
    Cursor end = peek2_end_;
    peeked3_ = LexToken(&end);
    has_peeked3_ = true;
  }
  return peeked3_;
}

Token Lexer::Next() {
  Peek();
  has_peeked_ = false;
  has_peeked2_ = false;
  has_peeked3_ = false;
  cursor_ = peek_end_;
  return std::move(peeked_);
}

void Lexer::Fail(const std::string& message) const {
  ThrowError(ErrorCode::kXPST0003, message, {cursor_.line, cursor_.column});
}

bool Lexer::RawAtEnd() {
  DropPeeked();
  return cursor_.pos >= text_.size();
}

char Lexer::RawPeek(size_t offset) {
  DropPeeked();
  return CharAt(cursor_.pos + offset);
}

char Lexer::RawNext() {
  DropPeeked();
  if (cursor_.pos >= text_.size()) {
    Fail("unexpected end of input in constructor");
  }
  char c = text_[cursor_.pos];
  AdvanceChar(&cursor_);
  return c;
}

void Lexer::RawSkipWhitespace() {
  DropPeeked();
  while (cursor_.pos < text_.size() && IsXmlWhitespace(text_[cursor_.pos])) {
    AdvanceChar(&cursor_);
  }
}

std::string Lexer::RawName() {
  DropPeeked();
  if (cursor_.pos >= text_.size() || !IsNameStartChar(text_[cursor_.pos])) {
    Fail("expected a name");
  }
  std::string name;
  while (cursor_.pos < text_.size() &&
         (IsNameChar(text_[cursor_.pos]) || text_[cursor_.pos] == ':')) {
    name.push_back(text_[cursor_.pos]);
    AdvanceChar(&cursor_);
  }
  return name;
}

}  // namespace xqa

#ifndef XQA_PARSER_PARSER_H_
#define XQA_PARSER_PARSER_H_

#include <string_view>

#include "parser/ast.h"

namespace xqa {

/// Parses an XQuery module (prolog + query body) written in the XQuery 1.0
/// subset extended with the paper's analytics proposals:
///
///   FLWORExpr ::= (ForClause | LetClause)+ WhereClause?
///                 (GroupByClause LetClause* WhereClause?)?
///                 OrderByClause? ReturnClause
///   GroupByClause ::= "group" "by"
///                 Expr "into" "$" VarName ("using" QName)?
///                 ("," Expr "into" "$" VarName ("using" QName)?)*
///                 ("nest" Expr OrderByClause? "into" "$" VarName
///                  ("," Expr OrderByClause? "into" "$" VarName)*)?
///   ReturnClause ::= "return" ("at" "$" VarName)? Expr
///
/// Throws XQueryError(XPST0003) on syntax errors. The returned module is
/// unbound — run the Binder before evaluation.
ModulePtr ParseQuery(std::string_view query);

}  // namespace xqa

#endif  // XQA_PARSER_PARSER_H_
